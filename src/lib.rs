//! # RedFuser
//!
//! A pure-Rust reproduction of *RedFuser: An Automatic Operator Fusion Framework
//! for Cascaded Reductions on AI Accelerators* (ASPLOS 2026).
//!
//! RedFuser takes a **cascaded reduction** — a chain of reductions where each
//! reduction's per-element map function depends on the results of the earlier
//! reductions (safe softmax, attention, MoE routing, FP8 quant + GEMM, …) — and
//! automatically:
//!
//! 1. decides whether the chain is fusable (the **ACRF** fixed-point analysis),
//! 2. derives the **fused** reduction expressions (a single reduction tree) and
//!    the **incremental** update form (constant on-chip state),
//! 3. lowers the result through a scalar loop-nest IR and a tile-level IR into a
//!    kernel that is executed numerically on the CPU and costed on an analytical
//!    GPU performance model.
//!
//! The workspace is organised as a set of focused crates, all re-exported here:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`algebra`] | `rf-algebra` | binary/reduce operators, monoid and distributivity laws, Table 1 |
//! | [`expr`] | `rf-expr` | symbolic scalar expression engine |
//! | [`fusion`] | `rf-fusion` | cascade model, reduction trees, ACRF, fused + incremental evaluators |
//! | [`graph`] | `rf-graph` | operator-graph frontend: cascade detection and region partitioning |
//! | [`tir`] | `rf-tir` | scalar loop-nest IR, reduction-pattern detection, fused-IR generation |
//! | [`tile`] | `rf-tile` | tile-level IR (TileOps), tensorization, parallelization, interpreter |
//! | [`gpusim`] | `rf-gpusim` | analytical GPU performance model (A10/A100/H800/MI308X) |
//! | [`codegen`] | `rf-codegen` | lowering, Single/Multi-Segment strategies, fusion levels, auto-tuner |
//! | [`kernels`] | `rf-kernels` | reference + hand-optimized CPU numeric kernels |
//! | [`runtime`] | `rf-runtime` | continuous-batching serving engine: unified submission API, priority lanes, admission control, plan cache, metrics |
//! | [`trace`] | `rf-trace` | tracing/telemetry: span collector, HDR-style histograms, Chrome trace export |
//! | [`baselines`] | `rf-baselines` | eager / inductor-like / tvm-like compiler behaviour models |
//! | [`workloads`] | `rf-workloads` | paper configuration tables and data generation |
//!
//! # Quickstart
//!
//! ```
//! use redfuser::fusion::{CascadeSpec, acrf::analyze_cascade};
//! use redfuser::fusion::patterns;
//!
//! // Safe softmax = max reduction followed by a sum-of-exp reduction.
//! let cascade: CascadeSpec = patterns::safe_softmax();
//! let plan = analyze_cascade(&cascade).expect("softmax is fusable");
//! assert_eq!(plan.reductions.len(), 2);
//! ```

pub use rf_algebra as algebra;
pub use rf_baselines as baselines;
pub use rf_codegen as codegen;
pub use rf_expr as expr;
pub use rf_fusion as fusion;
pub use rf_gpusim as gpusim;
pub use rf_graph as graph;
pub use rf_kernels as kernels;
pub use rf_runtime as runtime;
pub use rf_tile as tile;
pub use rf_tir as tir;
pub use rf_trace as trace;
pub use rf_workloads as workloads;

/// Crate version of the facade, mirroring the workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
