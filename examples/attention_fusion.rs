//! End-to-end attention fusion: detect the cascade in a scalar loop nest,
//! fuse it, generate the FlashAttention-style tile program, auto-tune it for
//! an A10, and compare against the compiler baselines and FlashAttention2.
//!
//! Run with `cargo run --example attention_fusion`.

use std::collections::HashMap;

use redfuser::baselines::{flash_attention2_profile, mha_op_list, CompilerBaseline};
use redfuser::codegen::{compile_workload, Workload};
use redfuser::gpusim::{estimate_latency, sequence_latency, GpuArch};
use redfuser::kernels::attention::{attention_naive, flash_attention};
use redfuser::tir::{builder, detect_cascade, generate_fused, Interpreter};
use redfuser::workloads::{mha_configs, Matrix};

pub fn main() {
    // --- Front end: scalar loop nest -> cascade -> fused scalar kernel. ---
    let unfused = builder::unfused_attention_row(256);
    let detected = detect_cascade(&unfused).expect("attention row is a cascaded reduction");
    let plan =
        redfuser::fusion::analyze_cascade(&detected.cascade).expect("attention row is fusable");
    let fused = generate_fused(&plan, &detected);
    println!(
        "detected cascade over axis `{}` with reductions {:?}",
        detected.axis, detected.reduction_buffers
    );
    println!("\nfused scalar kernel:\n{fused}");

    // The fused kernel computes the same result as the unfused loop nest.
    let inputs = HashMap::from([
        (
            "p".to_string(),
            redfuser::workloads::random_vec(256, 3, -2.0, 2.0),
        ),
        (
            "v".to_string(),
            redfuser::workloads::random_vec(256, 4, -2.0, 2.0),
        ),
    ]);
    let interp = Interpreter::new();
    let a = interp.run(&unfused, &inputs).unwrap();
    let b = interp.run(&fused, &inputs).unwrap();
    println!("unfused o = {:.9}, fused o = {:.9}", a["o"][0], b["o"][0]);

    // --- Numeric kernels: the dense FlashAttention port matches the naive one. ---
    let q = Matrix::random(32, 64, 1, -1.0, 1.0);
    let k = Matrix::random(128, 64, 2, -1.0, 1.0);
    let v = Matrix::random(128, 64, 3, -1.0, 1.0);
    let scale = 1.0 / 8.0;
    let diff =
        attention_naive(&q, &k, &v, scale).max_abs_diff(&flash_attention(&q, &k, &v, scale, 64));
    println!("max |naive - flash| = {diff:.3e}");

    // --- Back end: compile BERT-base MHA for an A10 and compare latencies. ---
    let arch = GpuArch::a10();
    let config = mha_configs()
        .into_iter()
        .find(|c| c.model == "BERT-Base")
        .unwrap();
    let compiled = compile_workload(&Workload::Mha(config.clone()), &arch);
    println!(
        "\nRedFuser-compiled kernel (tuned {:?}):",
        compiled.tuning.point
    );
    if let Some(program) = &compiled.program {
        println!("{program}");
    }
    let eager = sequence_latency(
        &arch,
        &CompilerBaseline::PyTorchEager.kernels(&mha_op_list(&config)),
    );
    let dynamo = sequence_latency(
        &arch,
        &CompilerBaseline::Dynamo.kernels(&mha_op_list(&config)),
    );
    let fa2 = estimate_latency(&arch, &flash_attention2_profile(&config)).total_us;
    println!("estimated latency on {} ({}):", arch.name, config.name);
    println!("  PyTorch Eager    {eager:10.1} us");
    println!("  PyTorch Dynamo   {dynamo:10.1} us");
    println!("  FlashAttention2  {fa2:10.1} us");
    println!("  RedFuser         {:10.1} us", compiled.latency_us);
}
