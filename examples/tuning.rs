//! The staged auto-tuner: guided search vs the exhaustive oracle, plus the
//! warm-start tuning cache.
//!
//! Run with `cargo run --release --example tuning`.

use std::sync::Arc;

use redfuser::codegen::{compile_workload_with, CompileOptions, SearchMode, TuningCache, Workload};
use redfuser::gpusim::GpuArch;

pub fn main() {
    let arch = GpuArch::h800();
    let workload = Workload::Softmax {
        rows: 4096,
        len: 8192,
    };

    // The exhaustive oracle scans every (deduplicated, statically feasible)
    // candidate; the guided mode seeds a coarse lattice and refines by
    // coordinate descent. Both must agree on the chosen configuration.
    let oracle = compile_workload_with(
        &workload,
        &arch,
        &CompileOptions {
            mode: SearchMode::Exhaustive,
            ..CompileOptions::default()
        },
    );
    let guided = compile_workload_with(&workload, &arch, &CompileOptions::default());
    println!(
        "exhaustive: {:?} -> {:.2} us ({} of {} raw points evaluated)",
        oracle.tuning.point, oracle.latency_us, oracle.tuning.evaluated, oracle.tuning.space_size
    );
    println!(
        "guided:     {:?} -> {:.2} us ({} evaluated, {:.1}x fewer)",
        guided.tuning.point,
        guided.latency_us,
        guided.tuning.evaluated,
        oracle.tuning.evaluated as f64 / guided.tuning.evaluated as f64
    );
    assert!(guided.latency_us <= oracle.latency_us * 1.05);

    // A shared TuningCache warm-starts later searches of the same workload
    // class: the second compile seeds its descent from the first's winner.
    let cache = Arc::new(TuningCache::new());
    let opts = CompileOptions {
        tuning_cache: Some(Arc::clone(&cache)),
        ..CompileOptions::default()
    };
    let cold = compile_workload_with(&workload, &arch, &opts);
    let warm = compile_workload_with(
        &Workload::Softmax {
            rows: 2048,
            len: 8192,
        },
        &arch,
        &opts,
    );
    let stats = cache.stats();
    println!(
        "tuning cache: cold {} evals, warm {} evals ({} lookups, {} seeded, {} entries)",
        cold.tuning.evaluated, warm.tuning.evaluated, stats.lookups, stats.seeded, stats.entries
    );
    assert_eq!(stats.seeded, 1);
}
