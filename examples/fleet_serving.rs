//! Multi-device fleet walkthrough: run one engine over a mixed-architecture
//! fleet (a real tile-VM A10 plus a cost-model H800), drive the same request
//! mix through all three routing policies, and read the per-device metrics
//! the fleet keeps for each of them.
//!
//! Run with `cargo run --example fleet_serving`.

use redfuser::gpusim::GpuArch;
use redfuser::runtime::{
    DeviceSpec, Engine, FleetConfig, Request, RequestInput, RoutingPolicy, RuntimeConfig,
};
use redfuser::workloads::{mha_tiny, random_matrix};

fn fleet(routing: RoutingPolicy) -> FleetConfig {
    FleetConfig::heterogeneous(
        vec![
            DeviceSpec::tile_vm(GpuArch::a10()),
            DeviceSpec::cost_model(GpuArch::h800()),
        ],
        RuntimeConfig::builder()
            .workers(2)
            .max_batch(8)
            .cache_capacity(32)
            .build()
            .expect("valid config"),
    )
    .with_routing(routing)
}

/// A small mixed stream: batched softmax traffic plus row-shardable MHA.
fn requests() -> Vec<Request> {
    let mha = mha_tiny();
    let mut all: Vec<Request> = (0..24u64)
        .map(|seed| {
            Request::softmax(random_matrix(
                4,
                64 + (seed % 3) as usize * 32,
                seed,
                -2.0,
                2.0,
            ))
        })
        .collect();
    for seed in 0..8u64 {
        all.push(
            Request::new(
                redfuser::codegen::Workload::Mha(redfuser::workloads::MhaConfig {
                    q: 8,
                    ..mha.clone()
                }),
                RequestInput::Attention {
                    q: random_matrix(8, mha.hd, 100 + seed, -1.0, 1.0),
                    k: random_matrix(mha.kv, mha.hd, 200 + seed, -1.0, 1.0),
                    v: random_matrix(mha.kv, mha.hd, 300 + seed, -1.0, 1.0),
                },
            )
            .expect("valid MHA request"),
        );
    }
    all
}

pub fn main() {
    for routing in [
        RoutingPolicy::LeastLoaded,
        RoutingPolicy::StickyByKey,
        RoutingPolicy::RowShard,
    ] {
        let engine = Engine::with_fleet(fleet(routing));
        println!(
            "=== routing: {} ({} devices) ===",
            routing.name(),
            engine.devices()
        );
        let tickets: Vec<_> = requests()
            .into_iter()
            .map(|r| engine.submit(r).expect("request admitted"))
            .collect();
        engine.run_until_drained();
        let mut per_device = vec![0usize; engine.devices()];
        for ticket in tickets {
            let response = ticket.wait().expect("request served");
            per_device[response.device] += 1;
        }
        // `response.device` reports the lowest participating device for a
        // row-sharded merge, so the per-device ledgers below are the real
        // placement record; this is the caller-visible view.
        println!("responses by serving device: {per_device:?}");
        for device in engine.device_snapshots() {
            let m = &device.metrics;
            println!(
                "device {} [{} / {}, fingerprint {:016x}]: \
                 {} served, {} shed, p50 {:.1} us, p99 {:.1} us, \
                 mean batch {:.2}, cache hit rate {:.0}%",
                device.device,
                device.arch,
                device.backend,
                device.fingerprint,
                m.completed,
                m.shed,
                m.p50_us,
                m.p99_us,
                m.mean_batch_size,
                m.cache.hit_rate() * 100.0,
            );
        }
        let fleet_wide = engine.metrics();
        println!(
            "fleet: {} served over {} batches\n",
            fleet_wide.completed, fleet_wide.batches
        );
    }
}
