//! FP8 per-token quantization + GEMM (the paper's §3.4 case study): ACRF
//! derives the fused and incremental forms, the CPU kernels verify
//! correctness, and the DeepSeek-R1 shapes are compiled for an H800.
//!
//! Run with `cargo run --example quant_gemm`.

use redfuser::baselines::{quant_op_list, CompilerBaseline};
use redfuser::codegen::{compile_workload, Workload};
use redfuser::gpusim::{sequence_latency, GpuArch};
use redfuser::kernels::quant::{quant_gemm_fused, quant_gemm_naive};
use redfuser::workloads::{quant_configs, Matrix};

pub fn main() {
    // Symbolic derivation (Eq. 17-22 of the paper).
    let plan =
        redfuser::fusion::analyze_cascade(&redfuser::fusion::patterns::fp8_quant_gemm()).unwrap();
    println!("{}", plan.report());

    // Numeric check: the fused streaming kernel matches the three-pass one.
    let a = Matrix::random(16, 64, 9, -2.0, 2.0);
    let w = Matrix::random(64, 24, 10, -1.0, 1.0);
    let diff = quant_gemm_naive(&a, &w).max_abs_diff(&quant_gemm_fused(&a, &w, 64));
    println!(
        "max |unfused - fused| = {diff:.3e} (single-block fusion performs identical roundings)"
    );

    // Performance: DeepSeek-R1 projection shapes (Q5/Q6) on an H800.
    let arch = GpuArch::h800();
    for name in ["Q5", "Q6"] {
        let config = quant_configs()
            .into_iter()
            .find(|c| c.name == name)
            .unwrap();
        let compiled = compile_workload(&Workload::Quant(config.clone()), &arch);
        let ops = quant_op_list(&config);
        println!(
            "\nestimated latency on {} ({} = [{} x {}] * [{} x {}]):",
            arch.name, name, config.m, config.k, config.k, config.n
        );
        for baseline in CompilerBaseline::ALL {
            println!(
                "  {:<16}{:10.1} us",
                baseline.name(),
                sequence_latency(&arch, &baseline.kernels(&ops))
            );
        }
        println!("  {:<16}{:10.1} us", "RedFuser", compiled.latency_us);
    }
}
