//! Graph-frontend walkthrough: build an unfused transformer decoder layer as
//! an operator graph, watch the detector find its attention cascade, partition
//! it into a fused region plus glue ops, and serve it end-to-end through the
//! engine — twice, so the second submission hits the per-region plan cache.
//!
//! Run with `cargo run --example graph_serving`.

use redfuser::gpusim::GpuArch;
use redfuser::graph::{builders, detect_cascades, partition};
use redfuser::runtime::Engine;

pub fn main() {
    // 1. A whole model subgraph, written fully unfused: explicit GEMMs,
    //    broadcasts, exponentials and row reductions. Nothing is labelled as
    //    "attention" — the detector has to find it.
    let (seq, d, ff) = (8, 16, 32);
    let graph = builders::transformer_decoder_layer(seq, d, ff);
    println!(
        "transformer decoder layer: {} nodes, {} inputs",
        graph.len(),
        graph.input_names().len()
    );

    // 2. Detection: reduction chains are lifted into cascade specs and proved
    //    (or refuted) by the real ACRF analysis.
    for cand in detect_cascades(&graph) {
        println!(
            "detected cascade over [{}x{}]: {} reduction(s), fusable = {}",
            cand.rows,
            cand.axis_len,
            cand.reductions.len(),
            cand.is_fusable()
        );
    }

    // 3. Partitioning: maximal fusable regions (here: the whole attention
    //    slice, absorbed into one MHA workload) plus unfused glue ops.
    let plan = partition(&graph);
    println!("plan: {}", plan.summary());

    // 4. Serving: the engine compiles each region through its plan cache,
    //    interprets the tuned tile programs and threads intermediates.
    let engine = Engine::new(GpuArch::a10());
    let inputs = builders::transformer_decoder_layer_inputs(seq, d, ff, 7);
    let first = engine
        .submit_graph_plan(&graph, &plan, &inputs)
        .expect("the graph serves");
    println!(
        "served: {} fused region(s), {} glue op(s), {:.2} us simulated",
        first.fused_regions, first.glue_ops, first.simulated_us
    );

    // The fused execution matches the whole-graph unfused reference.
    let reference = graph.evaluate(&inputs).expect("the reference evaluates");
    let diff = first.outputs[0].max_abs_diff(&reference[0]);
    assert!(diff < 1e-7, "fused vs reference diff {diff}");
    println!("matches the unfused whole-graph reference (max diff {diff:.2e})");

    // 5. Same graph again: both the partition and the compiled region plan
    //    are re-used; the engine metrics show the graph counters.
    let second = engine
        .submit_graph_plan(&graph, &plan, &inputs)
        .expect("the graph serves again");
    assert_eq!(second.region_cache_hits, 1);
    println!("{}", engine.metrics().report());
}
