//! Graph-frontend walkthrough: build an unfused transformer decoder layer as
//! an operator graph, watch the detector find its attention cascade, partition
//! it into a fused region plus glue ops, and serve it end-to-end through the
//! engine — twice, so the second submission hits the per-region plan cache.
//!
//! Run with `cargo run --example graph_serving`.

use std::sync::Arc;

use redfuser::gpusim::GpuArch;
use redfuser::graph::{builders, detect_cascades, partition};
use redfuser::runtime::{Engine, RequestOutput, Response, Submission};

pub fn main() {
    // 1. A whole model subgraph, written fully unfused: explicit GEMMs,
    //    broadcasts, exponentials and row reductions. Nothing is labelled as
    //    "attention" — the detector has to find it.
    let (seq, d, ff) = (8, 16, 32);
    let graph = builders::transformer_decoder_layer(seq, d, ff);
    println!(
        "transformer decoder layer: {} nodes, {} inputs",
        graph.len(),
        graph.input_names().len()
    );

    // 2. Detection: reduction chains are lifted into cascade specs and proved
    //    (or refuted) by the real ACRF analysis.
    for cand in detect_cascades(&graph) {
        println!(
            "detected cascade over [{}x{}]: {} reduction(s), fusable = {}",
            cand.rows,
            cand.axis_len,
            cand.reductions.len(),
            cand.is_fusable()
        );
    }

    // 3. Partitioning: maximal fusable regions (here: the whole attention
    //    slice, absorbed into one MHA workload) plus unfused glue ops.
    let plan = partition(&graph);
    println!("plan: {}", plan.summary());

    // 4. Serving: graphs ride the same unified `Engine::submit` front door
    //    as single workloads. The engine compiles each region through its
    //    plan cache, interprets the tuned tile programs and threads
    //    intermediates.
    let engine = Engine::new(GpuArch::a10());
    let inputs = builders::transformer_decoder_layer_inputs(seq, d, ff, 7);
    let shared_graph = Arc::new(graph.clone());
    let shared_plan = Arc::new(plan);
    let serve = || -> Response {
        let bindings: Vec<(String, _)> = inputs
            .iter()
            .map(|(name, matrix)| (name.to_string(), matrix.clone()))
            .collect();
        engine
            .submit(Submission::graph_plan(
                Arc::clone(&shared_graph),
                Arc::clone(&shared_plan),
                bindings,
            ))
            .expect("the graph is admitted")
            .wait()
            .expect("the graph serves")
    };
    let first = serve();
    let stats = first.graph.expect("graph submissions carry graph stats");
    println!(
        "served: {} fused region(s), {} glue op(s), {:.2} us simulated",
        stats.fused_regions, stats.glue_ops, first.simulated_us
    );

    // The fused execution matches the whole-graph unfused reference.
    let reference = graph.evaluate(&inputs).expect("the reference evaluates");
    let RequestOutput::Tensors(outputs) = &first.output else {
        panic!("graph submissions produce tensors");
    };
    let diff = outputs[0].max_abs_diff(&reference[0]);
    assert!(diff < 1e-7, "fused vs reference diff {diff}");
    println!("matches the unfused whole-graph reference (max diff {diff:.2e})");

    // 5. Same graph again: both the partition and the compiled region plan
    //    are re-used; the engine metrics show the graph counters.
    let second = serve();
    assert_eq!(second.graph.expect("graph stats").region_cache_hits, 1);
    println!("{}", engine.metrics().report());
}
