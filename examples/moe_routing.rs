//! MoE routing fusion: the softmax + top-k cascade is fused into a single
//! streaming pass per token, and the DeepSeek-V2-Lite routing configuration is
//! compiled and compared against the compiler baselines.
//!
//! Run with `cargo run --example moe_routing`.

use redfuser::baselines::{moe_op_list, CompilerBaseline};
use redfuser::codegen::{compile_workload, Workload};
use redfuser::gpusim::{sequence_latency, GpuArch};
use redfuser::kernels::moe::{decisions_equal, route_fused, route_naive};
use redfuser::workloads::{moe_configs, Matrix};

pub fn main() {
    // The symbolic side: the routing softmax is a fusable cascade.
    let plan = redfuser::fusion::analyze_cascade(&redfuser::fusion::patterns::moe_routing_scores())
        .unwrap();
    println!("{}", plan.report());

    // The numeric side: fused streaming routing matches the unfused pipeline.
    let x = Matrix::random(64, 128, 5, -1.0, 1.0);
    let w = Matrix::random(128, 64, 6, -1.0, 1.0);
    let naive = route_naive(&x, &w, 6);
    let fused = route_fused(&x, &w, 6);
    println!(
        "fused routing matches unfused: {}",
        decisions_equal(&naive, &fused, 1e-9)
    );
    println!(
        "token 0 experts: {:?} probs: {:?}",
        fused[0].experts,
        fused[0]
            .probs
            .iter()
            .map(|p| format!("{p:.4}"))
            .collect::<Vec<_>>()
    );

    // The performance side: DeepSeek-V2-Lite routing (R6) on an A10.
    let arch = GpuArch::a10();
    let config = moe_configs().into_iter().find(|c| c.name == "R6").unwrap();
    let compiled = compile_workload(&Workload::Moe(config.clone()), &arch);
    let ops = moe_op_list(&config);
    println!("\nestimated latency on {} ({}):", arch.name, config.name);
    for baseline in CompilerBaseline::ALL {
        println!(
            "  {:<16}{:10.1} us",
            baseline.name(),
            sequence_latency(&arch, &baseline.kernels(&ops))
        );
    }
    println!("  {:<16}{:10.1} us", "RedFuser", compiled.latency_us);
}
