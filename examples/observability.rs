//! Observability walkthrough: run a mixed workload + graph burst with full
//! tracing enabled, then read the run back three ways — per-request
//! [`Response::timing`] breakdowns, the human metrics report with per-stage
//! wall-time percentiles, and the Prometheus text exposition — and finally
//! export a Chrome trace-event document that loads in Perfetto.
//!
//! Run with `cargo run --example observability`.

use std::sync::Arc;

use redfuser::gpusim::GpuArch;
use redfuser::graph::builders;
use redfuser::runtime::{
    Engine, Priority, Request, RuntimeConfig, Submission, TraceConfig, TraceLevel,
};
use redfuser::workloads::random_matrix;

pub fn main() {
    // 1. Telemetry is part of the engine config. `TraceLevel::Histograms`
    //    (the default) keeps per-stage latency histograms with no span
    //    buffer; `TraceLevel::Full` additionally records per-request spans
    //    into a bounded ring buffer for Chrome-trace export. `Off` disables
    //    both — submissions still carry `Response::timing()` either way.
    let config = RuntimeConfig::builder()
        .workers(2)
        .max_batch(8)
        .max_in_flight(128)
        .trace(TraceConfig::full())
        .build()
        .expect("the configuration is valid");
    let engine = Engine::with_config(GpuArch::h800(), config);
    assert_eq!(engine.trace_collector().level(), TraceLevel::Full);

    // 2. A small mixed burst: softmax requests across the three priority
    //    lanes plus one whole operator graph through the same front door.
    let mut tickets = Vec::new();
    for seed in 0..24u64 {
        let lane = match seed % 3 {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        let request = Request::softmax(random_matrix(4, 128, seed, -2.0, 2.0));
        tickets.push(
            engine
                .submit(Submission::workload(request).with_priority(lane))
                .expect("the engine has budget for the burst"),
        );
    }
    let graph = Arc::new(builders::moe_block(4, 8, 4));
    let bindings: Vec<(String, _)> = builders::moe_block_inputs(4, 8, 4, 7)
        .into_iter()
        .map(|(name, matrix)| (name.to_string(), matrix))
        .collect();
    tickets.push(
        engine
            .submit(Submission::graph(graph, bindings))
            .expect("graph accepted"),
    );
    engine.run_until_drained();

    // 3. Every response carries a wall-clock breakdown: queue wait, plan
    //    acquisition (compile + tune on a cache miss, ~0 on a hit), execute
    //    share and the end-to-end total, plus how many engine iterations the
    //    request sat out. The stages tile the total by construction.
    println!("per-request wall-clock breakdowns (first four + the graph):");
    let responses: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("request completes"))
        .collect();
    let graph_response = responses.last().expect("the graph response is last");
    for response in responses.iter().take(4).chain([graph_response]) {
        let t = response.timing();
        println!(
            "  {:<12} [{:<6}] queue {:>8.1} us  compile {:>8.1} us (tune {:>6.1})  \
             execute {:>8.1} us  total {:>8.1} us  waited {} iter",
            response.workload,
            response.priority.name(),
            t.queue_us,
            t.compile_us,
            t.tune_us,
            t.execute_us,
            t.total_us,
            t.iterations_waited,
        );
        assert!(t.accounted_us() <= t.total_us * 1.001);
    }
    let misses = responses.iter().filter(|r| !r.cache_hit).count();
    println!(
        "  ({misses} plan compilations across {} responses)",
        responses.len()
    );

    // 4. The metrics snapshot aggregates the same stages into log-bucketed
    //    histograms: p50/p99/p999 wall time per stage, per lane and per
    //    class, alongside the serving counters.
    let metrics = engine.metrics();
    let e2e = &metrics.stages[redfuser::trace::Stage::EndToEnd.index()];
    assert_eq!(e2e.wall.count, responses.len() as u64);
    println!("\n{}", metrics.report());

    // 5. The same snapshot renders as Prometheus text exposition for
    //    scraping — counters as `_total` families, histograms as summaries
    //    with p50/p99/p999 quantiles.
    let exposition = metrics.prometheus();
    assert!(exposition.contains("redfuser_requests_total{outcome=\"completed\"}"));
    assert!(exposition.contains("redfuser_stage_wall_us{stage=\"e2e\",quantile=\"0.99\"}"));
    let preview: Vec<&str> = exposition
        .lines()
        .filter(|l| l.starts_with("redfuser_requests_total"))
        .collect();
    println!(
        "prometheus exposition ({} lines), request counters:",
        exposition.lines().count()
    );
    for line in preview {
        println!("  {line}");
    }

    // 6. At `TraceLevel::Full` the span buffer exports as Chrome trace-event
    //    JSON: one track per worker plus one per sampled request, with
    //    queue/compile/execute spans nested under submit/deliver instants.
    //    Write it to a file and load it at `ui.perfetto.dev`.
    let trace = engine.chrome_trace();
    let stats = redfuser::trace::validate_chrome_trace(&trace).expect("the trace is well-formed");
    println!(
        "chrome trace: {} events ({} spans, {} instants) across {} request tracks",
        stats.events, stats.spans, stats.instants, stats.request_tracks
    );
    assert!(stats.request_tracks >= responses.len());
}
