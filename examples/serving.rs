//! Serving runtime walkthrough: spin up an [`Engine`] with a validated
//! config, submit a mixed stream of prioritised requests (plus a whole
//! operator graph) through the unified [`Submission`] front door, watch
//! admission control shed under a flood, and read the metrics report.
//!
//! Run with `cargo run --example serving`.

use std::sync::Arc;
use std::thread;

use redfuser::codegen::Workload;
use redfuser::gpusim::GpuArch;
use redfuser::graph::builders;
use redfuser::runtime::{
    Engine, Priority, Request, RequestInput, RuntimeConfig, RuntimeError, Submission,
};
use redfuser::workloads::{mha_tiny, moe_tiny, random_matrix};

pub fn main() {
    // 1. One engine per target architecture, configured through the
    //    validating builder (an impossible config is a typed error here, not
    //    a panic inside the engine). The worker pool compiles each distinct
    //    (workload, arch) pair once — the plan cache serves every later
    //    request of the same shape — and serves the open request stream in
    //    iterations: requests submitted while a batch is mid-flight join the
    //    next iteration instead of waiting for a drain.
    let config = RuntimeConfig::builder()
        .workers(4)
        .max_batch(8)
        .cache_capacity(32)
        .max_in_flight(64)
        .lane_weights(4, 2, 1)
        .build()
        .expect("the configuration is valid");
    let engine = Arc::new(Engine::with_config(GpuArch::h800(), config));

    // 2. Four client threads submit a mixed softmax / attention / MoE stream.
    //    A bare `Request` converts into a normal-priority submission; the
    //    explicit `Submission` form picks a lane — the deficit-weighted
    //    scheduler prefers high-priority work without starving low.
    let clients: Vec<_> = (0..4u64)
        .map(|client| {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                let mha = mha_tiny();
                let moe = moe_tiny();
                let seed = client * 1000;
                let mut tickets = Vec::new();
                for round in 0..4 {
                    let s = seed + round * 10;
                    // Interactive traffic rides the high lane…
                    tickets.push(
                        engine
                            .submit(
                                Submission::workload(Request::softmax(random_matrix(
                                    4, 128, s, -2.0, 2.0,
                                )))
                                .with_priority(Priority::High),
                            )
                            .expect("valid request"),
                    );
                    // …a bare Request submits at normal priority…
                    tickets.push(
                        engine
                            .submit(
                                Request::new(
                                    Workload::Mha(mha.clone()),
                                    RequestInput::Attention {
                                        q: random_matrix(mha.q, mha.hd, s + 1, -1.0, 1.0),
                                        k: random_matrix(mha.kv, mha.hd, s + 2, -1.0, 1.0),
                                        v: random_matrix(mha.kv, mha.hd, s + 3, -1.0, 1.0),
                                    },
                                )
                                .expect("valid workload/input pairing"),
                            )
                            .expect("valid request"),
                    );
                    // …and batch traffic tolerates the low lane.
                    tickets.push(
                        engine
                            .submit(
                                Submission::workload(
                                    Request::new(
                                        Workload::Moe(moe.clone()),
                                        RequestInput::Routing {
                                            x: random_matrix(8, moe.hd, s + 4, -1.0, 1.0),
                                            w: random_matrix(moe.hd, moe.en, s + 5, -1.0, 1.0),
                                        },
                                    )
                                    .expect("valid workload/input pairing"),
                                )
                                .with_priority(Priority::Low),
                            )
                            .expect("valid request"),
                    );
                }
                // Each ticket resolves to the request's numeric output plus
                // its simulated latency, the engine iteration it rode in and
                // its cache provenance.
                tickets
                    .into_iter()
                    .map(|t| t.wait().expect("request completes"))
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    let mut served = 0usize;
    for client in clients {
        for result in client.join().expect("client thread succeeds") {
            served += 1;
            assert!(result.simulated_us > 0.0);
            assert!(result.iteration >= 1);
        }
    }

    // 3. Whole operator graphs flow through the same front door: the engine
    //    partitions the graph into fused regions plus glue ops and serves the
    //    region plans from the same cache the request path uses.
    let graph = Arc::new(builders::moe_block(4, 8, 4));
    let bindings: Vec<(String, _)> = builders::moe_block_inputs(4, 8, 4, 7)
        .into_iter()
        .map(|(name, matrix)| (name.to_string(), matrix))
        .collect();
    let response = engine
        .submit(Submission::graph(graph, bindings))
        .expect("graph accepted")
        .wait()
        .expect("graph served");
    let stats = response.graph.expect("graph submissions carry stats");
    println!(
        "graph served: {} fused region(s) covering {} op(s), {} glue op(s)",
        stats.fused_regions, stats.fused_ops, stats.glue_ops
    );
    engine.run_until_drained();

    // 4. Backpressure: flood a deliberately tiny engine past its in-flight
    //    budget. Excess submissions are shed gracefully with a typed error
    //    carrying a retry hint — the engine never queues without bound.
    let tiny = Engine::with_config(
        GpuArch::h800(),
        RuntimeConfig::builder()
            .workers(1)
            .max_batch(2)
            .max_in_flight(4)
            .build()
            .expect("valid config"),
    );
    let mut sheds = 0usize;
    let mut flood = Vec::new();
    for seed in 0..128 {
        match tiny.submit(Request::softmax(random_matrix(8, 512, seed, -1.0, 1.0))) {
            Ok(ticket) => flood.push(ticket),
            Err(RuntimeError::Overloaded { retry_hint, .. }) => {
                if sheds == 0 {
                    println!(
                        "shed with retry hint ~{:.1} ms",
                        retry_hint.as_secs_f64() * 1e3
                    );
                }
                sheds += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    tiny.run_until_drained();
    for ticket in flood {
        ticket.wait().expect("admitted requests complete");
    }
    println!(
        "flood of 128: {} admitted, {sheds} shed by admission control",
        128 - sheds
    );
    assert!(sheds > 0, "a 4-slot budget must shed under a 128-burst");

    // 5. Three distinct shapes were submitted 48 times: the compiler pipeline
    //    ran exactly three times (plus one graph region), everything else was
    //    cache + continuous batching.
    let stats = engine.cache_stats();
    println!(
        "served {served} requests over {} compiled plans",
        stats.entries
    );

    // 6. The metrics snapshot summarises the run: throughput, latency
    //    percentiles, per-lane and per-class breakdowns, shed counts.
    println!("{}", engine.metrics().report());
}
