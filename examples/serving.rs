//! Serving runtime walkthrough: spin up an [`Engine`], submit a mixed stream
//! of requests from several client threads, and read the metrics report.
//!
//! Run with `cargo run --example serving`.

use std::sync::Arc;
use std::thread;

use redfuser::codegen::Workload;
use redfuser::gpusim::GpuArch;
use redfuser::runtime::{Engine, Request, RequestInput, RuntimeConfig};
use redfuser::workloads::{mha_tiny, moe_tiny, random_matrix};

pub fn main() {
    // 1. One engine per target architecture. The worker pool compiles each
    //    distinct (workload, arch) pair once — the plan cache serves every
    //    later request of the same shape — and groups shape-compatible
    //    requests into batched launches.
    let engine = Arc::new(Engine::with_config(
        GpuArch::h800(),
        RuntimeConfig {
            workers: 4,
            max_batch: 8,
            cache_capacity: 32,
        },
    ));

    // 2. Four client threads submit a mixed softmax / attention / MoE stream.
    let clients: Vec<_> = (0..4u64)
        .map(|client| {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                let mha = mha_tiny();
                let moe = moe_tiny();
                let seed = client * 1000;
                let mut tickets = Vec::new();
                for round in 0..4 {
                    let s = seed + round * 10;
                    tickets.push(
                        engine
                            .submit(Request::softmax(random_matrix(4, 128, s, -2.0, 2.0)))
                            .expect("valid request"),
                    );
                    tickets.push(
                        engine
                            .submit(
                                Request::new(
                                    Workload::Mha(mha.clone()),
                                    RequestInput::Attention {
                                        q: random_matrix(mha.q, mha.hd, s + 1, -1.0, 1.0),
                                        k: random_matrix(mha.kv, mha.hd, s + 2, -1.0, 1.0),
                                        v: random_matrix(mha.kv, mha.hd, s + 3, -1.0, 1.0),
                                    },
                                )
                                .expect("valid workload/input pairing"),
                            )
                            .expect("valid request"),
                    );
                    tickets.push(
                        engine
                            .submit(
                                Request::new(
                                    Workload::Moe(moe.clone()),
                                    RequestInput::Routing {
                                        x: random_matrix(8, moe.hd, s + 4, -1.0, 1.0),
                                        w: random_matrix(moe.hd, moe.en, s + 5, -1.0, 1.0),
                                    },
                                )
                                .expect("valid workload/input pairing"),
                            )
                            .expect("valid request"),
                    );
                }
                // Each ticket resolves to the request's numeric output plus
                // its simulated batch latency and cache provenance.
                tickets
                    .into_iter()
                    .map(|t| t.wait().expect("request completes"))
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    let mut served = 0usize;
    for client in clients {
        for result in client.join().expect("client thread succeeds") {
            served += 1;
            assert!(result.simulated_us > 0.0);
        }
    }
    engine.run_until_drained();

    // 3. Three distinct shapes were submitted 48 times: the compiler pipeline
    //    ran exactly three times, everything else was cache + batching.
    let stats = engine.cache_stats();
    println!(
        "served {served} requests over {} compiled plans",
        stats.entries
    );
    assert_eq!(stats.misses, 3);

    // 4. The metrics snapshot summarises the run.
    println!("{}", engine.metrics().report());
}
