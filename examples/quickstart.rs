//! Quickstart: define a cascaded reduction, run the ACRF analysis, inspect the
//! fused and incremental forms, and evaluate them numerically.
//!
//! Run with `cargo run --example quickstart`.

use redfuser::fusion::{
    acrf::analyze_cascade, patterns, CascadeInput, FusedTreeEvaluator, IncrementalEvaluator,
    NaiveCascadeEvaluator, TreeShape,
};
use redfuser::workloads::random_vec;

pub fn main() {
    // 1. A cascaded reduction: safe softmax (max reduction, then sum of
    //    shifted exponentials that depends on the max).
    let cascade = patterns::safe_softmax();
    println!("{cascade}");

    // 2. The ACRF analysis decides fusibility and extracts G/H per reduction.
    let plan = analyze_cascade(&cascade).expect("safe softmax is fusable");
    println!("{}", plan.report());

    // 3. Evaluate the cascade three ways on the same input: the unfused
    //    chain of reduction trees, the fused single pass (incremental form),
    //    and the fused reduction tree with a GPU-style level hierarchy.
    let input = CascadeInput::single("x", random_vec(4096, 7, -3.0, 3.0));
    let naive = NaiveCascadeEvaluator::new().evaluate(&cascade, &input);
    let streaming = IncrementalEvaluator::new().evaluate(&plan, &input);
    let shape = TreeShape::gpu_hierarchy(4096, 256, 8, 4);
    let tree = FusedTreeEvaluator::new().evaluate(&plan, &input, &shape);

    println!("reduction tree shape: {shape}");
    println!(
        "{:<12}{:>20}{:>20}{:>20}",
        "result", "unfused", "fused streaming", "fused tree"
    );
    for (i, name) in cascade.result_names().iter().enumerate() {
        println!(
            "{:<12}{:>20.12}{:>20.12}{:>20.12}",
            name, naive[i], streaming[i], tree[i]
        );
    }

    // 4. A non-fusable cascade is rejected with a precise reason.
    let rejected = analyze_cascade(&patterns::non_decomposable_variance()).unwrap_err();
    println!("\ntwo-pass variance: {rejected}");
}
