//! Fusing user-defined (non-ML) cascaded reductions: variance and the moment
//! of inertia about the center of mass (Appendix A.6), plus a custom cascade
//! defined from scratch with the public API.
//!
//! Run with `cargo run --example custom_reduction`.

use redfuser::algebra::ReduceOp;
use redfuser::expr::Expr;
use redfuser::fusion::{
    acrf::analyze_cascade, CascadeInput, CascadeSpec, IncrementalEvaluator, NaiveCascadeEvaluator,
    ReductionSpec,
};
use redfuser::kernels::nonml::{inertia_fused, inertia_naive, variance_fused, variance_naive};
use redfuser::workloads::{random_vec, Matrix};

pub fn main() {
    // A custom cascade built from scratch: a scaled-normalisation pattern
    // s = sum x, q = sum x / s (every later term normalised by the total).
    let x = Expr::var("x");
    let cascade = CascadeSpec::new(
        "scaled_sum",
        vec!["x".to_string()],
        vec![
            ReductionSpec::new("s", ReduceOp::Sum, x.clone()),
            ReductionSpec::new("q", ReduceOp::Sum, x / Expr::var("s")),
        ],
    )
    .expect("valid cascade");
    let plan = analyze_cascade(&cascade).expect("scaled sum is fusable");
    println!("{}", plan.report());

    let input = CascadeInput::single("x", random_vec(1024, 11, 0.5, 2.0));
    let naive = NaiveCascadeEvaluator::new().evaluate(&cascade, &input);
    let fused = IncrementalEvaluator::new().evaluate(&plan, &input);
    println!("s: unfused {:.9} vs fused {:.9}", naive[0], fused[0]);
    println!("q: unfused {:.9} vs fused {:.9}", naive[1], fused[1]);

    // The paper's non-ML workloads, evaluated with the dedicated kernels.
    let data = random_vec(32768, 13, -3.0, 3.0);
    println!(
        "\nvariance:   two-pass {:.6} vs fused single-pass {:.6}",
        variance_naive(&data),
        variance_fused(&data)
    );
    let masses = random_vec(8192, 17, 0.1, 2.0);
    let positions = Matrix::random(8192, 3, 18, -5.0, 5.0);
    println!(
        "inertia:    three-pass {:.3} vs fused single-pass {:.3}",
        inertia_naive(&masses, &positions),
        inertia_fused(&masses, &positions)
    );
}
