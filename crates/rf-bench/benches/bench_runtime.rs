//! Criterion benchmark: the serving runtime's plan-cache hit path vs
//! re-compiling per request, plus end-to-end engine throughput.
//!
//! Because the vendored criterion shim does not report statistics, the
//! benchmark also measures both paths with `std::time::Instant` and asserts
//! the ≥10× amortization claim the plan cache exists for.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rf_codegen::{compile_workload, Workload};
use rf_gpusim::GpuArch;
use rf_runtime::{Engine, PlanCache, Request, RuntimeConfig};
use rf_workloads::random_matrix;

fn bench_runtime(c: &mut Criterion) {
    let arch = GpuArch::a10();
    let workload = Workload::Softmax {
        rows: 256,
        len: 1024,
    };
    let cache = PlanCache::new(arch.clone(), 8);
    cache.get_or_compile(&workload); // warm the cache

    let mut group = c.benchmark_group("runtime");
    group.bench_function("compile_per_request", |b| {
        b.iter(|| compile_workload(&workload, &arch))
    });
    group.bench_function("plan_cache_hit", |b| {
        b.iter(|| cache.get_or_compile(&workload))
    });
    group.bench_function("engine_serve_32_softmax", |b| {
        b.iter(|| {
            let engine = Engine::with_config(
                arch.clone(),
                RuntimeConfig::builder()
                    .workers(2)
                    .max_batch(8)
                    .cache_capacity(8)
                    .build()
                    .expect("valid config"),
            );
            let tickets: Vec<_> = (0..32)
                .map(|seed| {
                    engine
                        .submit(Request::softmax(random_matrix(2, 64, seed, -1.0, 1.0)))
                        .unwrap()
                })
                .collect();
            engine.run_until_drained();
            tickets
                .into_iter()
                .map(|t| t.wait().unwrap().simulated_us)
                .sum::<f64>()
        })
    });
    group.finish();

    // Explicit measurement of the amortization factor.
    const COMPILES: u32 = 20;
    const HITS: u32 = 20_000;
    let start = Instant::now();
    for _ in 0..COMPILES {
        black_box(compile_workload(&workload, &arch));
    }
    let compile_ns = start.elapsed().as_nanos() as f64 / f64::from(COMPILES);
    let start = Instant::now();
    for _ in 0..HITS {
        black_box(cache.get_or_compile(&workload));
    }
    let hit_ns = start.elapsed().as_nanos() as f64 / f64::from(HITS);
    let speedup = compile_ns / hit_ns;
    println!(
        "plan cache: compile {:.1} us/request, warm hit {:.3} us/request, {speedup:.0}x",
        compile_ns / 1e3,
        hit_ns / 1e3
    );
    assert!(
        speedup >= 10.0,
        "plan-cache hit path must be >=10x faster than compiling per request, got {speedup:.1}x"
    );
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
