//! Criterion benchmark: unfused vs fused MoE routing (scaled-down DeepSeek-V2-Lite).
use criterion::{criterion_group, criterion_main, Criterion};
use rf_kernels::moe::{route_fused, route_naive};
use rf_workloads::Matrix;

fn bench_moe(c: &mut Criterion) {
    let (tokens, hidden, experts, topk) = (128, 64, 64, 6);
    let x = Matrix::random(tokens, hidden, 7, -1.0, 1.0);
    let w = Matrix::random(hidden, experts, 8, -1.0, 1.0);
    let mut group = c.benchmark_group("moe_routing");
    group.bench_function("unfused", |b| b.iter(|| route_naive(&x, &w, topk)));
    group.bench_function("fused", |b| b.iter(|| route_fused(&x, &w, topk)));
    group.finish();
}

criterion_group!(benches, bench_moe);
criterion_main!(benches);
