//! Criterion benchmark: cost of the ACRF analysis and of the generic fused
//! evaluators themselves (the compiler-side overhead of RedFuser).
use criterion::{criterion_group, criterion_main, Criterion};
use rf_fusion::{
    analyze_cascade, patterns, CascadeInput, IncrementalEvaluator, NaiveCascadeEvaluator,
};
use rf_workloads::random_vec;

fn bench_fusion_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion_engine");
    group.bench_function("acrf_attention_row", |b| {
        b.iter(|| analyze_cascade(&patterns::attention_row()).unwrap())
    });
    group.bench_function("acrf_quant_gemm", |b| {
        b.iter(|| analyze_cascade(&patterns::fp8_quant_gemm()).unwrap())
    });

    let spec = patterns::attention_row();
    let plan = analyze_cascade(&spec).unwrap();
    let input = CascadeInput::new([
        ("p".to_string(), random_vec(2048, 1, -2.0, 2.0)),
        ("v".to_string(), random_vec(2048, 2, -2.0, 2.0)),
    ]);
    group.bench_function("naive_cascade_eval_2048", |b| {
        b.iter(|| NaiveCascadeEvaluator::new().evaluate(&spec, &input))
    });
    group.bench_function("incremental_eval_2048", |b| {
        b.iter(|| IncrementalEvaluator::new().evaluate(&plan, &input))
    });
    group.finish();
}

criterion_group!(benches, bench_fusion_engine);
criterion_main!(benches);
