//! Criterion benchmark: throughput of the analytical GPU model and of the
//! auto-tuner (the per-workload compilation cost).
use criterion::{criterion_group, criterion_main, Criterion};
use rf_codegen::{compile_workload, Workload};
use rf_gpusim::{estimate_latency, GpuArch, KernelProfile};

fn bench_gpusim(c: &mut Criterion) {
    let arch = GpuArch::h800();
    let profile = KernelProfile {
        flops: 1 << 30,
        hbm_bytes: 1 << 26,
        blocks: 4096,
        ..Default::default()
    };
    let mut group = c.benchmark_group("gpusim");
    group.bench_function("estimate_latency", |b| {
        b.iter(|| estimate_latency(&arch, &profile))
    });
    let config = rf_workloads::mha_configs()[1].clone();
    group.bench_function("compile_and_autotune_mha", |b| {
        b.iter(|| compile_workload(&Workload::Mha(config.clone()), &arch))
    });
    group.finish();
}

criterion_group!(benches, bench_gpusim);
criterion_main!(benches);
