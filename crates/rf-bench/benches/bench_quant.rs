//! Criterion benchmark: unfused vs fused FP8 per-token quantization + GEMM.
use criterion::{criterion_group, criterion_main, Criterion};
use rf_kernels::quant::{quant_gemm_fused, quant_gemm_naive};
use rf_workloads::Matrix;

fn bench_quant(c: &mut Criterion) {
    let (m, n, k) = (64, 96, 128);
    let a = Matrix::random(m, k, 11, -2.0, 2.0);
    let w = Matrix::random(k, n, 12, -1.0, 1.0);
    let mut group = c.benchmark_group("quant_gemm");
    group.bench_function("unfused", |b| b.iter(|| quant_gemm_naive(&a, &w)));
    group.bench_function("fused", |b| b.iter(|| quant_gemm_fused(&a, &w, 32)));
    group.finish();
}

criterion_group!(benches, bench_quant);
criterion_main!(benches);
