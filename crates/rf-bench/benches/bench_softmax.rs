//! Criterion benchmark: fused (online) vs unfused (three-pass) safe softmax.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rf_kernels::softmax::{softmax_naive, softmax_online};
use rf_workloads::random_vec;

fn bench_softmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("softmax");
    for len in [1024usize, 8192] {
        let x = random_vec(len, 42, -4.0, 4.0);
        group.bench_with_input(BenchmarkId::new("unfused", len), &x, |b, x| {
            b.iter(|| softmax_naive(x))
        });
        group.bench_with_input(BenchmarkId::new("fused_online", len), &x, |b, x| {
            b.iter(|| softmax_online(x))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_softmax);
criterion_main!(benches);
