//! Criterion benchmark: naive vs FlashAttention-style vs FlashDecoding-style
//! attention kernels (scaled-down BERT-base head).
use criterion::{criterion_group, criterion_main, Criterion};
use rf_kernels::attention::{attention_naive, flash_attention, flash_decoding};
use rf_workloads::Matrix;

fn bench_attention(c: &mut Criterion) {
    let (q_len, kv_len, d) = (64, 256, 32);
    let q = Matrix::random(q_len, d, 1, -1.0, 1.0);
    let k = Matrix::random(kv_len, d, 2, -1.0, 1.0);
    let v = Matrix::random(kv_len, d, 3, -1.0, 1.0);
    let scale = 1.0 / (d as f64).sqrt();
    let mut group = c.benchmark_group("attention");
    group.bench_function("naive", |b| b.iter(|| attention_naive(&q, &k, &v, scale)));
    group.bench_function("flash_attention", |b| {
        b.iter(|| flash_attention(&q, &k, &v, scale, 64))
    });
    group.bench_function("flash_decoding_4_splits", |b| {
        b.iter(|| flash_decoding(&q, &k, &v, scale, 4, 64))
    });
    group.finish();
}

criterion_group!(benches, bench_attention);
criterion_main!(benches);
