//! Criterion benchmark: the staged (guided) auto-tuner search vs the
//! exhaustive oracle, over every Table 2/3 workload configuration.
//!
//! Because the vendored criterion shim does not report statistics, the
//! benchmark also measures both search modes with `std::time::Instant` and
//! asserts the claims the staged search exists for: on every tuned workload
//! it must run ≥5× fewer cost-model evaluations than the oracle, finish in
//! less total wall-clock time, and choose a configuration whose estimated
//! latency is within 5% of (in practice: identical to) the oracle's.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rf_codegen::{compile_workload_with, CompileOptions, SearchMode, Workload};
use rf_gpusim::GpuArch;
use rf_workloads::{
    inertia_configs, mha_configs, mla_configs, moe_configs, quant_configs, variance_configs,
};

fn table23_workloads() -> Vec<Workload> {
    let mut out: Vec<Workload> = Vec::new();
    out.extend(mha_configs().into_iter().map(Workload::Mha));
    out.extend(mla_configs().into_iter().map(Workload::Mla));
    out.extend(moe_configs().into_iter().map(Workload::Moe));
    out.extend(quant_configs().into_iter().map(Workload::Quant));
    out.extend(variance_configs().into_iter().map(Workload::Variance));
    out.extend(inertia_configs().into_iter().map(Workload::Inertia));
    out
}

fn bench_tuner(c: &mut Criterion) {
    let arch = GpuArch::h800();
    let exhaustive = CompileOptions {
        mode: SearchMode::Exhaustive,
        ..CompileOptions::default()
    };
    let guided = CompileOptions::default();

    let mha = Workload::Mha(mha_configs()[1].clone());
    let mut group = c.benchmark_group("tuner");
    group.bench_function("exhaustive_mha", |b| {
        b.iter(|| compile_workload_with(black_box(&mha), &arch, &exhaustive))
    });
    group.bench_function("guided_mha", |b| {
        b.iter(|| compile_workload_with(black_box(&mha), &arch, &guided))
    });
    group.finish();

    // Explicit measurement over every Table 2/3 configuration.
    let mut oracle_evals = 0usize;
    let mut guided_evals = 0usize;
    let mut identical_points = 0usize;
    let mut tuned = 0usize;
    let mut oracle_wall = Duration::ZERO;
    let mut guided_wall = Duration::ZERO;
    let workloads = table23_workloads();
    for workload in &workloads {
        let start = Instant::now();
        let oracle = compile_workload_with(workload, &arch, &exhaustive);
        oracle_wall += start.elapsed();
        let start = Instant::now();
        let fast = compile_workload_with(workload, &arch, &guided);
        guided_wall += start.elapsed();

        assert!(
            fast.latency_us <= oracle.latency_us * 1.05,
            "{}: guided choice {:.3} us is >5% slower than the oracle's {:.3} us",
            workload.name(),
            fast.latency_us,
            oracle.latency_us
        );
        if fast.tuning.point == oracle.tuning.point {
            identical_points += 1;
        }
        // The GEMM-accounting workloads (MoE/Quant/Variance/Inertia) have a
        // single-point space; the ≥5× claim applies to the tuned ones. The
        // per-workload baseline is the full cartesian space — exactly what
        // the tuner evaluated before the staged search (dedup + prefilter +
        // guided descent all count toward the reduction).
        if oracle.tuning.evaluated > 1 {
            tuned += 1;
            assert!(
                fast.tuning.evaluated * 5 <= oracle.tuning.space_size,
                "{}: guided evaluated {} of a {}-point space (<5x reduction)",
                workload.name(),
                fast.tuning.evaluated,
                oracle.tuning.space_size
            );
        }
        oracle_evals += oracle.tuning.evaluated;
        guided_evals += fast.tuning.evaluated;
    }
    println!(
        "tuner: {} workloads ({} tuned), {} -> {} cost-model evaluations ({:.1}x), \
         wall {:.1} ms -> {:.1} ms, {} identical points",
        workloads.len(),
        tuned,
        oracle_evals,
        guided_evals,
        oracle_evals as f64 / guided_evals as f64,
        oracle_wall.as_secs_f64() * 1e3,
        guided_wall.as_secs_f64() * 1e3,
        identical_points,
    );
    assert!(tuned >= 18, "all 9+9 attention configs are tuned");
    assert_eq!(
        identical_points,
        workloads.len(),
        "guided search must choose the oracle's exact configuration on every workload"
    );
    assert!(
        guided_evals * 5 <= oracle_evals,
        "staged search must evaluate >=5x fewer candidates overall \
         ({guided_evals} vs {oracle_evals})"
    );
    assert!(
        guided_wall < oracle_wall,
        "staged search must be faster in wall-clock ({guided_wall:?} vs {oracle_wall:?})"
    );
}

criterion_group!(benches, bench_tuner);
criterion_main!(benches);
