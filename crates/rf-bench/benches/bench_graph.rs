//! Criterion benchmark: graph-frontend serving — fused graph plan vs the
//! fully-unfused whole-graph baseline on the analytical GPU model.
//!
//! Because the vendored criterion shim does not report statistics, the
//! benchmark also costs both executions explicitly and asserts the fused
//! plan's simulated latency beats the unfused baseline on every constructor
//! graph — the speedup the graph frontend exists for.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rf_codegen::compile_workload;
use rf_gpusim::{estimate_latency, sequence_latency, GpuArch};
use rf_graph::partition::{GraphPlan, Step};
use rf_graph::{builders, glue_profile, partition, unfused_profiles, OpGraph};

/// Simulated latency of executing a fused plan: each region's tuned compiled
/// kernel plus one unfused launch per glue op.
fn fused_plan_latency_us(graph: &OpGraph, plan: &GraphPlan, arch: &GpuArch) -> f64 {
    plan.steps
        .iter()
        .map(|step| match step {
            Step::Region(region) => compile_workload(&region.workload, arch).latency_us,
            Step::Glue(id) => estimate_latency(arch, &glue_profile(graph, *id)).total_us,
        })
        .sum()
}

fn bench_graph(c: &mut Criterion) {
    let arch = GpuArch::a10();
    let graphs: Vec<(&str, OpGraph)> = vec![
        (
            "transformer_layer",
            builders::transformer_decoder_layer(64, 64, 256),
        ),
        ("moe_block", builders::moe_block(64, 64, 8)),
        ("quantized_mlp", builders::quantized_mlp(64, 256, 128, 64)),
    ];

    let mut group = c.benchmark_group("graph");
    for (name, graph) in &graphs {
        let label = format!("partition_{name}");
        group.bench_function(&label, |b| b.iter(|| partition(black_box(graph))));
    }
    let transformer = &graphs[0].1;
    let plan = partition(transformer);
    let inputs = builders::transformer_decoder_layer_inputs(64, 64, 256, 1);
    let cache = rf_runtime::PlanCache::new(arch.clone(), 8);
    group.bench_function("serve_transformer_layer", |b| {
        b.iter(|| {
            rf_runtime::execute_graph_plan(&cache, &arch, None, transformer, &plan, &inputs)
                .expect("the graph serves")
                .simulated_us
        })
    });
    group.finish();

    // Explicit measurement of the fusion speedup on the analytical model.
    println!(
        "graph serving, fused plan vs unfused baseline ({}):",
        arch.name
    );
    for (name, graph) in &graphs {
        let plan = partition(graph);
        assert!(plan.fused_regions() >= 1, "{name}: nothing fused");
        let fused_us = fused_plan_latency_us(graph, &plan, &arch);
        let unfused_us = sequence_latency(&arch, &unfused_profiles(graph));
        println!(
            "  {name:<18} {} | fused {fused_us:9.2} us | unfused {unfused_us:9.2} us | {:.2}x",
            plan.summary(),
            unfused_us / fused_us
        );
        assert!(
            fused_us < unfused_us,
            "{name}: fused plan ({fused_us} us) must beat the unfused baseline ({unfused_us} us)"
        );
    }
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
