//! Criterion benchmark: the tile-VM execute path against its profiled twin.
//! `execute_profiled` wraps the unmodified interpreter and derives op counts
//! analytically, so its overhead must stay a small constant per call — this
//! bench is the guard for that property (and for the serving engine's claim
//! that `TraceConfig::profile = false` costs nothing, since that path never
//! takes the profiled entry point at all).
use criterion::{criterion_group, criterion_main, Criterion};
use rf_codegen::{compile_workload, Workload};
use rf_gpusim::GpuArch;
use rf_tile::exec::{execute, execute_profiled, ExecInput};
use rf_workloads::random_matrix;

fn bench_profiler(c: &mut Criterion) {
    let workload = Workload::Softmax {
        rows: 64,
        len: 1024,
    };
    let kernel = compile_workload(&workload, &GpuArch::a10());
    let program = kernel.program.expect("compiled kernels ship a program");
    let rows = random_matrix(64, 1024, 11, -2.0, 2.0);
    let input = ExecInput::Rows(&rows);
    let mut group = c.benchmark_group("tile_vm_profiler");
    group.bench_function("execute_plain", |b| {
        b.iter(|| execute(&program, &input).unwrap())
    });
    group.bench_function("execute_profiled", |b| {
        b.iter(|| execute_profiled(&program, &input).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_profiler);
criterion_main!(benches);
