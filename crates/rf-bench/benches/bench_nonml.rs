//! Criterion benchmark: unfused vs fused variance and moment of inertia.
use criterion::{criterion_group, criterion_main, Criterion};
use rf_kernels::nonml::{
    inertia_fused, inertia_naive, variance_fused, variance_naive, variance_welford,
};
use rf_workloads::{random_vec, Matrix};

fn bench_nonml(c: &mut Criterion) {
    let x = random_vec(16384, 21, -3.0, 3.0);
    let masses = random_vec(4096, 22, 0.1, 2.0);
    let positions = Matrix::random(4096, 3, 23, -5.0, 5.0);
    let mut group = c.benchmark_group("nonml");
    group.bench_function("variance_unfused", |b| b.iter(|| variance_naive(&x)));
    group.bench_function("variance_fused", |b| b.iter(|| variance_fused(&x)));
    group.bench_function("variance_welford", |b| b.iter(|| variance_welford(&x)));
    group.bench_function("inertia_unfused", |b| {
        b.iter(|| inertia_naive(&masses, &positions))
    });
    group.bench_function("inertia_fused", |b| {
        b.iter(|| inertia_fused(&masses, &positions))
    });
    group.finish();
}

criterion_group!(benches, bench_nonml);
criterion_main!(benches);
