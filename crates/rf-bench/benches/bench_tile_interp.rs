//! Criterion benchmark: scalar-IR interpretation of the unfused vs fused
//! attention-row kernels (the rf-tir reference pipeline).
use criterion::{criterion_group, criterion_main, Criterion};
use rf_tir::{builder, detect_cascade, generate_fused, Interpreter};
use std::collections::HashMap;

fn bench_tile_interp(c: &mut Criterion) {
    let kv = 512;
    let unfused = builder::unfused_attention_row(kv);
    let detected = detect_cascade(&unfused).unwrap();
    let plan = rf_fusion::analyze_cascade(&detected.cascade).unwrap();
    let fused = generate_fused(&plan, &detected);
    let inputs = HashMap::from([
        ("p".to_string(), rf_workloads::random_vec(kv, 5, -2.0, 2.0)),
        ("v".to_string(), rf_workloads::random_vec(kv, 6, -2.0, 2.0)),
    ]);
    let interp = Interpreter::new();
    let mut group = c.benchmark_group("tir_interpreter");
    group.bench_function("unfused_attention_row", |b| {
        b.iter(|| interp.run(&unfused, &inputs).unwrap())
    });
    group.bench_function("fused_attention_row", |b| {
        b.iter(|| interp.run(&fused, &inputs).unwrap())
    });
    group.bench_function("detect_and_fuse", |b| {
        b.iter(|| {
            let d = detect_cascade(&unfused).unwrap();
            let p = rf_fusion::analyze_cascade(&d.cascade).unwrap();
            generate_fused(&p, &d)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tile_interp);
criterion_main!(benches);
