//! Shared helpers for the per-figure benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper:
//!
//! | binary | paper artefact |
//! |---|---|
//! | `table1_operators` | Table 1 (reduction operators and their `⊗`) |
//! | `fig5_subgraphs` | Figure 5a–5d (MHA / MLA / MoE routing / Quant+GEMM) |
//! | `fig6a_fusion_levels` | Figure 6a (fusion level comparison) |
//! | `fig6b_incremental` | Figure 6b (incremental vs non-incremental) |
//! | `fig7_access_counts` | Figure 7 (dependency-load accounting) |
//! | `fig8_nonml` | Figure 8 (variance and moment of inertia, 4 platforms) |
//! | `fig9_multiplatform` | Figure 9 (ML workloads on A100 / H800 / MI308X) |
//! | `fig11_13_ir_dump` | Figures 11–13 (unfused TIR, fused scalar and tile IR) |
//!
//! The Criterion benches in `benches/` measure the CPU numeric kernels
//! (fused vs unfused) and the analysis/lowering passes themselves.

/// One row of a normalized-performance table: a workload configuration and the
/// speedup of each system relative to the first (baseline) system.
#[derive(Debug, Clone)]
pub struct NormalizedRow {
    /// Configuration name (e.g. `"H3"`).
    pub config: String,
    /// `(system name, speedup vs baseline)` pairs, baseline first.
    pub speedups: Vec<(String, f64)>,
}

/// Prints a normalized-performance table in a fixed-width layout and returns
/// the geometric-mean speedup of every system.
pub fn print_normalized_table(title: &str, rows: &[NormalizedRow]) -> Vec<(String, f64)> {
    println!("\n=== {title} ===");
    if rows.is_empty() {
        println!("(no rows)");
        return Vec::new();
    }
    let systems: Vec<String> = rows[0].speedups.iter().map(|(n, _)| n.clone()).collect();
    print!("{:<10}", "config");
    for s in &systems {
        print!("{s:>18}");
    }
    println!();
    let mut logs = vec![0.0f64; systems.len()];
    for row in rows {
        print!("{:<10}", row.config);
        for (i, (_, v)) in row.speedups.iter().enumerate() {
            print!("{v:>18.2}");
            logs[i] += v.ln();
        }
        println!();
    }
    let geo: Vec<(String, f64)> = systems
        .iter()
        .cloned()
        .zip(logs.iter().map(|l| (l / rows.len() as f64).exp()))
        .collect();
    print!("{:<10}", "geomean");
    for (_, g) in &geo {
        print!("{g:>18.2}");
    }
    println!();
    geo
}

/// Formats microseconds with a sensible unit.
pub fn format_us(us: f64) -> String {
    if us.is_infinite() {
        "infeasible".to_string()
    } else if us >= 1000.0 {
        format!("{:.2} ms", us / 1000.0)
    } else {
        format!("{us:.1} us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_rows_is_the_value() {
        let rows = vec![
            NormalizedRow {
                config: "A".into(),
                speedups: vec![("base".into(), 1.0), ("x".into(), 4.0)],
            },
            NormalizedRow {
                config: "B".into(),
                speedups: vec![("base".into(), 1.0), ("x".into(), 1.0)],
            },
        ];
        let geo = print_normalized_table("test", &rows);
        assert_eq!(geo[0].1, 1.0);
        assert!((geo[1].1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn format_us_units() {
        assert_eq!(format_us(10.0), "10.0 us");
        assert_eq!(format_us(2500.0), "2.50 ms");
        assert_eq!(format_us(f64::INFINITY), "infeasible");
    }

    #[test]
    fn empty_table_is_handled() {
        assert!(print_normalized_table("empty", &[]).is_empty());
    }
}
pub mod eval;
pub mod serving;
