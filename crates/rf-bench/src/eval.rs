//! Evaluation driver shared by the Figure 5 / 8 / 9 harness binaries.
//!
//! For each workload configuration the driver estimates the latency of every
//! baseline (via `rf-baselines` + `rf-gpusim`) and of the RedFuser-compiled
//! kernel (via `rf-codegen`), then reports speedups normalized to PyTorch
//! Eager exactly as the paper's figures do.

use rf_baselines::{
    flash_attention2_profile, flash_mla_profile, inertia_op_list, mha_op_list, mla_op_list,
    moe_op_list, quant_op_list, variance_op_list, CompilerBaseline, OpSpec,
};
use rf_codegen::{compile_workload, Workload};
use rf_gpusim::{estimate_latency, sequence_latency, GpuArch, KernelProfile};

use crate::NormalizedRow;

fn baseline_speedups(
    arch: &GpuArch,
    ops: &[OpSpec],
    extra: &[(&str, f64)],
    redfuser_us: f64,
) -> Vec<(String, f64)> {
    let eager = sequence_latency(arch, &CompilerBaseline::PyTorchEager.kernels(ops));
    let mut speedups = vec![("PyTorch Eager".to_string(), 1.0)];
    for baseline in [CompilerBaseline::Dynamo, CompilerBaseline::Tvm] {
        let us = sequence_latency(arch, &baseline.kernels(ops));
        speedups.push((baseline.name().to_string(), eager / us));
    }
    for (name, us) in extra {
        speedups.push((name.to_string(), eager / us));
    }
    speedups.push(("RedFuser".to_string(), eager / redfuser_us));
    speedups
}

fn hand_optimized_us(arch: &GpuArch, profile: KernelProfile) -> f64 {
    estimate_latency(arch, &profile).total_us
}

/// Figure 5a / 9: MHA speedups on `arch`, normalized to PyTorch Eager.
pub fn mha_rows(arch: &GpuArch) -> Vec<NormalizedRow> {
    rf_workloads::mha_configs()
        .into_iter()
        .map(|config| {
            let ops = mha_op_list(&config);
            let fa2 = hand_optimized_us(arch, flash_attention2_profile(&config));
            let fused = compile_workload(&Workload::Mha(config.clone()), arch);
            NormalizedRow {
                config: config.name.to_string(),
                speedups: baseline_speedups(
                    arch,
                    &ops,
                    &[("FlashAttention2", fa2)],
                    fused.latency_us,
                ),
            }
        })
        .collect()
}

/// Figure 5b: MLA speedups on `arch`, normalized to PyTorch Eager.
pub fn mla_rows(arch: &GpuArch) -> Vec<NormalizedRow> {
    rf_workloads::mla_configs()
        .into_iter()
        .map(|config| {
            let ops = mla_op_list(&config);
            let mla = hand_optimized_us(arch, flash_mla_profile(&config));
            let fused = compile_workload(&Workload::Mla(config.clone()), arch);
            NormalizedRow {
                config: config.name.to_string(),
                speedups: baseline_speedups(arch, &ops, &[("FlashMLA", mla)], fused.latency_us),
            }
        })
        .collect()
}

/// Figure 5c / 9: MoE routing speedups on `arch`.
pub fn moe_rows(arch: &GpuArch) -> Vec<NormalizedRow> {
    rf_workloads::moe_configs()
        .into_iter()
        .map(|config| {
            let ops = moe_op_list(&config);
            let fused = compile_workload(&Workload::Moe(config.clone()), arch);
            NormalizedRow {
                config: config.name.to_string(),
                speedups: baseline_speedups(arch, &ops, &[], fused.latency_us),
            }
        })
        .collect()
}

/// Figure 5d / 9: FP8 Quant + GEMM speedups on `arch`.
pub fn quant_rows(arch: &GpuArch) -> Vec<NormalizedRow> {
    rf_workloads::quant_configs()
        .into_iter()
        .map(|config| {
            let ops = quant_op_list(&config);
            let fused = compile_workload(&Workload::Quant(config.clone()), arch);
            NormalizedRow {
                config: config.name.to_string(),
                speedups: baseline_speedups(arch, &ops, &[], fused.latency_us),
            }
        })
        .collect()
}

/// Figure 8 (left column): variance speedups on `arch`.
pub fn variance_rows(arch: &GpuArch) -> Vec<NormalizedRow> {
    rf_workloads::variance_configs()
        .into_iter()
        .map(|config| {
            let ops = variance_op_list(&config);
            let fused = compile_workload(&Workload::Variance(config.clone()), arch);
            NormalizedRow {
                config: config.name.to_string(),
                speedups: baseline_speedups(arch, &ops, &[], fused.latency_us),
            }
        })
        .collect()
}

/// Figure 8 (right column): moment-of-inertia speedups on `arch`.
pub fn inertia_rows(arch: &GpuArch) -> Vec<NormalizedRow> {
    rf_workloads::inertia_configs()
        .into_iter()
        .map(|config| {
            let ops = inertia_op_list(&config);
            let fused = compile_workload(&Workload::Inertia(config.clone()), arch);
            NormalizedRow {
                config: config.name.to_string(),
                speedups: baseline_speedups(arch, &ops, &[], fused.latency_us),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redfuser_beats_compilers_on_every_fig5_workload() {
        let a10 = GpuArch::a10();
        let h800 = GpuArch::h800();
        for rows in [
            mha_rows(&a10),
            mla_rows(&h800),
            moe_rows(&a10),
            quant_rows(&h800),
        ] {
            for row in &rows {
                let by_name = |name: &str| {
                    row.speedups
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, v)| *v)
                        .unwrap()
                };
                let redfuser = by_name("RedFuser");
                assert!(
                    redfuser > by_name("PyTorch Dynamo"),
                    "{}: vs Dynamo",
                    row.config
                );
                assert!(redfuser > by_name("TVM"), "{}: vs TVM", row.config);
                assert!(redfuser >= 1.0, "{}: vs Eager", row.config);
            }
        }
    }

    #[test]
    fn redfuser_is_competitive_with_hand_optimized_kernels() {
        let a10 = GpuArch::a10();
        for row in mha_rows(&a10) {
            let fa2 = row
                .speedups
                .iter()
                .find(|(n, _)| n == "FlashAttention2")
                .unwrap()
                .1;
            let rf = row
                .speedups
                .iter()
                .find(|(n, _)| n == "RedFuser")
                .unwrap()
                .1;
            let ratio = rf / fa2;
            assert!(
                (0.8..=1.5).contains(&ratio),
                "{}: RedFuser/FA2 = {ratio}",
                row.config
            );
        }
    }

    #[test]
    fn nonml_rows_cover_all_configs() {
        let arch = GpuArch::a100();
        assert_eq!(variance_rows(&arch).len(), 8);
        assert_eq!(inertia_rows(&arch).len(), 8);
    }
}
