//! Regenerates Figure 6b: incremental vs non-incremental computation across
//! parallelism levels (BERT-base attention pattern; the x-axis is the KV
//! length processed per CTA, which determines the waves per SM).
use rf_bench::format_us;
use rf_codegen::incremental_sweep;
use rf_gpusim::GpuArch;

fn main() {
    let arch = GpuArch::a10();
    // BERT-base: 12 heads, batch 32, sequence length 512, head dim 64.
    let rows = 32 * 12 * 512;
    let points: Vec<usize> = vec![
        16, 32, 48, 64, 80, 96, 112, 128, 160, 192, 256, 320, 384, 448, 512,
    ];
    let sweep = incremental_sweep(&arch, rows, 512, 64, &points);
    let max_us = sweep
        .iter()
        .flat_map(|p| [Some(p.incremental_us), p.non_incremental_us])
        .flatten()
        .fold(0.0f64, f64::max);
    println!(
        "Figure 6b: incremental vs non-incremental ({}, BERT-base attention)",
        arch.name
    );
    println!(
        "{:>12}{:>14}{:>16}{:>22}{:>18}{:>24}",
        "kv per CTA",
        "waves/SM",
        "incremental",
        "non-incremental",
        "incr (norm)",
        "non-incr (norm)"
    );
    for p in &sweep {
        println!(
            "{:>12}{:>14.2}{:>16}{:>22}{:>18.3}{:>24}",
            p.kv_per_cta,
            p.waves_per_sm,
            format_us(p.incremental_us),
            p.non_incremental_us
                .map(format_us)
                .unwrap_or_else(|| "infeasible".into()),
            max_us / p.incremental_us,
            p.non_incremental_us
                .map(|us| format!("{:.3}", max_us / us))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!("\n(normalized to the slowest observed configuration, as in the paper;");
    println!(" non-incremental mode is only feasible for short per-CTA segments,");
    println!(" and the best configurations are reachable only incrementally.)");
}
