//! Replays a synthetic request trace through the serving runtime and prints
//! the metrics report — the serving analogue of the figure binaries.
//!
//! The trace mixes every workload family with a skewed shape distribution
//! (softmax-heavy, like decode-time serving traffic), submitted from several
//! client threads at once.
//!
//! ```console
//! $ cargo run --release -p rf-bench --bin serve_trace [arch] [requests]
//! ```
//!
//! `arch` is one of `a10 | a100 | h800 | mi308x` (default `h800`), `requests`
//! the total trace length (default 256).

use std::sync::Arc;
use std::thread;

use rf_codegen::Workload;
use rf_gpusim::GpuArch;
use rf_runtime::{Engine, Request, RequestInput, RuntimeConfig};
use rf_workloads::{
    inertia_tiny, mha_tiny, mla_tiny, moe_tiny, quant_tiny, random_matrix, random_vec,
    variance_tiny,
};

/// Builds the `i`-th trace request. The pattern is 10 slots wide and skewed:
/// four softmax of one shape, two of another, then one of each remaining
/// family — repeated shapes are what the plan cache and batcher exploit.
fn trace_request(i: u64) -> Request {
    let seed = i * 31;
    match i % 10 {
        0..=3 => Request::softmax(random_matrix(4, 256, seed, -2.0, 2.0)),
        4 | 5 => Request::softmax(random_matrix(2, 1024, seed, -2.0, 2.0)),
        6 => {
            let c = mha_tiny();
            Request::new(
                Workload::Mha(c.clone()),
                RequestInput::Attention {
                    q: random_matrix(c.q, c.hd, seed, -1.0, 1.0),
                    k: random_matrix(c.kv, c.hd, seed + 1, -1.0, 1.0),
                    v: random_matrix(c.kv, c.hd, seed + 2, -1.0, 1.0),
                },
            )
            .expect("tiny MHA request is valid")
        }
        7 => {
            let c = mla_tiny();
            Request::new(
                Workload::Mla(c.clone()),
                RequestInput::Attention {
                    q: random_matrix(1, c.qk_dim(), seed, -1.0, 1.0),
                    k: random_matrix(c.kv, c.qk_dim(), seed + 1, -1.0, 1.0),
                    v: random_matrix(c.kv, c.hd, seed + 2, -1.0, 1.0),
                },
            )
            .expect("tiny MLA request is valid")
        }
        8 => {
            let c = moe_tiny();
            Request::new(
                Workload::Moe(c.clone()),
                RequestInput::Routing {
                    x: random_matrix(16, c.hd, seed, -1.0, 1.0),
                    w: random_matrix(c.hd, c.en, seed + 1, -1.0, 1.0),
                },
            )
            .expect("tiny MoE request is valid")
        }
        _ => match i % 3 {
            0 => {
                let c = quant_tiny();
                Request::new(
                    Workload::Quant(c.clone()),
                    RequestInput::QuantGemm {
                        a: random_matrix(8, c.k, seed, -1.0, 1.0),
                        w: random_matrix(c.k, c.n, seed + 1, -1.0, 1.0),
                    },
                )
                .expect("tiny quant request is valid")
            }
            1 => {
                let c = variance_tiny();
                Request::new(
                    Workload::Variance(c.clone()),
                    RequestInput::Rows(random_matrix(4, c.l, seed, -2.0, 2.0)),
                )
                .expect("tiny variance request is valid")
            }
            _ => {
                let c = inertia_tiny();
                Request::new(
                    Workload::Inertia(c.clone()),
                    RequestInput::Inertia {
                        masses: random_vec(64, seed, 0.1, 2.0),
                        positions: random_matrix(64, c.dim, seed + 1, -1.0, 1.0),
                    },
                )
                .expect("tiny inertia request is valid")
            }
        },
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let arch = args
        .next()
        .map(|name| GpuArch::by_name(&name).unwrap_or_else(|| panic!("unknown arch `{name}`")))
        .unwrap_or_else(GpuArch::h800);
    let requests: u64 = args
        .next()
        .map(|n| n.parse().expect("requests must be an integer"))
        .unwrap_or(256);
    const CLIENTS: u64 = 4;

    println!(
        "replaying a synthetic trace: {requests} requests, {CLIENTS} clients, arch {}",
        arch.name
    );
    let engine = Arc::new(Engine::with_config(
        arch,
        RuntimeConfig {
            workers: 4,
            max_batch: 16,
            cache_capacity: 32,
        },
    ));

    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                let mut simulated_us = 0.0;
                let mut served = 0u64;
                // Client c replays trace slots c, c+CLIENTS, c+2*CLIENTS, …,
                // keeping a window of requests in flight so the scheduler can
                // actually form batches.
                let slots: Vec<u64> = (client..requests).step_by(CLIENTS as usize).collect();
                for window in slots.chunks(16) {
                    let tickets: Vec<_> = window
                        .iter()
                        .map(|&i| {
                            engine
                                .submit(trace_request(i))
                                .expect("engine accepts trace requests")
                        })
                        .collect();
                    for ticket in tickets {
                        let result = ticket.wait().expect("trace request completes");
                        // Batch members share one launch; count each request's
                        // amortized share so the total is the simulated GPU
                        // time actually spent, not batch-size times it.
                        simulated_us += result.simulated_us / result.batch_size as f64;
                        served += 1;
                    }
                }
                (served, simulated_us)
            })
        })
        .collect();

    let mut served = 0u64;
    let mut simulated_us = 0.0;
    for client in clients {
        let (s, us) = client.join().expect("client thread succeeds");
        served += s;
        simulated_us += us;
    }
    engine.run_until_drained();

    assert_eq!(served, requests);
    println!(
        "total simulated GPU time {:.1} us across {} compiled plans\n",
        simulated_us,
        engine.cache_stats().entries
    );
    println!("{}", engine.metrics().report());
}
