//! Serving load harness: drives the continuous-batching engine with a mixed
//! workload + graph trace in closed- or open-loop mode and writes
//! `BENCH_serving.json`.
//!
//! ```console
//! $ cargo run --release -p rf-bench --bin serve_trace -- \
//!       arch=h800 requests=512 mode=open rate=2000 burst-period=64 \
//!       burst-factor=4 out=BENCH_serving.json
//! ```
//!
//! All arguments are optional `key=value` pairs:
//!
//! | key | default | meaning |
//! |---|---|---|
//! | `arch` | `h800` | `a10 \| a100 \| h800 \| mi308x` |
//! | `devices` | unset | homogeneous fleet: N tile-VM devices of `arch` |
//! | `fleet` | unset | heterogeneous fleet: `+`-separated `arch[:backend]` specs, e.g. `a10+h800:cost` (backends: `vm \| cost`); overrides `arch`/`devices` |
//! | `routing` | `least-loaded` | fleet placement: `least-loaded \| sticky \| row-shard \| predicted` |
//! | `suite` | unset | `fleet`: run the single/fleet4/hetero scenario suite and write one multi-scenario document |
//! | `requests` | `256` | total submissions (workloads + graphs) |
//! | `mode` | `closed` | `closed` (client windows) or `open` (Poisson) |
//! | `clients` | `4` | closed loop: concurrent client threads |
//! | `window` | `16` | closed loop: per-client in-flight window |
//! | `rate` | `1000` | open loop: mean arrivals per second |
//! | `burst-period` | `64` | open loop: arrivals per burst phase (0 = steady) |
//! | `burst-factor` | `4` | open loop: rate multiplier in bursty phases |
//! | `graph-every` | `10` | every Nth slot submits a whole operator graph |
//! | `seed` | `7` | arrival-process seed |
//! | `workers` | `4` | engine worker threads |
//! | `max-batch` | `16` | engine max batch size |
//! | `max-in-flight` | `1024` | admission-control budget |
//! | `trace` | `hist` | engine telemetry: `off \| hist \| full` |
//! | `trace-buffer` | `65536` | span-buffer bound at `trace=full` |
//! | `trace-out` | `TRACE_serving.json` | Perfetto trace path (`trace=full`) |
//! | `profile` | `0` | `1`: capture the tile-VM op profiler and write a folded-stack profile |
//! | `profile-out` | `PROFILE_serving.txt` | folded-stack profile path (`profile=1`) |
//! | `window-ms` | `250` | rolling-telemetry window width, milliseconds |
//! | `windows` | `64` | rolling-telemetry windows retained |
//! | `out` | `BENCH_serving.json` | report path |
//!
//! At `trace=full` the run additionally writes a Chrome trace-event JSON
//! document (validated before writing) that loads directly into Perfetto
//! (`ui.perfetto.dev`) or `chrome://tracing`. At `profile=1` it writes a
//! folded-stack op profile (`device;class;region;op weight` lines — prefixed
//! with the scenario name under `suite=fleet`) that feeds any
//! inferno/flamegraph toolchain directly.
//!
//! The two historical positional arguments (`serve_trace [arch] [requests]`)
//! are still accepted.

use std::process::ExitCode;

use rf_bench::serving::{run_traced, suite_to_json, Mode, TraceConfig};
use rf_gpusim::GpuArch;
use rf_runtime::{BackendKind, DeviceSpec, RoutingPolicy, RuntimeConfig};
use rf_trace::TraceLevel;

struct Args {
    config: TraceConfig,
    suite: bool,
    out: String,
    trace_out: String,
    profile_out: String,
}

/// Parses a `fleet=` spec: `+`-separated `arch[:backend]` items.
fn parse_fleet(spec: &str) -> Result<Vec<DeviceSpec>, String> {
    spec.split('+')
        .map(|item| {
            let (arch_name, backend) = match item.split_once(':') {
                Some((arch_name, backend_name)) => (
                    arch_name,
                    BackendKind::by_name(backend_name).ok_or(format!(
                        "unknown backend `{backend_name}` in fleet item `{item}` (expected vm|cost)"
                    ))?,
                ),
                None => (item, BackendKind::TileVm),
            };
            let arch = GpuArch::by_name(arch_name).ok_or(format!(
                "unknown arch `{arch_name}` in fleet item `{item}` (expected a10|a100|h800|mi308x)"
            ))?;
            Ok(DeviceSpec { arch, backend })
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut arch = GpuArch::h800();
    let mut device_count: usize = 0;
    let mut fleet_spec: Option<String> = None;
    let mut routing = RoutingPolicy::LeastLoaded;
    let mut suite = false;
    let mut requests: u64 = 256;
    let mut mode = "closed".to_string();
    let mut clients: u64 = 4;
    let mut window: usize = 16;
    let mut rate: f64 = 1000.0;
    let mut burst_period: u64 = 64;
    let mut burst_factor: f64 = 4.0;
    let mut graph_every: u64 = 10;
    let mut seed: u64 = 7;
    let mut workers: usize = 4;
    let mut max_batch: usize = 16;
    let mut max_in_flight: usize = 1024;
    let mut trace_level = TraceLevel::Histograms;
    let mut trace_buffer: usize = 65_536;
    let mut profile = false;
    let mut window_ms: u64 = 250;
    let mut windows: usize = 64;
    let mut out = "BENCH_serving.json".to_string();
    let mut trace_out = "TRACE_serving.json".to_string();
    let mut profile_out = "PROFILE_serving.txt".to_string();

    for (position, raw) in std::env::args().skip(1).enumerate() {
        let (key, value) = match raw.split_once('=') {
            Some((key, value)) => (key.to_string(), value.to_string()),
            // Positional back-compat: `serve_trace [arch] [requests]`.
            None if position == 0 => ("arch".to_string(), raw),
            None if position == 1 => ("requests".to_string(), raw),
            None => return Err(format!("unexpected positional argument `{raw}`")),
        };
        let parse_err = |what: &str| format!("`{key}={value}`: expected {what}");
        match key.as_str() {
            "arch" => {
                arch = GpuArch::by_name(&value).ok_or(format!(
                    "unknown arch `{value}` (expected a10|a100|h800|mi308x)"
                ))?;
            }
            "devices" => device_count = value.parse().map_err(|_| parse_err("an integer"))?,
            "fleet" => fleet_spec = Some(value),
            "routing" => {
                routing = RoutingPolicy::by_name(&value).ok_or(format!(
                    "unknown routing `{value}` (expected least-loaded|sticky|row-shard|predicted)"
                ))?;
            }
            "suite" => {
                if value != "fleet" {
                    return Err(format!("unknown suite `{value}` (expected fleet)"));
                }
                suite = true;
            }
            "requests" => requests = value.parse().map_err(|_| parse_err("an integer"))?,
            "mode" => {
                if value != "closed" && value != "open" {
                    return Err(format!("unknown mode `{value}` (expected closed|open)"));
                }
                mode = value;
            }
            "clients" => clients = value.parse().map_err(|_| parse_err("an integer"))?,
            "window" => window = value.parse().map_err(|_| parse_err("an integer"))?,
            "rate" => rate = value.parse().map_err(|_| parse_err("a number"))?,
            "burst-period" => burst_period = value.parse().map_err(|_| parse_err("an integer"))?,
            "burst-factor" => burst_factor = value.parse().map_err(|_| parse_err("a number"))?,
            "graph-every" => graph_every = value.parse().map_err(|_| parse_err("an integer"))?,
            "seed" => seed = value.parse().map_err(|_| parse_err("an integer"))?,
            "workers" => workers = value.parse().map_err(|_| parse_err("an integer"))?,
            "max-batch" => max_batch = value.parse().map_err(|_| parse_err("an integer"))?,
            "max-in-flight" => {
                max_in_flight = value.parse().map_err(|_| parse_err("an integer"))?
            }
            "trace" => {
                trace_level = match value.as_str() {
                    "off" => TraceLevel::Off,
                    "hist" | "histograms" => TraceLevel::Histograms,
                    "full" => TraceLevel::Full,
                    other => {
                        return Err(format!(
                            "unknown trace level `{other}` (expected off|hist|full)"
                        ))
                    }
                };
            }
            "trace-buffer" => trace_buffer = value.parse().map_err(|_| parse_err("an integer"))?,
            "trace-out" => trace_out = value,
            "profile" => {
                profile = match value.as_str() {
                    "1" | "true" | "on" => true,
                    "0" | "false" | "off" => false,
                    _ => return Err(parse_err("a boolean (0|1)")),
                };
            }
            "profile-out" => profile_out = value,
            "window-ms" => window_ms = value.parse().map_err(|_| parse_err("an integer"))?,
            "windows" => windows = value.parse().map_err(|_| parse_err("an integer"))?,
            "out" => out = value,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    let runtime = RuntimeConfig::builder()
        .workers(workers)
        .max_batch(max_batch)
        .cache_capacity(32)
        .max_in_flight(max_in_flight)
        .trace(rf_trace::TraceConfig {
            level: trace_level,
            capacity: trace_buffer,
            profile,
            window_ms,
            windows,
        })
        .build()
        .map_err(|err| format!("invalid engine config: {err}"))?;
    let mode = if mode == "open" {
        Mode::Open {
            rate_rps: rate,
            burst_period,
            burst_factor,
        }
    } else {
        Mode::Closed { clients, window }
    };
    let devices = if let Some(spec) = fleet_spec {
        parse_fleet(&spec)?
    } else if device_count > 0 {
        (0..device_count)
            .map(|_| DeviceSpec::tile_vm(arch.clone()))
            .collect()
    } else {
        Vec::new()
    };
    Ok(Args {
        config: TraceConfig {
            arch,
            devices,
            routing,
            requests,
            mode,
            graph_every,
            seed,
            runtime,
        },
        suite,
        out,
        trace_out,
        profile_out,
    })
}

/// Validates and writes folded-stack profile text, reporting the frame count.
fn write_profile(path: &str, folded: &str) -> Result<(), String> {
    let frames = rf_trace::validate_folded(folded)
        .map_err(|err| format!("malformed folded profile: {err}"))?;
    std::fs::write(path, folded).map_err(|err| format!("cannot write {path}: {err}"))?;
    println!("wrote {path} ({frames} op frames, flamegraph-ready)");
    Ok(())
}

/// Runs the fleet scenario suite off the base config: the same trace served
/// by one device, by a homogeneous 4-device fleet, and by a heterogeneous
/// tile-VM + cost-model pair. Returns the named reports in that order.
fn run_fleet_suite(base: &TraceConfig) -> Vec<(String, rf_bench::serving::ServingReport)> {
    let scenarios = [
        (
            "single",
            vec![DeviceSpec::tile_vm(base.arch.clone())],
            base.routing,
        ),
        (
            "fleet4",
            (0..4)
                .map(|_| DeviceSpec::tile_vm(base.arch.clone()))
                .collect(),
            base.routing,
        ),
        (
            "hetero",
            vec![
                DeviceSpec::tile_vm(GpuArch::a10()),
                DeviceSpec::cost_model(GpuArch::h800()),
            ],
            RoutingPolicy::LeastLoaded,
        ),
    ];
    scenarios
        .into_iter()
        .map(|(name, devices, routing)| {
            let config = TraceConfig {
                devices,
                routing,
                ..base.clone()
            };
            let (report, _) = run_traced(&config);
            println!("--- scenario {name} ---\n{}\n", report.summary());
            (name.to_string(), report)
        })
        .collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("serve_trace: {err}");
            return ExitCode::FAILURE;
        }
    };
    if args.suite {
        println!(
            "serving fleet suite: {} requests per scenario, {:?}, base arch {}",
            args.config.requests, args.config.mode, args.config.arch.name
        );
        let scenarios = run_fleet_suite(&args.config);
        let single = scenarios[0].1.sim_throughput_rps;
        let fleet4 = scenarios[1].1.sim_throughput_rps;
        if single > 0.0 {
            println!(
                "fleet4 vs single simulated throughput: {:.2}x",
                fleet4 / single
            );
        }
        if let Err(err) = std::fs::write(&args.out, suite_to_json(&scenarios)) {
            eprintln!("serve_trace: cannot write {}: {err}", args.out);
            return ExitCode::FAILURE;
        }
        println!("wrote {}", args.out);
        if args.config.runtime.trace.profile {
            // One folded-stack document for the whole suite: each frame is
            // prefixed with its scenario name so the flamegraph separates
            // single/fleet4/hetero at the root.
            let folded: String = scenarios
                .iter()
                .flat_map(|(name, report)| {
                    report
                        .folded_profile
                        .lines()
                        .map(move |line| format!("{name};{line}\n"))
                })
                .collect();
            if let Err(err) = write_profile(&args.profile_out, &folded) {
                eprintln!("serve_trace: {err}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    println!(
        "serving trace: {} requests, {:?}, arch {}, {} device(s), routing {}",
        args.config.requests,
        args.config.mode,
        args.config.arch.name,
        args.config.devices.len().max(1),
        args.config.routing.name()
    );
    let (report, trace_json) = run_traced(&args.config);
    println!("{}", report.summary());
    if let Err(err) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("serve_trace: cannot write {}: {err}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);
    if args.config.runtime.trace.profile {
        if let Err(err) = write_profile(&args.profile_out, &report.folded_profile) {
            eprintln!("serve_trace: {err}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(trace_json) = trace_json {
        // Validate before writing: a malformed trace artifact is a bug, not
        // something to hand to Perfetto.
        match rf_trace::validate_chrome_trace(&trace_json) {
            Ok(stats) => println!(
                "trace: {} events ({} spans, {} instants) across {} request tracks",
                stats.events, stats.spans, stats.instants, stats.request_tracks
            ),
            Err(err) => {
                eprintln!("serve_trace: malformed trace document: {err}");
                return ExitCode::FAILURE;
            }
        }
        if let Err(err) = std::fs::write(&args.trace_out, trace_json) {
            eprintln!("serve_trace: cannot write {}: {err}", args.trace_out);
            return ExitCode::FAILURE;
        }
        println!("wrote {} (load it at ui.perfetto.dev)", args.trace_out);
    }
    ExitCode::SUCCESS
}
