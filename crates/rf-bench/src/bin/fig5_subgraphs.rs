//! Regenerates Figure 5: normalized performance of the four ML subgraphs
//! (MHA on A10, MLA on H800, MoE routing on A10, FP8 Quant+GEMM on H800),
//! relative to PyTorch Eager.
use rf_bench::{eval, print_normalized_table};
use rf_gpusim::GpuArch;

fn main() {
    let a10 = GpuArch::a10();
    let h800 = GpuArch::h800();
    let mha = print_normalized_table(
        "Figure 5a: MHA on A10 (speedup vs PyTorch Eager)",
        &eval::mha_rows(&a10),
    );
    let mla = print_normalized_table(
        "Figure 5b: MLA on H800 (speedup vs PyTorch Eager)",
        &eval::mla_rows(&h800),
    );
    let moe = print_normalized_table(
        "Figure 5c: MoE routing on A10 (speedup vs PyTorch Eager)",
        &eval::moe_rows(&a10),
    );
    let quant = print_normalized_table(
        "Figure 5d: FP8 PerToken Quant+GEMM on H800 (speedup vs PyTorch Eager)",
        &eval::quant_rows(&h800),
    );

    println!("\n=== Headline comparison with the paper (§5.2) ===");
    let pick = |geo: &[(String, f64)], name: &str| {
        geo.iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN)
    };
    println!(
        "MHA: RedFuser / FlashAttention2 = {:.2} (paper: 1.09), RedFuser / Dynamo = {:.1} (paper: 2.8 on LLaMA-65B)",
        pick(&mha, "RedFuser") / pick(&mha, "FlashAttention2"),
        pick(&mha, "RedFuser") / pick(&mha, "PyTorch Dynamo"),
    );
    println!(
        "MLA: RedFuser / FlashMLA = {:.2} (paper: 1.02), RedFuser / Dynamo = {:.1} (paper: 2.4), RedFuser / TVM = {:.1} (paper: 8.7)",
        pick(&mla, "RedFuser") / pick(&mla, "FlashMLA"),
        pick(&mla, "RedFuser") / pick(&mla, "PyTorch Dynamo"),
        pick(&mla, "RedFuser") / pick(&mla, "TVM"),
    );
    println!(
        "MoE: RedFuser / Dynamo = {:.1} (paper: 1.7), RedFuser / TVM = {:.1} (paper: 6.6)",
        pick(&moe, "RedFuser") / pick(&moe, "PyTorch Dynamo"),
        pick(&moe, "RedFuser") / pick(&moe, "TVM"),
    );
    println!(
        "Quant+GEMM: RedFuser / Dynamo = {:.1} (paper: 3.4), RedFuser / TVM = {:.1} (paper: 12.1)",
        pick(&quant, "RedFuser") / pick(&quant, "PyTorch Dynamo"),
        pick(&quant, "RedFuser") / pick(&quant, "TVM"),
    );
}
