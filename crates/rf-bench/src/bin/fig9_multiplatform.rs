//! Regenerates Figure 9: MoE routing, MHA and FP8 Quant+GEMM on the remaining
//! platforms (A100, H800, MI308X), relative to PyTorch Eager.
use rf_bench::{eval, print_normalized_table};
use rf_gpusim::GpuArch;

fn main() {
    for name in ["a100", "h800", "mi308x"] {
        let arch = GpuArch::by_name(name).expect("known architecture");
        print_normalized_table(
            &format!(
                "Figure 9: MoE routing on {} (speedup vs PyTorch Eager)",
                arch.name
            ),
            &eval::moe_rows(&arch),
        );
        print_normalized_table(
            &format!("Figure 9: MHA on {} (speedup vs PyTorch Eager)", arch.name),
            &eval::mha_rows(&arch),
        );
    }
    let mi = GpuArch::mi308x();
    print_normalized_table(
        "Figure 9g: FP8 PerToken Quant+GEMM on AMD MI308X (speedup vs PyTorch Eager)",
        &eval::quant_rows(&mi),
    );
}
