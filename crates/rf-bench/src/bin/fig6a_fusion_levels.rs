//! Regenerates Figure 6a: normalized performance of safe-softmax kernels fused
//! at different levels (intra-thread / intra-warp / intra-block / inter-block)
//! over input sizes from 1K to 8K, relative to the unfused kernels.
use rf_codegen::{fusion_level_latency, FusionLevel};
use rf_gpusim::GpuArch;

fn main() {
    let arch = GpuArch::a10();
    let rows = 4096;
    println!(
        "Figure 6a: normalized performance of fusion levels (safe softmax, {})",
        arch.name
    );
    println!(
        "{:<10}{:>16}{:>16}{:>16}{:>16}",
        "size", "intra-thread", "intra-warp", "intra-block", "inter-block"
    );
    for size in [1024usize, 2048, 4096, 8192] {
        print!("{size:<10}");
        for level in FusionLevel::ALL {
            let report = fusion_level_latency(&arch, rows, size, level);
            print!("{:>16.3}", report.normalized);
        }
        println!();
    }
    println!("\n(>1 means the fused kernel is faster than the unfused two-pass execution;");
    println!(" intra-block fusion achieves the best performance, as in the paper.)");
}
