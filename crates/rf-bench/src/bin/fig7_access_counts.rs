//! Regenerates Figure 7: the number of times a dependent reduction must load
//! the preceding reduction's result, with and without fusion at level k.
use rf_fusion::TreeShape;

fn main() {
    let shape = TreeShape::new(vec![4096, 256, 8, 1]).expect("valid shape");
    println!("Figure 7: dependency loads of d_K for a reduction tree {shape}");
    println!("{:<24}{:>18}", "fusion", "loads of d_K");
    println!("{:<24}{:>18}", "unfused", shape.dependency_loads(None));
    for k in 1..=shape.depth() {
        println!(
            "{:<24}{:>18}",
            format!("fused at level {k}"),
            shape.dependency_loads(Some(k))
        );
    }
    println!("\nInput loads for a 3-reduction cascade over 2 input vectors:");
    println!("  unfused: {}", shape.input_loads(3, 2, false));
    println!("  fused:   {}", shape.input_loads(3, 2, true));
}
