//! Regenerates Figure 8: variance and moment-of-inertia speedups on the four
//! evaluation platforms (A10, A100, H800, MI308X), relative to PyTorch Eager.
use rf_bench::{eval, print_normalized_table};
use rf_gpusim::GpuArch;

fn main() {
    for arch in GpuArch::all() {
        let variance = print_normalized_table(
            &format!(
                "Figure 8: variance on {} (speedup vs PyTorch Eager)",
                arch.name
            ),
            &eval::variance_rows(&arch),
        );
        let inertia = print_normalized_table(
            &format!(
                "Figure 8: moment of inertia on {} (speedup vs PyTorch Eager)",
                arch.name
            ),
            &eval::inertia_rows(&arch),
        );
        let pick = |geo: &[(String, f64)]| {
            geo.iter()
                .find(|(n, _)| n == "RedFuser")
                .map(|(_, v)| *v)
                .unwrap_or(f64::NAN)
        };
        println!(
            "summary on {}: RedFuser vs Eager — variance {:.1}x (paper: 2.9-4.8x), inertia {:.1}x (paper: 5.5-11.6x)",
            arch.name,
            pick(&variance),
            pick(&inertia)
        );
    }
}
