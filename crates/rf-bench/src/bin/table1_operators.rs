//! Regenerates Table 1: common reduction operations, their `⊕` and compatible
//! `⊗`, with the distributivity of every pair verified numerically.
fn main() {
    println!("Table 1: common reduction operations and their binary operators\n");
    println!(
        "{:<40}{:>8}{:>8}{:>16}",
        "Reduction operation R_i", "⊕_i", "⊗_i", "distributive?"
    );
    for row in rf_algebra::table1::table1() {
        let ok = rf_algebra::table1::verify_distributivity(row.plus, row.times);
        println!(
            "{:<40}{:>8}{:>8}{:>16}",
            row.family,
            row.plus.to_string(),
            row.times.to_string(),
            ok
        );
    }
    println!("\nFixed-point decomposition of the paper's patterns (ACRF, Algorithm 1):\n");
    for spec in rf_fusion::patterns::all_fusable() {
        let plan = rf_fusion::analyze_cascade(&spec).expect("pattern is fusable");
        println!("{}", plan.report());
    }
    let err =
        rf_fusion::analyze_cascade(&rf_fusion::patterns::non_decomposable_variance()).unwrap_err();
    println!("two_pass_variance: {err}");
}
