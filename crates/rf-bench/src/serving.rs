//! Closed- and open-loop serving load harness over the `rf-runtime` engine.
//!
//! The harness drives the continuous-batching engine the way a serving
//! evaluation would:
//!
//! * **closed loop** — N client threads each keep a bounded window of
//!   requests in flight (throughput-oriented, classic replay);
//! * **open loop** — a dispatcher issues requests on a Poisson arrival
//!   process at a configured rate, independent of completions (the
//!   latency-under-load regime where admission control and shedding
//!   matter), optionally with bursty phases that multiply the arrival rate.
//!
//! The trace mixes all six workload families with a skewed, repeating shape
//! distribution (softmax-heavy, like decode-time traffic), sprinkles whole
//! operator-graph submissions through the same front door, and spreads
//! requests across the three priority lanes. Every run produces a
//! [`ServingReport`] with throughput, wall-clock and simulated latency
//! percentiles, shed rate and mean batch occupancy, serialisable to the
//! `BENCH_serving.json` schema consumed by CI.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rf_codegen::Workload;
use rf_gpusim::GpuArch;
use rf_graph::{partition, GraphPlan, OpGraph};
use rf_runtime::{
    metrics::percentile_sorted, CalibrationSnapshot, DeviceSpec, Engine, FleetConfig, Priority,
    Request, RequestInput, RoutingPolicy, RuntimeConfig, RuntimeError, Submission, Ticket,
    TimeSeriesSnapshot,
};
use rf_workloads::{
    inertia_tiny, mha_tiny, mla_tiny, moe_tiny, quant_tiny, random_matrix, random_vec,
    variance_tiny, Matrix,
};

/// Builds the `i`-th trace request. The pattern is 10 slots wide and skewed:
/// four softmax of one shape, two of another, then one of each remaining
/// family — repeated shapes are what the plan cache and batcher exploit.
pub fn trace_request(i: u64) -> Request {
    let seed = i * 31;
    match i % 10 {
        0..=3 => Request::softmax(random_matrix(4, 256, seed, -2.0, 2.0)),
        4 | 5 => Request::softmax(random_matrix(2, 1024, seed, -2.0, 2.0)),
        6 => {
            let c = mha_tiny();
            Request::new(
                Workload::Mha(c.clone()),
                RequestInput::Attention {
                    q: random_matrix(c.q, c.hd, seed, -1.0, 1.0),
                    k: random_matrix(c.kv, c.hd, seed + 1, -1.0, 1.0),
                    v: random_matrix(c.kv, c.hd, seed + 2, -1.0, 1.0),
                },
            )
            .expect("tiny MHA request is valid")
        }
        7 => {
            let c = mla_tiny();
            Request::new(
                Workload::Mla(c.clone()),
                RequestInput::Attention {
                    q: random_matrix(1, c.qk_dim(), seed, -1.0, 1.0),
                    k: random_matrix(c.kv, c.qk_dim(), seed + 1, -1.0, 1.0),
                    v: random_matrix(c.kv, c.hd, seed + 2, -1.0, 1.0),
                },
            )
            .expect("tiny MLA request is valid")
        }
        8 => {
            let c = moe_tiny();
            Request::new(
                Workload::Moe(c.clone()),
                RequestInput::Routing {
                    x: random_matrix(16, c.hd, seed, -1.0, 1.0),
                    w: random_matrix(c.hd, c.en, seed + 1, -1.0, 1.0),
                },
            )
            .expect("tiny MoE request is valid")
        }
        _ => match i % 3 {
            0 => {
                let c = quant_tiny();
                Request::new(
                    Workload::Quant(c.clone()),
                    RequestInput::QuantGemm {
                        a: random_matrix(8, c.k, seed, -1.0, 1.0),
                        w: random_matrix(c.k, c.n, seed + 1, -1.0, 1.0),
                    },
                )
                .expect("tiny quant request is valid")
            }
            1 => {
                let c = variance_tiny();
                Request::new(
                    Workload::Variance(c.clone()),
                    RequestInput::Rows(random_matrix(4, c.l, seed, -2.0, 2.0)),
                )
                .expect("tiny variance request is valid")
            }
            _ => {
                let c = inertia_tiny();
                Request::new(
                    Workload::Inertia(c.clone()),
                    RequestInput::Inertia {
                        masses: random_vec(64, seed, 0.1, 2.0),
                        positions: random_matrix(64, c.dim, seed + 1, -1.0, 1.0),
                    },
                )
                .expect("tiny inertia request is valid")
            }
        },
    }
}

/// The priority lane of trace slot `i`: a 1:2:1 high/normal/low mix, so the
/// deficit-weighted lanes all see sustained traffic.
pub fn trace_priority(i: u64) -> Priority {
    match i % 4 {
        1 => Priority::High,
        3 => Priority::Low,
        _ => Priority::Normal,
    }
}

/// How clients drive the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// `clients` threads each keep at most `window` requests in flight.
    Closed {
        /// Concurrent client threads.
        clients: u64,
        /// Per-client in-flight window.
        window: usize,
    },
    /// A dispatcher issues requests on a Poisson process at `rate_rps`
    /// mean arrivals per second, independent of completions. Every
    /// `burst_period` arrivals the phase flips between the base rate and
    /// `rate_rps * burst_factor` (set `burst_factor` to 1.0 for a steady
    /// arrival rate).
    Open {
        /// Mean arrival rate, requests per second.
        rate_rps: f64,
        /// Arrivals per burst phase (0 disables phase flipping).
        burst_period: u64,
        /// Rate multiplier during the bursty phase.
        burst_factor: f64,
    },
}

impl Mode {
    fn name(&self) -> &'static str {
        match self {
            Mode::Closed { .. } => "closed",
            Mode::Open { .. } => "open",
        }
    }
}

/// One serving-harness run.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Target architecture (ignored when `devices` is non-empty).
    pub arch: GpuArch,
    /// Fleet devices to serve from. Empty (the default) runs a single
    /// tile-VM device of `arch`; otherwise the engine is built as a fleet
    /// of exactly these devices and `arch` is ignored.
    pub devices: Vec<DeviceSpec>,
    /// How fleet submissions are placed onto devices (only meaningful for
    /// multi-device runs).
    pub routing: RoutingPolicy,
    /// Total submissions to offer (workloads + graphs).
    pub requests: u64,
    /// Load-generation mode.
    pub mode: Mode,
    /// Every `graph_every`-th slot submits a whole operator graph instead of
    /// a single workload (0 disables graph traffic).
    pub graph_every: u64,
    /// Seed of the Poisson arrival process.
    pub seed: u64,
    /// Engine tunables.
    pub runtime: RuntimeConfig,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            arch: GpuArch::h800(),
            devices: Vec::new(),
            routing: RoutingPolicy::LeastLoaded,
            requests: 256,
            mode: Mode::Closed {
                clients: 4,
                window: 16,
            },
            graph_every: 10,
            seed: 7,
            runtime: RuntimeConfig::builder()
                .workers(4)
                .max_batch(16)
                .cache_capacity(32)
                .build()
                .expect("default trace runtime config is valid"),
        }
    }
}

/// Per-lane traffic counts carried in a [`ServingReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneReport {
    /// Lane name (`"high"`, `"normal"`, `"low"`).
    pub lane: String,
    /// Submissions accepted onto the lane.
    pub submitted: u64,
    /// Submissions from the lane fully served.
    pub completed: u64,
    /// Submissions to the lane shed by admission control.
    pub shed: u64,
}

/// Per-pipeline-stage wall-clock summary carried in a [`ServingReport`],
/// sourced from the engine's lifetime stage histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name (`"queue"`, `"compile"`, `"tune"`, `"execute"`, `"e2e"`).
    pub stage: String,
    /// Requests that contributed a sample to this stage.
    pub count: u64,
    /// Median stage wall time, microseconds.
    pub p50_us: f64,
    /// 99th-percentile stage wall time, microseconds.
    pub p99_us: f64,
}

/// Per-device outcome of a fleet run, carried in a [`ServingReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// Fleet device id (0-based).
    pub device: usize,
    /// The device's architecture name.
    pub arch: String,
    /// The device's execution backend name (`"tile-vm"` or `"cost-model"`).
    pub backend: String,
    /// Requests this device accepted.
    pub submitted: u64,
    /// Requests this device fully served.
    pub completed: u64,
    /// Requests shed at this device's admission control.
    pub shed: u64,
    /// Median simulated latency on this device, microseconds.
    pub p50_us: f64,
    /// 99th-percentile simulated latency on this device, microseconds.
    pub p99_us: f64,
    /// Total simulated busy time on this device, microseconds (each batch's
    /// simulated latency counted once).
    pub busy_sim_us: f64,
}

/// The outcome of one harness run — the numbers `BENCH_serving.json` records.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Architecture name; a fleet joins its device architectures with `+`.
    pub arch: String,
    /// The routing policy the run placed submissions with.
    pub routing: String,
    /// `"closed"` or `"open"`.
    pub mode: String,
    /// Submissions offered to the engine.
    pub offered: u64,
    /// Submissions served successfully.
    pub completed: u64,
    /// Submissions delivered an execution error.
    pub failed: u64,
    /// Submissions shed by admission control.
    pub shed: u64,
    /// Wall-clock duration of the run, seconds.
    pub duration_s: f64,
    /// Served requests per wall-clock second.
    pub throughput_rps: f64,
    /// Median wall-clock request latency (submit → result), microseconds.
    pub wall_p50_us: f64,
    /// 99th-percentile wall-clock request latency, microseconds.
    pub wall_p99_us: f64,
    /// Median simulated (GPU-model) latency, microseconds.
    pub sim_p50_us: f64,
    /// 99th-percentile simulated latency, microseconds.
    pub sim_p99_us: f64,
    /// Served requests per second of *simulated* device time: completions
    /// over the busiest device's simulated busy time. This is the
    /// device-domain throughput — wall-clock `throughput_rps` cannot show
    /// fleet scaling when every simulated device shares one host core, but
    /// simulated busy time can.
    pub sim_throughput_rps: f64,
    /// `shed / offered`, in `[0, 1]`.
    pub shed_rate: f64,
    /// Mean requests per engine iteration (batch occupancy).
    pub mean_batch_occupancy: f64,
    /// Engine iterations executed.
    pub iterations: u64,
    /// Whole graphs served through the unified front door.
    pub graphs_served: u64,
    /// Per-device outcomes, device 0 first (a single entry for a
    /// single-device run).
    pub devices: Vec<DeviceReport>,
    /// Per-lane traffic, highest lane first.
    pub lanes: Vec<LaneReport>,
    /// Wall-clock per-stage breakdown (queue/compile/tune/execute/e2e), in
    /// lifecycle order. Empty when the engine ran with tracing off.
    pub stages: Vec<StageReport>,
    /// Cost-model calibration ledger: per (class, arch, backend) predicted
    /// vs measured error statistics. Empty when the engine ran with tracing
    /// off.
    pub calibration: Vec<CalibrationSnapshot>,
    /// Rolling time-windowed telemetry over the run. Empty when the engine
    /// ran with tracing off.
    pub timeseries: TimeSeriesSnapshot,
    /// Folded-stack tile-VM op profile (`device;class;region;op weight`
    /// lines, flamegraph-ready). Empty unless the run profiled
    /// ([`rf_trace::TraceConfig::profile`]).
    pub folded_profile: String,
}

fn json_num(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.3}")
    } else {
        "null".to_string()
    }
}

impl ServingReport {
    /// Serialises the report as the `BENCH_serving.json` document.
    pub fn to_json(&self) -> String {
        let devices = self
            .devices
            .iter()
            .map(|d| {
                format!(
                    concat!(
                        "{{\"device\":{},\"arch\":\"{}\",\"backend\":\"{}\",",
                        "\"submitted\":{},\"completed\":{},\"shed\":{},",
                        "\"p50_us\":{},\"p99_us\":{},\"busy_sim_us\":{}}}"
                    ),
                    d.device,
                    d.arch,
                    d.backend,
                    d.submitted,
                    d.completed,
                    d.shed,
                    json_num(d.p50_us),
                    json_num(d.p99_us),
                    json_num(d.busy_sim_us)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let lanes = self
            .lanes
            .iter()
            .map(|lane| {
                format!(
                    "{{\"lane\":\"{}\",\"submitted\":{},\"completed\":{},\"shed\":{}}}",
                    lane.lane, lane.submitted, lane.completed, lane.shed
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let stages = self
            .stages
            .iter()
            .map(|stage| {
                format!(
                    "{{\"stage\":\"{}\",\"count\":{},\"p50_us\":{},\"p99_us\":{}}}",
                    stage.stage,
                    stage.count,
                    json_num(stage.p50_us),
                    json_num(stage.p99_us)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let calibration = self
            .calibration
            .iter()
            .map(|entry| {
                format!(
                    concat!(
                        "{{\"class\":\"{}\",\"arch\":\"{}\",\"backend\":\"{}\",",
                        "\"samples\":{},\"predicted_mean_us\":{},\"measured_mean_us\":{},",
                        "\"mape_pct\":{},\"rel_err_p50\":{},\"rel_err_p95\":{},",
                        "\"mean_ratio\":{},\"drifting\":{}}}"
                    ),
                    entry.class,
                    entry.arch,
                    entry.backend,
                    entry.samples,
                    json_num(entry.predicted_mean_us),
                    json_num(entry.measured_mean_us),
                    json_num(entry.mape_pct),
                    json_num(entry.rel_err_p50),
                    json_num(entry.rel_err_p95),
                    json_num(entry.mean_ratio),
                    entry.drifting
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let windows = self
            .timeseries
            .windows
            .iter()
            .map(|w| {
                format!(
                    concat!(
                        "{{\"start_ms\":{},\"submitted\":{},\"completed\":{},",
                        "\"failed\":{},\"shed\":{},\"batches\":{},",
                        "\"throughput_rps\":{},\"p99_us\":{},\"shed_rate\":{},",
                        "\"mean_batch\":{},\"busy_frac\":{}}}"
                    ),
                    w.start_ms,
                    w.submitted,
                    w.completed,
                    w.failed,
                    w.shed,
                    w.batches,
                    json_num(w.throughput_rps),
                    json_num(w.p99_us),
                    json_num(w.shed_rate),
                    json_num(w.mean_batch),
                    json_num(w.busy_frac)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"serving\",\n",
                "  \"arch\": \"{}\",\n",
                "  \"routing\": \"{}\",\n",
                "  \"mode\": \"{}\",\n",
                "  \"offered\": {},\n",
                "  \"completed\": {},\n",
                "  \"failed\": {},\n",
                "  \"shed\": {},\n",
                "  \"duration_s\": {},\n",
                "  \"throughput_rps\": {},\n",
                "  \"wall_p50_us\": {},\n",
                "  \"wall_p99_us\": {},\n",
                "  \"sim_p50_us\": {},\n",
                "  \"sim_p99_us\": {},\n",
                "  \"sim_throughput_rps\": {},\n",
                "  \"shed_rate\": {},\n",
                "  \"mean_batch_occupancy\": {},\n",
                "  \"iterations\": {},\n",
                "  \"graphs_served\": {},\n",
                "  \"devices\": [{}],\n",
                "  \"lanes\": [{}],\n",
                "  \"stages\": [{}],\n",
                "  \"calibration\": [{}],\n",
                "  \"timeseries\": {{\"window_ms\": {}, \"windows\": [{}]}}\n",
                "}}\n",
            ),
            self.arch,
            self.routing,
            self.mode,
            self.offered,
            self.completed,
            self.failed,
            self.shed,
            json_num(self.duration_s),
            json_num(self.throughput_rps),
            json_num(self.wall_p50_us),
            json_num(self.wall_p99_us),
            json_num(self.sim_p50_us),
            json_num(self.sim_p99_us),
            json_num(self.sim_throughput_rps),
            json_num(self.shed_rate),
            json_num(self.mean_batch_occupancy),
            self.iterations,
            self.graphs_served,
            devices,
            lanes,
            stages,
            calibration,
            self.timeseries.window_ms,
            windows
        )
    }

    /// A human-readable one-screen summary.
    pub fn summary(&self) -> String {
        let mut out = format!(
            concat!(
                "serving trace ({} loop, arch {}, {} device(s), routing {})\n",
                "  offered {} | completed {} | failed {} | shed {} ({:.1}%)\n",
                "  wall-clock {:.3} s -> {:.1} req/s (sim {:.1} req/s)\n",
                "  latency (wall) p50 {:.1} us, p99 {:.1} us\n",
                "  latency (sim)  p50 {:.1} us, p99 {:.1} us\n",
                "  {} iterations, mean batch occupancy {:.2}, {} graphs served",
            ),
            self.mode,
            self.arch,
            self.devices.len().max(1),
            self.routing,
            self.offered,
            self.completed,
            self.failed,
            self.shed,
            self.shed_rate * 100.0,
            self.duration_s,
            self.throughput_rps,
            self.sim_throughput_rps,
            self.wall_p50_us,
            self.wall_p99_us,
            self.sim_p50_us,
            self.sim_p99_us,
            self.iterations,
            self.mean_batch_occupancy,
            self.graphs_served
        );
        for device in &self.devices {
            out.push_str(&format!(
                "\n  device {} [{} / {}]: {} served, {} shed, \
                 p50 {:.1} us, p99 {:.1} us, busy {:.1} us",
                device.device,
                device.arch,
                device.backend,
                device.completed,
                device.shed,
                device.p50_us,
                device.p99_us,
                device.busy_sim_us
            ));
        }
        for stage in &self.stages {
            if stage.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "\n  stage {:<8} n {:>6}  p50 {:>9.1} us  p99 {:>9.1} us",
                stage.stage, stage.count, stage.p50_us, stage.p99_us
            ));
        }
        if !self.calibration.is_empty() {
            let drifting = self.calibration.iter().filter(|e| e.drifting).count();
            let worst = self
                .calibration
                .iter()
                .map(|e| e.mape_pct)
                .fold(0.0, f64::max);
            out.push_str(&format!(
                "\n  calibration: {} ledger entries, worst MAPE {:.1}%, {} drifting",
                self.calibration.len(),
                worst,
                drifting
            ));
        }
        if let Some(window) = self.timeseries.latest_active() {
            out.push_str(&format!(
                "\n  latest window ({} ms): {:.1} rps, p99 {:.1} us, \
                 shed {:.1}%, batch {:.2}, busy {:.0}%",
                self.timeseries.window_ms,
                window.throughput_rps,
                window.p99_us,
                window.shed_rate * 100.0,
                window.mean_batch,
                window.busy_frac * 100.0
            ));
        }
        out
    }
}

/// Serialises several named runs as one multi-scenario
/// `BENCH_serving.json` document: `{"bench": "serving-suite",
/// "scenarios": [{"name": …, "report": {…}}, …]}`. Each embedded report is
/// the exact [`ServingReport::to_json`] document.
pub fn suite_to_json(scenarios: &[(String, ServingReport)]) -> String {
    let body = scenarios
        .iter()
        .map(|(name, report)| {
            let indented = report
                .to_json()
                .trim_end()
                .lines()
                .map(|line| format!("      {line}"))
                .collect::<Vec<_>>()
                .join("\n");
            format!("    {{\n      \"name\": \"{name}\",\n      \"report\":\n{indented}\n    }}")
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{{\n  \"bench\": \"serving-suite\",\n  \"scenarios\": [\n{body}\n  ]\n}}\n")
}

/// The shared MoE-block graph every `graph_every`-th slot submits.
fn trace_graph() -> (Arc<OpGraph>, Arc<GraphPlan>) {
    let graph = rf_graph::builders::moe_block(4, 8, 4);
    let plan = partition(&graph);
    (Arc::new(graph), Arc::new(plan))
}

fn trace_graph_bindings(seed: u64) -> Vec<(String, Matrix)> {
    rf_graph::builders::moe_block_inputs(4, 8, 4, seed)
        .into_iter()
        .map(|(name, matrix)| (name.to_string(), matrix))
        .collect()
}

/// Builds the `i`-th submission of the trace: a prioritised workload request,
/// or (every `graph_every`-th slot) the shared operator graph with its
/// pre-computed partition plan.
fn trace_submission(
    i: u64,
    graph_every: u64,
    graph: &Arc<OpGraph>,
    plan: &Arc<GraphPlan>,
) -> Submission {
    let submission = if graph_every > 0 && i % graph_every == graph_every - 1 {
        Submission::graph_plan(Arc::clone(graph), Arc::clone(plan), trace_graph_bindings(i))
    } else {
        Submission::workload(trace_request(i))
    };
    submission.with_priority(trace_priority(i))
}

/// Samples the next Poisson inter-arrival gap for mean rate `rate_rps`.
fn poisson_gap(rng: &mut StdRng, rate_rps: f64) -> Duration {
    // Inverse CDF of the exponential distribution; clamp u away from 0 so
    // ln never sees it.
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    Duration::from_secs_f64((-u.ln()) / rate_rps.max(1e-9))
}

struct RunOutcome {
    completed: u64,
    failed: u64,
    shed: u64,
    latencies_us: Vec<f64>,
}

/// Drives one trace through a fresh engine and reports the outcome.
///
/// # Panics
///
/// Panics on internal harness errors (a collector thread failing); engine
/// errors (sheds, execution failures) are counted, not propagated.
pub fn run_trace(config: &TraceConfig) -> ServingReport {
    run_traced(config).0
}

/// Like [`run_trace`], additionally returning the engine's Chrome trace-event
/// JSON when `config.runtime.trace` asked for
/// [`rf_trace::TraceLevel::Full`] span recording (`None` otherwise). The
/// JSON loads directly into Perfetto or `chrome://tracing`.
pub fn run_traced(config: &TraceConfig) -> (ServingReport, Option<String>) {
    let engine = if config.devices.is_empty() {
        Arc::new(Engine::with_config(config.arch.clone(), config.runtime))
    } else {
        Arc::new(Engine::with_fleet(FleetConfig {
            devices: config.devices.clone(),
            routing: config.routing,
            runtime: config.runtime,
        }))
    };
    let (graph, plan) = trace_graph();
    let start = Instant::now();
    let mut outcome = match config.mode {
        Mode::Closed { clients, window } => {
            run_closed(&engine, config, &graph, &plan, clients, window)
        }
        Mode::Open {
            rate_rps,
            burst_period,
            burst_factor,
        } => run_open(
            &engine,
            config,
            &graph,
            &plan,
            rate_rps,
            burst_period,
            burst_factor,
        ),
    };
    engine.run_until_drained();
    let duration_s = start.elapsed().as_secs_f64();
    let metrics = engine.metrics();
    let trace_json = engine
        .trace_collector()
        .level()
        .spans_enabled()
        .then(|| engine.chrome_trace());
    let offered = config.requests;
    // Sort the wall-clock samples once and serve every percentile from the
    // shared sort (they were previously re-sorted per percentile call).
    outcome.latencies_us.retain(|v| v.is_finite());
    outcome.latencies_us.sort_by(f64::total_cmp);
    let devices: Vec<DeviceReport> = engine
        .device_snapshots()
        .iter()
        .map(|d| DeviceReport {
            device: d.device,
            arch: d.arch.to_string(),
            backend: d.backend.to_string(),
            submitted: d.metrics.submitted,
            completed: d.metrics.completed,
            shed: d.metrics.shed,
            p50_us: d.metrics.p50_us,
            p99_us: d.metrics.p99_us,
            busy_sim_us: d.metrics.busy_us,
        })
        .collect();
    // Simulated-time throughput: the fleet finishes (in device time) when
    // its busiest device does.
    let busiest_us = devices.iter().map(|d| d.busy_sim_us).fold(0.0, f64::max);
    let arch = if config.devices.is_empty() {
        config.arch.name.to_string()
    } else {
        devices
            .iter()
            .map(|d| d.arch.as_str())
            .collect::<Vec<_>>()
            .join("+")
    };
    let report = ServingReport {
        arch,
        routing: config.routing.name().to_string(),
        mode: config.mode.name().to_string(),
        offered,
        completed: outcome.completed,
        failed: outcome.failed,
        shed: outcome.shed,
        duration_s,
        throughput_rps: if duration_s > 0.0 {
            outcome.completed as f64 / duration_s
        } else {
            0.0
        },
        wall_p50_us: percentile_sorted(&outcome.latencies_us, 50.0),
        wall_p99_us: percentile_sorted(&outcome.latencies_us, 99.0),
        sim_p50_us: metrics.p50_us,
        sim_p99_us: metrics.p99_us,
        sim_throughput_rps: if busiest_us > 0.0 {
            outcome.completed as f64 / (busiest_us * 1e-6)
        } else {
            0.0
        },
        shed_rate: if offered > 0 {
            outcome.shed as f64 / offered as f64
        } else {
            0.0
        },
        mean_batch_occupancy: metrics.mean_batch_size,
        iterations: metrics.batches,
        graphs_served: metrics.graphs_served,
        devices,
        lanes: metrics
            .lanes
            .iter()
            .map(|lane| LaneReport {
                lane: lane.lane.to_string(),
                submitted: lane.submitted,
                completed: lane.completed,
                shed: lane.shed,
            })
            .collect(),
        stages: metrics
            .stages
            .iter()
            .filter(|stage| stage.wall.count > 0)
            .map(|stage| StageReport {
                stage: stage.stage.to_string(),
                count: stage.wall.count,
                p50_us: stage.wall.p50_us,
                p99_us: stage.wall.p99_us,
            })
            .collect(),
        calibration: metrics.calibration,
        timeseries: metrics.timeseries,
        folded_profile: engine.op_profile().folded(),
    };
    (report, trace_json)
}

fn run_closed(
    engine: &Arc<Engine>,
    config: &TraceConfig,
    graph: &Arc<OpGraph>,
    plan: &Arc<GraphPlan>,
    clients: u64,
    window: usize,
) -> RunOutcome {
    let clients = clients.max(1);
    let handles: Vec<_> = (0..clients)
        .map(|client| {
            let engine = Arc::clone(engine);
            let graph = Arc::clone(graph);
            let plan = Arc::clone(plan);
            let graph_every = config.graph_every;
            let requests = config.requests;
            thread::spawn(move || {
                let mut outcome = RunOutcome {
                    completed: 0,
                    failed: 0,
                    shed: 0,
                    latencies_us: Vec::new(),
                };
                // Client c replays trace slots c, c+clients, c+2*clients, …,
                // keeping a bounded window in flight so the scheduler can
                // form batches without the client modelling infinite demand.
                let slots: Vec<u64> = (client..requests).step_by(clients as usize).collect();
                for chunk in slots.chunks(window.max(1)) {
                    let mut inflight: Vec<(Ticket, Instant)> = Vec::with_capacity(chunk.len());
                    for &i in chunk {
                        let submission = trace_submission(i, graph_every, &graph, &plan);
                        match engine.submit(submission) {
                            Ok(ticket) => inflight.push((ticket, Instant::now())),
                            Err(RuntimeError::Overloaded { .. }) => outcome.shed += 1,
                            Err(err) => panic!("trace submission rejected: {err}"),
                        }
                    }
                    for (ticket, submitted_at) in inflight {
                        match ticket.wait() {
                            Ok(_) => {
                                outcome.completed += 1;
                                outcome
                                    .latencies_us
                                    .push(submitted_at.elapsed().as_secs_f64() * 1e6);
                            }
                            Err(_) => outcome.failed += 1,
                        }
                    }
                }
                outcome
            })
        })
        .collect();
    let mut total = RunOutcome {
        completed: 0,
        failed: 0,
        shed: 0,
        latencies_us: Vec::new(),
    };
    for handle in handles {
        let outcome = handle.join().expect("closed-loop client succeeds");
        total.completed += outcome.completed;
        total.failed += outcome.failed;
        total.shed += outcome.shed;
        total.latencies_us.extend(outcome.latencies_us);
    }
    total
}

fn run_open(
    engine: &Arc<Engine>,
    config: &TraceConfig,
    graph: &Arc<OpGraph>,
    plan: &Arc<GraphPlan>,
    rate_rps: f64,
    burst_period: u64,
    burst_factor: f64,
) -> RunOutcome {
    // Collector pool: tickets are handed off so the dispatcher never blocks
    // on a completion — that is what makes the loop open.
    let (tx, rx) = mpsc::channel::<(Ticket, Instant)>();
    let rx = Arc::new(Mutex::new(rx));
    let collectors: Vec<_> = (0..4)
        .map(|_| {
            let rx = Arc::clone(&rx);
            thread::spawn(move || {
                let mut completed = 0u64;
                let mut failed = 0u64;
                let mut latencies_us = Vec::new();
                loop {
                    let next = rx.lock().expect("collector receiver poisoned").recv();
                    let Ok((ticket, submitted_at)) = next else {
                        break; // dispatcher hung up: trace is fully offered
                    };
                    match ticket.wait() {
                        Ok(_) => {
                            completed += 1;
                            latencies_us.push(submitted_at.elapsed().as_secs_f64() * 1e6);
                        }
                        Err(_) => failed += 1,
                    }
                }
                (completed, failed, latencies_us)
            })
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut shed = 0u64;
    // Arrivals follow an absolute schedule: gaps accumulate onto a virtual
    // clock and the dispatcher sleeps only until each precomputed arrival
    // time. When it falls behind (sleep granularity, a slow submit) it
    // submits immediately instead of stretching every later gap — the
    // offered rate stays the configured rate, which is what makes the loop
    // open rather than paced by the engine.
    let started = Instant::now();
    let mut next_arrival = Duration::ZERO;
    for i in 0..config.requests {
        // Bursty phases: every `burst_period` arrivals the effective rate
        // flips between the base rate and `rate_rps * burst_factor`.
        let bursty = burst_period > 0 && (i / burst_period) % 2 == 1;
        let rate = if bursty {
            rate_rps * burst_factor.max(1e-3)
        } else {
            rate_rps
        };
        next_arrival += poisson_gap(&mut rng, rate);
        let behind = started.elapsed();
        if next_arrival > behind {
            thread::sleep(next_arrival - behind);
        }
        let submission = trace_submission(i, config.graph_every, graph, plan);
        match engine.submit(submission) {
            Ok(ticket) => tx
                .send((ticket, Instant::now()))
                .expect("collector pool alive"),
            // Open-loop semantics: a shed request is lost offered load — no
            // retry, it just counts against the shed rate.
            Err(RuntimeError::Overloaded { .. }) => shed += 1,
            Err(err) => panic!("trace submission rejected: {err}"),
        }
    }
    drop(tx);
    let mut total = RunOutcome {
        completed: 0,
        failed: 0,
        shed,
        latencies_us: Vec::new(),
    };
    for collector in collectors {
        let (completed, failed, latencies_us) = collector.join().expect("collector succeeds");
        total.completed += completed;
        total.failed += failed;
        total.latencies_us.extend(latencies_us);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_runtime::WindowSnapshot;
    use std::collections::HashSet;

    #[test]
    fn trace_covers_all_six_workload_families() {
        let classes: HashSet<&'static str> =
            (0..30).map(|i| trace_request(i).workload.class()).collect();
        for family in [
            "softmax", "mha", "mla", "moe", "quant", "variance", "inertia",
        ] {
            assert!(classes.contains(family), "trace never emits {family}");
        }
    }

    #[test]
    fn trace_priorities_mix_all_three_lanes() {
        let lanes: HashSet<usize> = (0..8).map(|i| trace_priority(i).lane()).collect();
        assert_eq!(lanes.len(), 3, "all three lanes see traffic");
        // Normal dominates: half of all slots.
        let normals = (0..100)
            .filter(|&i| trace_priority(i) == Priority::Normal)
            .count();
        assert_eq!(normals, 50);
    }

    #[test]
    fn poisson_gaps_have_the_configured_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let rate = 1000.0; // 1 ms mean gap
        let n = 4000;
        let total: f64 = (0..n)
            .map(|_| poisson_gap(&mut rng, rate).as_secs_f64())
            .sum();
        let mean_ms = total / n as f64 * 1e3;
        assert!(
            (0.9..1.1).contains(&mean_ms),
            "mean gap {mean_ms:.3} ms should be ~1 ms"
        );
    }

    #[test]
    fn report_json_carries_every_headline_field() {
        let report = ServingReport {
            arch: "h800".into(),
            routing: "least-loaded".into(),
            mode: "open".into(),
            offered: 100,
            completed: 90,
            failed: 0,
            shed: 10,
            duration_s: 1.5,
            throughput_rps: 60.0,
            wall_p50_us: 100.0,
            wall_p99_us: 900.0,
            sim_p50_us: 5.0,
            sim_p99_us: 50.0,
            sim_throughput_rps: 1200.0,
            shed_rate: 0.1,
            mean_batch_occupancy: 3.5,
            iterations: 40,
            graphs_served: 9,
            devices: vec![DeviceReport {
                device: 0,
                arch: "h800".into(),
                backend: "tile-vm".into(),
                submitted: 90,
                completed: 90,
                shed: 10,
                p50_us: 5.0,
                p99_us: 50.0,
                busy_sim_us: 75000.0,
            }],
            lanes: vec![LaneReport {
                lane: "high".into(),
                submitted: 25,
                completed: 25,
                shed: 0,
            }],
            stages: vec![StageReport {
                stage: "e2e".into(),
                count: 90,
                p50_us: 120.0,
                p99_us: 800.0,
            }],
            calibration: vec![CalibrationSnapshot {
                class: "softmax".into(),
                arch: "NVIDIA H800".into(),
                backend: "tile-vm".into(),
                fingerprint: 7,
                samples: 80,
                predicted_mean_us: 10.0,
                measured_mean_us: 9.0,
                mape_pct: 10.0,
                rel_err_p50: 0.1,
                rel_err_p95: 0.1,
                mean_ratio: 0.9,
                last_ratio: 0.9,
                drift_count: 0,
                drifting: false,
            }],
            timeseries: TimeSeriesSnapshot {
                window_ms: 250,
                windows: vec![WindowSnapshot {
                    start_ms: 0,
                    submitted: 90,
                    completed: 90,
                    throughput_rps: 360.0,
                    ..WindowSnapshot::default()
                }],
            },
            folded_profile: String::new(),
        };
        let json = report.to_json();
        for key in [
            "\"bench\": \"serving\"",
            "\"routing\": \"least-loaded\"",
            "\"throughput_rps\": 60.000",
            "\"wall_p99_us\": 900.000",
            "\"sim_p50_us\": 5.000",
            "\"sim_throughput_rps\": 1200.000",
            "\"shed_rate\": 0.100",
            "\"mean_batch_occupancy\": 3.500",
            "\"devices\": [{\"device\":0,\"arch\":\"h800\",\"backend\":\"tile-vm\"",
            "\"busy_sim_us\":75000.000",
            "\"lanes\": [{\"lane\":\"high\"",
            "\"stages\": [{\"stage\":\"e2e\",\"count\":90,\"p50_us\":120.000",
            "\"calibration\": [{\"class\":\"softmax\",\"arch\":\"NVIDIA H800\"",
            "\"mape_pct\":10.000",
            "\"drifting\":false",
            "\"timeseries\": {\"window_ms\": 250, \"windows\": [{\"start_ms\":0",
            "\"throughput_rps\":360.000",
        ] {
            assert!(json.contains(key), "missing `{key}` in:\n{json}");
        }
        assert!(report.summary().contains("90"));
        assert!(report.summary().contains("stage e2e"));
        assert!(report.summary().contains("device 0 [h800 / tile-vm]"));
        assert!(report.summary().contains("calibration: 1 ledger entries"));
        assert!(report.summary().contains("latest window (250 ms)"));
        // Non-finite metrics must not produce invalid JSON.
        assert_eq!(json_num(f64::NAN), "null");
        // The suite document embeds each named report verbatim.
        let suite = suite_to_json(&[("single".to_string(), report.clone())]);
        assert!(suite.contains("\"bench\": \"serving-suite\""));
        assert!(suite.contains("\"name\": \"single\""));
        assert!(suite.contains("\"routing\": \"least-loaded\""));
    }

    #[test]
    fn closed_loop_trace_accounts_for_every_offered_request() {
        let config = TraceConfig {
            requests: 40,
            mode: Mode::Closed {
                clients: 2,
                window: 8,
            },
            runtime: RuntimeConfig::builder()
                .workers(2)
                .max_batch(8)
                .cache_capacity(32)
                .build()
                .unwrap(),
            ..TraceConfig::default()
        };
        let report = run_trace(&config);
        assert_eq!(report.completed + report.failed + report.shed, 40);
        assert_eq!(report.failed, 0, "the tiny trace never fails execution");
        assert!(report.throughput_rps > 0.0);
        assert!(report.wall_p99_us >= report.wall_p50_us);
        assert!(report.graphs_served >= 1, "graph slots flow through");
        assert!(report.mean_batch_occupancy >= 1.0);
        let lane_submitted: u64 = report.lanes.iter().map(|l| l.submitted).sum();
        assert_eq!(lane_submitted + report.shed, 40);
        // The default trace level (histograms) populates the per-stage
        // breakdown: every served request contributes an e2e sample.
        let e2e = report
            .stages
            .iter()
            .find(|s| s.stage == "e2e")
            .expect("e2e stage present");
        assert_eq!(e2e.count, report.completed);
        assert!(e2e.p99_us >= e2e.p50_us);
        // …and the calibration ledger and rolling telemetry, which the CI
        // serving-smoke job asserts are non-empty in the committed report.
        assert!(
            report.calibration.iter().any(|e| e.class == "softmax"),
            "softmax-heavy traffic calibrates the softmax estimate"
        );
        assert!(report.calibration.iter().all(|e| e.samples > 0));
        assert!(
            report.timeseries.latest_active().is_some(),
            "completions land in at least one telemetry window"
        );
        assert!(
            report.folded_profile.is_empty(),
            "profiling stays off unless asked for"
        );
    }

    #[test]
    fn profiled_trace_exports_a_valid_folded_stack() {
        let config = TraceConfig {
            requests: 20,
            mode: Mode::Closed {
                clients: 2,
                window: 8,
            },
            runtime: RuntimeConfig::builder()
                .workers(2)
                .max_batch(8)
                .cache_capacity(32)
                .trace(rf_trace::TraceConfig::default().with_profile(true))
                .build()
                .unwrap(),
            ..TraceConfig::default()
        };
        let report = run_trace(&config);
        assert!(report.completed > 0);
        let frames =
            rf_trace::validate_folded(&report.folded_profile).expect("folded profile is valid");
        assert!(frames >= 1, "profiled runs capture op frames");
        assert!(
            report.folded_profile.contains(";softmax;"),
            "frames carry the workload class: {}",
            report.folded_profile
        );
    }

    #[test]
    fn traced_run_returns_a_loadable_perfetto_trace() {
        let config = TraceConfig {
            requests: 30,
            mode: Mode::Closed {
                clients: 2,
                window: 8,
            },
            runtime: RuntimeConfig::builder()
                .workers(2)
                .max_batch(8)
                .trace_level(rf_trace::TraceLevel::Full)
                .build()
                .unwrap(),
            ..TraceConfig::default()
        };
        let (report, trace) = run_traced(&config);
        let json = trace.expect("full tracing yields a trace document");
        let stats = rf_trace::validate_chrome_trace(&json).expect("trace is well-formed");
        assert!(
            stats.spans as u64 >= report.completed,
            "≥1 span per request"
        );
        assert!(stats.request_tracks >= 1);
        assert!(report.to_json().contains("\"stages\": ["));
        // Below Full no trace document is produced.
        let steady = TraceConfig {
            requests: 10,
            ..TraceConfig::default()
        };
        assert!(run_traced(&steady).1.is_none());
    }

    #[test]
    fn open_loop_trace_sheds_when_the_budget_is_tiny() {
        // A 4-slot budget against a fast Poisson stream with a 16x burst:
        // admission control must shed rather than queue without bound, and
        // everything admitted must still complete.
        let config = TraceConfig {
            requests: 120,
            mode: Mode::Open {
                rate_rps: 4000.0,
                burst_period: 20,
                burst_factor: 16.0,
            },
            graph_every: 0,
            runtime: RuntimeConfig::builder()
                .workers(1)
                .max_batch(2)
                .max_in_flight(4)
                .cache_capacity(32)
                .build()
                .unwrap(),
            ..TraceConfig::default()
        };
        let report = run_trace(&config);
        assert_eq!(report.completed + report.failed + report.shed, 120);
        assert!(report.shed > 0, "a 4-slot budget must shed under this load");
        assert!(
            report.shed_rate < 1.0,
            "admission control must still admit work"
        );
        assert!(report.mode == "open");
    }

    #[test]
    fn fleet_trace_reports_per_device_outcomes_that_sum_to_the_total() {
        let config = TraceConfig {
            requests: 40,
            devices: vec![
                DeviceSpec::tile_vm(GpuArch::h800()),
                DeviceSpec::tile_vm(GpuArch::h800()),
            ],
            routing: RoutingPolicy::LeastLoaded,
            mode: Mode::Closed {
                clients: 2,
                window: 8,
            },
            runtime: RuntimeConfig::builder()
                .workers(1)
                .max_batch(8)
                .cache_capacity(32)
                .build()
                .unwrap(),
            ..TraceConfig::default()
        };
        let report = run_trace(&config);
        assert_eq!(report.completed + report.failed + report.shed, 40);
        assert_eq!(report.arch, "NVIDIA H800+NVIDIA H800");
        assert_eq!(report.routing, "least-loaded");
        assert_eq!(report.devices.len(), 2);
        let per_device: u64 = report.devices.iter().map(|d| d.completed).sum();
        assert_eq!(
            per_device, report.completed,
            "per-device ledgers conserve the fleet total"
        );
        assert!(
            report.devices.iter().all(|d| d.busy_sim_us > 0.0),
            "least-loaded routing keeps both devices busy"
        );
        assert!(report.sim_throughput_rps > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"devices\": [{\"device\":0,"));
        assert!(json.contains("\"arch\": \"NVIDIA H800+NVIDIA H800\""));
    }
}
