//! The batch scheduler: a blocking request queue that hands worker threads
//! batches of **shape-compatible** requests (identical `(workload, arch)`
//! cache key, hence the same compiled plan), plus the completion tickets the
//! submitter waits on.
//!
//! The scheduler owns only queue state — never a compiled kernel and never a
//! lock across kernel execution. Workers pull a batch (briefly holding the
//! queue mutex), release the lock, then compile/execute/cost entirely outside
//! it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rf_gpusim::{estimate_latency, GpuArch, KernelProfile};

use crate::request::{Request, RequestId, RequestOutput, RuntimeError};

/// The outcome of one served request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestResult {
    /// The id assigned at submission.
    pub id: RequestId,
    /// Display name of the workload.
    pub workload: String,
    /// The numeric output.
    pub output: RequestOutput,
    /// Simulated latency of the batch this request rode in, in microseconds.
    pub simulated_us: f64,
    /// Number of requests in that batch.
    pub batch_size: usize,
    /// Whether the compiled plan came from the cache (`true`) or was compiled
    /// for this batch.
    pub cache_hit: bool,
}

#[derive(Debug)]
struct TicketState {
    slot: Mutex<Option<Result<RequestResult, RuntimeError>>>,
    ready: Condvar,
    /// Set once a result (or error) has been written into `slot`. Lets the
    /// `QueuedRequest` drop guard distinguish "never delivered" (worker
    /// panicked, request dropped) from "delivered and already taken".
    delivered: AtomicBool,
}

/// A handle to one in-flight request; `wait` blocks until a worker fulfils it.
#[derive(Debug)]
pub struct Ticket {
    id: RequestId,
    state: Arc<TicketState>,
}

impl Ticket {
    /// The request id this ticket tracks.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Returns the result if the request has already completed. Taking the
    /// result consumes it: a later [`Ticket::wait`] on the same ticket panics
    /// instead of blocking forever.
    pub fn try_take(&self) -> Option<Result<RequestResult, RuntimeError>> {
        self.state.slot.lock().expect("ticket lock poisoned").take()
    }

    /// Blocks until the request completes and returns its result.
    ///
    /// # Errors
    ///
    /// Returns the [`RuntimeError`] the worker recorded (e.g.
    /// [`RuntimeError::ShuttingDown`] when the engine was dropped before the
    /// request ran).
    ///
    /// # Panics
    ///
    /// Panics if the result was already consumed by [`Ticket::try_take`] —
    /// the delivery is one-shot, so waiting again can never succeed.
    pub fn wait(self) -> Result<RequestResult, RuntimeError> {
        let mut slot = self.state.slot.lock().expect("ticket lock poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            assert!(
                !self.state.delivered.load(Ordering::Acquire),
                "ticket result was already taken via try_take"
            );
            slot = self.state.ready.wait(slot).expect("ticket lock poisoned");
        }
    }

    /// Blocks for at most `timeout` waiting for the request to complete.
    ///
    /// Returns `None` when the deadline passes without a delivery — the
    /// ticket stays live and can be waited on again, so callers can bound
    /// their exposure to a wedged worker instead of blocking forever the way
    /// [`Ticket::wait`] would. Returns `Some(result)` (consuming the
    /// delivery, like `wait`) as soon as the worker fulfils the request.
    ///
    /// # Panics
    ///
    /// Panics if the result was already consumed by [`Ticket::try_take`] —
    /// the delivery is one-shot, so waiting again can never succeed.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<RequestResult, RuntimeError>> {
        // `Instant + Duration` panics on overflow (e.g. `Duration::MAX`, the
        // idiomatic "effectively no timeout"); an unrepresentable deadline
        // degrades to an unbounded wait instead.
        let deadline = Instant::now().checked_add(timeout);
        let mut slot = self.state.slot.lock().expect("ticket lock poisoned");
        loop {
            if let Some(result) = slot.take() {
                return Some(result);
            }
            assert!(
                !self.state.delivered.load(Ordering::Acquire),
                "ticket result was already taken via try_take"
            );
            slot = match deadline {
                None => self.state.ready.wait(slot).expect("ticket lock poisoned"),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    self.state
                        .ready
                        .wait_timeout(slot, deadline - now)
                        .expect("ticket lock poisoned")
                        .0
                }
            };
        }
    }
}

/// A request queued for execution, together with its completion ticket.
#[derive(Debug)]
pub struct QueuedRequest {
    /// The id assigned at submission.
    pub id: RequestId,
    /// The request itself.
    pub request: Request,
    state: Arc<TicketState>,
}

impl QueuedRequest {
    /// Wraps a request for queueing and returns the submitter's ticket.
    pub fn new(id: RequestId, request: Request) -> (Self, Ticket) {
        let state = Arc::new(TicketState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
            delivered: AtomicBool::new(false),
        });
        let ticket = Ticket {
            id,
            state: Arc::clone(&state),
        };
        (QueuedRequest { id, request, state }, ticket)
    }

    /// Delivers the result to the waiting ticket.
    pub fn fulfil(self, result: Result<RequestResult, RuntimeError>) {
        self.deliver(result);
    }

    fn deliver(&self, result: Result<RequestResult, RuntimeError>) {
        let mut slot = self.state.slot.lock().expect("ticket lock poisoned");
        *slot = Some(result);
        self.state.delivered.store(true, Ordering::Release);
        self.state.ready.notify_all();
    }
}

impl Drop for QueuedRequest {
    /// Never strand a waiter: if this request is dropped without being
    /// fulfilled — a worker panicked mid-batch, or the queue was torn down
    /// abnormally — deliver an execution failure so `Ticket::wait` returns
    /// instead of blocking forever.
    fn drop(&mut self) {
        if !self.state.delivered.load(Ordering::Acquire) {
            self.deliver(Err(RuntimeError::ExecutionFailed {
                workload: self.request.workload.name(),
            }));
        }
    }
}

#[derive(Debug, Default)]
struct SchedulerState {
    queue: VecDeque<QueuedRequest>,
    /// Number of *requests* (not batches) taken by workers and not yet
    /// finished, so `depth` reports true in-flight work.
    in_flight: usize,
    shutdown: bool,
}

/// The blocking batch queue shared by the engine front door and the workers.
#[derive(Debug)]
pub struct BatchScheduler {
    state: Mutex<SchedulerState>,
    work: Condvar,
    idle: Condvar,
    max_batch: usize,
}

impl BatchScheduler {
    /// Creates a scheduler that groups at most `max_batch` requests per batch.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        BatchScheduler {
            state: Mutex::new(SchedulerState::default()),
            work: Condvar::new(),
            idle: Condvar::new(),
            max_batch,
        }
    }

    /// The batch size bound.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Requests waiting plus requests currently executing.
    pub fn depth(&self) -> usize {
        let state = self.state.lock().expect("scheduler lock poisoned");
        state.queue.len() + state.in_flight
    }

    /// Enqueues a request.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ShuttingDown`] after [`BatchScheduler::shutdown`].
    pub fn enqueue(&self, request: QueuedRequest) -> Result<(), RuntimeError> {
        {
            let mut state = self.state.lock().expect("scheduler lock poisoned");
            if state.shutdown {
                return Err(RuntimeError::ShuttingDown);
            }
            state.queue.push_back(request);
        }
        self.work.notify_one();
        Ok(())
    }

    /// Blocks until work is available and returns the next batch: the oldest
    /// queued request plus up to `max_batch - 1` younger requests with the
    /// same workload (all batch members share one compiled plan).
    ///
    /// Returns `None` once the scheduler is shut down and drained; the calling
    /// worker should exit. The batch's requests are accounted as in-flight
    /// until the worker calls [`BatchScheduler::finish_batch`] with the batch
    /// size.
    pub fn next_batch(&self) -> Option<Vec<QueuedRequest>> {
        let mut state = self.state.lock().expect("scheduler lock poisoned");
        loop {
            if !state.queue.is_empty() {
                break;
            }
            if state.shutdown {
                return None;
            }
            state = self.work.wait(state).expect("scheduler lock poisoned");
        }
        let first = state.queue.pop_front().expect("queue checked non-empty");
        let mut batch = Vec::with_capacity(self.max_batch);
        let key = first.request.workload.clone();
        batch.push(first);
        // Single O(queue) sweep (the mutex is held here): drain matching
        // requests into the batch, keep the rest in arrival order.
        if !state.queue.is_empty()
            && batch.len() < self.max_batch
            && state.queue.iter().any(|r| r.request.workload == key)
        {
            let mut rest = VecDeque::with_capacity(state.queue.len());
            for queued in state.queue.drain(..) {
                if batch.len() < self.max_batch && queued.request.workload == key {
                    batch.push(queued);
                } else {
                    rest.push_back(queued);
                }
            }
            state.queue = rest;
        }
        state.in_flight += batch.len();
        Some(batch)
    }

    /// Marks a batch of `size` requests taken by
    /// [`BatchScheduler::next_batch`] as completed.
    pub fn finish_batch(&self, size: usize) {
        let mut state = self.state.lock().expect("scheduler lock poisoned");
        state.in_flight = state
            .in_flight
            .checked_sub(size)
            .expect("finish_batch without a matching next_batch");
        let drained = state.queue.is_empty() && state.in_flight == 0;
        drop(state);
        if drained {
            self.idle.notify_all();
        }
    }

    /// Blocks until the queue is empty and no batch is executing.
    pub fn wait_drained(&self) {
        let mut state = self.state.lock().expect("scheduler lock poisoned");
        while !(state.queue.is_empty() && state.in_flight == 0) {
            state = self.idle.wait(state).expect("scheduler lock poisoned");
        }
    }

    /// Stops accepting new requests, wakes every worker, and fails all
    /// still-queued requests with [`RuntimeError::ShuttingDown`].
    pub fn shutdown(&self) {
        let orphans: Vec<QueuedRequest> = {
            let mut state = self.state.lock().expect("scheduler lock poisoned");
            state.shutdown = true;
            state.queue.drain(..).collect()
        };
        for request in orphans {
            request.fulfil(Err(RuntimeError::ShuttingDown));
        }
        self.work.notify_all();
        self.idle.notify_all();
    }
}

/// Builds the profile of one batched launch: `batch` shape-identical requests
/// fused into a single kernel launch, scaling work and traffic linearly while
/// paying the launch overhead once.
pub fn batched_profile(profile: &KernelProfile, batch: usize) -> KernelProfile {
    let n = batch.max(1) as u64;
    KernelProfile {
        name: format!("{}[batch={batch}]", profile.name),
        flops: profile.flops * n,
        hbm_bytes: profile.hbm_bytes * n,
        blocks: profile.blocks * n,
        launches: profile.launches,
        ..profile.clone()
    }
}

/// Simulated latency of one batched launch on `arch`, in microseconds.
pub fn batch_latency_us(arch: &GpuArch, profile: &KernelProfile, batch: usize) -> f64 {
    estimate_latency(arch, &batched_profile(profile, batch)).total_us
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_codegen::Workload;
    use rf_workloads::random_matrix;

    fn softmax_request(id: RequestId, len: usize) -> (QueuedRequest, Ticket) {
        QueuedRequest::new(id, Request::softmax(random_matrix(2, len, id, -1.0, 1.0)))
    }

    #[test]
    fn batches_group_only_shape_compatible_requests() {
        let sched = BatchScheduler::new(8);
        // Interleave two shapes; batching must regroup them without reordering
        // within a shape.
        for (id, len) in [(0, 16), (1, 32), (2, 16), (3, 32), (4, 16)] {
            let (req, _ticket) = softmax_request(id, len);
            sched.enqueue(req).unwrap();
        }
        let first = sched.next_batch().unwrap();
        assert_eq!(first.len(), 3);
        assert!(first
            .iter()
            .all(|r| r.request.workload == Workload::Softmax { rows: 2, len: 16 }));
        assert_eq!(first.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 2, 4]);
        // Depth counts in-flight *requests*: 3 executing + 2 still queued.
        assert_eq!(sched.depth(), 5);
        sched.finish_batch(first.len());
        let second = sched.next_batch().unwrap();
        assert_eq!(second.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 3]);
        sched.finish_batch(second.len());
        assert_eq!(sched.depth(), 0);
    }

    #[test]
    fn max_batch_bounds_the_group() {
        let sched = BatchScheduler::new(2);
        for id in 0..5 {
            let (req, _ticket) = softmax_request(id, 16);
            sched.enqueue(req).unwrap();
        }
        assert_eq!(sched.next_batch().unwrap().len(), 2);
        assert_eq!(sched.next_batch().unwrap().len(), 2);
        assert_eq!(sched.next_batch().unwrap().len(), 1);
    }

    #[test]
    fn shutdown_fails_queued_requests_and_stops_workers() {
        let sched = BatchScheduler::new(4);
        let (req, ticket) = softmax_request(7, 16);
        sched.enqueue(req).unwrap();
        sched.shutdown();
        assert_eq!(ticket.wait().unwrap_err(), RuntimeError::ShuttingDown);
        assert!(sched.next_batch().is_none());
        let (req, _ticket) = softmax_request(8, 16);
        assert_eq!(sched.enqueue(req).unwrap_err(), RuntimeError::ShuttingDown);
    }

    #[test]
    fn batched_profile_amortises_the_launch() {
        let arch = GpuArch::a10();
        let profile = KernelProfile {
            flops: 1_000_000,
            hbm_bytes: 1_000_000,
            blocks: 64,
            ..KernelProfile::default()
        };
        let single = batch_latency_us(&arch, &profile, 1);
        let batched = batch_latency_us(&arch, &profile, 8);
        let serial = 8.0 * single;
        assert!(
            batched < serial,
            "one batched launch ({batched} us) must beat eight serial launches ({serial} us)"
        );
        let p = batched_profile(&profile, 8);
        assert_eq!(p.flops, 8_000_000);
        assert_eq!(p.launches, profile.launches);
    }

    #[test]
    #[should_panic(expected = "already taken via try_take")]
    fn waiting_after_try_take_panics_instead_of_hanging() {
        let (req, ticket) = softmax_request(11, 16);
        req.fulfil(Err(RuntimeError::ShuttingDown));
        assert!(ticket.try_take().is_some());
        let _ = ticket.wait();
    }

    #[test]
    fn dropping_an_unfulfilled_request_fails_its_ticket() {
        // A worker panic unwinds through the batch Vec, dropping its
        // QueuedRequests; waiters must observe an error, not block forever.
        let (req, ticket) = softmax_request(9, 16);
        drop(req);
        assert!(matches!(
            ticket.wait(),
            Err(RuntimeError::ExecutionFailed { workload }) if workload == "softmax_2x16"
        ));
    }

    #[test]
    fn wait_timeout_returns_none_until_delivery_and_some_after() {
        let (req, ticket) = softmax_request(21, 16);
        // Nothing delivered yet: the bounded wait must return, not hang.
        let start = Instant::now();
        assert!(ticket.wait_timeout(Duration::from_millis(30)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(30));
        // The ticket stays live: a later delivery is observed by both the
        // bounded and the blocking wait paths.
        let worker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            req.fulfil(Err(RuntimeError::ShuttingDown));
        });
        // Duration::MAX must degrade to an unbounded wait, not panic on
        // deadline overflow.
        let result = ticket
            .wait_timeout(Duration::MAX)
            .expect("delivery arrives well before the timeout");
        assert_eq!(result.unwrap_err(), RuntimeError::ShuttingDown);
        worker.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "already taken via try_take")]
    fn wait_timeout_after_try_take_panics_instead_of_spinning() {
        let (req, ticket) = softmax_request(22, 16);
        req.fulfil(Err(RuntimeError::ShuttingDown));
        assert!(ticket.try_take().is_some());
        let _ = ticket.wait_timeout(Duration::from_millis(10));
    }

    #[test]
    fn tickets_deliver_results_once() {
        let (req, ticket) = softmax_request(3, 8);
        assert!(ticket.try_take().is_none());
        let output = crate::request::execute_reference(&req.request.workload, &req.request.input);
        let result = RequestResult {
            id: 3,
            workload: req.request.workload.name(),
            output,
            simulated_us: 1.0,
            batch_size: 1,
            cache_hit: false,
        };
        req.fulfil(Ok(result.clone()));
        assert_eq!(ticket.wait().unwrap(), result);
    }
}
