//! Engine configuration: tunables plus a validating builder.
//!
//! [`RuntimeConfig`] is constructed through [`RuntimeConfig::builder`],
//! which rejects configurations that would deadlock or misbehave at runtime
//! (zero worker counts, zero in-flight budgets, inverted priority-lane
//! weights) with typed [`RuntimeError::InvalidConfig`] errors instead of
//! letting the engine panic later.
//!
//! [`FleetConfig`] scales one engine to N devices: each [`DeviceSpec`] names
//! an architecture and a [`BackendKind`], a [`RoutingPolicy`] decides
//! placement at the shared front door, and the per-device tunables
//! (`RuntimeConfig`) apply to every device uniformly — each device gets its
//! own worker pool, plan cache and in-flight budget of that size.

use crate::request::RuntimeError;
use crate::submit::LANES;
use rf_gpusim::GpuArch;
use rf_trace::{TraceConfig, TraceLevel};

/// Deficit-round-robin weights of the three priority lanes. Each iteration
/// boundary, every backlogged lane's credit grows by its weight and the lane
/// with the most credit seeds the batch, so a lane with weight `w` gets
/// roughly `w / (sum of backlogged weights)` of the iterations — and even
/// the lightest lane is served at a bounded interval (no starvation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneWeights {
    /// Weight of the [`crate::Priority::High`] lane.
    pub high: u32,
    /// Weight of the [`crate::Priority::Normal`] lane.
    pub normal: u32,
    /// Weight of the [`crate::Priority::Low`] lane.
    pub low: u32,
}

impl Default for LaneWeights {
    fn default() -> Self {
        LaneWeights {
            high: 4,
            normal: 2,
            low: 1,
        }
    }
}

impl LaneWeights {
    /// The weights as a lane-indexed array (see [`crate::Priority::lane`]).
    pub fn as_array(&self) -> [u64; LANES] {
        [self.high as u64, self.normal as u64, self.low as u64]
    }
}

/// Tunables of one [`crate::Engine`].
///
/// Build through [`RuntimeConfig::builder`] — the builder validates, so an
/// impossible configuration is a typed error at construction instead of a
/// panic inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads executing iterations.
    pub workers: usize,
    /// Maximum requests grouped into one iteration's batch.
    pub max_batch: usize,
    /// Maximum resident compiled plans.
    pub cache_capacity: usize,
    /// Bounded in-flight budget: the maximum number of submissions queued or
    /// executing at once. Submissions beyond it are shed with
    /// [`RuntimeError::Overloaded`] instead of queuing without bound.
    pub max_in_flight: usize,
    /// Priority-lane scheduling weights.
    pub lane_weights: LaneWeights,
    /// Tracing/telemetry level and span-buffer bound (see
    /// [`TraceConfig`]). Defaults to headline histograms only;
    /// [`TraceLevel::Full`] additionally buffers per-request spans for
    /// Chrome-trace export, [`TraceLevel::Off`] makes tracing zero-cost.
    pub trace: TraceConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        RuntimeConfig {
            workers,
            max_batch: 16,
            cache_capacity: 64,
            max_in_flight: 1024,
            lane_weights: LaneWeights::default(),
            trace: TraceConfig::default(),
        }
    }
}

impl RuntimeConfig {
    /// Starts a validating builder seeded with the defaults.
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder {
            config: RuntimeConfig::default(),
        }
    }

    /// Checks the configuration's invariants.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] describing the first violated
    /// invariant: zero workers / batch bound / cache capacity / in-flight
    /// budget, an in-flight budget smaller than one batch, a zero lane
    /// weight, or inverted lane weights (a lower-priority lane weighted
    /// above a higher-priority one).
    pub fn validate(&self) -> Result<(), RuntimeError> {
        let invalid = |detail: String| Err(RuntimeError::InvalidConfig { detail });
        if self.workers == 0 {
            return invalid("workers must be at least 1 (the pool could never serve)".into());
        }
        if self.max_batch == 0 {
            return invalid("max_batch must be at least 1".into());
        }
        if self.cache_capacity == 0 {
            return invalid("cache_capacity must be at least 1".into());
        }
        if self.max_in_flight == 0 {
            return invalid(
                "max_in_flight must be at least 1 (a zero budget sheds everything)".into(),
            );
        }
        if self.max_in_flight < self.max_batch {
            return invalid(format!(
                "max_in_flight ({}) must be >= max_batch ({}): a full batch must fit the budget",
                self.max_in_flight, self.max_batch
            ));
        }
        let w = self.lane_weights;
        if w.high == 0 || w.normal == 0 || w.low == 0 {
            return invalid(format!(
                "lane weights must all be positive, got high={} normal={} low={}",
                w.high, w.normal, w.low
            ));
        }
        if w.high < w.normal || w.normal < w.low {
            return invalid(format!(
                "lane weights are inverted (high={} normal={} low={}): \
                 a higher-priority lane must never be weighted below a lower one",
                w.high, w.normal, w.low
            ));
        }
        if self.trace.level == TraceLevel::Full && self.trace.capacity == 0 {
            return invalid(
                "trace capacity must be at least 1 at TraceLevel::Full \
                 (a zero buffer drops every span)"
                    .into(),
            );
        }
        if self.trace.window_ms == 0 || self.trace.windows == 0 {
            return invalid(format!(
                "telemetry windows must be non-degenerate, got window_ms={} windows={}",
                self.trace.window_ms, self.trace.windows
            ));
        }
        Ok(())
    }
}

/// Which [`crate::backend::ExecBackend`] implementation a device executes
/// with. Selected per device in a [`DeviceSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The real tile-program interpreter
    /// ([`crate::backend::TileVmBackend`]): compiled plans actually run.
    #[default]
    TileVm,
    /// The accounting-only latency simulation
    /// ([`crate::backend::CostModelBackend`]): identical compile/tune/cost
    /// pipeline, shape-correct zero outputs.
    CostModel,
}

impl BackendKind {
    /// The kind's stable name (`"tile-vm"`, `"cost-model"`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::TileVm => "tile-vm",
            BackendKind::CostModel => "cost-model",
        }
    }

    /// Looks a kind up by (case-insensitive) name; accepts the canonical
    /// names plus the `"vm"` / `"cost"` short forms used on CLI surfaces.
    pub fn by_name(name: &str) -> Option<BackendKind> {
        match name.to_ascii_lowercase().as_str() {
            "tile-vm" | "tilevm" | "vm" => Some(BackendKind::TileVm),
            "cost-model" | "costmodel" | "cost" => Some(BackendKind::CostModel),
            _ => None,
        }
    }
}

/// One device of a fleet: its architecture plus the backend kind executing
/// on it.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// The device's architecture (compilation, tuning and costing key).
    pub arch: GpuArch,
    /// How the device executes compiled plans.
    pub backend: BackendKind,
}

impl DeviceSpec {
    /// A device interpreting for real on the tile VM.
    pub fn tile_vm(arch: GpuArch) -> Self {
        DeviceSpec {
            arch,
            backend: BackendKind::TileVm,
        }
    }

    /// A device that only accounts latency on the analytical model.
    pub fn cost_model(arch: GpuArch) -> Self {
        DeviceSpec {
            arch,
            backend: BackendKind::CostModel,
        }
    }
}

/// How the fleet front door places submissions onto devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Route to the device with the shallowest queue (ties to the lowest
    /// device id). The default: balances load without any workload insight.
    #[default]
    LeastLoaded,
    /// Route by a stable hash of the workload key, so identical shapes
    /// always land on the same device — maximising that device's plan-cache
    /// and batch locality.
    StickyByKey,
    /// Tensor-parallel row-sharding for the GEMM-dominated families whose
    /// output rows are independent (MHA over query rows, quant-GEMM over
    /// activation rows): the row block is split across every device and the
    /// partial results are merged deterministically in device order.
    /// Everything that cannot shard falls back to [`Self::LeastLoaded`].
    RowShard,
    /// Route to the device with the lowest *predicted completion time*:
    /// queue backlog × the device's calibrated per-class latency estimate
    /// (measured wall µs from the calibration ledger, falling back to the
    /// device's observed mean and finally to plain least-loaded while cold).
    /// Opt-in: unlike [`Self::LeastLoaded`] this biases toward devices that
    /// have *measured* faster, so a straggler arch stops absorbing half the
    /// queue just because its queue drains slowly.
    PredictedLatency,
}

impl RoutingPolicy {
    /// The policy's stable name (`"least-loaded"`, `"sticky"`,
    /// `"row-shard"`, `"predicted-latency"`).
    pub fn name(self) -> &'static str {
        match self {
            RoutingPolicy::LeastLoaded => "least-loaded",
            RoutingPolicy::StickyByKey => "sticky",
            RoutingPolicy::RowShard => "row-shard",
            RoutingPolicy::PredictedLatency => "predicted-latency",
        }
    }

    /// Looks a policy up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<RoutingPolicy> {
        match name.to_ascii_lowercase().as_str() {
            "least-loaded" | "leastloaded" | "least" => Some(RoutingPolicy::LeastLoaded),
            "sticky" | "sticky-by-key" => Some(RoutingPolicy::StickyByKey),
            "row-shard" | "rowshard" | "shard" => Some(RoutingPolicy::RowShard),
            "predicted-latency" | "predicted" | "predictedlatency" => {
                Some(RoutingPolicy::PredictedLatency)
            }
            _ => None,
        }
    }
}

/// Configuration of a multi-device fleet engine: the device list, the
/// routing policy, and the per-device tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// The devices, in id order. Device `i` of the running fleet is
    /// `devices[i]`.
    pub devices: Vec<DeviceSpec>,
    /// How the front door places submissions.
    pub routing: RoutingPolicy,
    /// Per-device tunables: every device gets its own worker pool, plan
    /// cache, and in-flight budget of this size. The trace level is shared
    /// (one collector serves the whole fleet, events are device-tagged).
    pub runtime: RuntimeConfig,
}

impl FleetConfig {
    /// A single-device tile-VM fleet — behaviourally identical to the
    /// pre-fleet single-arch engine.
    pub fn single(arch: GpuArch) -> Self {
        FleetConfig::homogeneous(arch, 1, RuntimeConfig::default())
    }

    /// `devices` identical tile-VM devices of `arch`, each tuned by
    /// `runtime`.
    pub fn homogeneous(arch: GpuArch, devices: usize, runtime: RuntimeConfig) -> Self {
        FleetConfig {
            devices: (0..devices)
                .map(|_| DeviceSpec::tile_vm(arch.clone()))
                .collect(),
            routing: RoutingPolicy::default(),
            runtime,
        }
    }

    /// An explicitly mixed fleet.
    pub fn heterogeneous(devices: Vec<DeviceSpec>, runtime: RuntimeConfig) -> Self {
        FleetConfig {
            devices,
            routing: RoutingPolicy::default(),
            runtime,
        }
    }

    /// Returns the configuration with `routing` as the placement policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Checks the fleet's invariants: a non-empty device list and a valid
    /// per-device [`RuntimeConfig`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] describing the first violation.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        if self.devices.is_empty() {
            return Err(RuntimeError::InvalidConfig {
                detail: "fleet must have at least one device".into(),
            });
        }
        self.runtime.validate()
    }
}

/// Builder for [`RuntimeConfig`]; see [`RuntimeConfig::builder`].
#[derive(Debug, Clone)]
pub struct RuntimeConfigBuilder {
    config: RuntimeConfig,
}

impl RuntimeConfigBuilder {
    /// Sets the worker-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the per-iteration batch bound.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    /// Sets the compiled-plan cache capacity.
    pub fn cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.config.cache_capacity = cache_capacity;
        self
    }

    /// Sets the bounded in-flight budget.
    pub fn max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.config.max_in_flight = max_in_flight;
        self
    }

    /// Sets the priority-lane weights (high, normal, low).
    pub fn lane_weights(mut self, high: u32, normal: u32, low: u32) -> Self {
        self.config.lane_weights = LaneWeights { high, normal, low };
        self
    }

    /// Sets the full tracing configuration (level + span-buffer bound).
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.config.trace = trace;
        self
    }

    /// Sets just the tracing level, keeping the buffer bound.
    pub fn trace_level(mut self, level: TraceLevel) -> Self {
        self.config.trace.level = level;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// See [`RuntimeConfig::validate`].
    pub fn build(self) -> Result<RuntimeConfig, RuntimeError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(RuntimeConfig::default().validate().is_ok());
        let built = RuntimeConfig::builder().build().unwrap();
        assert_eq!(built, RuntimeConfig::default());
    }

    #[test]
    fn builder_rejects_zero_counts_with_typed_errors() {
        for (builder, needle) in [
            (RuntimeConfig::builder().workers(0), "workers"),
            (RuntimeConfig::builder().max_batch(0), "max_batch"),
            (RuntimeConfig::builder().cache_capacity(0), "cache_capacity"),
            (RuntimeConfig::builder().max_in_flight(0), "max_in_flight"),
        ] {
            let err = builder.build().unwrap_err();
            assert_eq!(err.code(), "invalid_config");
            assert!(
                err.to_string().contains(needle),
                "error `{err}` should mention `{needle}`"
            );
        }
    }

    #[test]
    fn builder_rejects_inverted_and_zero_lane_weights() {
        let err = RuntimeConfig::builder()
            .lane_weights(1, 2, 4)
            .build()
            .unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidConfig { .. }));
        assert!(err.to_string().contains("inverted"));
        let err = RuntimeConfig::builder()
            .lane_weights(4, 0, 1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("positive"));
        // Equal weights are fine (plain round-robin).
        assert!(RuntimeConfig::builder()
            .lane_weights(1, 1, 1)
            .build()
            .is_ok());
    }

    #[test]
    fn builder_sets_trace_levels_and_rejects_zero_full_buffers() {
        let config = RuntimeConfig::builder()
            .trace_level(TraceLevel::Full)
            .build()
            .unwrap();
        assert_eq!(config.trace.level, TraceLevel::Full);
        assert!(config.trace.capacity > 0, "default capacity survives");
        let config = RuntimeConfig::builder()
            .trace(TraceConfig::off())
            .build()
            .unwrap();
        assert_eq!(config.trace.level, TraceLevel::Off);
        let err = RuntimeConfig::builder()
            .trace(TraceConfig::full().with_capacity(0))
            .build()
            .unwrap_err();
        assert_eq!(err.code(), "invalid_config");
        assert!(err.to_string().contains("trace capacity"));
        // A zero buffer is fine when spans are not recorded anyway.
        assert!(RuntimeConfig::builder()
            .trace(TraceConfig::off().with_capacity(0))
            .build()
            .is_ok());
        // Degenerate telemetry windows are rejected at any level.
        let err = RuntimeConfig::builder()
            .trace(TraceConfig::off().with_windows(0, 64))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("telemetry windows"));
    }

    #[test]
    fn fleet_config_validates_devices_and_names_round_trip() {
        let fleet = FleetConfig::homogeneous(GpuArch::a10(), 4, RuntimeConfig::default());
        assert_eq!(fleet.devices.len(), 4);
        assert_eq!(fleet.routing, RoutingPolicy::LeastLoaded);
        assert!(fleet.validate().is_ok());
        let empty = FleetConfig::heterogeneous(Vec::new(), RuntimeConfig::default());
        let err = empty.validate().unwrap_err();
        assert_eq!(err.code(), "invalid_config");
        assert!(err.to_string().contains("at least one device"));
        // An invalid per-device runtime fails fleet validation too.
        let mut bad = FleetConfig::single(GpuArch::a10());
        bad.runtime.workers = 0;
        assert!(bad.validate().is_err());
        for policy in [
            RoutingPolicy::LeastLoaded,
            RoutingPolicy::StickyByKey,
            RoutingPolicy::RowShard,
            RoutingPolicy::PredictedLatency,
        ] {
            assert_eq!(RoutingPolicy::by_name(policy.name()), Some(policy));
        }
        for kind in [BackendKind::TileVm, BackendKind::CostModel] {
            assert_eq!(BackendKind::by_name(kind.name()), Some(kind));
        }
        assert!(RoutingPolicy::by_name("fifo").is_none());
        assert!(BackendKind::by_name("fpga").is_none());
    }

    #[test]
    fn builder_rejects_budget_smaller_than_a_batch() {
        let err = RuntimeConfig::builder()
            .max_batch(16)
            .max_in_flight(8)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("max_in_flight"));
        assert!(RuntimeConfig::builder()
            .max_batch(16)
            .max_in_flight(16)
            .build()
            .is_ok());
    }
}
