//! Engine configuration: tunables plus a validating builder.
//!
//! [`RuntimeConfig`] is constructed through [`RuntimeConfig::builder`],
//! which rejects configurations that would deadlock or misbehave at runtime
//! (zero worker counts, zero in-flight budgets, inverted priority-lane
//! weights) with typed [`RuntimeError::InvalidConfig`] errors instead of
//! letting the engine panic later.

use crate::request::RuntimeError;
use crate::submit::LANES;
use rf_trace::{TraceConfig, TraceLevel};

/// Deficit-round-robin weights of the three priority lanes. Each iteration
/// boundary, every backlogged lane's credit grows by its weight and the lane
/// with the most credit seeds the batch, so a lane with weight `w` gets
/// roughly `w / (sum of backlogged weights)` of the iterations — and even
/// the lightest lane is served at a bounded interval (no starvation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneWeights {
    /// Weight of the [`crate::Priority::High`] lane.
    pub high: u32,
    /// Weight of the [`crate::Priority::Normal`] lane.
    pub normal: u32,
    /// Weight of the [`crate::Priority::Low`] lane.
    pub low: u32,
}

impl Default for LaneWeights {
    fn default() -> Self {
        LaneWeights {
            high: 4,
            normal: 2,
            low: 1,
        }
    }
}

impl LaneWeights {
    /// The weights as a lane-indexed array (see [`crate::Priority::lane`]).
    pub fn as_array(&self) -> [u64; LANES] {
        [self.high as u64, self.normal as u64, self.low as u64]
    }
}

/// Tunables of one [`crate::Engine`].
///
/// Build through [`RuntimeConfig::builder`] — the builder validates, so an
/// impossible configuration is a typed error at construction instead of a
/// panic inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads executing iterations.
    pub workers: usize,
    /// Maximum requests grouped into one iteration's batch.
    pub max_batch: usize,
    /// Maximum resident compiled plans.
    pub cache_capacity: usize,
    /// Bounded in-flight budget: the maximum number of submissions queued or
    /// executing at once. Submissions beyond it are shed with
    /// [`RuntimeError::Overloaded`] instead of queuing without bound.
    pub max_in_flight: usize,
    /// Priority-lane scheduling weights.
    pub lane_weights: LaneWeights,
    /// Tracing/telemetry level and span-buffer bound (see
    /// [`TraceConfig`]). Defaults to headline histograms only;
    /// [`TraceLevel::Full`] additionally buffers per-request spans for
    /// Chrome-trace export, [`TraceLevel::Off`] makes tracing zero-cost.
    pub trace: TraceConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        RuntimeConfig {
            workers,
            max_batch: 16,
            cache_capacity: 64,
            max_in_flight: 1024,
            lane_weights: LaneWeights::default(),
            trace: TraceConfig::default(),
        }
    }
}

impl RuntimeConfig {
    /// Starts a validating builder seeded with the defaults.
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder {
            config: RuntimeConfig::default(),
        }
    }

    /// Checks the configuration's invariants.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] describing the first violated
    /// invariant: zero workers / batch bound / cache capacity / in-flight
    /// budget, an in-flight budget smaller than one batch, a zero lane
    /// weight, or inverted lane weights (a lower-priority lane weighted
    /// above a higher-priority one).
    pub fn validate(&self) -> Result<(), RuntimeError> {
        let invalid = |detail: String| Err(RuntimeError::InvalidConfig { detail });
        if self.workers == 0 {
            return invalid("workers must be at least 1 (the pool could never serve)".into());
        }
        if self.max_batch == 0 {
            return invalid("max_batch must be at least 1".into());
        }
        if self.cache_capacity == 0 {
            return invalid("cache_capacity must be at least 1".into());
        }
        if self.max_in_flight == 0 {
            return invalid(
                "max_in_flight must be at least 1 (a zero budget sheds everything)".into(),
            );
        }
        if self.max_in_flight < self.max_batch {
            return invalid(format!(
                "max_in_flight ({}) must be >= max_batch ({}): a full batch must fit the budget",
                self.max_in_flight, self.max_batch
            ));
        }
        let w = self.lane_weights;
        if w.high == 0 || w.normal == 0 || w.low == 0 {
            return invalid(format!(
                "lane weights must all be positive, got high={} normal={} low={}",
                w.high, w.normal, w.low
            ));
        }
        if w.high < w.normal || w.normal < w.low {
            return invalid(format!(
                "lane weights are inverted (high={} normal={} low={}): \
                 a higher-priority lane must never be weighted below a lower one",
                w.high, w.normal, w.low
            ));
        }
        if self.trace.level == TraceLevel::Full && self.trace.capacity == 0 {
            return invalid(
                "trace capacity must be at least 1 at TraceLevel::Full \
                 (a zero buffer drops every span)"
                    .into(),
            );
        }
        Ok(())
    }
}

/// Builder for [`RuntimeConfig`]; see [`RuntimeConfig::builder`].
#[derive(Debug, Clone)]
pub struct RuntimeConfigBuilder {
    config: RuntimeConfig,
}

impl RuntimeConfigBuilder {
    /// Sets the worker-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the per-iteration batch bound.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    /// Sets the compiled-plan cache capacity.
    pub fn cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.config.cache_capacity = cache_capacity;
        self
    }

    /// Sets the bounded in-flight budget.
    pub fn max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.config.max_in_flight = max_in_flight;
        self
    }

    /// Sets the priority-lane weights (high, normal, low).
    pub fn lane_weights(mut self, high: u32, normal: u32, low: u32) -> Self {
        self.config.lane_weights = LaneWeights { high, normal, low };
        self
    }

    /// Sets the full tracing configuration (level + span-buffer bound).
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.config.trace = trace;
        self
    }

    /// Sets just the tracing level, keeping the buffer bound.
    pub fn trace_level(mut self, level: TraceLevel) -> Self {
        self.config.trace.level = level;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// See [`RuntimeConfig::validate`].
    pub fn build(self) -> Result<RuntimeConfig, RuntimeError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(RuntimeConfig::default().validate().is_ok());
        let built = RuntimeConfig::builder().build().unwrap();
        assert_eq!(built, RuntimeConfig::default());
    }

    #[test]
    fn builder_rejects_zero_counts_with_typed_errors() {
        for (builder, needle) in [
            (RuntimeConfig::builder().workers(0), "workers"),
            (RuntimeConfig::builder().max_batch(0), "max_batch"),
            (RuntimeConfig::builder().cache_capacity(0), "cache_capacity"),
            (RuntimeConfig::builder().max_in_flight(0), "max_in_flight"),
        ] {
            let err = builder.build().unwrap_err();
            assert_eq!(err.code(), "invalid_config");
            assert!(
                err.to_string().contains(needle),
                "error `{err}` should mention `{needle}`"
            );
        }
    }

    #[test]
    fn builder_rejects_inverted_and_zero_lane_weights() {
        let err = RuntimeConfig::builder()
            .lane_weights(1, 2, 4)
            .build()
            .unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidConfig { .. }));
        assert!(err.to_string().contains("inverted"));
        let err = RuntimeConfig::builder()
            .lane_weights(4, 0, 1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("positive"));
        // Equal weights are fine (plain round-robin).
        assert!(RuntimeConfig::builder()
            .lane_weights(1, 1, 1)
            .build()
            .is_ok());
    }

    #[test]
    fn builder_sets_trace_levels_and_rejects_zero_full_buffers() {
        let config = RuntimeConfig::builder()
            .trace_level(TraceLevel::Full)
            .build()
            .unwrap();
        assert_eq!(config.trace.level, TraceLevel::Full);
        assert!(config.trace.capacity > 0, "default capacity survives");
        let config = RuntimeConfig::builder()
            .trace(TraceConfig::off())
            .build()
            .unwrap();
        assert_eq!(config.trace.level, TraceLevel::Off);
        let err = RuntimeConfig::builder()
            .trace(TraceConfig::full().with_capacity(0))
            .build()
            .unwrap_err();
        assert_eq!(err.code(), "invalid_config");
        assert!(err.to_string().contains("trace capacity"));
        // A zero buffer is fine when spans are not recorded anyway.
        assert!(RuntimeConfig::builder()
            .trace(TraceConfig::off().with_capacity(0))
            .build()
            .is_ok());
    }

    #[test]
    fn builder_rejects_budget_smaller_than_a_batch() {
        let err = RuntimeConfig::builder()
            .max_batch(16)
            .max_in_flight(8)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("max_in_flight"));
        assert!(RuntimeConfig::builder()
            .max_batch(16)
            .max_in_flight(16)
            .build()
            .is_ok());
    }
}
