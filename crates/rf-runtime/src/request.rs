//! Requests, their input tensors, outputs and the numeric execution paths.
//!
//! A [`Request`] pairs a [`Workload`] (the shape description the compiler
//! understands, and the cache key) with a [`RequestInput`] (the concrete
//! tensors to run the fused kernel over). Two execution paths are provided:
//!
//! * [`execute_plan`] — interprets a compiled plan's tile program on the
//!   `rf_tile::exec` VM, honouring the auto-tuner's tile sizes and segment
//!   strategy. This is the path the [`crate::engine::Engine`] worker pool
//!   serves: the cached [`CompiledKernel`] *is* the executable, there is no
//!   parallel hand-rolled kernel dispatch;
//! * [`execute_reference`] — the unfused naive kernels from `rf-kernels`,
//!   used by tests as the correctness oracle for everything the runtime
//!   serves.

use std::fmt;
use std::time::Duration;

use rf_codegen::{CompiledKernel, Workload};
use rf_graph::GraphError;
use rf_kernels::moe::RoutingDecision;
use rf_kernels::{attention, moe, nonml, quant, softmax};
use rf_tile::exec::{ExecInput, ExecOutput};
use rf_workloads::Matrix;

/// Monotonically increasing identifier assigned to each submitted request.
pub type RequestId = u64;

/// The admission-control state behind a [`RuntimeError::Overloaded`] shed:
/// how full the engine was when the request was turned away. Implements
/// [`std::error::Error`] so it can be reached through
/// [`std::error::Error::source`] chaining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadInfo {
    /// Requests queued or executing when the submission arrived.
    pub in_flight: usize,
    /// The engine's bounded in-flight budget
    /// ([`crate::RuntimeConfig::max_in_flight`]).
    pub budget: usize,
}

impl fmt::Display for OverloadInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "in-flight budget exhausted: {} of {} slots occupied",
            self.in_flight, self.budget
        )
    }
}

impl std::error::Error for OverloadInfo {}

/// Errors reported by the serving runtime.
///
/// The enum is `#[non_exhaustive]`: downstream matchers must carry a
/// wildcard arm, so future serving failure modes can be added without a
/// breaking release. Every variant has a stable [`RuntimeError::code`]
/// string for log scraping, and the variants that wrap a deeper failure
/// ([`RuntimeError::Graph`], [`RuntimeError::Overloaded`]) expose it through
/// [`std::error::Error::source`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The input tensor kind does not match the workload family (e.g. routing
    /// tensors submitted with a softmax workload).
    InputMismatch {
        /// Name of the offending workload.
        workload: String,
        /// The input kind the workload requires.
        expected: &'static str,
        /// The input kind that was provided.
        got: &'static str,
    },
    /// The input tensor shapes disagree with the workload configuration.
    ShapeMismatch {
        /// Name of the offending workload.
        workload: String,
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// The engine is shutting down and no longer accepts requests.
    ShuttingDown,
    /// A worker failed (panicked) while executing the batch this request was
    /// part of; the request was not served.
    ExecutionFailed {
        /// Name of the workload whose batch failed.
        workload: String,
    },
    /// A graph submission could not be served (missing or misshapen input
    /// binding, or a region step whose tensors the VM rejected).
    Graph {
        /// Human-readable description of the failure.
        detail: String,
        /// The graph-level error this failure originated from, when the
        /// failure came out of `rf-graph` (binding or evaluation); reachable
        /// via [`std::error::Error::source`].
        source: Option<GraphError>,
    },
    /// The engine's bounded in-flight budget is exhausted; the submission was
    /// shed instead of queued. Graceful degradation under open-loop overload:
    /// the caller should back off for roughly `retry_hint` and resubmit.
    Overloaded {
        /// A backoff estimate derived from the current depth and the recent
        /// mean iteration latency.
        retry_hint: Duration,
        /// The admission-control state at shed time; reachable via
        /// [`std::error::Error::source`].
        source: OverloadInfo,
    },
    /// A [`crate::RuntimeConfig`] failed validation (zero worker count, zero
    /// in-flight budget, inverted priority-lane weights, …).
    InvalidConfig {
        /// Human-readable description of the rejected configuration.
        detail: String,
    },
}

impl RuntimeError {
    /// A stable, machine-scrapable identifier for the error class. These
    /// strings are part of the API: log pipelines may key on them, so they
    /// never change even if the human-readable `Display` text does.
    pub fn code(&self) -> &'static str {
        match self {
            RuntimeError::InputMismatch { .. } => "input_mismatch",
            RuntimeError::ShapeMismatch { .. } => "shape_mismatch",
            RuntimeError::ShuttingDown => "shutting_down",
            RuntimeError::ExecutionFailed { .. } => "execution_failed",
            RuntimeError::Graph { .. } => "graph",
            RuntimeError::Overloaded { .. } => "overloaded",
            RuntimeError::InvalidConfig { .. } => "invalid_config",
        }
    }

    /// Builds a [`RuntimeError::Graph`] with no deeper source.
    pub(crate) fn graph(detail: impl Into<String>) -> RuntimeError {
        RuntimeError::Graph {
            detail: detail.into(),
            source: None,
        }
    }

    /// Builds a [`RuntimeError::Graph`] from an `rf-graph` error, preserving
    /// it as the `source`.
    pub(crate) fn from_graph_error(err: GraphError) -> RuntimeError {
        RuntimeError::Graph {
            detail: err.to_string(),
            source: Some(err),
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InputMismatch {
                workload,
                expected,
                got,
            } => write!(
                f,
                "workload `{workload}` requires {expected} input, got {got}"
            ),
            RuntimeError::ShapeMismatch { workload, detail } => {
                write!(f, "workload `{workload}`: {detail}")
            }
            RuntimeError::ShuttingDown => write!(f, "engine is shutting down"),
            RuntimeError::ExecutionFailed { workload } => {
                write!(f, "execution of workload `{workload}` failed")
            }
            RuntimeError::Graph { detail, .. } => write!(f, "graph execution failed: {detail}"),
            RuntimeError::Overloaded { retry_hint, source } => write!(
                f,
                "engine overloaded ({source}); retry in ~{:.1} ms",
                retry_hint.as_secs_f64() * 1e3
            ),
            RuntimeError::InvalidConfig { detail } => {
                write!(f, "invalid runtime configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Graph {
                source: Some(inner),
                ..
            } => Some(inner),
            RuntimeError::Overloaded { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The input tensors of one request. Each variant serves one workload family.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestInput {
    /// Independent rows reduced along the row axis: softmax and variance.
    Rows(Matrix),
    /// One `(batch, head)` attention slice: `q` is `[q_len, qk_dim]`, `k` is
    /// `[kv_len, qk_dim]`, `v` is `[kv_len, head_dim]`.
    Attention {
        /// Query matrix.
        q: Matrix,
        /// Key matrix.
        k: Matrix,
        /// Value matrix.
        v: Matrix,
    },
    /// MoE routing: token activations `[tokens, hd]` and router weights
    /// `[hd, experts]`.
    Routing {
        /// Token activations.
        x: Matrix,
        /// Routing weight matrix.
        w: Matrix,
    },
    /// FP8 per-token quantization + GEMM: activations `[m, k]`, weights `[k, n]`.
    QuantGemm {
        /// Activation matrix.
        a: Matrix,
        /// Weight matrix.
        w: Matrix,
    },
    /// Moment of inertia: per-particle masses and positions `[n, dim]`.
    Inertia {
        /// Particle masses.
        masses: Vec<f64>,
        /// Particle positions.
        positions: Matrix,
    },
}

impl RequestInput {
    /// Short name of the input kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            RequestInput::Rows(_) => "row-matrix",
            RequestInput::Attention { .. } => "attention (q/k/v)",
            RequestInput::Routing { .. } => "routing (x/w)",
            RequestInput::QuantGemm { .. } => "quant-gemm (a/w)",
            RequestInput::Inertia { .. } => "inertia (masses/positions)",
        }
    }

    /// A borrowed VM view of the tensors — the form
    /// [`CompiledKernel::run`](rf_codegen::CompiledKernel::run) consumes. No
    /// tensor is copied; the serving hot path hands the VM references into
    /// the queued request.
    pub fn as_exec(&self) -> ExecInput<'_> {
        match self {
            RequestInput::Rows(m) => ExecInput::Rows(m),
            RequestInput::Attention { q, k, v } => ExecInput::Attention { q, k, v },
            RequestInput::Routing { x, w } => ExecInput::Routing { x, w },
            RequestInput::QuantGemm { a, w } => ExecInput::QuantGemm { a, w },
            RequestInput::Inertia { masses, positions } => ExecInput::Inertia { masses, positions },
        }
    }
}

/// The output of one served request.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOutput {
    /// A dense matrix result (softmax probabilities, attention output,
    /// quant+GEMM output).
    Matrix(Matrix),
    /// One scalar per row/system (variance, moment of inertia).
    Values(Vec<f64>),
    /// Per-token expert selections (MoE routing).
    Routing(Vec<RoutingDecision>),
    /// The declared outputs of a served graph submission, in declaration
    /// order.
    Tensors(Vec<Matrix>),
}

impl RequestOutput {
    /// Converts a VM output into a request output (the routing decision
    /// types map field-for-field).
    pub fn from_exec(output: ExecOutput) -> RequestOutput {
        match output {
            ExecOutput::Matrix(m) => RequestOutput::Matrix(m),
            ExecOutput::Values(v) => RequestOutput::Values(v),
            ExecOutput::TopK(decisions) => RequestOutput::Routing(
                decisions
                    .into_iter()
                    .map(|d| RoutingDecision {
                        experts: d.experts,
                        probs: d.probs,
                    })
                    .collect(),
            ),
        }
    }

    /// Whether two outputs agree element-wise within a relative tolerance.
    pub fn approx_eq(&self, other: &RequestOutput, tolerance: f64) -> bool {
        match (self, other) {
            (RequestOutput::Matrix(a), RequestOutput::Matrix(b)) => {
                a.rows() == b.rows()
                    && a.cols() == b.cols()
                    && rf_kernels::max_rel_diff(a.as_slice(), b.as_slice()) <= tolerance
            }
            (RequestOutput::Values(a), RequestOutput::Values(b)) => {
                a.len() == b.len() && rf_kernels::max_rel_diff(a, b) <= tolerance
            }
            (RequestOutput::Routing(a), RequestOutput::Routing(b)) => {
                moe::decisions_equal(a, b, tolerance)
            }
            (RequestOutput::Tensors(a), RequestOutput::Tensors(b)) => {
                a.len() == b.len()
                    && a.iter().zip(b).all(|(x, y)| {
                        x.rows() == y.rows()
                            && x.cols() == y.cols()
                            && rf_kernels::max_rel_diff(x.as_slice(), y.as_slice()) <= tolerance
                    })
            }
            _ => false,
        }
    }
}

/// One serving request: a compiler-visible workload plus concrete tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The workload (compilation cache key).
    pub workload: Workload,
    /// The input tensors.
    pub input: RequestInput,
}

impl Request {
    /// Creates a request after validating that the input matches the workload.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InputMismatch`] or
    /// [`RuntimeError::ShapeMismatch`] when the tensors cannot serve the
    /// workload.
    pub fn new(workload: Workload, input: RequestInput) -> Result<Self, RuntimeError> {
        validate(&workload, &input)?;
        Ok(Request { workload, input })
    }

    /// Builds a softmax request whose workload shape is derived from the
    /// input matrix (`rows × len`).
    pub fn softmax(rows: Matrix) -> Self {
        let workload = Workload::Softmax {
            rows: rows.rows(),
            len: rows.cols(),
        };
        Request {
            workload,
            input: RequestInput::Rows(rows),
        }
    }
}

fn mismatch(workload: &Workload, expected: &'static str, input: &RequestInput) -> RuntimeError {
    RuntimeError::InputMismatch {
        workload: workload.name(),
        expected,
        got: input.kind(),
    }
}

fn shape_err(workload: &Workload, detail: String) -> RuntimeError {
    RuntimeError::ShapeMismatch {
        workload: workload.name(),
        detail,
    }
}

/// Validates that `input`'s kind and shapes can serve `workload`.
///
/// # Errors
///
/// See [`Request::new`].
pub fn validate(workload: &Workload, input: &RequestInput) -> Result<(), RuntimeError> {
    match workload {
        Workload::Softmax { rows, len } => match input {
            RequestInput::Rows(m) => {
                if m.rows() != *rows || m.cols() != *len {
                    return Err(shape_err(
                        workload,
                        format!(
                            "expected a {rows}x{len} matrix, got {}x{}",
                            m.rows(),
                            m.cols()
                        ),
                    ));
                }
                if *rows == 0 || *len == 0 {
                    return Err(shape_err(
                        workload,
                        "softmax input must be non-empty".to_string(),
                    ));
                }
                Ok(())
            }
            other => Err(mismatch(workload, "row-matrix", other)),
        },
        Workload::Variance(c) => match input {
            RequestInput::Rows(m) => {
                if m.cols() != c.l || c.l == 0 {
                    return Err(shape_err(
                        workload,
                        format!(
                            "expected non-empty rows of length {}, got {}",
                            c.l,
                            m.cols()
                        ),
                    ));
                }
                if m.rows() == 0 {
                    return Err(shape_err(
                        workload,
                        "variance input must have at least one row".to_string(),
                    ));
                }
                Ok(())
            }
            other => Err(mismatch(workload, "row-matrix", other)),
        },
        Workload::Mha(c) => match input {
            RequestInput::Attention { q, k, v } => {
                let ok = q.rows() == c.q
                    && q.cols() == c.hd
                    && k.rows() == c.kv
                    && k.cols() == c.hd
                    && v.rows() == c.kv
                    && v.cols() == c.hd;
                if !ok {
                    return Err(shape_err(
                        workload,
                        format!(
                            "expected q [{}x{}], k/v [{}x{}]; got q [{}x{}], k [{}x{}], v [{}x{}]",
                            c.q,
                            c.hd,
                            c.kv,
                            c.hd,
                            q.rows(),
                            q.cols(),
                            k.rows(),
                            k.cols(),
                            v.rows(),
                            v.cols()
                        ),
                    ));
                }
                Ok(())
            }
            other => Err(mismatch(workload, "attention (q/k/v)", other)),
        },
        Workload::Mla(c) => match input {
            RequestInput::Attention { q, k, v } => {
                let ok = q.rows() == 1
                    && q.cols() == c.qk_dim()
                    && k.rows() == c.kv
                    && k.cols() == c.qk_dim()
                    && v.rows() == c.kv
                    && v.cols() == c.hd;
                if !ok {
                    return Err(shape_err(
                        workload,
                        format!(
                            "expected q [1x{}], k [{}x{}], v [{}x{}]; got q [{}x{}], k [{}x{}], v [{}x{}]",
                            c.qk_dim(),
                            c.kv,
                            c.qk_dim(),
                            c.kv,
                            c.hd,
                            q.rows(),
                            q.cols(),
                            k.rows(),
                            k.cols(),
                            v.rows(),
                            v.cols()
                        ),
                    ));
                }
                Ok(())
            }
            other => Err(mismatch(workload, "attention (q/k/v)", other)),
        },
        Workload::Moe(c) => match input {
            RequestInput::Routing { x, w } => {
                // The fused routing kernel asserts topk <= experts; reject
                // inconsistent configurations at the front door instead.
                if c.topk == 0 || c.topk > c.en {
                    return Err(shape_err(
                        workload,
                        format!("topk ({}) must be in 1..={} (expert count)", c.topk, c.en),
                    ));
                }
                let ok = x.cols() == c.hd && w.rows() == c.hd && w.cols() == c.en && x.rows() > 0;
                if !ok {
                    return Err(shape_err(
                        workload,
                        format!(
                            "expected x [*x{}], w [{}x{}]; got x [{}x{}], w [{}x{}]",
                            c.hd,
                            c.hd,
                            c.en,
                            x.rows(),
                            x.cols(),
                            w.rows(),
                            w.cols()
                        ),
                    ));
                }
                Ok(())
            }
            other => Err(mismatch(workload, "routing (x/w)", other)),
        },
        Workload::Quant(c) => match input {
            RequestInput::QuantGemm { a, w } => {
                let ok = a.cols() == c.k
                    && w.rows() == c.k
                    && w.cols() == c.n
                    && a.rows() > 0
                    && c.k > 0;
                if !ok {
                    return Err(shape_err(
                        workload,
                        format!(
                            "expected a [*x{}], w [{}x{}]; got a [{}x{}], w [{}x{}]",
                            c.k,
                            c.k,
                            c.n,
                            a.rows(),
                            a.cols(),
                            w.rows(),
                            w.cols()
                        ),
                    ));
                }
                Ok(())
            }
            other => Err(mismatch(workload, "quant-gemm (a/w)", other)),
        },
        Workload::Inertia(c) => match input {
            RequestInput::Inertia { masses, positions } => {
                let ok = masses.len() == positions.rows()
                    && positions.cols() == c.dim
                    && !masses.is_empty();
                if !ok {
                    return Err(shape_err(
                        workload,
                        format!(
                            "expected {} masses and positions [*x{}]; got {} masses, positions [{}x{}]",
                            positions.rows(),
                            c.dim,
                            masses.len(),
                            positions.rows(),
                            positions.cols()
                        ),
                    ));
                }
                Ok(())
            }
            other => Err(mismatch(workload, "inertia (masses/positions)", other)),
        },
    }
}

fn attention_scale(qk_dim: usize) -> f64 {
    1.0 / (qk_dim.max(1) as f64).sqrt()
}

/// Executes a validated request by interpreting `plan`'s tile program on the
/// `rf_tile::exec` VM — the execution path the runtime serves. The plan is
/// the cached [`CompiledKernel`], so a cache hit reuses both the tuning *and*
/// the executable; there is no workload-matching kernel dispatch here.
///
/// # Errors
///
/// Returns [`RuntimeError::ExecutionFailed`] when the plan carries no
/// executable program or the VM rejects the tensors. Front-door validation
/// catches kind and shape mismatches for engine-submitted requests, but
/// value-dependent rejections (e.g. an inertia system whose total mass is
/// not positive) surface here; the engine delivers them to the ticket and
/// counts them in the `failed` metrics instead of panicking the worker.
pub fn execute_plan(
    plan: &CompiledKernel,
    request: &Request,
) -> Result<RequestOutput, RuntimeError> {
    plan.run(&request.input.as_exec())
        .map(RequestOutput::from_exec)
        .map_err(|_| RuntimeError::ExecutionFailed {
            workload: request.workload.name(),
        })
}

/// Executes a validated request like [`execute_plan`] and additionally
/// returns the tile-VM's op-level profile. The output is bit-identical to
/// [`execute_plan`]'s — the profiled kernel entry point wraps the same
/// interpreter call.
///
/// # Errors
///
/// Exactly the errors of [`execute_plan`].
pub fn execute_plan_profiled(
    plan: &CompiledKernel,
    request: &Request,
) -> Result<(RequestOutput, rf_tile::ExecProfile), RuntimeError> {
    plan.run_profiled(&request.input.as_exec())
        .map(|(output, profile)| (RequestOutput::from_exec(output), profile))
        .map_err(|_| RuntimeError::ExecutionFailed {
            workload: request.workload.name(),
        })
}

/// Executes a validated request with the **unfused** reference kernels (the
/// correctness oracle for [`execute_plan`]).
pub fn execute_reference(workload: &Workload, input: &RequestInput) -> RequestOutput {
    match (workload, input) {
        (Workload::Softmax { .. }, RequestInput::Rows(m)) => {
            RequestOutput::Matrix(softmax::softmax_rows(m))
        }
        (Workload::Variance(_), RequestInput::Rows(m)) => {
            RequestOutput::Values(nonml::variance_rows(m, nonml::variance_naive))
        }
        (Workload::Mha(_) | Workload::Mla(_), RequestInput::Attention { q, k, v }) => {
            RequestOutput::Matrix(attention::attention_naive(
                q,
                k,
                v,
                attention_scale(q.cols()),
            ))
        }
        (Workload::Moe(c), RequestInput::Routing { x, w }) => {
            RequestOutput::Routing(moe::route_naive(x, w, c.topk))
        }
        (Workload::Quant(_), RequestInput::QuantGemm { a, w }) => {
            RequestOutput::Matrix(quant::quant_gemm_naive(a, w))
        }
        (Workload::Inertia(_), RequestInput::Inertia { masses, positions }) => {
            RequestOutput::Values(vec![nonml::inertia_naive(masses, positions)])
        }
        _ => unreachable!("requests are validated before execution"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_gpusim::GpuArch;
    use rf_workloads::{
        inertia_tiny, mha_tiny, mla_tiny, moe_tiny, quant_tiny, random_matrix, random_vec,
        variance_tiny,
    };

    const TOL: f64 = 1e-9;

    fn mha_request() -> Request {
        let c = mha_tiny();
        Request::new(
            Workload::Mha(c.clone()),
            RequestInput::Attention {
                q: random_matrix(c.q, c.hd, 1, -1.0, 1.0),
                k: random_matrix(c.kv, c.hd, 2, -1.0, 1.0),
                v: random_matrix(c.kv, c.hd, 3, -1.0, 1.0),
            },
        )
        .unwrap()
    }

    #[test]
    fn every_workload_family_executes_and_matches_reference() {
        let moe = moe_tiny();
        let quant = quant_tiny();
        let var = variance_tiny();
        let inertia = inertia_tiny();
        let mla = mla_tiny();
        let requests = vec![
            Request::softmax(random_matrix(4, 64, 10, -3.0, 3.0)),
            mha_request(),
            Request::new(
                Workload::Mla(mla.clone()),
                RequestInput::Attention {
                    q: random_matrix(1, mla.qk_dim(), 4, -1.0, 1.0),
                    k: random_matrix(mla.kv, mla.qk_dim(), 5, -1.0, 1.0),
                    v: random_matrix(mla.kv, mla.hd, 6, -1.0, 1.0),
                },
            )
            .unwrap(),
            Request::new(
                Workload::Moe(moe.clone()),
                RequestInput::Routing {
                    x: random_matrix(6, moe.hd, 7, -1.0, 1.0),
                    w: random_matrix(moe.hd, moe.en, 8, -1.0, 1.0),
                },
            )
            .unwrap(),
            Request::new(
                Workload::Quant(quant.clone()),
                RequestInput::QuantGemm {
                    a: random_matrix(5, quant.k, 9, -1.0, 1.0),
                    w: random_matrix(quant.k, quant.n, 11, -1.0, 1.0),
                },
            )
            .unwrap(),
            Request::new(
                Workload::Variance(var.clone()),
                RequestInput::Rows(random_matrix(3, var.l, 12, -2.0, 2.0)),
            )
            .unwrap(),
            Request::new(
                Workload::Inertia(inertia.clone()),
                RequestInput::Inertia {
                    masses: random_vec(32, 13, 0.1, 2.0),
                    positions: random_matrix(32, inertia.dim, 14, -1.0, 1.0),
                },
            )
            .unwrap(),
        ];
        let arch = GpuArch::a10();
        for req in requests {
            let plan = rf_codegen::compile_workload(&req.workload, &arch);
            assert!(
                plan.program.as_ref().is_some_and(|p| p.binding.is_some()),
                "{}: compiled kernels must carry an executable program",
                req.workload.name()
            );
            let served = execute_plan(&plan, &req).expect("plan executes");
            let reference = execute_reference(&req.workload, &req.input);
            assert!(
                served.approx_eq(&reference, TOL),
                "{}: interpreted plan and reference disagree",
                req.workload.name()
            );
        }
    }

    #[test]
    fn plans_without_programs_fail_cleanly() {
        let req = Request::softmax(random_matrix(2, 8, 1, -1.0, 1.0));
        let mut plan = rf_codegen::compile_workload(&req.workload, &GpuArch::a10());
        plan.program = None;
        let err = execute_plan(&plan, &req).unwrap_err();
        assert!(matches!(err, RuntimeError::ExecutionFailed { .. }));
    }

    #[test]
    fn mismatched_plan_and_input_fail_cleanly() {
        // A plan compiled for one family must reject another family's
        // tensors instead of panicking the worker.
        let softmax = Request::softmax(random_matrix(2, 8, 1, -1.0, 1.0));
        let plan =
            rf_codegen::compile_workload(&Workload::Variance(variance_tiny()), &GpuArch::a10());
        // Variance also consumes row-matrices, so cross-feed attention input.
        let mha = mha_request();
        let err = execute_plan(&plan, &mha).unwrap_err();
        assert!(matches!(err, RuntimeError::ExecutionFailed { .. }));
        // Same-kind input is accepted (the VM reads shapes from the tensors).
        assert!(execute_plan(&plan, &softmax).is_ok());
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let err = Request::new(
            Workload::Softmax { rows: 2, len: 4 },
            RequestInput::Inertia {
                masses: vec![1.0],
                positions: random_matrix(1, 3, 1, 0.0, 1.0),
            },
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::InputMismatch { .. }));
        assert!(err.to_string().contains("row-matrix"));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let err = Request::new(
            Workload::Softmax { rows: 2, len: 4 },
            RequestInput::Rows(random_matrix(2, 5, 1, 0.0, 1.0)),
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::ShapeMismatch { .. }));

        let c = moe_tiny();
        let err = Request::new(
            Workload::Moe(c.clone()),
            RequestInput::Routing {
                x: random_matrix(4, c.hd + 1, 2, 0.0, 1.0),
                w: random_matrix(c.hd, c.en, 3, 0.0, 1.0),
            },
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::ShapeMismatch { .. }));
    }

    #[test]
    fn kernel_panicking_inputs_are_rejected_up_front() {
        // Empty softmax rows would hit the non-empty assert in rf-kernels.
        let err = validate(
            &Workload::Softmax { rows: 2, len: 0 },
            &RequestInput::Rows(Matrix::zeros(2, 0)),
        )
        .unwrap_err();
        assert!(err.to_string().contains("non-empty"));

        // topk > expert count would hit the assert in the routing kernel.
        let mut c = moe_tiny();
        c.topk = c.en + 1;
        let err = validate(
            &Workload::Moe(c.clone()),
            &RequestInput::Routing {
                x: random_matrix(2, c.hd, 1, 0.0, 1.0),
                w: random_matrix(c.hd, c.en, 2, 0.0, 1.0),
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("topk"));
    }

    #[test]
    fn outputs_of_different_kinds_never_compare_equal() {
        let a = RequestOutput::Values(vec![1.0]);
        let b = RequestOutput::Matrix(Matrix::zeros(1, 1));
        assert!(!a.approx_eq(&b, 1.0));
    }

    #[test]
    fn softmax_constructor_derives_workload_from_input() {
        let req = Request::softmax(random_matrix(3, 7, 1, -1.0, 1.0));
        assert_eq!(req.workload, Workload::Softmax { rows: 3, len: 7 });
    }
}
