//! Serving metrics: request/batch counters, simulated latency percentiles,
//! queue depth and cache effectiveness, with a plain-text report and a
//! Prometheus-style exposition.
//!
//! Two latency families coexist here:
//!
//! * **Simulated** latencies from the analytical GPU model (`rf-gpusim`) —
//!   the quantity the paper's evaluation reasons about. They feed both the
//!   bounded sliding windows (recent percentiles, as before) and, at
//!   [`TraceLevel::Histograms`] and above, lifetime-accurate HDR-style
//!   [`LogHistogram`]s ([`MetricsSnapshot::lifetime`], per class).
//! * **Wall-clock** per-stage times measured by the engine
//!   ([`crate::RequestTiming`]): queue wait, compile, tune, execute and
//!   end-to-end, recorded into per-[`Stage`] and per-lane histograms so a
//!   long run can attribute its served latency to pipeline stages.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use rf_codegen::TuningCacheStats;
use rf_trace::{
    CalibrationLedger, CalibrationSnapshot, HistogramSnapshot, LogHistogram, RollingTelemetry,
    Stage, TimeSeriesSnapshot, TraceConfig, TraceLevel, STAGES,
};

use crate::cache::CacheStats;
use crate::submit::{Priority, RequestTiming, LANES};

/// Number of most-recent latency samples kept for the percentile estimates.
/// Bounds the engine's memory at one `f64` per slot regardless of how long it
/// serves; the mean is maintained over the full lifetime separately.
pub const LATENCY_WINDOW: usize = 8192;

/// Per-workload-class latency window size. Classes are few (one per workload
/// family), so a smaller window per class keeps the total bound comparable to
/// the global one.
pub const CLASS_LATENCY_WINDOW: usize = 2048;

/// A sliding window of latency samples plus lifetime totals.
#[derive(Debug, Default)]
struct LatencyTrack {
    window: VecDeque<f64>,
    total_us: f64,
    count: u64,
    /// Simulated device-busy time: each executed batch's latency counted
    /// once (unlike `total_us`, which weights by batch size). The fleet's
    /// simulated-time throughput is served requests over the busiest
    /// device's `busy_us`.
    busy_us: f64,
}

/// Accumulators for one [`rf_codegen::Workload::class`]: request/batch
/// counters, plan-cache effectiveness, a bounded latency window and a
/// lifetime histogram.
#[derive(Debug, Default)]
struct ClassTrack {
    completed: u64,
    failed: u64,
    batches: u64,
    cache_hits: u64,
    window: VecDeque<f64>,
    /// Lifetime simulated-latency histogram (populated at
    /// [`TraceLevel::Histograms`] and above).
    lifetime: LogHistogram,
}

/// Per-priority-lane accumulators.
#[derive(Debug, Default)]
struct LaneTrack {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    /// Lifetime end-to-end wall-clock histogram (populated at
    /// [`TraceLevel::Histograms`] and above).
    wall: LogHistogram,
}

/// Thread-safe metric accumulators, owned by the engine and updated by the
/// worker pool.
#[derive(Debug, Default)]
pub struct RuntimeMetrics {
    /// How much telemetry to record (histograms are skipped at
    /// [`TraceLevel::Off`]).
    level: TraceLevel,
    /// Wall-clock per-stage histograms, indexed by [`Stage::index`].
    stage_walls: [LogHistogram; STAGES],
    /// Lifetime simulated-latency histogram (all classes).
    lifetime: LogHistogram,
    /// Last retry hint attached to a shed, as `f64::to_bits` microseconds.
    shed_retry_last_bits: AtomicU64,
    /// Sum of shed retry hints, in integer microseconds (mean = sum/shed).
    shed_retry_sum_us: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    /// Submissions shed by admission control (`RuntimeError::Overloaded`).
    shed: AtomicU64,
    /// Per-priority-lane traffic, indexed by [`Priority::lane`].
    lanes: [LaneTrack; LANES],
    batches: AtomicU64,
    /// Simulated per-request latencies, in microseconds.
    latencies_us: Mutex<LatencyTrack>,
    /// Per-workload-class accumulators, keyed by `Workload::class()`.
    classes: Mutex<HashMap<&'static str, ClassTrack>>,
    /// Sum of batch sizes, for the mean batch size.
    batched_requests: AtomicU64,
    /// Whole graphs served end-to-end via graph submissions.
    graphs_served: AtomicU64,
    /// Graph ops executed inside fused regions, over all served graphs.
    graph_fused_ops: AtomicU64,
    /// Graph ops executed unfused as glue, over all served graphs.
    graph_glue_ops: AtomicU64,
    /// Fused-region plan lookups issued by graph serving.
    region_lookups: AtomicU64,
    /// Fused-region plan lookups served from the plan cache.
    region_hits: AtomicU64,
    /// Predicted-vs-measured latency ledger per (class, arch, backend).
    calibration: CalibrationLedger,
    /// Rolling time-windowed telemetry (throughput, p99, shed rate, batch
    /// occupancy, busy fraction per fixed-width window).
    telemetry: RollingTelemetry,
}

/// A point-in-time view of one workload class's serving health.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSnapshot {
    /// The workload class name (e.g. `"softmax"`, `"mha"`).
    pub class: &'static str,
    /// Requests of this class fully executed.
    pub completed: u64,
    /// Requests of this class whose execution failed (the ticket received an
    /// error instead of a result).
    pub failed: u64,
    /// Batches of this class executed.
    pub batches: u64,
    /// Batches of this class served from an already-compiled plan.
    pub cache_hits: u64,
    /// Median simulated latency over the class's recent window, in µs.
    pub p50_us: f64,
    /// 99th-percentile simulated latency over the class's recent window, µs.
    pub p99_us: f64,
    /// Lifetime simulated-latency histogram summary (p50/p99/p999 over the
    /// whole run, not just the recent window). All-zero at
    /// [`TraceLevel::Off`].
    pub lifetime: HistogramSnapshot,
}

impl ClassSnapshot {
    /// Fraction of this class's batches served from the plan cache, in
    /// `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.batches as f64
        }
    }
}

/// A point-in-time view of one priority lane's traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSnapshot {
    /// The lane name (`"high"`, `"normal"`, `"low"`).
    pub lane: &'static str,
    /// Submissions accepted onto this lane.
    pub submitted: u64,
    /// Submissions from this lane fully served.
    pub completed: u64,
    /// Submissions from this lane delivered an execution error.
    pub failed: u64,
    /// Submissions to this lane shed by admission control.
    pub shed: u64,
    /// Lifetime end-to-end wall-clock histogram summary for this lane.
    /// All-zero at [`TraceLevel::Off`].
    pub wall: HistogramSnapshot,
}

impl LaneSnapshot {
    /// Fraction of this lane's arrivals shed by admission control, in
    /// `[0, 1]` (sheds never count as submitted, so arrivals are
    /// `submitted + shed`).
    pub fn shed_rate(&self) -> f64 {
        let arrivals = self.submitted + self.shed;
        if arrivals == 0 {
            0.0
        } else {
            self.shed as f64 / arrivals as f64
        }
    }
}

/// A point-in-time wall-clock summary of one pipeline [`Stage`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSnapshot {
    /// The stage name (also the span name in exported traces).
    pub stage: &'static str,
    /// Lifetime histogram summary of the stage's wall time.
    pub wall: HistogramSnapshot,
}

/// A point-in-time view of the runtime's health.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted by `submit`.
    pub submitted: u64,
    /// Requests fully executed.
    pub completed: u64,
    /// Requests whose execution failed (delivered an error, not a result).
    pub failed: u64,
    /// Submissions shed by admission control with
    /// [`crate::RuntimeError::Overloaded`] — never accepted, so disjoint
    /// from `submitted`.
    pub shed: u64,
    /// Per-priority-lane traffic, highest lane first.
    pub lanes: Vec<LaneSnapshot>,
    /// Batches executed.
    pub batches: u64,
    /// Requests waiting or executing right now.
    pub queue_depth: usize,
    /// Mean batch size over all executed batches.
    pub mean_batch_size: f64,
    /// Median simulated request latency over the last [`LATENCY_WINDOW`]
    /// requests, in microseconds.
    pub p50_us: f64,
    /// 99th-percentile simulated request latency over the last
    /// [`LATENCY_WINDOW`] requests, in microseconds.
    pub p99_us: f64,
    /// Mean simulated request latency over the engine's lifetime, in
    /// microseconds.
    pub mean_us: f64,
    /// Total simulated device-busy time in microseconds: each executed
    /// batch's simulated latency counted once, regardless of batch size.
    /// In a fleet this is per device, so served requests over the busiest
    /// device's `busy_us` is the fleet's simulated-time throughput.
    pub busy_us: f64,
    /// The telemetry level the engine ran with.
    pub trace_level: TraceLevel,
    /// Lifetime simulated-latency histogram summary: p50/p99/p999 over the
    /// whole run (unbiased, unlike the sliding-window `p50_us`/`p99_us`).
    /// All-zero at [`TraceLevel::Off`].
    pub lifetime: HistogramSnapshot,
    /// Wall-clock per-stage breakdown in lifecycle order (queue, compile,
    /// tune, execute, e2e). Counts are zero at [`TraceLevel::Off`].
    pub stages: Vec<StageSnapshot>,
    /// The retry hint attached to the most recent shed, in microseconds
    /// (0 when nothing was shed).
    pub shed_retry_last_us: f64,
    /// Mean retry hint over all sheds, in microseconds.
    pub shed_retry_mean_us: f64,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Auto-tuner warm-start cache counters (the searches behind plan-cache
    /// misses).
    pub tuning: TuningCacheStats,
    /// Per-workload-class breakdown (requests, latency percentiles, cache
    /// effectiveness), sorted by class name.
    pub classes: Vec<ClassSnapshot>,
    /// Whole graphs served end-to-end (graph submissions).
    pub graphs_served: u64,
    /// Graph ops executed inside fused regions, over all served graphs.
    pub graph_fused_ops: u64,
    /// Graph ops executed unfused as glue, over all served graphs.
    pub graph_glue_ops: u64,
    /// Fused-region plan lookups issued by graph serving.
    pub region_lookups: u64,
    /// Fused-region plan lookups served from the plan cache.
    pub region_hits: u64,
    /// Cost-model calibration per (class, arch, backend): predicted vs
    /// measured latency, MAPE, relative-error percentiles and the drift
    /// flag. Empty at [`TraceLevel::Off`].
    pub calibration: Vec<CalibrationSnapshot>,
    /// Rolling time-windowed telemetry, oldest window first. Empty at
    /// [`TraceLevel::Off`].
    pub timeseries: TimeSeriesSnapshot,
}

impl MetricsSnapshot {
    /// Fraction of fused-region plan lookups served from the plan cache, in
    /// `[0, 1]`.
    pub fn region_hit_rate(&self) -> f64 {
        if self.region_lookups == 0 {
            0.0
        } else {
            self.region_hits as f64 / self.region_lookups as f64
        }
    }
}

/// Linear-interpolation percentile of an unsorted sample set, `p` in `[0, 100]`.
///
/// Non-finite samples (the infinite latency of an infeasible kernel, or a NaN
/// from downstream arithmetic on one) are ignored rather than allowed to
/// poison the ordering: the metrics path must never panic on a pathological
/// sample. Returns `0.0` when no finite samples remain.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, p)
}

/// [`percentile`] over an already-sorted, all-finite sample set (sort once,
/// query many). Callers computing several percentiles of one window should
/// sort once and use this instead of paying [`percentile`]'s copy+sort per
/// call.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

impl RuntimeMetrics {
    /// Creates zeroed metrics at the default [`TraceLevel::Histograms`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates zeroed metrics recording at `level`. At [`TraceLevel::Off`]
    /// every histogram update is skipped (one predictable branch), keeping
    /// the hot path as cheap as before tracing existed.
    pub fn with_level(level: TraceLevel) -> Self {
        RuntimeMetrics {
            level,
            ..Self::default()
        }
    }

    /// Creates zeroed metrics from a full [`TraceConfig`]: the trace level
    /// plus the rolling-telemetry window geometry (`window_ms` × `windows`).
    pub fn with_trace(config: TraceConfig) -> Self {
        RuntimeMetrics {
            level: config.level,
            telemetry: RollingTelemetry::new(config.window_ms, config.windows),
            ..Self::default()
        }
    }

    /// The telemetry level these metrics record at.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Folds another metrics instance into this one — how a multi-device
    /// engine builds its fleet-wide snapshot from the per-device ledgers.
    ///
    /// Counters add and lifetime histograms merge exactly (bucket-aligned);
    /// the bounded recent-latency windows concatenate up to their capacity,
    /// so windowed percentiles over the merge are an approximation. The last
    /// shed retry hint is taken from `other` when it has seen any shed.
    pub fn merge_from(&self, other: &RuntimeMetrics) {
        for (mine, theirs) in [
            (&self.submitted, &other.submitted),
            (&self.completed, &other.completed),
            (&self.failed, &other.failed),
            (&self.shed, &other.shed),
            (&self.batches, &other.batches),
            (&self.batched_requests, &other.batched_requests),
            (&self.graphs_served, &other.graphs_served),
            (&self.graph_fused_ops, &other.graph_fused_ops),
            (&self.graph_glue_ops, &other.graph_glue_ops),
            (&self.region_lookups, &other.region_lookups),
            (&self.region_hits, &other.region_hits),
            (&self.shed_retry_sum_us, &other.shed_retry_sum_us),
        ] {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        if other.shed.load(Ordering::Relaxed) > 0 {
            self.shed_retry_last_bits.store(
                other.shed_retry_last_bits.load(Ordering::Relaxed),
                Ordering::Relaxed,
            );
        }
        for (mine, theirs) in self.lanes.iter().zip(&other.lanes) {
            for (m, t) in [
                (&mine.submitted, &theirs.submitted),
                (&mine.completed, &theirs.completed),
                (&mine.failed, &theirs.failed),
                (&mine.shed, &theirs.shed),
            ] {
                m.fetch_add(t.load(Ordering::Relaxed), Ordering::Relaxed);
            }
            mine.wall.merge_from(&theirs.wall);
        }
        for (mine, theirs) in self.stage_walls.iter().zip(&other.stage_walls) {
            mine.merge_from(theirs);
        }
        self.lifetime.merge_from(&other.lifetime);
        {
            let theirs = other.latencies_us.lock().expect("metrics lock poisoned");
            let mut mine = self.latencies_us.lock().expect("metrics lock poisoned");
            mine.total_us += theirs.total_us;
            mine.count += theirs.count;
            mine.busy_us += theirs.busy_us;
            for &sample in &theirs.window {
                if mine.window.len() == LATENCY_WINDOW {
                    mine.window.pop_front();
                }
                mine.window.push_back(sample);
            }
        }
        let theirs = other.classes.lock().expect("metrics lock poisoned");
        let mut mine = self.classes.lock().expect("metrics lock poisoned");
        for (class, track) in theirs.iter() {
            let merged = mine.entry(class).or_default();
            merged.completed += track.completed;
            merged.failed += track.failed;
            merged.batches += track.batches;
            merged.cache_hits += track.cache_hits;
            for &sample in &track.window {
                if merged.window.len() == CLASS_LATENCY_WINDOW {
                    merged.window.pop_front();
                }
                merged.window.push_back(sample);
            }
            merged.lifetime.merge_from(&track.lifetime);
        }
        drop(mine);
        drop(theirs);
        self.calibration.merge_from(&other.calibration);
        self.telemetry.merge_from(&other.telemetry);
    }

    /// Records one accepted submission on `priority`'s lane.
    pub fn record_submit(&self, priority: Priority) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.lanes[priority.lane()]
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        if self.level.histograms_enabled() {
            self.telemetry.record_submit();
        }
    }

    /// Rolls back one [`RuntimeMetrics::record_submit`] whose submission was
    /// rejected after counting (scheduler shutdown race or admission shed).
    pub fn cancel_submit(&self, priority: Priority) {
        self.submitted.fetch_sub(1, Ordering::Relaxed);
        self.lanes[priority.lane()]
            .submitted
            .fetch_sub(1, Ordering::Relaxed);
        if self.level.histograms_enabled() {
            self.telemetry.cancel_submit();
        }
    }

    /// Records one submission shed by admission control, together with the
    /// retry hint the caller was given (surfaced as last/mean in
    /// [`MetricsSnapshot`] so operators can see what backoff the engine is
    /// asking for).
    pub fn record_shed(&self, priority: Priority, retry_hint: Duration) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.lanes[priority.lane()]
            .shed
            .fetch_add(1, Ordering::Relaxed);
        let hint_us = retry_hint.as_secs_f64() * 1e6;
        self.shed_retry_last_bits
            .store(hint_us.to_bits(), Ordering::Relaxed);
        self.shed_retry_sum_us
            .fetch_add(hint_us as u64, Ordering::Relaxed);
        if self.level.histograms_enabled() {
            self.telemetry.record_shed();
        }
    }

    /// Records `failed` submissions from `priority`'s lane delivered an
    /// execution error — the lane-level counterpart of the class-level
    /// failure count in [`RuntimeMetrics::record_batch`], keeping the
    /// per-lane invariant `submitted == completed + failed` exact once the
    /// queue drains.
    pub fn record_failed(&self, priority: Priority, failed: usize) {
        self.lanes[priority.lane()]
            .failed
            .fetch_add(failed as u64, Ordering::Relaxed);
    }

    /// Records one served request's wall-clock stage breakdown into the
    /// per-stage and per-lane histograms. No-op at [`TraceLevel::Off`]. A
    /// zero `compile_us` (plan-cache hit) contributes no compile/tune
    /// samples, so those histograms describe misses only.
    pub fn record_timing(&self, priority: Priority, timing: &RequestTiming) {
        if !self.level.histograms_enabled() {
            return;
        }
        self.stage_walls[Stage::Queue.index()].record_us(timing.queue_us);
        if timing.compile_us > 0.0 {
            self.stage_walls[Stage::Compile.index()].record_us(timing.compile_us);
        }
        if timing.tune_us > 0.0 {
            self.stage_walls[Stage::Tune.index()].record_us(timing.tune_us);
        }
        self.stage_walls[Stage::Execute.index()].record_us(timing.execute_us);
        self.stage_walls[Stage::EndToEnd.index()].record_us(timing.total_us);
        self.lanes[priority.lane()].wall.record_us(timing.total_us);
    }

    /// Records `served` submissions from `priority`'s lane fully served.
    /// Lane attribution only — class counters come from
    /// [`RuntimeMetrics::record_batch`], which has no per-request priority.
    pub fn record_served(&self, priority: Priority, served: usize) {
        self.lanes[priority.lane()]
            .completed
            .fetch_add(served as u64, Ordering::Relaxed);
    }

    /// Mean simulated request latency over the engine's lifetime, in
    /// microseconds (`0.0` before the first served request). Cheap enough
    /// for the submission path: the engine derives overload retry hints
    /// from it.
    pub fn mean_us(&self) -> f64 {
        let track = self.latencies_us.lock().expect("metrics lock poisoned");
        if track.count == 0 {
            0.0
        } else {
            track.total_us / track.count as f64
        }
    }

    /// Records one batch of workload class `class`: `executed` requests were
    /// served successfully (each experiencing the batch's simulated latency
    /// `latency_us`) and `failed` requests were delivered an execution error.
    /// `cache_hit` says whether the batch's plan came from the cache.
    ///
    /// Failed requests are never counted as completed and contribute no
    /// latency samples. Non-finite latencies (an infeasible kernel's infinite
    /// estimate) still count their requests as completed but are excluded
    /// from the latency distributions — a single infinite sample would
    /// otherwise poison the lifetime mean forever.
    pub fn record_batch(
        &self,
        class: &'static str,
        executed: usize,
        failed: usize,
        latency_us: f64,
        cache_hit: bool,
    ) {
        let size = executed + failed;
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.completed.fetch_add(executed as u64, Ordering::Relaxed);
        self.failed.fetch_add(failed as u64, Ordering::Relaxed);
        {
            let mut classes = self.classes.lock().expect("metrics lock poisoned");
            let track = classes.entry(class).or_default();
            track.completed += executed as u64;
            track.failed += failed as u64;
            track.batches += 1;
            if cache_hit {
                track.cache_hits += 1;
            }
            if latency_us.is_finite() {
                for _ in 0..executed {
                    if track.window.len() == CLASS_LATENCY_WINDOW {
                        track.window.pop_front();
                    }
                    track.window.push_back(latency_us);
                }
                if self.level.histograms_enabled() {
                    for _ in 0..executed {
                        track.lifetime.record_us(latency_us);
                    }
                }
            }
        }
        if self.level.histograms_enabled() {
            self.telemetry
                .record_batch(executed as u64, failed as u64, latency_us, size as u64);
        }
        if !latency_us.is_finite() {
            return;
        }
        if self.level.histograms_enabled() {
            for _ in 0..executed {
                self.lifetime.record_us(latency_us);
            }
        }
        let mut track = self.latencies_us.lock().expect("metrics lock poisoned");
        track.total_us += latency_us * executed as f64;
        track.count += executed as u64;
        track.busy_us += latency_us;
        for _ in 0..executed {
            if track.window.len() == LATENCY_WINDOW {
                track.window.pop_front();
            }
            track.window.push_back(latency_us);
        }
    }

    /// Records one executed batch into the cost-model calibration ledger:
    /// `predicted_us` is the analytical model's estimate for the batch,
    /// `measured_us` the wall-clock time the backend actually took, keyed by
    /// (workload class, arch, arch fingerprint, backend). No-op at
    /// [`TraceLevel::Off`].
    pub fn record_calibration(
        &self,
        class: &str,
        arch: &str,
        fingerprint: u64,
        backend: &str,
        predicted_us: f64,
        measured_us: f64,
    ) {
        if !self.level.histograms_enabled() {
            return;
        }
        self.calibration
            .record(class, arch, fingerprint, backend, predicted_us, measured_us);
    }

    /// The calibrated (measured) mean latency in µs for `class`, `None`
    /// until the ledger has seen at least one sample. The predicted-latency
    /// router weighs per-device queue backlogs with this.
    pub fn calibrated_us(&self, class: &str) -> Option<f64> {
        self.calibration.calibrated_us(class)
    }

    /// Records one graph served end-to-end: `fused_ops` graph ops were
    /// covered by fused regions, `glue_ops` executed unfused, and of the
    /// `region_lookups` per-region plan-cache lookups `region_hits` found an
    /// already-compiled plan.
    pub fn record_graph(
        &self,
        fused_ops: usize,
        glue_ops: usize,
        region_hits: usize,
        region_lookups: usize,
    ) {
        self.graphs_served.fetch_add(1, Ordering::Relaxed);
        self.graph_fused_ops
            .fetch_add(fused_ops as u64, Ordering::Relaxed);
        self.graph_glue_ops
            .fetch_add(glue_ops as u64, Ordering::Relaxed);
        self.region_hits
            .fetch_add(region_hits as u64, Ordering::Relaxed);
        self.region_lookups
            .fetch_add(region_lookups as u64, Ordering::Relaxed);
    }

    /// Builds a snapshot; the caller supplies the current queue depth plus the
    /// plan-cache and tuning-cache counters (owned by the engine). The latency
    /// window is copied out under the lock (dropping non-finite samples, see
    /// [`percentile`]) and sorted once outside it.
    pub fn snapshot(
        &self,
        queue_depth: usize,
        cache: CacheStats,
        tuning: TuningCacheStats,
    ) -> MetricsSnapshot {
        let (mut window, mean_us, busy_us) = {
            let track = self.latencies_us.lock().expect("metrics lock poisoned");
            let mean = if track.count == 0 {
                0.0
            } else {
                track.total_us / track.count as f64
            };
            (
                Vec::from_iter(track.window.iter().copied().filter(|v| v.is_finite())),
                mean,
                track.busy_us,
            )
        };
        window.sort_by(f64::total_cmp);
        let mut classes: Vec<ClassSnapshot> = {
            let tracks = self.classes.lock().expect("metrics lock poisoned");
            tracks
                .iter()
                .map(|(&class, track)| {
                    // `record_batch` only admits finite samples, so the
                    // window can be sorted as-is.
                    let mut class_window: Vec<f64> = track.window.iter().copied().collect();
                    class_window.sort_by(f64::total_cmp);
                    ClassSnapshot {
                        class,
                        completed: track.completed,
                        failed: track.failed,
                        batches: track.batches,
                        cache_hits: track.cache_hits,
                        p50_us: percentile_sorted(&class_window, 50.0),
                        p99_us: percentile_sorted(&class_window, 99.0),
                        lifetime: track.lifetime.snapshot(),
                    }
                })
                .collect()
        };
        classes.sort_by_key(|c| c.class);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        let lanes = Priority::ALL
            .iter()
            .map(|priority| {
                let track = &self.lanes[priority.lane()];
                LaneSnapshot {
                    lane: priority.name(),
                    submitted: track.submitted.load(Ordering::Relaxed),
                    completed: track.completed.load(Ordering::Relaxed),
                    failed: track.failed.load(Ordering::Relaxed),
                    shed: track.shed.load(Ordering::Relaxed),
                    wall: track.wall.snapshot(),
                }
            })
            .collect();
        let stages = Stage::ALL
            .iter()
            .map(|stage| StageSnapshot {
                stage: stage.name(),
                wall: self.stage_walls[stage.index()].snapshot(),
            })
            .collect();
        let shed = self.shed.load(Ordering::Relaxed);
        let shed_retry_last_us = f64::from_bits(self.shed_retry_last_bits.load(Ordering::Relaxed));
        let shed_retry_mean_us = if shed == 0 {
            0.0
        } else {
            self.shed_retry_sum_us.load(Ordering::Relaxed) as f64 / shed as f64
        };
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed,
            lanes,
            batches,
            queue_depth,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            p50_us: percentile_sorted(&window, 50.0),
            p99_us: percentile_sorted(&window, 99.0),
            mean_us,
            busy_us,
            trace_level: self.level,
            lifetime: self.lifetime.snapshot(),
            stages,
            shed_retry_last_us,
            shed_retry_mean_us,
            cache,
            tuning,
            classes,
            graphs_served: self.graphs_served.load(Ordering::Relaxed),
            graph_fused_ops: self.graph_fused_ops.load(Ordering::Relaxed),
            graph_glue_ops: self.graph_glue_ops.load(Ordering::Relaxed),
            region_lookups: self.region_lookups.load(Ordering::Relaxed),
            region_hits: self.region_hits.load(Ordering::Relaxed),
            calibration: self.calibration.snapshot(),
            timeseries: self.telemetry.snapshot(),
        }
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot as an aligned plain-text report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("runtime metrics\n");
        out.push_str(&format!("  requests submitted   {:>12}\n", self.submitted));
        out.push_str(&format!("  requests completed   {:>12}\n", self.completed));
        out.push_str(&format!("  requests failed      {:>12}\n", self.failed));
        out.push_str(&format!("  requests shed        {:>12}\n", self.shed));
        out.push_str(&format!("  batches executed     {:>12}\n", self.batches));
        out.push_str(&format!(
            "  mean batch size      {:>12.2}\n",
            self.mean_batch_size
        ));
        out.push_str(&format!(
            "  queue depth          {:>12}\n",
            self.queue_depth
        ));
        out.push_str(&format!("  p50 latency (sim)    {:>9.2} us\n", self.p50_us));
        out.push_str(&format!("  p99 latency (sim)    {:>9.2} us\n", self.p99_us));
        out.push_str(&format!(
            "  mean latency (sim)   {:>9.2} us\n",
            self.mean_us
        ));
        if self.lifetime.count > 0 {
            out.push_str(&format!(
                "  lifetime sim latency p50 {:>9.2} us  p99 {:>9.2} us  p999 {:>9.2} us\n",
                self.lifetime.p50_us, self.lifetime.p99_us, self.lifetime.p999_us
            ));
        }
        if self.stages.iter().any(|s| s.wall.count > 0) {
            out.push_str("  per-stage wall time\n");
            for stage in &self.stages {
                if stage.wall.count == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "    {:<8} n {:>8}  p50 {:>9.2} us  p99 {:>9.2} us  p999 {:>9.2} us\n",
                    stage.stage,
                    stage.wall.count,
                    stage.wall.p50_us,
                    stage.wall.p99_us,
                    stage.wall.p999_us
                ));
            }
        }
        if self.shed > 0 {
            out.push_str(&format!(
                "  shed retry hint      last {:>9.2} us  mean {:>9.2} us\n",
                self.shed_retry_last_us, self.shed_retry_mean_us
            ));
        }
        out.push_str(&format!(
            "  cache hits / misses  {:>6} / {:<6} ({:.1}% hit rate)\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0
        ));
        out.push_str(&format!(
            "  cache entries        {:>12} ({} evictions)\n",
            self.cache.entries, self.cache.evictions
        ));
        out.push_str(&format!(
            "  tuner warm starts    {:>6} / {:<6} ({} classes)\n",
            self.tuning.seeded, self.tuning.lookups, self.tuning.entries
        ));
        if self.graphs_served > 0 {
            out.push_str(&format!(
                "  graphs served        {:>12}\n",
                self.graphs_served
            ));
            out.push_str(&format!(
                "  graph ops fused      {:>6} / {:<6} ({} glue)\n",
                self.graph_fused_ops,
                self.graph_fused_ops + self.graph_glue_ops,
                self.graph_glue_ops
            ));
            out.push_str(&format!(
                "  region cache hits    {:>6} / {:<6} ({:.1}% hit rate)\n",
                self.region_hits,
                self.region_lookups,
                self.region_hit_rate() * 100.0
            ));
        }
        if self.lanes.iter().any(|l| l.submitted > 0 || l.shed > 0) {
            out.push_str("  per-lane breakdown\n");
            for lane in &self.lanes {
                out.push_str(&format!(
                    "    {:<10} submitted {:>8}  completed {:>8}  failed {:>6}  \
                     shed {:>8} ({:>5.1}% shed rate)\n",
                    lane.lane,
                    lane.submitted,
                    lane.completed,
                    lane.failed,
                    lane.shed,
                    lane.shed_rate() * 100.0
                ));
            }
        }
        if !self.classes.is_empty() {
            out.push_str("  per-class breakdown\n");
            for class in &self.classes {
                out.push_str(&format!(
                    "    {:<10} reqs {:>8}  p50 {:>9.2} us  p99 {:>9.2} us  cache {:>5.1}%\n",
                    class.class,
                    class.completed,
                    class.p50_us,
                    class.p99_us,
                    class.cache_hit_rate() * 100.0
                ));
            }
        }
        if !self.calibration.is_empty() {
            out.push_str("  cost-model calibration\n");
            for entry in &self.calibration {
                out.push_str(&format!(
                    "    {:<10} {:<10} n {:>6}  mape {:>6.1}%  rel-err p50 {:>5.2} p95 {:>5.2}  \
                     ratio {:>9.2}{}\n",
                    entry.class,
                    entry.backend,
                    entry.samples,
                    entry.mape_pct,
                    entry.rel_err_p50,
                    entry.rel_err_p95,
                    entry.mean_ratio,
                    if entry.drifting { "  DRIFTING" } else { "" }
                ));
            }
        }
        if let Some(window) = self.timeseries.latest_active() {
            out.push_str(&format!(
                "  latest window ({} ms)  rps {:>8.1}  p99 {:>9.2} us  shed {:>5.1}%  \
                 batch {:>5.2}  busy {:>5.1}%\n",
                self.timeseries.window_ms,
                window.throughput_rps,
                window.p99_us,
                window.shed_rate * 100.0,
                window.mean_batch,
                window.busy_frac * 100.0
            ));
        }
        out
    }

    /// Renders the snapshot in the Prometheus plain-text exposition format
    /// (counters for traffic, gauges for instantaneous state, summaries with
    /// `quantile` labels from the lifetime histograms). The string is
    /// scrape-ready: serve it verbatim under a `/metrics` endpoint.
    pub fn prometheus(&self) -> String {
        fn meta(out: &mut String, name: &str, kind: &str, help: &str) {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        }
        fn summary(out: &mut String, name: &str, labels: &str, hist: &HistogramSnapshot) {
            let sep = if labels.is_empty() { "" } else { "," };
            for (q, v) in [
                ("0.5", hist.p50_us),
                ("0.99", hist.p99_us),
                ("0.999", hist.p999_us),
            ] {
                out.push_str(&format!("{name}{{{labels}{sep}quantile=\"{q}\"}} {v}\n"));
            }
            let braces = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            out.push_str(&format!(
                "{name}_sum{braces} {}\n",
                hist.mean_us * hist.count as f64
            ));
            out.push_str(&format!("{name}_count{braces} {}\n", hist.count));
        }
        let mut out = String::new();
        meta(
            &mut out,
            "redfuser_requests_total",
            "counter",
            "Request traffic by outcome (submitted/completed/failed/shed).",
        );
        for (outcome, value) in [
            ("submitted", self.submitted),
            ("completed", self.completed),
            ("failed", self.failed),
            ("shed", self.shed),
        ] {
            out.push_str(&format!(
                "redfuser_requests_total{{outcome=\"{outcome}\"}} {value}\n"
            ));
        }
        meta(
            &mut out,
            "redfuser_batches_total",
            "counter",
            "Engine iterations that executed a batch.",
        );
        out.push_str(&format!("redfuser_batches_total {}\n", self.batches));
        meta(
            &mut out,
            "redfuser_queue_depth",
            "gauge",
            "Submissions queued or executing right now.",
        );
        out.push_str(&format!("redfuser_queue_depth {}\n", self.queue_depth));
        meta(
            &mut out,
            "redfuser_mean_batch_size",
            "gauge",
            "Mean requests per executed batch over the engine lifetime.",
        );
        out.push_str(&format!(
            "redfuser_mean_batch_size {}\n",
            self.mean_batch_size
        ));
        meta(
            &mut out,
            "redfuser_plan_cache_total",
            "counter",
            "Plan-cache lookups by result.",
        );
        for (result, value) in [
            ("hit", self.cache.hits),
            ("miss", self.cache.misses),
            ("eviction", self.cache.evictions),
        ] {
            out.push_str(&format!(
                "redfuser_plan_cache_total{{result=\"{result}\"}} {value}\n"
            ));
        }
        meta(
            &mut out,
            "redfuser_shed_retry_hint_us",
            "gauge",
            "Retry hint attached to the most recent shed, microseconds.",
        );
        out.push_str(&format!(
            "redfuser_shed_retry_hint_us {}\n",
            self.shed_retry_last_us
        ));
        meta(
            &mut out,
            "redfuser_sim_latency_us",
            "summary",
            "Lifetime simulated request latency, microseconds.",
        );
        summary(&mut out, "redfuser_sim_latency_us", "", &self.lifetime);
        meta(
            &mut out,
            "redfuser_stage_wall_us",
            "summary",
            "Wall-clock time per pipeline stage, microseconds.",
        );
        for stage in &self.stages {
            summary(
                &mut out,
                "redfuser_stage_wall_us",
                &format!("stage=\"{}\"", stage.stage),
                &stage.wall,
            );
        }
        meta(
            &mut out,
            "redfuser_lane_requests_total",
            "counter",
            "Per-priority-lane traffic by outcome.",
        );
        for lane in &self.lanes {
            for (outcome, value) in [
                ("submitted", lane.submitted),
                ("completed", lane.completed),
                ("failed", lane.failed),
                ("shed", lane.shed),
            ] {
                out.push_str(&format!(
                    "redfuser_lane_requests_total{{lane=\"{}\",outcome=\"{outcome}\"}} {value}\n",
                    lane.lane
                ));
            }
        }
        meta(
            &mut out,
            "redfuser_lane_wall_us",
            "summary",
            "Per-lane end-to-end wall-clock latency, microseconds.",
        );
        for lane in &self.lanes {
            summary(
                &mut out,
                "redfuser_lane_wall_us",
                &format!("lane=\"{}\"", lane.lane),
                &lane.wall,
            );
        }
        meta(
            &mut out,
            "redfuser_class_sim_latency_us",
            "summary",
            "Per-workload-class lifetime simulated latency, microseconds.",
        );
        for class in &self.classes {
            summary(
                &mut out,
                "redfuser_class_sim_latency_us",
                &format!("class=\"{}\"", class.class),
                &class.lifetime,
            );
        }
        if !self.calibration.is_empty() {
            meta(
                &mut out,
                "redfuser_calibration_samples_total",
                "counter",
                "Predicted-vs-measured latency pairs recorded per (class, arch, backend).",
            );
            for entry in &self.calibration {
                out.push_str(&format!(
                    "redfuser_calibration_samples_total{{{}}} {}\n",
                    calibration_labels(entry),
                    entry.samples
                ));
            }
            type Gauge = fn(&CalibrationSnapshot) -> f64;
            for (name, help, value) in [
                (
                    "redfuser_calibration_mape_pct",
                    "Mean absolute percentage error of the cost model's predictions.",
                    (|e: &CalibrationSnapshot| e.mape_pct) as Gauge,
                ),
                (
                    "redfuser_calibration_rel_err_p50",
                    "Median relative error of the cost model's predictions (windowed).",
                    |e: &CalibrationSnapshot| e.rel_err_p50,
                ),
                (
                    "redfuser_calibration_rel_err_p95",
                    "95th-percentile relative error of the cost model's predictions (windowed).",
                    |e: &CalibrationSnapshot| e.rel_err_p95,
                ),
                (
                    "redfuser_calibration_mean_ratio",
                    "Lifetime mean measured/predicted latency ratio.",
                    |e: &CalibrationSnapshot| e.mean_ratio,
                ),
                (
                    "redfuser_calibration_drifting",
                    "1 when the mean measured/predicted ratio left the drift band.",
                    |e: &CalibrationSnapshot| f64::from(e.drifting),
                ),
            ] {
                meta(&mut out, name, "gauge", help);
                for entry in &self.calibration {
                    out.push_str(&format!(
                        "{name}{{{}}} {}\n",
                        calibration_labels(entry),
                        value(entry)
                    ));
                }
            }
        }
        if let Some(window) = self.timeseries.latest_active() {
            for (name, help, value) in [
                (
                    "redfuser_window_throughput_rps",
                    "Completions per second over the latest active telemetry window.",
                    window.throughput_rps,
                ),
                (
                    "redfuser_window_p99_us",
                    "p99 simulated batch latency in the latest active window, microseconds.",
                    window.p99_us,
                ),
                (
                    "redfuser_window_shed_rate",
                    "Shed fraction of arrivals in the latest active window.",
                    window.shed_rate,
                ),
                (
                    "redfuser_window_mean_batch",
                    "Mean batch occupancy in the latest active window.",
                    window.mean_batch,
                ),
                (
                    "redfuser_window_busy_frac",
                    "Simulated device-busy fraction of the latest active window.",
                    window.busy_frac,
                ),
            ] {
                meta(&mut out, name, "gauge", help);
                out.push_str(&format!("{name} {value}\n"));
            }
        }
        out
    }

    /// [`MetricsSnapshot::prometheus`] plus per-device gauges: each device of
    /// the fleet contributes its own traffic counters, queue depth and
    /// latency summary under `device`/`arch`/`backend` labels (from
    /// [`crate::Engine::device_snapshots`]), so a scrape can tell a hot
    /// device from an idle one inside an otherwise-aggregated fleet.
    pub fn prometheus_with_devices(&self, devices: &[crate::engine::DeviceSnapshot]) -> String {
        fn meta(out: &mut String, name: &str, kind: &str, help: &str) {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        }
        let mut out = self.prometheus();
        if devices.is_empty() {
            return out;
        }
        let label = |d: &crate::engine::DeviceSnapshot| {
            format!(
                "device=\"{}\",arch=\"{}\",backend=\"{}\"",
                d.device, d.arch, d.backend
            )
        };
        meta(
            &mut out,
            "redfuser_device_requests_total",
            "counter",
            "Per-device request traffic by outcome.",
        );
        for d in devices {
            for (outcome, value) in [
                ("submitted", d.metrics.submitted),
                ("completed", d.metrics.completed),
                ("failed", d.metrics.failed),
                ("shed", d.metrics.shed),
            ] {
                out.push_str(&format!(
                    "redfuser_device_requests_total{{{},outcome=\"{outcome}\"}} {value}\n",
                    label(d)
                ));
            }
        }
        meta(
            &mut out,
            "redfuser_device_queue_depth",
            "gauge",
            "Per-device submissions queued or executing right now.",
        );
        for d in devices {
            out.push_str(&format!(
                "redfuser_device_queue_depth{{{}}} {}\n",
                label(d),
                d.metrics.queue_depth
            ));
        }
        meta(
            &mut out,
            "redfuser_device_busy_us",
            "gauge",
            "Per-device lifetime simulated busy time, microseconds.",
        );
        for d in devices {
            out.push_str(&format!(
                "redfuser_device_busy_us{{{}}} {}\n",
                label(d),
                d.metrics.busy_us
            ));
        }
        meta(
            &mut out,
            "redfuser_device_p99_us",
            "gauge",
            "Per-device recent-window p99 simulated latency, microseconds.",
        );
        for d in devices {
            out.push_str(&format!(
                "redfuser_device_p99_us{{{}}} {}\n",
                label(d),
                d.metrics.p99_us
            ));
        }
        out
    }
}

/// The Prometheus label set of one calibration entry.
fn calibration_labels(entry: &CalibrationSnapshot) -> String {
    format!(
        "class=\"{}\",arch=\"{}\",backend=\"{}\"",
        entry.class, entry.arch, entry.backend
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_cache_stats() -> CacheStats {
        CacheStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            entries: 0,
        }
    }

    fn empty_tuning_stats() -> TuningCacheStats {
        TuningCacheStats::default()
    }

    #[test]
    fn percentile_interpolates() {
        let samples = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 100.0), 4.0);
        assert!((percentile(&samples, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn non_finite_samples_do_not_panic_the_metrics_path() {
        // Regression: sorting with `partial_cmp(...).expect(...)` panicked the
        // metrics path as soon as an infeasible kernel's infinite (or NaN)
        // latency reached a sample. Non-finite samples are now ignored.
        let samples = vec![
            4.0,
            f64::INFINITY,
            1.0,
            f64::NAN,
            3.0,
            f64::NEG_INFINITY,
            2.0,
        ];
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 100.0), 4.0);
        assert!((percentile(&samples, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[f64::NAN, f64::INFINITY], 50.0), 0.0);

        // The snapshot path filters the window the same way.
        let metrics = RuntimeMetrics::new();
        metrics.record_batch("softmax", 2, 0, 10.0, false);
        metrics.record_batch("softmax", 1, 0, f64::INFINITY, true);
        metrics.record_batch("softmax", 1, 0, f64::NAN, true);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.p50_us, 10.0);
        assert_eq!(snap.p99_us, 10.0);
        assert_eq!(snap.completed, 4);
        assert_eq!(snap.mean_us, 10.0, "the lifetime mean must stay finite");
    }

    #[test]
    fn merge_from_folds_per_device_ledgers_into_one() {
        let a = RuntimeMetrics::new();
        let b = RuntimeMetrics::new();
        for _ in 0..3 {
            a.record_submit(Priority::Normal);
        }
        a.record_batch("softmax", 3, 0, 10.0, false);
        a.record_served(Priority::Normal, 3);
        for _ in 0..2 {
            b.record_submit(Priority::High);
        }
        b.record_batch("softmax", 1, 0, 30.0, true);
        b.record_batch("mha", 1, 1, 50.0, false);
        b.record_served(Priority::High, 2);
        b.record_failed(Priority::High, 1);
        b.record_shed(Priority::Low, Duration::from_micros(750));
        b.record_graph(4, 1, 1, 2);

        let merged = RuntimeMetrics::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        let snap = merged.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.submitted, 5);
        assert_eq!(snap.completed, 5);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.shed_retry_last_us, 750.0);
        // Latency distribution spans both ledgers' windows.
        assert_eq!(snap.p50_us, 10.0);
        assert!(snap.p99_us > 10.0 && snap.p99_us <= 50.0);
        assert!((snap.mean_us - 22.0).abs() < 1e-12);
        // Busy time counts each batch's latency once: 10 + 30 + 50.
        assert!((snap.busy_us - 90.0).abs() < 1e-12);
        // Classes merge by name, keeping their per-class counters.
        let softmax = snap.classes.iter().find(|c| c.class == "softmax").unwrap();
        assert_eq!((softmax.completed, softmax.batches), (4, 2));
        assert_eq!(softmax.cache_hits, 1);
        let mha = snap.classes.iter().find(|c| c.class == "mha").unwrap();
        assert_eq!((mha.completed, mha.failed), (1, 1));
        // Lanes merge positionally.
        assert_eq!(snap.lanes[Priority::High.lane()].completed, 2);
        assert_eq!(snap.lanes[Priority::Normal.lane()].completed, 3);
        assert_eq!(snap.lanes[Priority::Low.lane()].shed, 1);
        // Graph counters ride along.
        assert_eq!(snap.graphs_served, 1);
        assert_eq!((snap.region_hits, snap.region_lookups), (1, 2));
        // The lifetime histogram merged exactly: 5 finite samples.
        assert_eq!(snap.lifetime.count, 5);
    }

    #[test]
    fn batches_update_counters_and_latency_distribution() {
        let metrics = RuntimeMetrics::new();
        for _ in 0..4 {
            metrics.record_submit(Priority::Normal);
        }
        metrics.record_batch("softmax", 3, 0, 10.0, false);
        metrics.record_batch("mha", 1, 0, 50.0, true);
        metrics.record_served(Priority::Normal, 3);
        metrics.record_served(Priority::High, 1);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.submitted, 4);
        assert_eq!(snap.completed, 4);
        assert_eq!(snap.batches, 2);
        assert!((snap.mean_batch_size - 2.0).abs() < 1e-12);
        assert_eq!(snap.p50_us, 10.0);
        assert!(snap.p99_us > 10.0 && snap.p99_us <= 50.0);
        assert!((snap.mean_us - 20.0).abs() < 1e-12);
        assert_eq!(metrics.mean_us(), snap.mean_us);
        // Lane attribution: 4 normal submissions, 3 normal + 1 high served.
        assert_eq!(snap.lanes.len(), LANES);
        assert_eq!(snap.lanes[0].lane, "high");
        assert_eq!((snap.lanes[0].submitted, snap.lanes[0].completed), (0, 1));
        assert_eq!((snap.lanes[1].submitted, snap.lanes[1].completed), (4, 3));
    }

    #[test]
    fn sheds_are_counted_per_lane_and_reported() {
        let metrics = RuntimeMetrics::new();
        assert_eq!(metrics.mean_us(), 0.0, "no samples => zero mean");
        // An overloaded submission is first counted, then rolled back and
        // recorded as a shed — it must not inflate `submitted`.
        metrics.record_submit(Priority::Low);
        metrics.cancel_submit(Priority::Low);
        metrics.record_shed(Priority::Low, Duration::from_micros(200));
        metrics.record_shed(Priority::High, Duration::from_micros(400));
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.submitted, 0);
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.lanes[Priority::Low.lane()].shed, 1);
        assert_eq!(snap.lanes[Priority::High.lane()].shed, 1);
        assert_eq!(snap.lanes[Priority::Low.lane()].submitted, 0);
        // Retry hints: last is the most recent shed's, mean averages both.
        assert!((snap.shed_retry_last_us - 400.0).abs() < 1e-9);
        assert!((snap.shed_retry_mean_us - 300.0).abs() < 1e-9);
        // Shed rate: the low lane saw 1 arrival, all shed.
        assert!((snap.lanes[Priority::Low.lane()].shed_rate() - 1.0).abs() < 1e-12);
        let report = snap.report();
        assert!(report.contains("requests shed"));
        assert!(report.contains("per-lane breakdown"));
        assert!(report.contains("low"));
        assert!(report.contains("shed retry hint"));
        assert!(report.contains("shed rate"));
    }

    #[test]
    fn shed_rate_is_zero_on_an_idle_lane() {
        let snap = RuntimeMetrics::new().snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.lanes[0].shed_rate(), 0.0);
        assert_eq!(snap.shed_retry_last_us, 0.0);
        assert_eq!(snap.shed_retry_mean_us, 0.0);
        assert!(
            !snap.report().contains("shed retry hint"),
            "the retry-hint line is omitted until something is shed"
        );
    }

    #[test]
    fn percentile_sorted_matches_percentile_on_a_shared_sort() {
        // Satellite regression: computing several percentiles of one window
        // must sort once, not once per call — and the shared-sort path must
        // agree exactly with the sort-per-call one.
        let samples: Vec<f64> = (0..1000)
            .map(|i| ((i * 7919) % 1000) as f64 * 0.5)
            .collect();
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(
                percentile(&samples, p),
                percentile_sorted(&sorted, p),
                "p{p} must be identical through both paths"
            );
        }
    }

    #[test]
    fn stage_timings_feed_histograms_unless_traced_off() {
        let timing = RequestTiming {
            queue_us: 100.0,
            compile_us: 5_000.0,
            tune_us: 3_000.0,
            execute_us: 400.0,
            total_us: 5_500.0,
            iterations_waited: 1,
        };
        let hit = RequestTiming {
            compile_us: 0.0,
            tune_us: 0.0,
            ..timing
        };
        let metrics = RuntimeMetrics::new();
        metrics.record_timing(Priority::Normal, &timing);
        metrics.record_timing(Priority::High, &hit);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        let by_name = |name: &str| {
            snap.stages
                .iter()
                .find(|s| s.stage == name)
                .expect("stage present")
        };
        // Queue and e2e see both requests; compile/tune only the cache miss.
        assert_eq!(by_name("queue").wall.count, 2);
        assert_eq!(by_name("e2e").wall.count, 2);
        assert_eq!(by_name("compile").wall.count, 1);
        assert_eq!(by_name("tune").wall.count, 1);
        assert_eq!(by_name("execute").wall.count, 2);
        assert!((by_name("compile").wall.p50_us - 5_000.0).abs() / 5_000.0 < 0.08);
        // Lane attribution of the e2e wall time.
        assert_eq!(snap.lanes[Priority::Normal.lane()].wall.count, 1);
        assert_eq!(snap.lanes[Priority::High.lane()].wall.count, 1);
        assert!(snap.report().contains("per-stage wall time"));

        // At TraceLevel::Off the same recording is a no-op.
        let off = RuntimeMetrics::with_level(TraceLevel::Off);
        off.record_timing(Priority::Normal, &timing);
        off.record_batch("softmax", 4, 0, 10.0, true);
        let snap = off.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.trace_level, TraceLevel::Off);
        assert!(snap.stages.iter().all(|s| s.wall.count == 0));
        assert_eq!(snap.lifetime.count, 0);
        // The sliding-window estimates still work at Off.
        assert_eq!(snap.p50_us, 10.0);
    }

    #[test]
    fn lifetime_histograms_track_the_full_run() {
        let metrics = RuntimeMetrics::new();
        // Overfill the sliding window with late slow samples: the window
        // forgets the fast early traffic, the lifetime histogram does not.
        metrics.record_batch("softmax", LATENCY_WINDOW, 0, 1.0, false);
        metrics.record_batch("softmax", LATENCY_WINDOW, 0, 1.0, true);
        metrics.record_batch("softmax", LATENCY_WINDOW, 0, 9.0, true);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.p50_us, 9.0, "the window only remembers the tail");
        assert!(
            snap.lifetime.p50_us < 2.0,
            "the lifetime histogram remembers the 2/3 fast majority, got {}",
            snap.lifetime.p50_us
        );
        assert_eq!(snap.lifetime.count as usize, 3 * LATENCY_WINDOW);
        let softmax = &snap.classes[0];
        assert_eq!(softmax.lifetime.count as usize, 3 * LATENCY_WINDOW);
        assert!(snap.report().contains("lifetime sim latency"));
    }

    #[test]
    fn prometheus_exposition_contains_every_family() {
        let metrics = RuntimeMetrics::new();
        metrics.record_submit(Priority::Normal);
        metrics.record_batch("softmax", 1, 0, 12.5, false);
        metrics.record_served(Priority::Normal, 1);
        metrics.record_timing(
            Priority::Normal,
            &RequestTiming {
                queue_us: 10.0,
                compile_us: 100.0,
                tune_us: 50.0,
                execute_us: 30.0,
                total_us: 140.0,
                iterations_waited: 0,
            },
        );
        metrics.record_shed(Priority::Low, Duration::from_micros(250));
        let text = metrics
            .snapshot(2, empty_cache_stats(), empty_tuning_stats())
            .prometheus();
        for needle in [
            "# TYPE redfuser_requests_total counter",
            "redfuser_requests_total{outcome=\"submitted\"} 1",
            "redfuser_requests_total{outcome=\"shed\"} 1",
            "redfuser_queue_depth 2",
            "# TYPE redfuser_stage_wall_us summary",
            "redfuser_stage_wall_us{stage=\"queue\",quantile=\"0.5\"}",
            "redfuser_stage_wall_us_count{stage=\"compile\"} 1",
            "redfuser_lane_requests_total{lane=\"normal\",outcome=\"completed\"} 1",
            "redfuser_lane_wall_us{lane=\"normal\",quantile=\"0.99\"}",
            "redfuser_class_sim_latency_us{class=\"softmax\",quantile=\"0.5\"}",
            "redfuser_shed_retry_hint_us 250",
            "redfuser_sim_latency_us_count 1",
        ] {
            assert!(
                text.contains(needle),
                "exposition must contain `{needle}`:\n{text}"
            );
        }
        // Every line is either a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .rsplit_once(' ')
                        .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
                "malformed exposition line: `{line}`"
            );
        }
    }

    #[test]
    fn calibration_and_timeseries_ride_the_snapshot() {
        let metrics = RuntimeMetrics::new();
        metrics.record_submit(Priority::Normal);
        metrics.record_batch("softmax", 2, 0, 10.0, false);
        // 10% over-prediction on every sample: MAPE 10, no drift.
        for _ in 0..4 {
            metrics.record_calibration("softmax", "NVIDIA A10", 42, "tile-vm", 100.0, 90.0);
        }
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.calibration.len(), 1);
        let entry = &snap.calibration[0];
        assert_eq!((entry.class.as_str(), entry.samples), ("softmax", 4));
        assert!((entry.mape_pct - 10.0).abs() < 1e-9);
        assert!((entry.mean_ratio - 0.9).abs() < 1e-9);
        assert!(!entry.drifting);
        // The telemetry ring saw both the submit and the batch in its
        // current window.
        let window = snap.timeseries.latest_active().expect("an active window");
        assert_eq!(window.submitted, 1);
        assert_eq!(window.completed, 2);
        assert!(window.throughput_rps > 0.0);
        assert!(window.p99_us >= 10.0);
        // Both surface in the report and the exposition.
        let report = snap.report();
        assert!(report.contains("cost-model calibration"));
        assert!(!report.contains("DRIFTING"));
        assert!(report.contains("latest window"));
        let text = snap.prometheus();
        for needle in [
            "redfuser_calibration_samples_total{class=\"softmax\",arch=\"NVIDIA A10\",\
             backend=\"tile-vm\"} 4",
            "# TYPE redfuser_calibration_mape_pct gauge",
            "redfuser_calibration_drifting{class=\"softmax\",arch=\"NVIDIA A10\",\
             backend=\"tile-vm\"} 0",
            "redfuser_window_throughput_rps",
            "redfuser_window_busy_frac",
        ] {
            assert!(
                text.contains(needle),
                "exposition must contain `{needle}`:\n{text}"
            );
        }
        // The new families keep every line scrape-parseable.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .rsplit_once(' ')
                        .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
                "malformed exposition line: `{line}`"
            );
        }
    }

    #[test]
    fn calibration_is_gated_off_and_merges_across_devices() {
        // At TraceLevel::Off neither ledger records anything.
        let off = RuntimeMetrics::with_level(TraceLevel::Off);
        off.record_calibration("softmax", "NVIDIA A10", 42, "tile-vm", 100.0, 90.0);
        off.record_submit(Priority::Normal);
        off.record_batch("softmax", 1, 0, 10.0, false);
        let snap = off.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert!(snap.calibration.is_empty());
        assert!(snap.timeseries.is_empty());
        assert_eq!(off.calibrated_us("softmax"), None);

        // Two device ledgers fold into one fleet view.
        let a = RuntimeMetrics::new();
        let b = RuntimeMetrics::new();
        a.record_calibration("softmax", "NVIDIA A10", 42, "tile-vm", 100.0, 90.0);
        b.record_calibration("softmax", "NVIDIA A10", 42, "tile-vm", 100.0, 110.0);
        b.record_calibration("mha", "NVIDIA H800", 7, "cost-model", 50.0, 50.0);
        b.record_batch("mha", 1, 0, 20.0, true);
        let merged = RuntimeMetrics::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        let snap = merged.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.calibration.len(), 2);
        let softmax = snap
            .calibration
            .iter()
            .find(|e| e.class == "softmax")
            .unwrap();
        assert_eq!(softmax.samples, 2);
        assert!((softmax.mean_ratio - 1.0).abs() < 1e-9);
        // Calibrated cost: the sample-weighted measured mean.
        assert_eq!(merged.calibrated_us("softmax"), Some(100.0));
        assert_eq!(merged.calibrated_us("mha"), Some(50.0));
        // The merged telemetry ring carries b's batch.
        let window = snap.timeseries.latest_active().expect("an active window");
        assert_eq!(window.completed, 1);
    }

    #[test]
    fn per_device_prometheus_carries_device_labels() {
        let a = RuntimeMetrics::new();
        a.record_submit(Priority::Normal);
        a.record_batch("softmax", 1, 0, 10.0, false);
        let b = RuntimeMetrics::new();
        let devices: Vec<crate::engine::DeviceSnapshot> = [("NVIDIA A10", &a), ("NVIDIA H800", &b)]
            .into_iter()
            .enumerate()
            .map(|(id, (arch, metrics))| crate::engine::DeviceSnapshot {
                device: id,
                arch,
                backend: "tile-vm",
                fingerprint: id as u64,
                metrics: metrics.snapshot(id, empty_cache_stats(), empty_tuning_stats()),
            })
            .collect();
        let merged = RuntimeMetrics::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        let text = merged
            .snapshot(1, empty_cache_stats(), empty_tuning_stats())
            .prometheus_with_devices(&devices);
        for needle in [
            "# TYPE redfuser_device_requests_total counter",
            "redfuser_device_requests_total{device=\"0\",arch=\"NVIDIA A10\",\
             backend=\"tile-vm\",outcome=\"completed\"} 1",
            "redfuser_device_requests_total{device=\"1\",arch=\"NVIDIA H800\",\
             backend=\"tile-vm\",outcome=\"completed\"} 0",
            "redfuser_device_queue_depth{device=\"1\",arch=\"NVIDIA H800\",backend=\"tile-vm\"} 1",
            "redfuser_device_busy_us{device=\"0\",arch=\"NVIDIA A10\",backend=\"tile-vm\"} 10",
            "redfuser_device_p99_us{device=\"0\"",
        ] {
            assert!(
                text.contains(needle),
                "exposition must contain `{needle}`:\n{text}"
            );
        }
        // The device families keep every line scrape-parseable.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .rsplit_once(' ')
                        .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
                "malformed exposition line: `{line}`"
            );
        }
        // No devices => exactly the plain exposition.
        let plain = merged
            .snapshot(1, empty_cache_stats(), empty_tuning_stats())
            .prometheus();
        let with_none = merged
            .snapshot(1, empty_cache_stats(), empty_tuning_stats())
            .prometheus_with_devices(&[]);
        assert_eq!(plain, with_none);
    }

    #[test]
    fn latency_window_is_bounded_but_mean_is_lifetime() {
        let metrics = RuntimeMetrics::new();
        // Overfill the window: the old 1.0us samples must be displaced by the
        // later 9.0us ones for the percentiles, while the mean still sees all.
        metrics.record_batch("softmax", LATENCY_WINDOW, 0, 1.0, false);
        metrics.record_batch("softmax", LATENCY_WINDOW, 0, 9.0, true);
        metrics.record_batch("softmax", LATENCY_WINDOW, 0, 9.0, true);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.completed as usize, 3 * LATENCY_WINDOW);
        assert_eq!(snap.p50_us, 9.0, "window holds only the latest samples");
        let track = metrics.latencies_us.lock().unwrap();
        assert_eq!(track.window.len(), LATENCY_WINDOW);
        drop(track);
        assert!((snap.mean_us - (1.0 + 9.0 + 9.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn report_mentions_every_headline_number() {
        let metrics = RuntimeMetrics::new();
        metrics.record_submit(Priority::Normal);
        metrics.record_batch("softmax", 1, 0, 12.5, false);
        let report = metrics
            .snapshot(
                3,
                CacheStats {
                    hits: 9,
                    misses: 1,
                    evictions: 0,
                    entries: 1,
                },
                TuningCacheStats {
                    lookups: 2,
                    seeded: 1,
                    insertions: 2,
                    entries: 1,
                },
            )
            .report();
        assert!(report.contains("requests completed"));
        assert!(report.contains("p99 latency"));
        assert!(report.contains("90.0% hit rate"));
        assert!(report.contains("queue depth"));
        assert!(report.contains("tuner warm starts"));
        assert!(report.contains("1 / 2"));
        assert!(report.contains("per-class breakdown"));
        assert!(report.contains("softmax"));
    }

    #[test]
    fn per_class_breakdown_tracks_each_class_separately() {
        let metrics = RuntimeMetrics::new();
        // softmax: 3 batches (2 cache hits), fast; mha: 1 batch (miss), slow.
        metrics.record_batch("softmax", 2, 0, 10.0, false);
        metrics.record_batch("softmax", 4, 0, 12.0, true);
        metrics.record_batch("softmax", 2, 0, 14.0, true);
        metrics.record_batch("mha", 1, 0, 200.0, false);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.classes.len(), 2);
        // Sorted by class name: mha before softmax.
        let mha = &snap.classes[0];
        let softmax = &snap.classes[1];
        assert_eq!(mha.class, "mha");
        assert_eq!((mha.completed, mha.batches, mha.cache_hits), (1, 1, 0));
        assert_eq!(mha.cache_hit_rate(), 0.0);
        assert_eq!(mha.p50_us, 200.0);
        assert_eq!(softmax.class, "softmax");
        assert_eq!(
            (softmax.completed, softmax.batches, softmax.cache_hits),
            (8, 3, 2)
        );
        assert!((softmax.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(softmax.p50_us, 12.0);
        assert!(softmax.p99_us <= 14.0 && softmax.p99_us > 12.0);
        // Class percentiles are independent of the global distribution.
        assert!(snap.p99_us > softmax.p99_us);
        // Non-finite latencies count requests but never enter the window.
        metrics.record_batch("mha", 1, 0, f64::INFINITY, true);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        let mha = &snap.classes[0];
        assert_eq!((mha.completed, mha.batches, mha.cache_hits), (2, 2, 1));
        assert_eq!(mha.p99_us, 200.0);
    }

    #[test]
    fn graph_counters_accumulate_and_render() {
        let metrics = RuntimeMetrics::new();
        let before = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(before.graphs_served, 0);
        assert_eq!(before.region_hit_rate(), 0.0);
        assert!(
            !before.report().contains("graphs served"),
            "graph lines are omitted until a graph is served"
        );
        // First graph: 2 regions (both compile), 9 fused ops, 8 glue ops.
        metrics.record_graph(9, 8, 0, 2);
        // Same graph again: both regions hit the plan cache.
        metrics.record_graph(9, 8, 2, 2);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.graphs_served, 2);
        assert_eq!(snap.graph_fused_ops, 18);
        assert_eq!(snap.graph_glue_ops, 16);
        assert_eq!((snap.region_hits, snap.region_lookups), (2, 4));
        assert!((snap.region_hit_rate() - 0.5).abs() < 1e-12);
        let report = snap.report();
        assert!(report.contains("graphs served"));
        assert!(report.contains("graph ops fused"));
        assert!(report.contains("region cache hits"));
        assert!(report.contains("50.0% hit rate"));
    }

    #[test]
    fn class_windows_are_bounded() {
        let metrics = RuntimeMetrics::new();
        metrics.record_batch("quant", CLASS_LATENCY_WINDOW, 0, 1.0, false);
        metrics.record_batch("quant", CLASS_LATENCY_WINDOW, 0, 9.0, true);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        let quant = &snap.classes[0];
        assert_eq!(quant.completed as usize, 2 * CLASS_LATENCY_WINDOW);
        assert_eq!(quant.p50_us, 9.0, "old samples displaced");
        let tracks = metrics.classes.lock().unwrap();
        assert_eq!(tracks["quant"].window.len(), CLASS_LATENCY_WINDOW);
    }
}
