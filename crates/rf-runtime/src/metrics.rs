//! Serving metrics: request/batch counters, simulated latency percentiles,
//! queue depth and cache effectiveness, with a plain-text report.
//!
//! Latencies are the **simulated** per-request latencies from the analytical
//! GPU model (`rf-gpusim`) — the quantity the paper's evaluation reasons
//! about — not wall-clock CPU time of the reference interpreters.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rf_codegen::TuningCacheStats;

use crate::cache::CacheStats;
use crate::submit::{Priority, LANES};

/// Number of most-recent latency samples kept for the percentile estimates.
/// Bounds the engine's memory at one `f64` per slot regardless of how long it
/// serves; the mean is maintained over the full lifetime separately.
pub const LATENCY_WINDOW: usize = 8192;

/// Per-workload-class latency window size. Classes are few (one per workload
/// family), so a smaller window per class keeps the total bound comparable to
/// the global one.
pub const CLASS_LATENCY_WINDOW: usize = 2048;

/// A sliding window of latency samples plus lifetime totals.
#[derive(Debug, Default)]
struct LatencyTrack {
    window: VecDeque<f64>,
    total_us: f64,
    count: u64,
}

/// Accumulators for one [`rf_codegen::Workload::class`]: request/batch
/// counters, plan-cache effectiveness and a bounded latency window.
#[derive(Debug, Default)]
struct ClassTrack {
    completed: u64,
    failed: u64,
    batches: u64,
    cache_hits: u64,
    window: VecDeque<f64>,
}

/// Per-priority-lane accumulators.
#[derive(Debug, Default)]
struct LaneTrack {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
}

/// Thread-safe metric accumulators, owned by the engine and updated by the
/// worker pool.
#[derive(Debug, Default)]
pub struct RuntimeMetrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    /// Submissions shed by admission control (`RuntimeError::Overloaded`).
    shed: AtomicU64,
    /// Per-priority-lane traffic, indexed by [`Priority::lane`].
    lanes: [LaneTrack; LANES],
    batches: AtomicU64,
    /// Simulated per-request latencies, in microseconds.
    latencies_us: Mutex<LatencyTrack>,
    /// Per-workload-class accumulators, keyed by `Workload::class()`.
    classes: Mutex<HashMap<&'static str, ClassTrack>>,
    /// Sum of batch sizes, for the mean batch size.
    batched_requests: AtomicU64,
    /// Whole graphs served end-to-end via `Engine::submit_graph`.
    graphs_served: AtomicU64,
    /// Graph ops executed inside fused regions, over all served graphs.
    graph_fused_ops: AtomicU64,
    /// Graph ops executed unfused as glue, over all served graphs.
    graph_glue_ops: AtomicU64,
    /// Fused-region plan lookups issued by graph serving.
    region_lookups: AtomicU64,
    /// Fused-region plan lookups served from the plan cache.
    region_hits: AtomicU64,
}

/// A point-in-time view of one workload class's serving health.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSnapshot {
    /// The workload class name (e.g. `"softmax"`, `"mha"`).
    pub class: &'static str,
    /// Requests of this class fully executed.
    pub completed: u64,
    /// Requests of this class whose execution failed (the ticket received an
    /// error instead of a result).
    pub failed: u64,
    /// Batches of this class executed.
    pub batches: u64,
    /// Batches of this class served from an already-compiled plan.
    pub cache_hits: u64,
    /// Median simulated latency over the class's recent window, in µs.
    pub p50_us: f64,
    /// 99th-percentile simulated latency over the class's recent window, µs.
    pub p99_us: f64,
}

impl ClassSnapshot {
    /// Fraction of this class's batches served from the plan cache, in
    /// `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.batches as f64
        }
    }
}

/// A point-in-time view of one priority lane's traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneSnapshot {
    /// The lane name (`"high"`, `"normal"`, `"low"`).
    pub lane: &'static str,
    /// Submissions accepted onto this lane.
    pub submitted: u64,
    /// Submissions from this lane fully served.
    pub completed: u64,
    /// Submissions to this lane shed by admission control.
    pub shed: u64,
}

/// A point-in-time view of the runtime's health.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted by `submit`.
    pub submitted: u64,
    /// Requests fully executed.
    pub completed: u64,
    /// Requests whose execution failed (delivered an error, not a result).
    pub failed: u64,
    /// Submissions shed by admission control with
    /// [`crate::RuntimeError::Overloaded`] — never accepted, so disjoint
    /// from `submitted`.
    pub shed: u64,
    /// Per-priority-lane traffic, highest lane first.
    pub lanes: Vec<LaneSnapshot>,
    /// Batches executed.
    pub batches: u64,
    /// Requests waiting or executing right now.
    pub queue_depth: usize,
    /// Mean batch size over all executed batches.
    pub mean_batch_size: f64,
    /// Median simulated request latency over the last [`LATENCY_WINDOW`]
    /// requests, in microseconds.
    pub p50_us: f64,
    /// 99th-percentile simulated request latency over the last
    /// [`LATENCY_WINDOW`] requests, in microseconds.
    pub p99_us: f64,
    /// Mean simulated request latency over the engine's lifetime, in
    /// microseconds.
    pub mean_us: f64,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Auto-tuner warm-start cache counters (the searches behind plan-cache
    /// misses).
    pub tuning: TuningCacheStats,
    /// Per-workload-class breakdown (requests, latency percentiles, cache
    /// effectiveness), sorted by class name.
    pub classes: Vec<ClassSnapshot>,
    /// Whole graphs served end-to-end (`Engine::submit_graph`).
    pub graphs_served: u64,
    /// Graph ops executed inside fused regions, over all served graphs.
    pub graph_fused_ops: u64,
    /// Graph ops executed unfused as glue, over all served graphs.
    pub graph_glue_ops: u64,
    /// Fused-region plan lookups issued by graph serving.
    pub region_lookups: u64,
    /// Fused-region plan lookups served from the plan cache.
    pub region_hits: u64,
}

impl MetricsSnapshot {
    /// Fraction of fused-region plan lookups served from the plan cache, in
    /// `[0, 1]`.
    pub fn region_hit_rate(&self) -> f64 {
        if self.region_lookups == 0 {
            0.0
        } else {
            self.region_hits as f64 / self.region_lookups as f64
        }
    }
}

/// Linear-interpolation percentile of an unsorted sample set, `p` in `[0, 100]`.
///
/// Non-finite samples (the infinite latency of an infeasible kernel, or a NaN
/// from downstream arithmetic on one) are ignored rather than allowed to
/// poison the ordering: the metrics path must never panic on a pathological
/// sample. Returns `0.0` when no finite samples remain.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, p)
}

/// [`percentile`] over an already-sorted sample set (sort once, query many).
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

impl RuntimeMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one accepted submission on `priority`'s lane.
    pub fn record_submit(&self, priority: Priority) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.lanes[priority.lane()]
            .submitted
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Rolls back one [`RuntimeMetrics::record_submit`] whose submission was
    /// rejected after counting (scheduler shutdown race or admission shed).
    pub fn cancel_submit(&self, priority: Priority) {
        self.submitted.fetch_sub(1, Ordering::Relaxed);
        self.lanes[priority.lane()]
            .submitted
            .fetch_sub(1, Ordering::Relaxed);
    }

    /// Records one submission shed by admission control.
    pub fn record_shed(&self, priority: Priority) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.lanes[priority.lane()]
            .shed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records `served` submissions from `priority`'s lane fully served.
    /// Lane attribution only — class counters come from
    /// [`RuntimeMetrics::record_batch`], which has no per-request priority.
    pub fn record_served(&self, priority: Priority, served: usize) {
        self.lanes[priority.lane()]
            .completed
            .fetch_add(served as u64, Ordering::Relaxed);
    }

    /// Mean simulated request latency over the engine's lifetime, in
    /// microseconds (`0.0` before the first served request). Cheap enough
    /// for the submission path: the engine derives overload retry hints
    /// from it.
    pub fn mean_us(&self) -> f64 {
        let track = self.latencies_us.lock().expect("metrics lock poisoned");
        if track.count == 0 {
            0.0
        } else {
            track.total_us / track.count as f64
        }
    }

    /// Records one batch of workload class `class`: `executed` requests were
    /// served successfully (each experiencing the batch's simulated latency
    /// `latency_us`) and `failed` requests were delivered an execution error.
    /// `cache_hit` says whether the batch's plan came from the cache.
    ///
    /// Failed requests are never counted as completed and contribute no
    /// latency samples. Non-finite latencies (an infeasible kernel's infinite
    /// estimate) still count their requests as completed but are excluded
    /// from the latency distributions — a single infinite sample would
    /// otherwise poison the lifetime mean forever.
    pub fn record_batch(
        &self,
        class: &'static str,
        executed: usize,
        failed: usize,
        latency_us: f64,
        cache_hit: bool,
    ) {
        let size = executed + failed;
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.completed.fetch_add(executed as u64, Ordering::Relaxed);
        self.failed.fetch_add(failed as u64, Ordering::Relaxed);
        {
            let mut classes = self.classes.lock().expect("metrics lock poisoned");
            let track = classes.entry(class).or_default();
            track.completed += executed as u64;
            track.failed += failed as u64;
            track.batches += 1;
            if cache_hit {
                track.cache_hits += 1;
            }
            if latency_us.is_finite() {
                for _ in 0..executed {
                    if track.window.len() == CLASS_LATENCY_WINDOW {
                        track.window.pop_front();
                    }
                    track.window.push_back(latency_us);
                }
            }
        }
        if !latency_us.is_finite() {
            return;
        }
        let mut track = self.latencies_us.lock().expect("metrics lock poisoned");
        track.total_us += latency_us * executed as f64;
        track.count += executed as u64;
        for _ in 0..executed {
            if track.window.len() == LATENCY_WINDOW {
                track.window.pop_front();
            }
            track.window.push_back(latency_us);
        }
    }

    /// Records one graph served end-to-end: `fused_ops` graph ops were
    /// covered by fused regions, `glue_ops` executed unfused, and of the
    /// `region_lookups` per-region plan-cache lookups `region_hits` found an
    /// already-compiled plan.
    pub fn record_graph(
        &self,
        fused_ops: usize,
        glue_ops: usize,
        region_hits: usize,
        region_lookups: usize,
    ) {
        self.graphs_served.fetch_add(1, Ordering::Relaxed);
        self.graph_fused_ops
            .fetch_add(fused_ops as u64, Ordering::Relaxed);
        self.graph_glue_ops
            .fetch_add(glue_ops as u64, Ordering::Relaxed);
        self.region_hits
            .fetch_add(region_hits as u64, Ordering::Relaxed);
        self.region_lookups
            .fetch_add(region_lookups as u64, Ordering::Relaxed);
    }

    /// Builds a snapshot; the caller supplies the current queue depth plus the
    /// plan-cache and tuning-cache counters (owned by the engine). The latency
    /// window is copied out under the lock (dropping non-finite samples, see
    /// [`percentile`]) and sorted once outside it.
    pub fn snapshot(
        &self,
        queue_depth: usize,
        cache: CacheStats,
        tuning: TuningCacheStats,
    ) -> MetricsSnapshot {
        let (mut window, mean_us) = {
            let track = self.latencies_us.lock().expect("metrics lock poisoned");
            let mean = if track.count == 0 {
                0.0
            } else {
                track.total_us / track.count as f64
            };
            (
                Vec::from_iter(track.window.iter().copied().filter(|v| v.is_finite())),
                mean,
            )
        };
        window.sort_by(f64::total_cmp);
        let mut classes: Vec<ClassSnapshot> = {
            let tracks = self.classes.lock().expect("metrics lock poisoned");
            tracks
                .iter()
                .map(|(&class, track)| {
                    // `record_batch` only admits finite samples, so the
                    // window can be sorted as-is.
                    let mut class_window: Vec<f64> = track.window.iter().copied().collect();
                    class_window.sort_by(f64::total_cmp);
                    ClassSnapshot {
                        class,
                        completed: track.completed,
                        failed: track.failed,
                        batches: track.batches,
                        cache_hits: track.cache_hits,
                        p50_us: percentile_sorted(&class_window, 50.0),
                        p99_us: percentile_sorted(&class_window, 99.0),
                    }
                })
                .collect()
        };
        classes.sort_by_key(|c| c.class);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        let lanes = Priority::ALL
            .iter()
            .map(|priority| {
                let track = &self.lanes[priority.lane()];
                LaneSnapshot {
                    lane: priority.name(),
                    submitted: track.submitted.load(Ordering::Relaxed),
                    completed: track.completed.load(Ordering::Relaxed),
                    shed: track.shed.load(Ordering::Relaxed),
                }
            })
            .collect();
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            lanes,
            batches,
            queue_depth,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            p50_us: percentile_sorted(&window, 50.0),
            p99_us: percentile_sorted(&window, 99.0),
            mean_us,
            cache,
            tuning,
            classes,
            graphs_served: self.graphs_served.load(Ordering::Relaxed),
            graph_fused_ops: self.graph_fused_ops.load(Ordering::Relaxed),
            graph_glue_ops: self.graph_glue_ops.load(Ordering::Relaxed),
            region_lookups: self.region_lookups.load(Ordering::Relaxed),
            region_hits: self.region_hits.load(Ordering::Relaxed),
        }
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot as an aligned plain-text report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("runtime metrics\n");
        out.push_str(&format!("  requests submitted   {:>12}\n", self.submitted));
        out.push_str(&format!("  requests completed   {:>12}\n", self.completed));
        out.push_str(&format!("  requests failed      {:>12}\n", self.failed));
        out.push_str(&format!("  requests shed        {:>12}\n", self.shed));
        out.push_str(&format!("  batches executed     {:>12}\n", self.batches));
        out.push_str(&format!(
            "  mean batch size      {:>12.2}\n",
            self.mean_batch_size
        ));
        out.push_str(&format!(
            "  queue depth          {:>12}\n",
            self.queue_depth
        ));
        out.push_str(&format!("  p50 latency (sim)    {:>9.2} us\n", self.p50_us));
        out.push_str(&format!("  p99 latency (sim)    {:>9.2} us\n", self.p99_us));
        out.push_str(&format!(
            "  mean latency (sim)   {:>9.2} us\n",
            self.mean_us
        ));
        out.push_str(&format!(
            "  cache hits / misses  {:>6} / {:<6} ({:.1}% hit rate)\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0
        ));
        out.push_str(&format!(
            "  cache entries        {:>12} ({} evictions)\n",
            self.cache.entries, self.cache.evictions
        ));
        out.push_str(&format!(
            "  tuner warm starts    {:>6} / {:<6} ({} classes)\n",
            self.tuning.seeded, self.tuning.lookups, self.tuning.entries
        ));
        if self.graphs_served > 0 {
            out.push_str(&format!(
                "  graphs served        {:>12}\n",
                self.graphs_served
            ));
            out.push_str(&format!(
                "  graph ops fused      {:>6} / {:<6} ({} glue)\n",
                self.graph_fused_ops,
                self.graph_fused_ops + self.graph_glue_ops,
                self.graph_glue_ops
            ));
            out.push_str(&format!(
                "  region cache hits    {:>6} / {:<6} ({:.1}% hit rate)\n",
                self.region_hits,
                self.region_lookups,
                self.region_hit_rate() * 100.0
            ));
        }
        if self.lanes.iter().any(|l| l.submitted > 0 || l.shed > 0) {
            out.push_str("  per-lane breakdown\n");
            for lane in &self.lanes {
                out.push_str(&format!(
                    "    {:<10} submitted {:>8}  completed {:>8}  shed {:>8}\n",
                    lane.lane, lane.submitted, lane.completed, lane.shed
                ));
            }
        }
        if !self.classes.is_empty() {
            out.push_str("  per-class breakdown\n");
            for class in &self.classes {
                out.push_str(&format!(
                    "    {:<10} reqs {:>8}  p50 {:>9.2} us  p99 {:>9.2} us  cache {:>5.1}%\n",
                    class.class,
                    class.completed,
                    class.p50_us,
                    class.p99_us,
                    class.cache_hit_rate() * 100.0
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_cache_stats() -> CacheStats {
        CacheStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            entries: 0,
        }
    }

    fn empty_tuning_stats() -> TuningCacheStats {
        TuningCacheStats::default()
    }

    #[test]
    fn percentile_interpolates() {
        let samples = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 100.0), 4.0);
        assert!((percentile(&samples, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn non_finite_samples_do_not_panic_the_metrics_path() {
        // Regression: sorting with `partial_cmp(...).expect(...)` panicked the
        // metrics path as soon as an infeasible kernel's infinite (or NaN)
        // latency reached a sample. Non-finite samples are now ignored.
        let samples = vec![
            4.0,
            f64::INFINITY,
            1.0,
            f64::NAN,
            3.0,
            f64::NEG_INFINITY,
            2.0,
        ];
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 100.0), 4.0);
        assert!((percentile(&samples, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[f64::NAN, f64::INFINITY], 50.0), 0.0);

        // The snapshot path filters the window the same way.
        let metrics = RuntimeMetrics::new();
        metrics.record_batch("softmax", 2, 0, 10.0, false);
        metrics.record_batch("softmax", 1, 0, f64::INFINITY, true);
        metrics.record_batch("softmax", 1, 0, f64::NAN, true);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.p50_us, 10.0);
        assert_eq!(snap.p99_us, 10.0);
        assert_eq!(snap.completed, 4);
        assert_eq!(snap.mean_us, 10.0, "the lifetime mean must stay finite");
    }

    #[test]
    fn batches_update_counters_and_latency_distribution() {
        let metrics = RuntimeMetrics::new();
        for _ in 0..4 {
            metrics.record_submit(Priority::Normal);
        }
        metrics.record_batch("softmax", 3, 0, 10.0, false);
        metrics.record_batch("mha", 1, 0, 50.0, true);
        metrics.record_served(Priority::Normal, 3);
        metrics.record_served(Priority::High, 1);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.submitted, 4);
        assert_eq!(snap.completed, 4);
        assert_eq!(snap.batches, 2);
        assert!((snap.mean_batch_size - 2.0).abs() < 1e-12);
        assert_eq!(snap.p50_us, 10.0);
        assert!(snap.p99_us > 10.0 && snap.p99_us <= 50.0);
        assert!((snap.mean_us - 20.0).abs() < 1e-12);
        assert_eq!(metrics.mean_us(), snap.mean_us);
        // Lane attribution: 4 normal submissions, 3 normal + 1 high served.
        assert_eq!(snap.lanes.len(), LANES);
        assert_eq!(snap.lanes[0].lane, "high");
        assert_eq!((snap.lanes[0].submitted, snap.lanes[0].completed), (0, 1));
        assert_eq!((snap.lanes[1].submitted, snap.lanes[1].completed), (4, 3));
    }

    #[test]
    fn sheds_are_counted_per_lane_and_reported() {
        let metrics = RuntimeMetrics::new();
        assert_eq!(metrics.mean_us(), 0.0, "no samples => zero mean");
        // An overloaded submission is first counted, then rolled back and
        // recorded as a shed — it must not inflate `submitted`.
        metrics.record_submit(Priority::Low);
        metrics.cancel_submit(Priority::Low);
        metrics.record_shed(Priority::Low);
        metrics.record_shed(Priority::High);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.submitted, 0);
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.lanes[Priority::Low.lane()].shed, 1);
        assert_eq!(snap.lanes[Priority::High.lane()].shed, 1);
        assert_eq!(snap.lanes[Priority::Low.lane()].submitted, 0);
        let report = snap.report();
        assert!(report.contains("requests shed"));
        assert!(report.contains("per-lane breakdown"));
        assert!(report.contains("low"));
    }

    #[test]
    fn latency_window_is_bounded_but_mean_is_lifetime() {
        let metrics = RuntimeMetrics::new();
        // Overfill the window: the old 1.0us samples must be displaced by the
        // later 9.0us ones for the percentiles, while the mean still sees all.
        metrics.record_batch("softmax", LATENCY_WINDOW, 0, 1.0, false);
        metrics.record_batch("softmax", LATENCY_WINDOW, 0, 9.0, true);
        metrics.record_batch("softmax", LATENCY_WINDOW, 0, 9.0, true);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.completed as usize, 3 * LATENCY_WINDOW);
        assert_eq!(snap.p50_us, 9.0, "window holds only the latest samples");
        let track = metrics.latencies_us.lock().unwrap();
        assert_eq!(track.window.len(), LATENCY_WINDOW);
        drop(track);
        assert!((snap.mean_us - (1.0 + 9.0 + 9.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn report_mentions_every_headline_number() {
        let metrics = RuntimeMetrics::new();
        metrics.record_submit(Priority::Normal);
        metrics.record_batch("softmax", 1, 0, 12.5, false);
        let report = metrics
            .snapshot(
                3,
                CacheStats {
                    hits: 9,
                    misses: 1,
                    evictions: 0,
                    entries: 1,
                },
                TuningCacheStats {
                    lookups: 2,
                    seeded: 1,
                    insertions: 2,
                    entries: 1,
                },
            )
            .report();
        assert!(report.contains("requests completed"));
        assert!(report.contains("p99 latency"));
        assert!(report.contains("90.0% hit rate"));
        assert!(report.contains("queue depth"));
        assert!(report.contains("tuner warm starts"));
        assert!(report.contains("1 / 2"));
        assert!(report.contains("per-class breakdown"));
        assert!(report.contains("softmax"));
    }

    #[test]
    fn per_class_breakdown_tracks_each_class_separately() {
        let metrics = RuntimeMetrics::new();
        // softmax: 3 batches (2 cache hits), fast; mha: 1 batch (miss), slow.
        metrics.record_batch("softmax", 2, 0, 10.0, false);
        metrics.record_batch("softmax", 4, 0, 12.0, true);
        metrics.record_batch("softmax", 2, 0, 14.0, true);
        metrics.record_batch("mha", 1, 0, 200.0, false);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.classes.len(), 2);
        // Sorted by class name: mha before softmax.
        let mha = &snap.classes[0];
        let softmax = &snap.classes[1];
        assert_eq!(mha.class, "mha");
        assert_eq!((mha.completed, mha.batches, mha.cache_hits), (1, 1, 0));
        assert_eq!(mha.cache_hit_rate(), 0.0);
        assert_eq!(mha.p50_us, 200.0);
        assert_eq!(softmax.class, "softmax");
        assert_eq!(
            (softmax.completed, softmax.batches, softmax.cache_hits),
            (8, 3, 2)
        );
        assert!((softmax.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(softmax.p50_us, 12.0);
        assert!(softmax.p99_us <= 14.0 && softmax.p99_us > 12.0);
        // Class percentiles are independent of the global distribution.
        assert!(snap.p99_us > softmax.p99_us);
        // Non-finite latencies count requests but never enter the window.
        metrics.record_batch("mha", 1, 0, f64::INFINITY, true);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        let mha = &snap.classes[0];
        assert_eq!((mha.completed, mha.batches, mha.cache_hits), (2, 2, 1));
        assert_eq!(mha.p99_us, 200.0);
    }

    #[test]
    fn graph_counters_accumulate_and_render() {
        let metrics = RuntimeMetrics::new();
        let before = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(before.graphs_served, 0);
        assert_eq!(before.region_hit_rate(), 0.0);
        assert!(
            !before.report().contains("graphs served"),
            "graph lines are omitted until a graph is served"
        );
        // First graph: 2 regions (both compile), 9 fused ops, 8 glue ops.
        metrics.record_graph(9, 8, 0, 2);
        // Same graph again: both regions hit the plan cache.
        metrics.record_graph(9, 8, 2, 2);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        assert_eq!(snap.graphs_served, 2);
        assert_eq!(snap.graph_fused_ops, 18);
        assert_eq!(snap.graph_glue_ops, 16);
        assert_eq!((snap.region_hits, snap.region_lookups), (2, 4));
        assert!((snap.region_hit_rate() - 0.5).abs() < 1e-12);
        let report = snap.report();
        assert!(report.contains("graphs served"));
        assert!(report.contains("graph ops fused"));
        assert!(report.contains("region cache hits"));
        assert!(report.contains("50.0% hit rate"));
    }

    #[test]
    fn class_windows_are_bounded() {
        let metrics = RuntimeMetrics::new();
        metrics.record_batch("quant", CLASS_LATENCY_WINDOW, 0, 1.0, false);
        metrics.record_batch("quant", CLASS_LATENCY_WINDOW, 0, 9.0, true);
        let snap = metrics.snapshot(0, empty_cache_stats(), empty_tuning_stats());
        let quant = &snap.classes[0];
        assert_eq!(quant.completed as usize, 2 * CLASS_LATENCY_WINDOW);
        assert_eq!(quant.p50_us, 9.0, "old samples displaced");
        let tracks = metrics.classes.lock().unwrap();
        assert_eq!(tracks["quant"].window.len(), CLASS_LATENCY_WINDOW);
    }
}
