//! The compiled-plan cache: one tuned [`CompiledKernel`] per
//! `(workload, architecture)` pair, shared across worker threads.
//!
//! Compilation (detection, ACRF analysis, lowering, auto-tuning) costs
//! milliseconds; a warm lookup costs a hash-map probe. The cache therefore
//! amortizes the whole compiler pipeline across repeated request shapes, the
//! way DNNFusion amortizes fusion analysis across repeated graphs.
//!
//! Concurrency design:
//!
//! * the map itself sits behind an [`RwLock`]; lookups take the read lock,
//!   insertions and evictions take the write lock for a few hash operations;
//! * each entry holds an `Arc<OnceLock<Arc<CompiledKernel>>>`, so the
//!   expensive compilation runs **outside** both locks. When several threads
//!   miss on the same key simultaneously, [`std::sync::OnceLock::get_or_init`]
//!   guarantees exactly one of them compiles (and exactly one miss is
//!   counted); the rest block on the slot, not on the map;
//! * recency is a global atomic clock stamped per access, which keeps the read
//!   path lock-free apart from the map's read lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use rf_codegen::{
    compile_workload_with, CompileOptions, CompiledKernel, PlanKey, TuningCache, TuningCacheStats,
    Workload,
};
use rf_gpusim::GpuArch;

/// A snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an already-compiled plan (including threads that
    /// waited for a concurrent compilation of the same key to finish).
    pub hits: u64,
    /// Lookups that triggered a compilation — exactly one per distinct key
    /// while the key stays resident.
    pub misses: u64,
    /// Entries removed by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served without compiling, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CacheEntry {
    slot: Arc<OnceLock<Arc<CompiledKernel>>>,
    last_used: Arc<AtomicU64>,
}

/// A bounded, thread-safe LRU cache of compiled plans for one architecture.
pub struct PlanCache {
    arch: GpuArch,
    /// The arch half of every [`PlanKey`] this cache produces, computed once
    /// (the fingerprint hashes all ten architecture parameters).
    arch_fingerprint: u64,
    capacity: usize,
    /// Warm-start memory for the auto-tuner, shared by every compilation this
    /// cache triggers: a plan-cache miss for a new shape of an already-seen
    /// workload class starts its search from the class's previous winners.
    tuning: Arc<TuningCache>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    entries: RwLock<HashMap<PlanKey, CacheEntry>>,
}

impl PlanCache {
    /// Creates a cache for `arch` holding at most `capacity` plans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(arch: GpuArch, capacity: usize) -> Self {
        assert!(capacity > 0, "plan cache capacity must be positive");
        let arch_fingerprint = rf_codegen::arch_fingerprint(&arch);
        PlanCache {
            arch,
            arch_fingerprint,
            capacity,
            tuning: Arc::new(TuningCache::new()),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            entries: RwLock::new(HashMap::new()),
        }
    }

    /// The architecture this cache compiles for.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// The maximum number of resident plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The auto-tuner warm-start cache shared by this plan cache's compiles.
    pub fn tuning_cache(&self) -> &Arc<TuningCache> {
        &self.tuning
    }

    /// Counters of the auto-tuner warm-start cache.
    pub fn tuning_stats(&self) -> TuningCacheStats {
        self.tuning.stats()
    }

    /// Number of resident plans.
    pub fn len(&self) -> usize {
        self.entries.read().expect("plan cache lock poisoned").len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds the cache key for `workload` using the precomputed architecture
    /// fingerprint (the hot path runs this once per lookup).
    fn key_for(&self, workload: &Workload) -> PlanKey {
        PlanKey {
            workload: workload.clone(),
            arch: self.arch.name,
            arch_fingerprint: self.arch_fingerprint,
        }
    }

    /// Whether a compiled plan for `workload` is resident.
    pub fn contains(&self, workload: &Workload) -> bool {
        let key = self.key_for(workload);
        self.entries
            .read()
            .expect("plan cache lock poisoned")
            .get(&key)
            .is_some_and(|e| e.slot.get().is_some())
    }

    /// Returns the compiled plan for `workload`, compiling it on first use.
    pub fn get_or_compile(&self, workload: &Workload) -> Arc<CompiledKernel> {
        self.get_or_compile_traced(workload).0
    }

    /// Like [`PlanCache::get_or_compile`], additionally reporting whether the
    /// lookup was a hit (`true`) or triggered this key's compilation.
    pub fn get_or_compile_traced(&self, workload: &Workload) -> (Arc<CompiledKernel>, bool) {
        let key = self.key_for(workload);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;

        // Fast path: read lock only.
        let slot = {
            let entries = self.entries.read().expect("plan cache lock poisoned");
            entries.get(&key).map(|entry| {
                entry.last_used.store(stamp, Ordering::Relaxed);
                Arc::clone(&entry.slot)
            })
        };
        let slot = match slot {
            Some(slot) => slot,
            None => self.insert_slot(key, stamp),
        };

        // The compile itself runs outside every lock; OnceLock serialises
        // concurrent initializers so exactly one thread per key compiles.
        let mut compiled_here = false;
        let kernel = slot.get_or_init(|| {
            compiled_here = true;
            self.misses.fetch_add(1, Ordering::Relaxed);
            let opts = CompileOptions {
                tuning_cache: Some(Arc::clone(&self.tuning)),
                ..CompileOptions::default()
            };
            Arc::new(compile_workload_with(workload, &self.arch, &opts))
        });
        if !compiled_here {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (Arc::clone(kernel), !compiled_here)
    }

    /// Takes the write lock, re-checks for a racing insert, evicts if at
    /// capacity and inserts a fresh (uninitialised) slot for `key`.
    fn insert_slot(&self, key: PlanKey, stamp: u64) -> Arc<OnceLock<Arc<CompiledKernel>>> {
        let mut entries = self.entries.write().expect("plan cache lock poisoned");
        if let Some(entry) = entries.get(&key) {
            entry.last_used.store(stamp, Ordering::Relaxed);
            return Arc::clone(&entry.slot);
        }
        if entries.len() >= self.capacity {
            // Evict the least-recently-used *completed* entry. An in-flight
            // slot (another thread still compiling it) must stay resident:
            // evicting it would make the next request for the same key insert
            // a fresh slot and compile the same plan a second time. Waiters on
            // an evicted slot keep their own Arc to it, so a completed plan
            // still serves them; only the map entry disappears. When every
            // resident entry is in flight the map temporarily exceeds
            // capacity instead of evicting.
            if let Some(victim) = entries
                .iter()
                .filter(|(_, e)| e.slot.get().is_some())
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            {
                entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let slot = Arc::new(OnceLock::new());
        entries.insert(
            key,
            CacheEntry {
                slot: Arc::clone(&slot),
                last_used: Arc::new(AtomicU64::new(stamp)),
            },
        );
        slot
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("arch", &self.arch.name)
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn softmax(len: usize) -> Workload {
        Workload::Softmax { rows: 8, len }
    }

    #[test]
    fn repeated_lookups_hit_after_one_miss() {
        let cache = PlanCache::new(GpuArch::a10(), 8);
        let w = softmax(64);
        let (first, hit) = cache.get_or_compile_traced(&w);
        assert!(!hit);
        for _ in 0..5 {
            let (again, hit) = cache.get_or_compile_traced(&w);
            assert!(hit);
            assert!(Arc::ptr_eq(&first, &again), "hits must share the plan");
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (5, 1, 1));
        assert!((stats.hit_rate() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_workloads_and_arches_miss_separately() {
        let a10 = PlanCache::new(GpuArch::a10(), 8);
        let h800 = PlanCache::new(GpuArch::h800(), 8);
        a10.get_or_compile(&softmax(64));
        a10.get_or_compile(&softmax(128));
        h800.get_or_compile(&softmax(64));
        assert_eq!(a10.stats().misses, 2);
        assert_eq!(h800.stats().misses, 1);
    }

    #[test]
    fn lru_bound_evicts_least_recently_used() {
        let cache = PlanCache::new(GpuArch::a10(), 2);
        cache.get_or_compile(&softmax(32));
        cache.get_or_compile(&softmax(64));
        // Refresh 32 so 64 becomes the LRU victim.
        cache.get_or_compile(&softmax(32));
        cache.get_or_compile(&softmax(96));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(cache.contains(&softmax(32)));
        assert!(cache.contains(&softmax(96)));
        assert!(!cache.contains(&softmax(64)));
        // Re-requesting the evicted plan recompiles (a new miss).
        cache.get_or_compile(&softmax(64));
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn concurrent_lookups_of_one_key_compile_once() {
        let cache = Arc::new(PlanCache::new(GpuArch::a10(), 8));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || cache.get_or_compile(&softmax(256)))
            })
            .collect();
        let plans: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one thread compiles");
        assert_eq!(stats.hits, 7);
        assert!(plans.windows(2).all(|p| Arc::ptr_eq(&p[0], &p[1])));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        PlanCache::new(GpuArch::a10(), 0);
    }

    #[test]
    fn in_flight_entries_are_never_evicted() {
        // Regression: LRU eviction used `min_by_key` over *all* entries, so an
        // entry whose OnceLock was still being compiled by another thread
        // could be evicted, forcing a duplicate compilation of its key.
        let cache = PlanCache::new(GpuArch::a10(), 1);
        // An uninitialised slot models a compilation in flight on key A.
        let key_a = cache.key_for(&softmax(32));
        cache.insert_slot(key_a.clone(), 1);
        // Filling past capacity must not pick the in-flight entry as victim:
        // with nothing evictable the map temporarily exceeds capacity.
        cache.get_or_compile(&softmax(64));
        assert!(
            cache
                .entries
                .read()
                .unwrap()
                .get(&key_a)
                .is_some_and(|e| e.slot.get().is_none()),
            "the in-flight slot must survive eviction pressure"
        );
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.len(), 2, "over capacity rather than evicting");
        // Once more entries complete, the completed one becomes the victim.
        cache.get_or_compile(&softmax(96));
        assert!(cache.entries.read().unwrap().contains_key(&key_a));
        assert!(!cache.contains(&softmax(64)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn concurrent_eviction_churn_never_drops_an_in_flight_slot() {
        // A compilation held in flight for the whole test (an uninitialised
        // slot whose OnceLock we fill at the end) while concurrent threads
        // churn the rest of an over-subscribed cache. The old `min_by_key`
        // over all entries would evict the in-flight slot under this
        // pressure, forcing a duplicate compile of its key; with the fix it
        // must survive arbitrary interleavings.
        let cache = Arc::new(PlanCache::new(GpuArch::a10(), 2));
        let in_flight = softmax(8);
        let key = cache.key_for(&in_flight);
        let slot = cache.insert_slot(key.clone(), 1);
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || cache.get_or_compile(&softmax(32 * (i % 4 + 1))))
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(
            cache
                .entries
                .read()
                .unwrap()
                .get(&key)
                .is_some_and(|e| Arc::ptr_eq(&e.slot, &slot)),
            "the in-flight slot must survive concurrent eviction churn"
        );
        // The in-flight compile finally completes; later requests for its key
        // must join the surviving slot instead of recompiling.
        let plan = Arc::new(rf_codegen::compile_workload(&in_flight, cache.arch()));
        assert!(slot.set(Arc::clone(&plan)).is_ok(), "slot still empty");
        let misses_before = cache.stats().misses;
        let (served, hit) = cache.get_or_compile_traced(&in_flight);
        assert!(hit);
        assert!(Arc::ptr_eq(&served, &plan));
        assert_eq!(cache.stats().misses, misses_before);
    }

    #[test]
    fn plan_cache_shares_one_tuning_cache_across_compiles() {
        let cache = PlanCache::new(GpuArch::a10(), 8);
        cache.get_or_compile(&softmax(64));
        let after_first = cache.tuning_stats();
        assert_eq!(after_first.lookups, 1);
        assert_eq!(after_first.insertions, 1);
        assert_eq!(after_first.seeded, 0);
        // A different shape of the same class warm-starts from the winner.
        cache.get_or_compile(&softmax(128));
        let after_second = cache.tuning_stats();
        assert_eq!(after_second.seeded, 1);
        assert_eq!(after_second.entries, 1);
        // A warm hit does not touch the tuner at all.
        cache.get_or_compile(&softmax(64));
        assert_eq!(cache.tuning_stats().lookups, 2);
    }
}
