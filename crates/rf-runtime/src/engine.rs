//! The serving engine: the unified submission front door, the
//! continuous-batching worker pool and the engine lifecycle.
//!
//! Everything the engine serves — single workloads, whole operator graphs,
//! pre-partitioned plans — enters through [`Engine::submit`] as a
//! [`Submission`] and resolves to a [`Response`] through the
//! returned [`Ticket`]. Workers serve the open request stream in iterations
//! (see [`crate::stream`]): a request submitted while a batch is mid-flight
//! joins a subsequent iteration instead of waiting for a drain.
//!
//! ```
//! use rf_gpusim::GpuArch;
//! use rf_runtime::{Engine, Priority, Request, Submission};
//! use rf_workloads::random_matrix;
//!
//! let engine = Engine::new(GpuArch::a10());
//! // A bare `Request` converts into a normal-priority submission…
//! let ticket = engine
//!     .submit(Request::softmax(random_matrix(4, 64, 1, -2.0, 2.0)))
//!     .unwrap();
//! // …and the explicit form picks a priority lane.
//! let urgent = engine
//!     .submit(
//!         Submission::workload(Request::softmax(random_matrix(4, 64, 2, -2.0, 2.0)))
//!             .with_priority(Priority::High),
//!     )
//!     .unwrap();
//! let result = ticket.wait().unwrap();
//! assert_eq!(result.workload, "softmax_4x64");
//! assert!(urgent.wait().unwrap().iteration >= 1);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rf_gpusim::GpuArch;
use rf_trace::{ArgValue, TraceCollector, TraceEvent, TraceSnapshot, Track};

use crate::cache::{CacheStats, PlanCache};
use crate::config::RuntimeConfig;
use crate::graph::GraphResponse;
use crate::metrics::{MetricsSnapshot, RuntimeMetrics};
use crate::request::{execute_plan, RequestOutput, RuntimeError};
use crate::stream::{batch_latency_us, Iteration, QueuedWork, StreamScheduler, Ticket};
use crate::submit::{GraphStats, Priority, RequestTiming, Response, Submission, LANES};

struct EngineShared {
    arch: GpuArch,
    cache: PlanCache,
    metrics: RuntimeMetrics,
    scheduler: StreamScheduler,
    trace: TraceCollector,
}

/// Microseconds from `from` to `to` (0 when the clock says they inverted —
/// the metrics path must never panic on a monotonic-clock edge case).
fn duration_us(from: Instant, to: Instant) -> f64 {
    to.checked_duration_since(from)
        .map(|d| d.as_secs_f64() * 1e6)
        .unwrap_or(0.0)
}

/// A concurrent serving engine for one GPU architecture.
///
/// [`Engine::submit`] validates and enqueues a [`Submission`] onto its
/// priority lane and returns a [`Ticket`]; a pool of worker threads serves
/// the stream in iterations, grouping shape-compatible requests into batches
/// formed at each iteration boundary, compiling (or re-using) fused plans via
/// the [`PlanCache`], executing on the `rf_tile::exec` VM and costing on the
/// analytical GPU model. Admission is bounded: past
/// [`RuntimeConfig::max_in_flight`] the engine sheds with
/// [`RuntimeError::Overloaded`] instead of queuing without bound. Dropping
/// the engine shuts the pool down; still-queued submissions fail with
/// [`RuntimeError::ShuttingDown`].
pub struct Engine {
    shared: Arc<EngineShared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Engine {
    /// Creates an engine for `arch` with the default [`RuntimeConfig`].
    pub fn new(arch: GpuArch) -> Self {
        Engine::with_config(arch, RuntimeConfig::default())
    }

    /// Creates an engine with explicit tunables.
    ///
    /// # Panics
    ///
    /// Panics if `config` violates its invariants (see
    /// [`RuntimeConfig::validate`]). Configurations built through
    /// [`RuntimeConfig::builder`] are already validated.
    pub fn with_config(arch: GpuArch, config: RuntimeConfig) -> Self {
        if let Err(err) = config.validate() {
            panic!("invalid RuntimeConfig: {err}");
        }
        let shared = Arc::new(EngineShared {
            cache: PlanCache::new(arch.clone(), config.cache_capacity),
            metrics: RuntimeMetrics::with_level(config.trace.level),
            scheduler: StreamScheduler::new(
                config.max_batch,
                config.max_in_flight,
                config.lane_weights.as_array(),
            ),
            trace: TraceCollector::new(config.trace),
            arch,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rf-runtime-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawning a runtime worker failed")
            })
            .collect();
        Engine {
            shared,
            workers,
            next_id: AtomicU64::new(0),
        }
    }

    /// The architecture this engine compiles and costs for.
    pub fn arch(&self) -> &GpuArch {
        &self.shared.arch
    }

    /// Validates and enqueues a submission onto its priority lane, returning
    /// the completion ticket. Accepts anything convertible into a
    /// [`Submission`] — in particular a bare [`Request`](crate::Request),
    /// which submits at [`Priority::Normal`].
    ///
    /// The request joins the open stream immediately: if a batch is
    /// executing right now, the request is eligible for the next iteration
    /// boundary — it never waits for the queue to drain.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InputMismatch`] / [`RuntimeError::ShapeMismatch`] for
    /// invalid workload requests, [`RuntimeError::Overloaded`] (with a retry
    /// hint) when the bounded in-flight budget is exhausted, and
    /// [`RuntimeError::ShuttingDown`] once the engine is being dropped.
    pub fn submit(&self, submission: impl Into<Submission>) -> Result<Ticket, RuntimeError> {
        let submission = submission.into();
        if let Submission::Workload { request, .. } = &submission {
            crate::request::validate(&request.workload, &request.input)?;
        }
        let priority = submission.priority();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (queued, ticket) = QueuedWork::new(id, submission);
        // Count before enqueueing so a snapshot can never observe a completed
        // request that was not yet counted as submitted; roll back if the
        // scheduler rejects the request (shutdown or shed), so rejected
        // requests never inflate the counter.
        self.shared.metrics.record_submit(priority);
        if let Err(err) = self.shared.scheduler.enqueue(queued, self.retry_hint()) {
            self.shared.metrics.cancel_submit(priority);
            if let RuntimeError::Overloaded { retry_hint, source } = &err {
                self.shared.metrics.record_shed(priority, *retry_hint);
                if self.shared.trace.enabled() {
                    self.shared.trace.record(
                        TraceEvent::instant("shed", self.shared.trace.now_us(), Track::FrontDoor)
                            .with_request(id)
                            .with_lane(priority.name())
                            .with_arg("in_flight", ArgValue::U64(source.in_flight as u64))
                            .with_arg("budget", ArgValue::U64(source.budget as u64))
                            .with_arg("retry_us", ArgValue::F64(retry_hint.as_secs_f64() * 1e6)),
                    );
                }
            }
            return Err(err);
        }
        if self.shared.trace.enabled() {
            self.shared.trace.record(
                TraceEvent::instant("submit", self.shared.trace.now_us(), Track::Request(id))
                    .with_request(id)
                    .with_lane(priority.name()),
            );
        }
        Ok(ticket)
    }

    /// The backoff to suggest alongside an [`RuntimeError::Overloaded`] shed:
    /// roughly how long until in-flight budget frees up, estimated as the
    /// mean simulated request latency times the iterations queued ahead.
    fn retry_hint(&self) -> Duration {
        let mean_us = self.shared.metrics.mean_us();
        let depth = self.shared.scheduler.depth() as f64;
        let iterations_ahead = (depth / self.shared.scheduler.max_batch() as f64).max(1.0);
        let hint_us = (mean_us.max(10.0) * iterations_ahead).clamp(100.0, 100_000.0);
        Duration::from_micros(hint_us as u64)
    }

    /// Blocks until every accepted submission has been executed.
    pub fn run_until_drained(&self) {
        self.shared.scheduler.wait_drained();
    }

    /// Serves a whole operator graph end-to-end and blocks for the result.
    ///
    /// **Deprecated front door**: this is a compatibility wrapper over
    /// [`Engine::submit`] with [`Submission::graph`] — it clones the graph
    /// and bindings, queues them on the open stream at normal priority and
    /// blocks on the ticket. Prefer the unified API, which shares the
    /// graph behind an `Arc`, picks a priority lane and does not block:
    ///
    /// ```ignore
    /// let ticket = engine.submit(Submission::graph(graph, bindings))?;
    /// let response = ticket.wait()?;
    /// ```
    ///
    /// The graph is partitioned into maximal fusable regions plus glue ops
    /// (`rf-graph`); each region compiles through the engine's [`PlanCache`]
    /// so repeated submissions of the same graph — or different graphs
    /// sharing a region shape — re-use the tuned plans.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Graph`] when an input binding is missing or misshapen
    /// or a region rejects its tensors at execution time; see
    /// [`Engine::submit`] for admission errors.
    pub fn submit_graph(
        &self,
        graph: &rf_graph::OpGraph,
        bindings: &[(&str, rf_workloads::Matrix)],
    ) -> Result<GraphResponse, RuntimeError> {
        self.submit_graph_compat(graph, None, bindings)
    }

    /// Like [`Engine::submit_graph`], with a pre-partitioned
    /// [`rf_graph::GraphPlan`] (partition once, serve many times).
    ///
    /// **Deprecated front door**: compatibility wrapper over
    /// [`Engine::submit`] with [`Submission::graph_plan`]; see
    /// [`Engine::submit_graph`].
    ///
    /// # Errors
    ///
    /// See [`Engine::submit_graph`].
    pub fn submit_graph_plan(
        &self,
        graph: &rf_graph::OpGraph,
        plan: &rf_graph::GraphPlan,
        bindings: &[(&str, rf_workloads::Matrix)],
    ) -> Result<GraphResponse, RuntimeError> {
        self.submit_graph_compat(graph, Some(Arc::new(plan.clone())), bindings)
    }

    fn submit_graph_compat(
        &self,
        graph: &rf_graph::OpGraph,
        plan: Option<Arc<rf_graph::GraphPlan>>,
        bindings: &[(&str, rf_workloads::Matrix)],
    ) -> Result<GraphResponse, RuntimeError> {
        let graph = Arc::new(graph.clone());
        let owned: Vec<(String, rf_workloads::Matrix)> = bindings
            .iter()
            .map(|(name, matrix)| (name.to_string(), matrix.clone()))
            .collect();
        let submission = match plan {
            Some(plan) => Submission::graph_plan(graph, plan, owned),
            None => Submission::graph(graph, owned),
        };
        let response = self.submit(submission)?.wait()?;
        let stats = response
            .graph
            .expect("graph submissions always carry graph stats");
        let RequestOutput::Tensors(outputs) = response.output else {
            unreachable!("graph submissions always produce tensor outputs");
        };
        Ok(GraphResponse {
            outputs,
            fused_regions: stats.fused_regions,
            fused_ops: stats.fused_ops,
            glue_ops: stats.glue_ops,
            region_cache_hits: stats.region_cache_hits,
            simulated_us: response.simulated_us,
        })
    }

    /// Submissions currently queued or executing.
    pub fn queue_depth(&self) -> usize {
        self.shared.scheduler.depth()
    }

    /// Queued submissions per priority lane (high, normal, low).
    pub fn lane_depths(&self) -> [usize; LANES] {
        self.shared.scheduler.lane_depths()
    }

    /// Engine iterations started so far.
    pub fn iterations(&self) -> u64 {
        self.shared.scheduler.iterations()
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// A point-in-time metrics snapshot (latency percentiles, batch sizes,
    /// queue depth, shed counts, per-lane traffic, cache effectiveness).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(
            self.queue_depth(),
            self.shared.cache.stats(),
            self.shared.cache.tuning_stats(),
        )
    }

    /// The engine's span collector (level, timestamps, drop count). Only
    /// records at [`rf_trace::TraceLevel::Full`]; see
    /// [`RuntimeConfig::builder`]'s `trace`/`trace_level`.
    pub fn trace_collector(&self) -> &TraceCollector {
        &self.shared.trace
    }

    /// A copy of the buffered span events (empty below
    /// [`rf_trace::TraceLevel::Full`]).
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.shared.trace.snapshot()
    }

    /// The buffered span events as Chrome trace-event JSON, loadable in
    /// Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
    pub fn chrome_trace(&self) -> String {
        self.shared.trace.chrome_trace()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.scheduler.shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("arch", &self.shared.arch.name)
            .field("workers", &self.workers.len())
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

fn worker_loop(shared: &EngineShared, worker: usize) {
    while let Some(iteration) = shared.scheduler.next_iteration() {
        // A panicking kernel must not wedge the engine: the unwind guard
        // keeps the in-flight accounting balanced (so `run_until_drained`
        // returns) and dropping the unfulfilled `QueuedWork`s delivers
        // `ExecutionFailed` to their tickets (so `Ticket::wait` returns).
        let size = iteration.work.len();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_iteration(shared, worker, iteration)
        }));
        shared.scheduler.finish_iteration(size);
    }
}

/// Executes one iteration taken off the stream: a shape-compatible workload
/// batch, or a singleton graph.
fn run_iteration(shared: &EngineShared, worker: usize, iteration: Iteration) {
    let Iteration {
        index,
        lane,
        formed_at,
        work,
    } = iteration;
    let size = work.len();
    match &work[0].submission {
        Submission::Workload { .. } => run_workload_batch(shared, index, formed_at, work),
        Submission::Graph { .. } => {
            for work in work {
                run_graph(shared, index, work);
            }
        }
    }
    if shared.trace.enabled() {
        let start = shared.trace.ts_us_of(formed_at);
        shared.trace.record(
            TraceEvent::span(
                "iteration",
                start,
                shared.trace.now_us() - start,
                Track::Worker(worker),
            )
            .with_iteration(index)
            .with_lane(Priority::ALL[lane].name())
            .with_arg("batch", ArgValue::U64(size as u64))
            .with_arg(
                "occupancy",
                ArgValue::F64(size as f64 / shared.scheduler.max_batch() as f64),
            ),
        );
    }
}

/// Executes one shape-compatible batch by interpreting the cached plan's tile
/// program — a cache hit reuses both the tuning and the executable. No
/// scheduler or cache lock is held here: the plan is an `Arc` snapshot and
/// the VM runs on borrowed views of the queued tensors.
fn run_workload_batch(
    shared: &EngineShared,
    index: u64,
    formed_at: Instant,
    work: Vec<QueuedWork>,
) {
    let Submission::Workload { request, .. } = &work[0].submission else {
        unreachable!("workload iterations contain only workload submissions");
    };
    let workload = request.workload.clone();
    let class = workload.class();
    let plan_started = Instant::now();
    let (plan, cache_hit) = shared.cache.get_or_compile_traced(&workload);
    let plan_ready = Instant::now();
    // Plan acquisition as *this iteration* experienced it: ~0 on a hit, the
    // full compile+tune wall time on a miss (the compiled kernel carries its
    // own tuner share).
    let (compile_us, tune_us) = if cache_hit {
        (0.0, 0.0)
    } else {
        (duration_us(plan_started, plan_ready), plan.timing.tune_us)
    };
    let batch_size = work.len();
    let simulated_us = batch_latency_us(&shared.arch, &plan.profile, batch_size);
    let (mut executed, mut failed) = (0usize, 0usize);
    for queued in work {
        let priority = queued.priority();
        let Submission::Workload { request, .. } = &queued.submission else {
            unreachable!("workload iterations contain only workload submissions");
        };
        let outcome = execute_plan(&plan, request);
        let delivered_at = Instant::now();
        let timing = RequestTiming {
            queue_us: duration_us(queued.submitted_at, formed_at),
            compile_us,
            tune_us,
            execute_us: duration_us(plan_ready, delivered_at),
            total_us: duration_us(queued.submitted_at, delivered_at),
            iterations_waited: index.saturating_sub(queued.iterations_at_submit + 1),
        };
        let result = outcome.map(|output| Response {
            id: queued.id,
            workload: request.workload.name(),
            output,
            simulated_us,
            batch_size,
            cache_hit,
            iteration: index,
            priority,
            graph: None,
            timing,
        });
        match &result {
            Ok(_) => {
                executed += 1;
                shared.metrics.record_served(priority, 1);
                shared.metrics.record_timing(priority, &timing);
            }
            Err(_) => {
                failed += 1;
                shared.metrics.record_failed(priority, 1);
            }
        }
        if shared.trace.enabled() {
            record_request_spans(
                shared,
                queued.id,
                priority,
                class,
                index,
                &timing,
                queued.submitted_at,
                plan_started,
                plan_ready,
                batch_size,
                cache_hit,
                result.is_ok(),
            );
        }
        queued.fulfil(result);
    }
    shared
        .metrics
        .record_batch(class, executed, failed, simulated_us, cache_hit);
}

/// Records one served request's lifecycle spans on its own trace track:
/// `queue` (admission → iteration formed), `compile` (miss) or a `hit`
/// instant, `execute` (plan ready → delivery) and a final `deliver` marker.
/// The three spans tile the request's wall-clock life, so their durations sum
/// to its end-to-end latency (up to scheduling gaps).
#[allow(clippy::too_many_arguments)]
fn record_request_spans(
    shared: &EngineShared,
    id: u64,
    priority: Priority,
    class: &'static str,
    index: u64,
    timing: &RequestTiming,
    submitted_at: Instant,
    plan_started: Instant,
    plan_ready: Instant,
    batch_size: usize,
    cache_hit: bool,
    ok: bool,
) {
    let trace = &shared.trace;
    let track = Track::Request(id);
    let lane = priority.name();
    let plan_start = trace.ts_us_of(plan_started);
    let execute_start = trace.ts_us_of(plan_ready);
    trace.record(
        TraceEvent::span(
            "queue",
            trace.ts_us_of(submitted_at),
            timing.queue_us,
            track,
        )
        .with_request(id)
        .with_lane(lane)
        .with_class(class)
        .with_iteration(index),
    );
    if cache_hit {
        trace.record(
            TraceEvent::instant("hit", execute_start, track)
                .with_request(id)
                .with_class(class),
        );
    } else {
        trace.record(
            TraceEvent::span("compile", plan_start, timing.compile_us, track)
                .with_request(id)
                .with_class(class)
                .with_arg("tune_us", ArgValue::F64(timing.tune_us)),
        );
    }
    trace.record(
        TraceEvent::span("execute", execute_start, timing.execute_us, track)
            .with_request(id)
            .with_lane(lane)
            .with_class(class)
            .with_iteration(index)
            .with_arg("batch", ArgValue::U64(batch_size as u64)),
    );
    trace.record(
        TraceEvent::instant("deliver", execute_start + timing.execute_us, track)
            .with_request(id)
            .with_arg("ok", ArgValue::U64(ok as u64)),
    );
}

/// Serves one graph submission: partitions (unless a plan was supplied),
/// executes the region steps through the shared plan cache, and answers with
/// the graph outputs plus serving counters.
fn run_graph(shared: &EngineShared, index: u64, work: QueuedWork) {
    let Submission::Graph {
        graph,
        plan,
        bindings,
        priority,
    } = &work.submission
    else {
        unreachable!("graph iterations contain only graph submissions");
    };
    let priority = *priority;
    let label = work.submission.label();
    let graph = Arc::clone(graph);
    let bindings = Arc::clone(bindings);
    let started = Instant::now();
    let plan = plan
        .clone()
        .unwrap_or_else(|| Arc::new(rf_graph::partition(&graph)));
    let result = crate::graph::execute_graph_plan(
        &shared.cache,
        &shared.arch,
        Some(&shared.metrics),
        &graph,
        &plan,
        bindings.as_slice(),
    );
    let delivered_at = Instant::now();
    // For a graph the `execute` stage covers partitioning plus every region
    // step — region compiles hide inside it, so `compile_us` stays zero.
    let timing = RequestTiming {
        queue_us: duration_us(work.submitted_at, started),
        compile_us: 0.0,
        tune_us: 0.0,
        execute_us: duration_us(started, delivered_at),
        total_us: duration_us(work.submitted_at, delivered_at),
        iterations_waited: index.saturating_sub(work.iterations_at_submit + 1),
    };
    if shared.trace.enabled() {
        let trace = &shared.trace;
        let track = Track::Request(work.id);
        let lane = priority.name();
        trace.record(
            TraceEvent::span(
                "queue",
                trace.ts_us_of(work.submitted_at),
                timing.queue_us,
                track,
            )
            .with_request(work.id)
            .with_lane(lane)
            .with_class("graph")
            .with_iteration(index),
        );
        trace.record(
            TraceEvent::span("execute", trace.ts_us_of(started), timing.execute_us, track)
                .with_request(work.id)
                .with_lane(lane)
                .with_class("graph")
                .with_iteration(index),
        );
        trace.record(
            TraceEvent::instant("deliver", trace.ts_us_of(delivered_at), track)
                .with_request(work.id)
                .with_arg("ok", ArgValue::U64(result.is_ok() as u64)),
        );
    }
    match result {
        Ok(graph_response) => {
            let stats = GraphStats {
                fused_regions: graph_response.fused_regions,
                fused_ops: graph_response.fused_ops,
                glue_ops: graph_response.glue_ops,
                region_cache_hits: graph_response.region_cache_hits,
            };
            // "Cache hit" for a graph means every fused region re-used an
            // already-compiled plan.
            let cache_hit =
                stats.fused_regions > 0 && stats.region_cache_hits == stats.fused_regions;
            shared
                .metrics
                .record_batch("graph", 1, 0, graph_response.simulated_us, cache_hit);
            shared.metrics.record_served(priority, 1);
            shared.metrics.record_timing(priority, &timing);
            let id = work.id;
            work.fulfil(Ok(Response {
                id,
                workload: label,
                output: RequestOutput::Tensors(graph_response.outputs),
                simulated_us: graph_response.simulated_us,
                batch_size: 1,
                cache_hit,
                iteration: index,
                priority,
                graph: Some(stats),
                timing,
            }));
        }
        Err(err) => {
            shared.metrics.record_batch("graph", 0, 1, 0.0, false);
            shared.metrics.record_failed(priority, 1);
            work.fulfil(Err(err));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{execute_reference, Request, RequestInput};
    use crate::submit::Priority;
    use rf_codegen::Workload;
    use rf_workloads::{moe_tiny, random_matrix};

    fn tiny_engine(workers: usize) -> Engine {
        Engine::with_config(
            GpuArch::a10(),
            RuntimeConfig::builder()
                .workers(workers)
                .max_batch(4)
                .cache_capacity(16)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn served_results_match_the_reference_kernels() {
        let engine = tiny_engine(2);
        let requests: Vec<Request> = (0..6)
            .map(|seed| Request::softmax(random_matrix(2, 32, seed, -2.0, 2.0)))
            .collect();
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| engine.submit(r.clone()).unwrap())
            .collect();
        engine.run_until_drained();
        for (request, ticket) in requests.iter().zip(tickets) {
            let result = ticket.wait().unwrap();
            let oracle = execute_reference(&request.workload, &request.input);
            assert!(result.output.approx_eq(&oracle, 1e-9));
            assert!(result.simulated_us.is_finite() && result.simulated_us > 0.0);
            assert!(result.iteration >= 1, "responses carry their iteration");
            assert_eq!(result.priority, Priority::Normal);
        }
        let metrics = engine.metrics();
        assert_eq!(metrics.completed, 6);
        assert_eq!(metrics.queue_depth, 0);
        assert_eq!(metrics.shed, 0);
        assert_eq!(metrics.cache.misses, 1, "one shape => one compile");
        assert!(metrics.p99_us >= metrics.p50_us);
    }

    #[test]
    fn invalid_requests_are_rejected_at_the_front_door() {
        let engine = tiny_engine(1);
        let c = moe_tiny();
        let err = engine
            .submit(Request {
                workload: Workload::Moe(c.clone()),
                input: RequestInput::Rows(random_matrix(2, 4, 1, 0.0, 1.0)),
            })
            .unwrap_err();
        assert!(matches!(err, RuntimeError::InputMismatch { .. }));
        assert_eq!(err.code(), "input_mismatch");
        assert_eq!(engine.metrics().submitted, 0);
    }

    #[test]
    fn invalid_configs_panic_with_the_typed_detail() {
        let config = RuntimeConfig {
            workers: 0,
            ..RuntimeConfig::default()
        };
        let panic = std::panic::catch_unwind(|| Engine::with_config(GpuArch::a10(), config))
            .expect_err("zero workers must be rejected");
        let message = panic
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(message.contains("workers"), "got: {message}");
    }

    #[test]
    fn drop_fails_pending_tickets_cleanly() {
        let engine = tiny_engine(1);
        // Queue more work than one worker can finish instantly, then drop.
        let tickets: Vec<Ticket> = (0..16)
            .map(|seed| {
                engine
                    .submit(Request::softmax(random_matrix(8, 128, seed, -1.0, 1.0)))
                    .unwrap()
            })
            .collect();
        drop(engine);
        for ticket in tickets {
            match ticket.wait() {
                Ok(result) => assert!(result.simulated_us > 0.0),
                Err(err) => assert_eq!(err, RuntimeError::ShuttingDown),
            }
        }
    }

    #[test]
    fn failed_executions_are_counted_as_failures_not_completions() {
        use rf_workloads::inertia_tiny;
        // A massless inertia system passes shape validation but is rejected
        // by the VM at execution time: the ticket must receive the error and
        // the metrics must report a failure, not a served request.
        let engine = tiny_engine(1);
        let inertia = inertia_tiny();
        let ticket = engine
            .submit(
                Request::new(
                    Workload::Inertia(inertia.clone()),
                    RequestInput::Inertia {
                        masses: vec![0.0; 8],
                        positions: random_matrix(8, inertia.dim, 1, -1.0, 1.0),
                    },
                )
                .unwrap(),
            )
            .unwrap();
        engine.run_until_drained();
        assert!(matches!(
            ticket.wait(),
            Err(RuntimeError::ExecutionFailed { .. })
        ));
        let metrics = engine.metrics();
        assert_eq!(metrics.submitted, 1);
        assert_eq!(metrics.completed, 0);
        assert_eq!(metrics.failed, 1);
        assert_eq!(metrics.p50_us, 0.0, "failures contribute no latency");
        let class = &metrics.classes[0];
        assert_eq!(
            (class.class, class.completed, class.failed),
            ("inertia", 0, 1)
        );
        assert_eq!(class.p99_us, 0.0);
        assert!(metrics.report().contains("requests failed"));
    }

    #[test]
    fn metrics_break_down_per_workload_class() {
        use rf_workloads::variance_tiny;
        let engine = tiny_engine(2);
        let var = variance_tiny();
        for seed in 0..4 {
            engine
                .submit(Request::softmax(random_matrix(2, 32, seed, -1.0, 1.0)))
                .unwrap();
            engine
                .submit(
                    Request::new(
                        Workload::Variance(var.clone()),
                        RequestInput::Rows(random_matrix(3, var.l, seed + 50, -2.0, 2.0)),
                    )
                    .unwrap(),
                )
                .unwrap();
        }
        engine.run_until_drained();
        let metrics = engine.metrics();
        assert_eq!(metrics.completed, 8);
        let classes: Vec<&str> = metrics.classes.iter().map(|c| c.class).collect();
        assert_eq!(classes, ["softmax", "variance"]);
        for class in &metrics.classes {
            assert_eq!(class.completed, 4);
            assert!(class.batches >= 1);
            assert!(class.p99_us >= class.p50_us);
            assert!(class.p50_us > 0.0);
        }
        let total_class_batches: u64 = metrics.classes.iter().map(|c| c.batches).sum();
        assert_eq!(total_class_batches, metrics.batches);
        let report = metrics.report();
        assert!(report.contains("per-class breakdown"));
        assert!(report.contains("variance"));
    }

    #[test]
    fn graph_serving_shares_the_engine_cache_and_surfaces_metrics() {
        use rf_graph::builders;
        let engine = tiny_engine(1);
        let graph = builders::moe_block(4, 8, 4);
        let inputs = builders::moe_block_inputs(4, 8, 4, 3);
        let first = engine.submit_graph(&graph, &inputs).unwrap();
        let second = engine.submit_graph(&graph, &inputs).unwrap();
        assert_eq!(first.outputs, second.outputs);
        assert_eq!(first.region_cache_hits, 0);
        assert_eq!(second.region_cache_hits, 1, "the region plan is cached");
        let metrics = engine.metrics();
        assert_eq!(metrics.graphs_served, 2);
        assert_eq!(metrics.graph_fused_ops, 2 * first.fused_ops as u64);
        assert_eq!(metrics.graph_glue_ops, 2 * first.glue_ops as u64);
        assert_eq!((metrics.region_hits, metrics.region_lookups), (1, 2));
        assert!(metrics.report().contains("graphs served"));
        // Graphs ride the unified stream now, so they also count as served
        // requests under the "graph" class.
        assert_eq!(metrics.submitted, 2);
        assert_eq!(metrics.completed, 2);
        assert!(metrics.classes.iter().any(|c| c.class == "graph"));
        // The routing-softmax region landed in the same plan cache the
        // request path uses.
        assert_eq!(engine.cache_stats().misses, 1);
    }

    #[test]
    fn unified_submit_serves_graphs_asynchronously() {
        use rf_graph::builders;
        let engine = tiny_engine(2);
        let graph = Arc::new(builders::moe_block(4, 8, 4));
        let bindings: Vec<(String, rf_workloads::Matrix)> = builders::moe_block_inputs(4, 8, 4, 3)
            .into_iter()
            .map(|(n, m)| (n.to_string(), m))
            .collect();
        let reference = graph
            .evaluate(&builders::moe_block_inputs(4, 8, 4, 3))
            .unwrap();
        let ticket = engine
            .submit(Submission::graph(Arc::clone(&graph), bindings).with_priority(Priority::High))
            .unwrap();
        let response = ticket.wait().unwrap();
        assert_eq!(response.priority, Priority::High);
        assert_eq!(response.batch_size, 1, "graphs are singleton iterations");
        let stats = response.graph.expect("graph stats attached");
        assert!(stats.fused_regions >= 1);
        let RequestOutput::Tensors(outputs) = &response.output else {
            panic!("graph submissions produce tensors");
        };
        assert_eq!(outputs.len(), reference.len());
        assert!(outputs[0].max_abs_diff(&reference[0]) < 1e-9);
        assert!(response.workload.starts_with("graph["));
    }

    #[test]
    fn mean_batch_size_grows_when_shapes_repeat() {
        let engine = Engine::with_config(
            GpuArch::a10(),
            RuntimeConfig::builder()
                .workers(1)
                .max_batch(8)
                .cache_capacity(16)
                .build()
                .unwrap(),
        );
        for seed in 0..8 {
            engine
                .submit(Request::softmax(random_matrix(2, 64, seed, -1.0, 1.0)))
                .unwrap();
        }
        engine.run_until_drained();
        let metrics = engine.metrics();
        assert_eq!(metrics.completed, 8);
        assert!(
            metrics.mean_batch_size > 1.0,
            "identical shapes should have been batched (mean {})",
            metrics.mean_batch_size
        );
    }

    #[test]
    fn overload_sheds_are_counted_per_lane() {
        // One worker, a budget of 2: flood the engine and require typed,
        // counted sheds while everything admitted still completes.
        let engine = Engine::with_config(
            GpuArch::a10(),
            RuntimeConfig::builder()
                .workers(1)
                .max_batch(2)
                .max_in_flight(2)
                .cache_capacity(8)
                .build()
                .unwrap(),
        );
        let mut admitted = Vec::new();
        let mut sheds = 0usize;
        for seed in 0..64 {
            match engine.submit(Request::softmax(random_matrix(8, 256, seed, -1.0, 1.0))) {
                Ok(ticket) => admitted.push(ticket),
                Err(err @ RuntimeError::Overloaded { .. }) => {
                    assert_eq!(err.code(), "overloaded");
                    sheds += 1;
                }
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        engine.run_until_drained();
        for ticket in admitted {
            ticket.wait().unwrap();
        }
        let metrics = engine.metrics();
        assert_eq!(metrics.shed as usize, sheds);
        assert_eq!(metrics.submitted + metrics.shed, 64);
        assert_eq!(metrics.completed, metrics.submitted);
        let normal = &metrics.lanes[Priority::Normal.lane()];
        assert_eq!(normal.shed as usize, sheds);
        assert_eq!(normal.completed, metrics.completed);
        assert!(metrics.report().contains("requests shed"));
        if sheds > 0 {
            assert!(metrics.shed_retry_last_us > 0.0, "sheds carry retry hints");
            assert!(metrics.shed_retry_mean_us > 0.0);
            assert!(normal.shed_rate() > 0.0);
            assert!(metrics.report().contains("shed retry hint"));
        }
    }

    #[test]
    fn responses_carry_a_wall_clock_timing_breakdown() {
        let engine = tiny_engine(1);
        let first = engine
            .submit(Request::softmax(random_matrix(2, 64, 1, -1.0, 1.0)))
            .unwrap()
            .wait()
            .unwrap();
        let timing = *first.timing();
        assert!(!first.cache_hit);
        assert!(timing.total_us > 0.0);
        assert!(timing.execute_us > 0.0);
        assert!(
            timing.compile_us > 0.0,
            "the first request of a shape pays the compile"
        );
        assert!(
            timing.tune_us <= timing.compile_us,
            "tuning is inside compile"
        );
        assert!(timing.accounted_us() <= timing.total_us * 1.001);
        // Same shape again: served off the cache, so no compile share.
        let second = engine
            .submit(Request::softmax(random_matrix(2, 64, 2, -1.0, 1.0)))
            .unwrap()
            .wait()
            .unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.timing().compile_us, 0.0);
        assert_eq!(second.timing().tune_us, 0.0);
        // The stage histograms saw both requests.
        let metrics = engine.metrics();
        let e2e = metrics.stages.iter().find(|s| s.stage == "e2e").unwrap();
        assert_eq!(e2e.wall.count, 2);
        let compile = metrics
            .stages
            .iter()
            .find(|s| s.stage == "compile")
            .unwrap();
        assert_eq!(compile.wall.count, 1, "cache hits record no compile sample");
    }

    #[test]
    fn full_tracing_exports_a_valid_nested_chrome_trace() {
        let engine = Engine::with_config(
            GpuArch::a10(),
            RuntimeConfig::builder()
                .workers(2)
                .max_batch(4)
                .trace_level(rf_trace::TraceLevel::Full)
                .build()
                .unwrap(),
        );
        let tickets: Vec<Ticket> = (0..8)
            .map(|seed| {
                engine
                    .submit(Request::softmax(random_matrix(2, 32, seed, -1.0, 1.0)))
                    .unwrap()
            })
            .collect();
        engine.run_until_drained();
        let responses: Vec<Response> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let snapshot = engine.trace_snapshot();
        assert_eq!(snapshot.dropped, 0);
        // Every lifecycle stage appears, plus worker iteration spans.
        for name in ["submit", "queue", "execute", "deliver", "iteration"] {
            assert!(
                snapshot.events.iter().any(|e| e.name == name),
                "trace must contain `{name}` events"
            );
        }
        let json = engine.chrome_trace();
        let stats = rf_trace::validate_chrome_trace(&json).expect("trace must be well-formed");
        assert!(stats.spans >= 8 * 2, "≥ queue+execute per request");
        assert!(stats.request_tracks >= 1);
        // The sampled request's spans account for its reported e2e latency.
        let sampled = &responses[0];
        let span_sum: f64 = snapshot
            .events
            .iter()
            .filter(|e| e.request == Some(sampled.id) && e.dur_us > 0.0)
            .map(|e| e.dur_us)
            .sum();
        let total = sampled.timing().total_us;
        assert!(
            span_sum <= total * 1.001 && span_sum >= total * 0.9,
            "request spans must sum to within 10% of the e2e latency \
             (spans {span_sum:.1} us vs e2e {total:.1} us)"
        );
    }

    #[test]
    fn tracing_off_records_no_spans_but_still_times_responses() {
        let engine = Engine::with_config(
            GpuArch::a10(),
            RuntimeConfig::builder()
                .workers(1)
                .trace(rf_trace::TraceConfig::off())
                .build()
                .unwrap(),
        );
        let response = engine
            .submit(Request::softmax(random_matrix(2, 32, 7, -1.0, 1.0)))
            .unwrap()
            .wait()
            .unwrap();
        assert!(
            response.timing().total_us > 0.0,
            "timing is always measured"
        );
        assert!(engine.trace_snapshot().events.is_empty());
        assert_eq!(engine.trace_collector().dropped(), 0);
        let metrics = engine.metrics();
        assert_eq!(metrics.trace_level, rf_trace::TraceLevel::Off);
        assert!(metrics.stages.iter().all(|s| s.wall.count == 0));
        assert_eq!(metrics.lifetime.count, 0);
    }

    #[test]
    fn graph_submissions_time_their_execute_stage() {
        use rf_graph::builders;
        let engine = Engine::with_config(
            GpuArch::a10(),
            RuntimeConfig::builder()
                .workers(1)
                .trace_level(rf_trace::TraceLevel::Full)
                .build()
                .unwrap(),
        );
        let graph = Arc::new(builders::moe_block(4, 8, 4));
        let bindings: Vec<(String, rf_workloads::Matrix)> = builders::moe_block_inputs(4, 8, 4, 3)
            .into_iter()
            .map(|(n, m)| (n.to_string(), m))
            .collect();
        let response = engine
            .submit(Submission::graph(graph, bindings))
            .unwrap()
            .wait()
            .unwrap();
        let timing = response.timing();
        assert!(timing.execute_us > 0.0);
        assert_eq!(
            timing.compile_us, 0.0,
            "region compiles hide inside execute"
        );
        assert!(timing.total_us >= timing.execute_us);
        let snapshot = engine.trace_snapshot();
        assert!(snapshot
            .events
            .iter()
            .any(|e| e.name == "execute" && e.class == Some("graph")));
        rf_trace::validate_chrome_trace(&engine.chrome_trace()).expect("graph trace well-formed");
    }
}
