//! The serving engine: front door, worker pool and lifecycle.
//!
//! ```
//! use rf_gpusim::GpuArch;
//! use rf_runtime::{Engine, Request};
//! use rf_workloads::random_matrix;
//!
//! let engine = Engine::new(GpuArch::a10());
//! let ticket = engine
//!     .submit(Request::softmax(random_matrix(4, 64, 1, -2.0, 2.0)))
//!     .unwrap();
//! engine.run_until_drained();
//! let result = ticket.wait().unwrap();
//! assert_eq!(result.workload, "softmax_4x64");
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use rf_gpusim::GpuArch;

use crate::batch::{batch_latency_us, BatchScheduler, QueuedRequest, RequestResult, Ticket};
use crate::cache::{CacheStats, PlanCache};
use crate::metrics::{MetricsSnapshot, RuntimeMetrics};
use crate::request::{execute_plan, Request, RuntimeError};

/// Tunables of one [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads executing batches.
    pub workers: usize,
    /// Maximum requests grouped into one batch.
    pub max_batch: usize,
    /// Maximum resident compiled plans.
    pub cache_capacity: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        RuntimeConfig {
            workers,
            max_batch: 16,
            cache_capacity: 64,
        }
    }
}

struct EngineShared {
    arch: GpuArch,
    cache: PlanCache,
    metrics: RuntimeMetrics,
    scheduler: BatchScheduler,
}

/// A concurrent serving engine for one GPU architecture.
///
/// `submit` validates and enqueues a request and returns a [`Ticket`]; a pool
/// of worker threads groups shape-compatible requests into batches, compiles
/// (or re-uses) the fused plan via the [`PlanCache`], executes the batch by
/// interpreting the plan's tile program on the `rf_tile::exec` VM and costs
/// it on the analytical GPU model. Dropping the engine shuts the pool down;
/// still-queued requests fail with [`RuntimeError::ShuttingDown`].
pub struct Engine {
    shared: Arc<EngineShared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Engine {
    /// Creates an engine for `arch` with the default [`RuntimeConfig`].
    pub fn new(arch: GpuArch) -> Self {
        Engine::with_config(arch, RuntimeConfig::default())
    }

    /// Creates an engine with explicit tunables.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` is zero (the pool could never serve), or if
    /// `max_batch` / `cache_capacity` are zero.
    pub fn with_config(arch: GpuArch, config: RuntimeConfig) -> Self {
        assert!(config.workers > 0, "engine needs at least one worker");
        let shared = Arc::new(EngineShared {
            cache: PlanCache::new(arch.clone(), config.cache_capacity),
            metrics: RuntimeMetrics::new(),
            scheduler: BatchScheduler::new(config.max_batch),
            arch,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rf-runtime-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a runtime worker failed")
            })
            .collect();
        Engine {
            shared,
            workers,
            next_id: AtomicU64::new(0),
        }
    }

    /// The architecture this engine compiles and costs for.
    pub fn arch(&self) -> &GpuArch {
        &self.shared.arch
    }

    /// Validates and enqueues a request, returning the completion ticket.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InputMismatch`] / [`RuntimeError::ShapeMismatch`]
    /// for invalid requests and [`RuntimeError::ShuttingDown`] once the engine
    /// is being dropped.
    pub fn submit(&self, request: Request) -> Result<Ticket, RuntimeError> {
        crate::request::validate(&request.workload, &request.input)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (queued, ticket) = QueuedRequest::new(id, request);
        // Count before enqueueing so a snapshot can never observe a completed
        // request that was not yet counted as submitted; roll back if the
        // scheduler rejects the request (shutdown), so rejected requests never
        // inflate the counter.
        self.shared.metrics.record_submit();
        if let Err(err) = self.shared.scheduler.enqueue(queued) {
            self.shared.metrics.cancel_submit();
            return Err(err);
        }
        Ok(ticket)
    }

    /// Blocks until every submitted request has been executed.
    pub fn run_until_drained(&self) {
        self.shared.scheduler.wait_drained();
    }

    /// Serves a whole operator graph end-to-end: partitions it into maximal
    /// fusable regions plus glue ops (`rf-graph`), compiles each region
    /// through the engine's [`PlanCache`] (so repeated submissions of the
    /// same graph — or different graphs sharing a region shape — re-use the
    /// tuned plans), threads intermediate tensors between the steps and
    /// returns the graph's outputs with the serving counters.
    ///
    /// Graph serving is synchronous on the calling thread: the step sequence
    /// is a dependency chain, so unlike [`Engine::submit`] there is no batch
    /// to amortise across workers. The per-region compilations still share
    /// the worker pool's plan cache and are counted in the engine metrics
    /// (`graphs served`, fused vs. glue ops, per-region cache hit rate).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Graph`] when an input binding is missing or misshapen
    /// or a region rejects its tensors at execution time.
    pub fn submit_graph(
        &self,
        graph: &rf_graph::OpGraph,
        bindings: &[(&str, rf_workloads::Matrix)],
    ) -> Result<crate::graph::GraphResponse, RuntimeError> {
        let plan = rf_graph::partition(graph);
        self.submit_graph_plan(graph, &plan, bindings)
    }

    /// Like [`Engine::submit_graph`], with a pre-partitioned [`rf_graph::GraphPlan`]
    /// (partition once, serve many times).
    ///
    /// # Errors
    ///
    /// See [`Engine::submit_graph`].
    pub fn submit_graph_plan(
        &self,
        graph: &rf_graph::OpGraph,
        plan: &rf_graph::GraphPlan,
        bindings: &[(&str, rf_workloads::Matrix)],
    ) -> Result<crate::graph::GraphResponse, RuntimeError> {
        crate::graph::execute_graph_plan(
            &self.shared.cache,
            &self.shared.arch,
            Some(&self.shared.metrics),
            graph,
            plan,
            bindings,
        )
    }

    /// Requests currently queued or executing.
    pub fn queue_depth(&self) -> usize {
        self.shared.scheduler.depth()
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// A point-in-time metrics snapshot (latency percentiles, batch sizes,
    /// queue depth, cache effectiveness).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(
            self.queue_depth(),
            self.shared.cache.stats(),
            self.shared.cache.tuning_stats(),
        )
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.scheduler.shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("arch", &self.shared.arch.name)
            .field("workers", &self.workers.len())
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

fn worker_loop(shared: &EngineShared) {
    while let Some(batch) = shared.scheduler.next_batch() {
        // A panicking kernel must not wedge the engine: the unwind guard keeps
        // the in-flight accounting balanced (so `run_until_drained` returns)
        // and dropping the unfulfilled `QueuedRequest`s delivers
        // `ExecutionFailed` to their tickets (so `Ticket::wait` returns).
        let size = batch.len();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_batch(shared, batch)));
        shared.scheduler.finish_batch(size);
    }
}

/// Executes one shape-compatible batch by interpreting the cached plan's tile
/// program — a cache hit reuses both the tuning and the executable. No
/// scheduler or cache lock is held here: the plan is an `Arc` snapshot and
/// the VM runs on borrowed views of the queued tensors.
fn run_batch(shared: &EngineShared, batch: Vec<QueuedRequest>) {
    let workload = batch[0].request.workload.clone();
    let class = workload.class();
    let (plan, cache_hit) = shared.cache.get_or_compile_traced(&workload);
    let batch_size = batch.len();
    let simulated_us = batch_latency_us(&shared.arch, &plan.profile, batch_size);
    let (mut executed, mut failed) = (0usize, 0usize);
    for queued in batch {
        let result = execute_plan(&plan, &queued.request).map(|output| RequestResult {
            id: queued.id,
            workload: queued.request.workload.name(),
            output,
            simulated_us,
            batch_size,
            cache_hit,
        });
        match &result {
            Ok(_) => executed += 1,
            Err(_) => failed += 1,
        }
        queued.fulfil(result);
    }
    shared
        .metrics
        .record_batch(class, executed, failed, simulated_us, cache_hit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{execute_reference, RequestInput};
    use rf_codegen::Workload;
    use rf_workloads::{moe_tiny, random_matrix};

    fn tiny_engine(workers: usize) -> Engine {
        Engine::with_config(
            GpuArch::a10(),
            RuntimeConfig {
                workers,
                max_batch: 4,
                cache_capacity: 16,
            },
        )
    }

    #[test]
    fn served_results_match_the_reference_kernels() {
        let engine = tiny_engine(2);
        let requests: Vec<Request> = (0..6)
            .map(|seed| Request::softmax(random_matrix(2, 32, seed, -2.0, 2.0)))
            .collect();
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| engine.submit(r.clone()).unwrap())
            .collect();
        engine.run_until_drained();
        for (request, ticket) in requests.iter().zip(tickets) {
            let result = ticket.wait().unwrap();
            let oracle = execute_reference(&request.workload, &request.input);
            assert!(result.output.approx_eq(&oracle, 1e-9));
            assert!(result.simulated_us.is_finite() && result.simulated_us > 0.0);
        }
        let metrics = engine.metrics();
        assert_eq!(metrics.completed, 6);
        assert_eq!(metrics.queue_depth, 0);
        assert_eq!(metrics.cache.misses, 1, "one shape => one compile");
        assert!(metrics.p99_us >= metrics.p50_us);
    }

    #[test]
    fn invalid_requests_are_rejected_at_the_front_door() {
        let engine = tiny_engine(1);
        let c = moe_tiny();
        let err = engine
            .submit(Request {
                workload: Workload::Moe(c.clone()),
                input: RequestInput::Rows(random_matrix(2, 4, 1, 0.0, 1.0)),
            })
            .unwrap_err();
        assert!(matches!(err, RuntimeError::InputMismatch { .. }));
        assert_eq!(engine.metrics().submitted, 0);
    }

    #[test]
    fn drop_fails_pending_tickets_cleanly() {
        let engine = tiny_engine(1);
        // Queue more work than one worker can finish instantly, then drop.
        let tickets: Vec<Ticket> = (0..16)
            .map(|seed| {
                engine
                    .submit(Request::softmax(random_matrix(8, 128, seed, -1.0, 1.0)))
                    .unwrap()
            })
            .collect();
        drop(engine);
        for ticket in tickets {
            match ticket.wait() {
                Ok(result) => assert!(result.simulated_us > 0.0),
                Err(err) => assert_eq!(err, RuntimeError::ShuttingDown),
            }
        }
    }

    #[test]
    fn failed_executions_are_counted_as_failures_not_completions() {
        use rf_workloads::inertia_tiny;
        // A massless inertia system passes shape validation but is rejected
        // by the VM at execution time: the ticket must receive the error and
        // the metrics must report a failure, not a served request.
        let engine = tiny_engine(1);
        let inertia = inertia_tiny();
        let ticket = engine
            .submit(
                Request::new(
                    Workload::Inertia(inertia.clone()),
                    RequestInput::Inertia {
                        masses: vec![0.0; 8],
                        positions: random_matrix(8, inertia.dim, 1, -1.0, 1.0),
                    },
                )
                .unwrap(),
            )
            .unwrap();
        engine.run_until_drained();
        assert!(matches!(
            ticket.wait(),
            Err(RuntimeError::ExecutionFailed { .. })
        ));
        let metrics = engine.metrics();
        assert_eq!(metrics.submitted, 1);
        assert_eq!(metrics.completed, 0);
        assert_eq!(metrics.failed, 1);
        assert_eq!(metrics.p50_us, 0.0, "failures contribute no latency");
        let class = &metrics.classes[0];
        assert_eq!(
            (class.class, class.completed, class.failed),
            ("inertia", 0, 1)
        );
        assert_eq!(class.p99_us, 0.0);
        assert!(metrics.report().contains("requests failed"));
    }

    #[test]
    fn metrics_break_down_per_workload_class() {
        use rf_workloads::variance_tiny;
        let engine = tiny_engine(2);
        let var = variance_tiny();
        for seed in 0..4 {
            engine
                .submit(Request::softmax(random_matrix(2, 32, seed, -1.0, 1.0)))
                .unwrap();
            engine
                .submit(
                    Request::new(
                        Workload::Variance(var.clone()),
                        RequestInput::Rows(random_matrix(3, var.l, seed + 50, -2.0, 2.0)),
                    )
                    .unwrap(),
                )
                .unwrap();
        }
        engine.run_until_drained();
        let metrics = engine.metrics();
        assert_eq!(metrics.completed, 8);
        let classes: Vec<&str> = metrics.classes.iter().map(|c| c.class).collect();
        assert_eq!(classes, ["softmax", "variance"]);
        for class in &metrics.classes {
            assert_eq!(class.completed, 4);
            assert!(class.batches >= 1);
            assert!(class.p99_us >= class.p50_us);
            assert!(class.p50_us > 0.0);
        }
        let total_class_batches: u64 = metrics.classes.iter().map(|c| c.batches).sum();
        assert_eq!(total_class_batches, metrics.batches);
        let report = metrics.report();
        assert!(report.contains("per-class breakdown"));
        assert!(report.contains("variance"));
    }

    #[test]
    fn graph_serving_shares_the_engine_cache_and_surfaces_metrics() {
        use rf_graph::builders;
        let engine = tiny_engine(1);
        let graph = builders::moe_block(4, 8, 4);
        let inputs = builders::moe_block_inputs(4, 8, 4, 3);
        let first = engine.submit_graph(&graph, &inputs).unwrap();
        let second = engine.submit_graph(&graph, &inputs).unwrap();
        assert_eq!(first.outputs, second.outputs);
        assert_eq!(first.region_cache_hits, 0);
        assert_eq!(second.region_cache_hits, 1, "the region plan is cached");
        let metrics = engine.metrics();
        assert_eq!(metrics.graphs_served, 2);
        assert_eq!(metrics.graph_fused_ops, 2 * first.fused_ops as u64);
        assert_eq!(metrics.graph_glue_ops, 2 * first.glue_ops as u64);
        assert_eq!((metrics.region_hits, metrics.region_lookups), (1, 2));
        assert!(metrics.report().contains("graphs served"));
        // The routing-softmax region landed in the same plan cache the
        // request path uses.
        assert_eq!(engine.cache_stats().misses, 1);
    }

    #[test]
    fn mean_batch_size_grows_when_shapes_repeat() {
        let engine = Engine::with_config(
            GpuArch::a10(),
            RuntimeConfig {
                workers: 1,
                max_batch: 8,
                cache_capacity: 16,
            },
        );
        for seed in 0..8 {
            engine
                .submit(Request::softmax(random_matrix(2, 64, seed, -1.0, 1.0)))
                .unwrap();
        }
        engine.run_until_drained();
        let metrics = engine.metrics();
        assert_eq!(metrics.completed, 8);
        assert!(
            metrics.mean_batch_size > 1.0,
            "identical shapes should have been batched (mean {})",
            metrics.mean_batch_size
        );
    }
}
