//! The execution-backend seam between scheduling and execution.
//!
//! Everything above this module — batching, routing, caching, metrics —
//! decides *what* to run; an [`ExecBackend`] decides *how*. The trait carries
//! the three capabilities a device needs from its executor:
//!
//! * **identity**: which [`GpuArch`] it is and a bit-exact capability
//!   [fingerprint](ExecBackend::fingerprint), so per-arch plan/tuning caches
//!   key correctly in a heterogeneous fleet;
//! * **cost**: a latency [estimate](ExecBackend::estimate_us) for a compiled
//!   profile at a batch size, driving the simulated-latency accounting;
//! * **execution**: running a compiled plan, either for a whole request
//!   ([`execute`](ExecBackend::execute)) or for one fused graph region over
//!   borrowed tensors ([`run_region`](ExecBackend::run_region)).
//!
//! Two implementations ship today. [`TileVmBackend`] interprets the compiled
//! tile program on the `rf_tile::exec` VM — the real execution path, the only
//! place [`execute_plan`] is invoked on behalf of the engine.
//! [`CostModelBackend`] runs nothing: it keeps the full compile → tune →
//! cost pipeline (the latency numbers are identical to the VM backend's,
//! since both cost on the same analytical model) but returns shape-correct
//! zero outputs, which makes fleet-scale scheduling experiments cheap —
//! thousands of simulated devices without paying for interpretation.

use std::sync::Arc;

use rf_codegen::{CompiledKernel, Workload};
use rf_gpusim::{GpuArch, KernelProfile};
use rf_kernels::moe::RoutingDecision;
use rf_tile::exec::{ExecError, ExecInput, ExecOutput, TopKDecision};
use rf_workloads::Matrix;

use crate::config::BackendKind;
use crate::request::{execute_plan, execute_plan_profiled, Request, RequestOutput, RuntimeError};
use crate::stream::batch_latency_us;

/// How a fleet device executes compiled plans. See the module docs.
///
/// Implementations must be `Send + Sync`: one backend instance is shared by
/// every worker thread of its device.
pub trait ExecBackend: Send + Sync {
    /// Short stable name of the backend kind (`"tile-vm"`, `"cost-model"`).
    fn name(&self) -> &'static str;

    /// The architecture this backend executes as. Compilation, tuning and
    /// cost estimation all key off this.
    fn arch(&self) -> &GpuArch;

    /// Bit-exact capability fingerprint of [`ExecBackend::arch`] — the value
    /// plan caches embed in their keys, so two devices report the same
    /// fingerprint exactly when their compiled plans are interchangeable.
    fn fingerprint(&self) -> u64 {
        self.arch().fingerprint()
    }

    /// Simulated latency of running `profile` as one batch-of-`batch`
    /// iteration on this backend, in microseconds.
    fn estimate_us(&self, profile: &KernelProfile, batch: usize) -> f64;

    /// Executes one validated request against its compiled plan.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ExecutionFailed`] when the plan cannot serve the
    /// request (no executable program, or a value-dependent VM rejection).
    fn execute(
        &self,
        plan: &CompiledKernel,
        request: &Request,
    ) -> Result<RequestOutput, RuntimeError>;

    /// Executes one validated request like [`ExecBackend::execute`] and, when
    /// the backend actually interprets a program, returns the tile-VM's
    /// op-level profile alongside the output. The default forwards to
    /// `execute` with no profile — accounting-only backends have no
    /// interpreter loops to attribute time to.
    ///
    /// The output must be bit-identical to [`ExecBackend::execute`]'s for the
    /// same `(plan, request)`; the engine switches between the two entry
    /// points on the `TraceConfig::profile` gate and the acceptance tests
    /// pin the equivalence down.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`ExecBackend::execute`].
    fn execute_profiled(
        &self,
        plan: &CompiledKernel,
        request: &Request,
    ) -> Result<(RequestOutput, Option<rf_tile::ExecProfile>), RuntimeError> {
        self.execute(plan, request).map(|output| (output, None))
    }

    /// Executes one fused graph region over borrowed tensors. `workload` is
    /// the region's compilation key — backends that synthesise outputs
    /// instead of running the VM derive the output shape from it.
    ///
    /// # Errors
    ///
    /// The VM's [`ExecError`] (graph serving wraps it into
    /// [`RuntimeError::Graph`] with the region name attached).
    fn run_region(
        &self,
        workload: &Workload,
        kernel: &CompiledKernel,
        input: &ExecInput<'_>,
    ) -> Result<ExecOutput, ExecError>;
}

/// Instantiates the backend a [`BackendKind`] names, bound to `arch`.
pub fn make_backend(kind: BackendKind, arch: GpuArch) -> Arc<dyn ExecBackend> {
    match kind {
        BackendKind::TileVm => Arc::new(TileVmBackend::new(arch)),
        BackendKind::CostModel => Arc::new(CostModelBackend::new(arch)),
    }
}

/// The real interpreter: compiled tile programs run on the `rf_tile::exec`
/// VM, costed on `arch`'s analytical latency model.
#[derive(Debug)]
pub struct TileVmBackend {
    arch: GpuArch,
}

impl TileVmBackend {
    /// A VM backend executing as `arch`.
    pub fn new(arch: GpuArch) -> Self {
        TileVmBackend { arch }
    }
}

impl ExecBackend for TileVmBackend {
    fn name(&self) -> &'static str {
        "tile-vm"
    }

    fn arch(&self) -> &GpuArch {
        &self.arch
    }

    fn estimate_us(&self, profile: &KernelProfile, batch: usize) -> f64 {
        batch_latency_us(&self.arch, profile, batch)
    }

    fn execute(
        &self,
        plan: &CompiledKernel,
        request: &Request,
    ) -> Result<RequestOutput, RuntimeError> {
        execute_plan(plan, request)
    }

    fn execute_profiled(
        &self,
        plan: &CompiledKernel,
        request: &Request,
    ) -> Result<(RequestOutput, Option<rf_tile::ExecProfile>), RuntimeError> {
        execute_plan_profiled(plan, request).map(|(output, profile)| (output, Some(profile)))
    }

    fn run_region(
        &self,
        _workload: &Workload,
        kernel: &CompiledKernel,
        input: &ExecInput<'_>,
    ) -> Result<ExecOutput, ExecError> {
        kernel.run(input)
    }
}

/// The accounting-only backend: same compile/tune/cost pipeline as
/// [`TileVmBackend`], but execution synthesises shape-correct zero outputs
/// instead of interpreting the program.
#[derive(Debug)]
pub struct CostModelBackend {
    arch: GpuArch,
}

impl CostModelBackend {
    /// A cost-model backend accounting as `arch`.
    pub fn new(arch: GpuArch) -> Self {
        CostModelBackend { arch }
    }

    /// The shape-correct placeholder output for `workload` over `input`.
    /// `None` when the input kind cannot serve the workload (the caller maps
    /// that to its own mismatch error).
    fn synthesise(workload: &Workload, input: &ExecInput<'_>) -> Option<ExecOutput> {
        match (workload, input) {
            (Workload::Softmax { .. }, ExecInput::Rows(m)) => {
                Some(ExecOutput::Matrix(Matrix::zeros(m.rows(), m.cols())))
            }
            (Workload::Variance(_), ExecInput::Rows(m)) => {
                Some(ExecOutput::Values(vec![0.0; m.rows()]))
            }
            (Workload::Mha(_) | Workload::Mla(_), ExecInput::Attention { q, v, .. }) => {
                Some(ExecOutput::Matrix(Matrix::zeros(q.rows(), v.cols())))
            }
            (Workload::Moe(c), ExecInput::Routing { x, .. }) => {
                let decision = TopKDecision {
                    experts: (0..c.topk).collect(),
                    probs: vec![1.0 / c.topk.max(1) as f64; c.topk],
                };
                Some(ExecOutput::TopK(vec![decision; x.rows()]))
            }
            (Workload::Quant(_), ExecInput::QuantGemm { a, w }) => {
                Some(ExecOutput::Matrix(Matrix::zeros(a.rows(), w.cols())))
            }
            (Workload::Inertia(_), ExecInput::Inertia { .. }) => {
                Some(ExecOutput::Values(vec![0.0]))
            }
            _ => None,
        }
    }
}

impl ExecBackend for CostModelBackend {
    fn name(&self) -> &'static str {
        "cost-model"
    }

    fn arch(&self) -> &GpuArch {
        &self.arch
    }

    fn estimate_us(&self, profile: &KernelProfile, batch: usize) -> f64 {
        batch_latency_us(&self.arch, profile, batch)
    }

    fn execute(
        &self,
        _plan: &CompiledKernel,
        request: &Request,
    ) -> Result<RequestOutput, RuntimeError> {
        match CostModelBackend::synthesise(&request.workload, &request.input.as_exec()) {
            Some(output) => {
                let output = RequestOutput::from_exec(output);
                // Placeholder MoE decisions map through the same conversion
                // as VM output, so downstream consumers see one type.
                if let RequestOutput::Routing(decisions) = &output {
                    debug_assert!(decisions
                        .iter()
                        .all(|d: &RoutingDecision| !d.experts.is_empty()));
                }
                Ok(output)
            }
            None => Err(RuntimeError::ExecutionFailed {
                workload: request.workload.name(),
            }),
        }
    }

    fn run_region(
        &self,
        workload: &Workload,
        kernel: &CompiledKernel,
        input: &ExecInput<'_>,
    ) -> Result<ExecOutput, ExecError> {
        CostModelBackend::synthesise(workload, input).ok_or_else(|| ExecError::InputMismatch {
            program: kernel.name.clone(),
            expected: workload.class(),
            got: input.kind(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::PlanCache;
    use crate::request::{execute_reference, RequestInput};

    fn softmax_request() -> Request {
        Request::softmax(Matrix::random(4, 16, 3, -1.0, 1.0))
    }

    #[test]
    fn tile_vm_backend_is_the_real_execution_path() {
        let arch = GpuArch::a10();
        let backend = TileVmBackend::new(arch.clone());
        assert_eq!(backend.name(), "tile-vm");
        assert_eq!(backend.fingerprint(), arch.fingerprint());
        let cache = PlanCache::new(arch, 4);
        let request = softmax_request();
        let plan = cache.get_or_compile(&request.workload);
        let served = backend.execute(&plan, &request).unwrap();
        let reference = execute_reference(&request.workload, &request.input);
        assert!(served.approx_eq(&reference, 1e-9));
        // The estimate is exactly the shared batched cost model.
        assert_eq!(
            backend.estimate_us(&plan.profile, 4),
            batch_latency_us(backend.arch(), &plan.profile, 4)
        );
    }

    #[test]
    fn cost_model_backend_costs_but_does_not_execute() {
        let arch = GpuArch::h800();
        let backend = CostModelBackend::new(arch.clone());
        assert_eq!(backend.name(), "cost-model");
        let cache = PlanCache::new(arch, 4);
        let request = softmax_request();
        let plan = cache.get_or_compile(&request.workload);
        // Same cost surface as the VM backend...
        let vm = TileVmBackend::new(GpuArch::h800());
        assert_eq!(
            backend.estimate_us(&plan.profile, 8),
            vm.estimate_us(&plan.profile, 8)
        );
        // ...but the output is a shape-correct zero tensor.
        match backend.execute(&plan, &request).unwrap() {
            RequestOutput::Matrix(m) => {
                assert_eq!((m.rows(), m.cols()), (4, 16));
                assert!(m.as_slice().iter().all(|&v| v == 0.0));
            }
            other => panic!("expected a matrix, got {other:?}"),
        }
    }

    #[test]
    fn cost_model_synthesises_every_family_shape() {
        let moe = rf_workloads::MoeConfig {
            topk: 2,
            ..rf_workloads::moe_tiny()
        };
        let x = Matrix::random(moe.s, moe.hd, 1, -1.0, 1.0);
        let w = Matrix::random(moe.hd, moe.en, 2, -1.0, 1.0);
        let request =
            Request::new(Workload::Moe(moe.clone()), RequestInput::Routing { x, w }).unwrap();
        let backend = CostModelBackend::new(GpuArch::a10());
        let cache = PlanCache::new(GpuArch::a10(), 4);
        let plan = cache.get_or_compile(&request.workload);
        match backend.execute(&plan, &request).unwrap() {
            RequestOutput::Routing(decisions) => {
                assert_eq!(decisions.len(), moe.s);
                assert!(decisions.iter().all(|d| d.experts.len() == moe.topk));
            }
            other => panic!("expected routing decisions, got {other:?}"),
        }
        // A mismatched region input is a typed VM error, not a panic.
        let rows = Matrix::zeros(2, 2);
        let err = backend
            .run_region(&request.workload, &plan, &ExecInput::Rows(&rows))
            .unwrap_err();
        assert!(matches!(err, ExecError::InputMismatch { .. }));
    }

    #[test]
    fn config_kind_selects_the_backend() {
        let vm = make_backend(BackendKind::TileVm, GpuArch::a10());
        let cost = make_backend(BackendKind::CostModel, GpuArch::a10());
        assert_eq!(vm.name(), "tile-vm");
        assert_eq!(cost.name(), "cost-model");
        assert_eq!(vm.fingerprint(), cost.fingerprint());
    }
}
