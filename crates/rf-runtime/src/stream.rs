//! The continuous-batching stream scheduler: an open request stream served
//! in engine **iterations** instead of drained in blocking batches.
//!
//! The old `BatchScheduler` handed workers whole batches and implicitly
//! modelled a closed world: enqueue everything, drain everything. Real
//! serving traffic is an open stream, so this scheduler is built around
//! three ideas:
//!
//! * **Iteration-level batching** — workers repeatedly call
//!   [`StreamScheduler::next_iteration`]; each iteration's batch is formed
//!   *at the iteration boundary* from whatever compatible work is queued at
//!   that moment. A request submitted while an iteration is mid-flight joins
//!   a subsequent iteration immediately — there is no drain barrier.
//! * **Admission control** — a bounded in-flight budget
//!   ([`crate::RuntimeConfig::max_in_flight`]). A submission past the budget
//!   is shed with a typed [`RuntimeError::Overloaded`] carrying a retry
//!   hint, instead of queuing forever.
//! * **Priority lanes with per-class fairness** — three lanes (high /
//!   normal / low) scheduled by deficit-weighted round-robin: every
//!   backlogged lane's credit grows by its weight at each iteration
//!   boundary and the richest lane seeds the batch. A backlogged lane's
//!   credit grows without bound until it wins, so sustained high-priority
//!   load can never starve the low lane.
//!
//! The scheduler owns only queue state — never a compiled kernel and never a
//! lock across kernel execution. Workers take an iteration (briefly holding
//! the queue mutex), release the lock, then compile/execute/cost entirely
//! outside it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rf_gpusim::{estimate_latency, GpuArch, KernelProfile};

use crate::request::{RequestId, RuntimeError};
use crate::submit::{Priority, Response, Submission, LANES};

#[derive(Debug)]
struct TicketState {
    slot: Mutex<Option<Result<Response, RuntimeError>>>,
    ready: Condvar,
    /// Set once a result (or error) has been written into `slot`. Lets the
    /// `QueuedWork` drop guard distinguish "never delivered" (worker
    /// panicked, request dropped) from "delivered and already taken".
    delivered: AtomicBool,
}

/// A handle to one in-flight submission; `wait` blocks until a worker
/// fulfils it. Supports blocking ([`Ticket::wait`]), bounded
/// ([`Ticket::wait_timeout`]) and deadline ([`Ticket::wait_until`]) waits.
#[derive(Debug)]
pub struct Ticket {
    id: RequestId,
    state: Arc<TicketState>,
}

impl Ticket {
    /// The request id this ticket tracks.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Returns the result if the submission has already completed. Taking
    /// the result consumes it: a later [`Ticket::wait`] on the same ticket
    /// panics instead of blocking forever.
    pub fn try_take(&self) -> Option<Result<Response, RuntimeError>> {
        self.state.slot.lock().expect("ticket lock poisoned").take()
    }

    /// Blocks until the submission completes and returns its result.
    ///
    /// # Errors
    ///
    /// Returns the [`RuntimeError`] the worker recorded (e.g.
    /// [`RuntimeError::ShuttingDown`] when the engine was dropped before the
    /// request ran).
    ///
    /// # Panics
    ///
    /// Panics if the result was already consumed by [`Ticket::try_take`] —
    /// the delivery is one-shot, so waiting again can never succeed.
    pub fn wait(self) -> Result<Response, RuntimeError> {
        let mut slot = self.state.slot.lock().expect("ticket lock poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            assert!(
                !self.state.delivered.load(Ordering::Acquire),
                "ticket result was already taken via try_take"
            );
            slot = self.state.ready.wait(slot).expect("ticket lock poisoned");
        }
    }

    /// Blocks for at most `timeout` waiting for the submission to complete.
    ///
    /// Returns `None` when the deadline passes without a delivery — the
    /// ticket stays live and can be waited on again, so callers can bound
    /// their exposure to a wedged worker instead of blocking forever the way
    /// [`Ticket::wait`] would. Returns `Some(result)` (consuming the
    /// delivery, like `wait`) as soon as the worker fulfils the request.
    ///
    /// # Panics
    ///
    /// Panics if the result was already consumed by [`Ticket::try_take`] —
    /// the delivery is one-shot, so waiting again can never succeed.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Response, RuntimeError>> {
        // `Instant + Duration` panics on overflow (e.g. `Duration::MAX`, the
        // idiomatic "effectively no timeout"); an unrepresentable deadline
        // degrades to an unbounded wait instead.
        self.wait_deadline(Instant::now().checked_add(timeout))
    }

    /// Blocks until `deadline` waiting for the submission to complete — the
    /// absolute-time sibling of [`Ticket::wait_timeout`], for callers
    /// holding one deadline across many tickets. Returns `None` once
    /// `deadline` passes without a delivery; the ticket stays live.
    ///
    /// # Panics
    ///
    /// Panics if the result was already consumed by [`Ticket::try_take`].
    pub fn wait_until(&self, deadline: Instant) -> Option<Result<Response, RuntimeError>> {
        self.wait_deadline(Some(deadline))
    }

    fn wait_deadline(&self, deadline: Option<Instant>) -> Option<Result<Response, RuntimeError>> {
        let mut slot = self.state.slot.lock().expect("ticket lock poisoned");
        loop {
            if let Some(result) = slot.take() {
                return Some(result);
            }
            assert!(
                !self.state.delivered.load(Ordering::Acquire),
                "ticket result was already taken via try_take"
            );
            slot = match deadline {
                None => self.state.ready.wait(slot).expect("ticket lock poisoned"),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    self.state
                        .ready
                        .wait_timeout(slot, deadline - now)
                        .expect("ticket lock poisoned")
                        .0
                }
            };
        }
    }
}

/// A submission queued for execution, together with its completion ticket.
#[derive(Debug)]
pub struct QueuedWork {
    /// The id assigned at submission.
    pub id: RequestId,
    /// The submission itself.
    pub submission: Submission,
    /// When the submission was wrapped for queueing — the start of its
    /// queue-wait stage in [`crate::RequestTiming`].
    pub submitted_at: Instant,
    /// The engine iteration count when the scheduler admitted this work
    /// (set by [`StreamScheduler::enqueue`]); lets the worker report how
    /// many iterations the request waited out.
    pub iterations_at_submit: u64,
    state: Arc<TicketState>,
}

impl QueuedWork {
    /// Wraps a submission for queueing and returns the submitter's ticket.
    pub fn new(id: RequestId, submission: Submission) -> (Self, Ticket) {
        let state = Arc::new(TicketState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
            delivered: AtomicBool::new(false),
        });
        let ticket = Ticket {
            id,
            state: Arc::clone(&state),
        };
        (
            QueuedWork {
                id,
                submission,
                submitted_at: Instant::now(),
                iterations_at_submit: 0,
                state,
            },
            ticket,
        )
    }

    /// The submission's scheduling lane.
    pub fn priority(&self) -> Priority {
        self.submission.priority()
    }

    /// Delivers the result to the waiting ticket.
    pub fn fulfil(self, result: Result<Response, RuntimeError>) {
        self.deliver(result);
    }

    fn deliver(&self, result: Result<Response, RuntimeError>) {
        let mut slot = self.state.slot.lock().expect("ticket lock poisoned");
        *slot = Some(result);
        self.state.delivered.store(true, Ordering::Release);
        self.state.ready.notify_all();
    }
}

impl Drop for QueuedWork {
    /// Never strand a waiter: if this work is dropped without being
    /// fulfilled — a worker panicked mid-iteration, or the queue was torn
    /// down abnormally — deliver an execution failure so `Ticket::wait`
    /// returns instead of blocking forever.
    fn drop(&mut self) {
        if !self.state.delivered.load(Ordering::Acquire) {
            self.deliver(Err(RuntimeError::ExecutionFailed {
                workload: self.submission.label(),
            }));
        }
    }
}

/// One engine iteration's worth of work, formed at the iteration boundary:
/// either a shape-compatible batch of workload requests (all sharing one
/// compiled plan) or a single graph submission.
#[derive(Debug)]
pub struct Iteration {
    /// The 1-based iteration index.
    pub index: u64,
    /// The lane index the deficit-round-robin pick seeded the batch from.
    pub lane: usize,
    /// When the batch was formed at the iteration boundary — the end of
    /// every member's queue-wait stage.
    pub formed_at: Instant,
    /// The iteration's batch. Non-empty; all `Submission::Workload` with one
    /// workload key, or exactly one `Submission::Graph`.
    pub work: Vec<QueuedWork>,
}

#[derive(Debug, Default)]
struct StreamState {
    lanes: [VecDeque<QueuedWork>; LANES],
    credits: [u64; LANES],
    /// Number of *submissions* (not iterations) taken by workers and not yet
    /// finished, so `depth` reports true in-flight work.
    in_flight: usize,
    iterations: u64,
    shutdown: bool,
}

impl StreamState {
    fn queued(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }
}

/// The iteration-level scheduler shared by the engine front door and the
/// workers. See the module docs for the scheduling model.
#[derive(Debug)]
pub struct StreamScheduler {
    state: Mutex<StreamState>,
    work: Condvar,
    idle: Condvar,
    max_batch: usize,
    max_in_flight: usize,
    weights: [u64; LANES],
}

impl StreamScheduler {
    /// Creates a scheduler forming at most `max_batch`-request iterations,
    /// shedding past `max_in_flight` queued-or-executing submissions, and
    /// scheduling lanes by `weights` (lane-indexed, all positive).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `max_in_flight` is zero or any weight is
    /// zero — engine construction validates via
    /// [`crate::RuntimeConfig::validate`] first.
    pub fn new(max_batch: usize, max_in_flight: usize, weights: [u64; LANES]) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        assert!(max_in_flight > 0, "max_in_flight must be positive");
        assert!(
            weights.iter().all(|&w| w > 0),
            "lane weights must be positive"
        );
        StreamScheduler {
            state: Mutex::new(StreamState::default()),
            work: Condvar::new(),
            idle: Condvar::new(),
            max_batch,
            max_in_flight,
            weights,
        }
    }

    /// The per-iteration batch size bound.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The bounded in-flight budget.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// Submissions waiting plus submissions currently executing.
    pub fn depth(&self) -> usize {
        let state = self.state.lock().expect("scheduler lock poisoned");
        state.queued() + state.in_flight
    }

    /// Queued submissions per lane (high, normal, low) — excludes work
    /// already taken by workers.
    pub fn lane_depths(&self) -> [usize; LANES] {
        let state = self.state.lock().expect("scheduler lock poisoned");
        [
            state.lanes[0].len(),
            state.lanes[1].len(),
            state.lanes[2].len(),
        ]
    }

    /// Iterations started so far.
    pub fn iterations(&self) -> u64 {
        self.state
            .lock()
            .expect("scheduler lock poisoned")
            .iterations
    }

    /// Enqueues a submission onto its priority lane, enforcing the in-flight
    /// budget. `retry_hint` is the backoff estimate to embed in the
    /// [`RuntimeError::Overloaded`] shed error (computed by the engine from
    /// its recent latency).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ShuttingDown`] after [`StreamScheduler::shutdown`];
    /// [`RuntimeError::Overloaded`] when the budget is exhausted.
    pub fn enqueue(&self, mut work: QueuedWork, retry_hint: Duration) -> Result<(), RuntimeError> {
        {
            let mut state = self.state.lock().expect("scheduler lock poisoned");
            if state.shutdown {
                return Err(RuntimeError::ShuttingDown);
            }
            let depth = state.queued() + state.in_flight;
            if depth >= self.max_in_flight {
                return Err(RuntimeError::Overloaded {
                    retry_hint,
                    source: crate::request::OverloadInfo {
                        in_flight: depth,
                        budget: self.max_in_flight,
                    },
                });
            }
            work.iterations_at_submit = state.iterations;
            let lane = work.priority().lane();
            state.lanes[lane].push_back(work);
        }
        self.work.notify_one();
        Ok(())
    }

    /// Blocks until work is available and forms the next iteration at the
    /// boundary: deficit-weighted lane selection picks the seed, then (for
    /// workload seeds) up to `max_batch - 1` further requests with the same
    /// workload join from all lanes in priority order. Work that arrives
    /// while another iteration is mid-flight is eligible immediately — there
    /// is no drain barrier between iterations.
    ///
    /// Returns `None` once the scheduler is shut down and drained; the
    /// calling worker should exit. The iteration's submissions are accounted
    /// as in-flight until the worker calls
    /// [`StreamScheduler::finish_iteration`] with the batch size.
    pub fn next_iteration(&self) -> Option<Iteration> {
        let mut state = self.state.lock().expect("scheduler lock poisoned");
        loop {
            if state.lanes.iter().any(|lane| !lane.is_empty()) {
                break;
            }
            if state.shutdown {
                return None;
            }
            state = self.work.wait(state).expect("scheduler lock poisoned");
        }
        // Deficit-weighted round-robin: each backlogged lane earns its
        // weight; an idle lane's credit resets (no hoarding while empty).
        // The richest backlogged lane wins (ties to higher priority) and
        // pays its credit back to zero. A backlogged lane that keeps losing
        // keeps earning, so it wins within a bounded number of boundaries.
        for lane in 0..LANES {
            if state.lanes[lane].is_empty() {
                state.credits[lane] = 0;
            } else {
                state.credits[lane] += self.weights[lane];
            }
        }
        let chosen = (0..LANES)
            .filter(|&lane| !state.lanes[lane].is_empty())
            .max_by_key(|&lane| (state.credits[lane], std::cmp::Reverse(lane)))
            .expect("a backlogged lane exists");
        state.credits[chosen] = 0;
        let seed = state.lanes[chosen]
            .pop_front()
            .expect("chosen lane is backlogged");
        let mut work = Vec::with_capacity(self.max_batch);
        let batch_key = match &seed.submission {
            Submission::Workload { request, .. } => Some(request.workload.clone()),
            // Graphs execute as singleton iterations: their step chain is a
            // dependency sequence, not batchable data parallelism.
            Submission::Graph { .. } => None,
        };
        work.push(seed);
        if let Some(key) = batch_key {
            // Fill from all lanes in priority order, oldest first, keeping
            // non-matching work queued in arrival order.
            for lane in 0..LANES {
                if work.len() == self.max_batch {
                    break;
                }
                let queue = &mut state.lanes[lane];
                let matches = |w: &QueuedWork| {
                    matches!(
                        &w.submission,
                        Submission::Workload { request, .. } if request.workload == key
                    )
                };
                if queue.iter().any(matches) {
                    let mut rest = VecDeque::with_capacity(queue.len());
                    for queued in queue.drain(..) {
                        if work.len() < self.max_batch && matches(&queued) {
                            work.push(queued);
                        } else {
                            rest.push_back(queued);
                        }
                    }
                    *queue = rest;
                }
            }
        }
        state.in_flight += work.len();
        state.iterations += 1;
        let index = state.iterations;
        Some(Iteration {
            index,
            lane: chosen,
            formed_at: Instant::now(),
            work,
        })
    }

    /// Marks an iteration of `size` submissions taken by
    /// [`StreamScheduler::next_iteration`] as completed.
    pub fn finish_iteration(&self, size: usize) {
        let mut state = self.state.lock().expect("scheduler lock poisoned");
        state.in_flight = state
            .in_flight
            .checked_sub(size)
            .expect("finish_iteration without a matching next_iteration");
        let drained = state.queued() == 0 && state.in_flight == 0;
        drop(state);
        if drained {
            self.idle.notify_all();
        }
    }

    /// Blocks until every lane is empty and no iteration is executing.
    pub fn wait_drained(&self) {
        let mut state = self.state.lock().expect("scheduler lock poisoned");
        while !(state.queued() == 0 && state.in_flight == 0) {
            state = self.idle.wait(state).expect("scheduler lock poisoned");
        }
    }

    /// Stops accepting new submissions, wakes every worker, and fails all
    /// still-queued submissions with [`RuntimeError::ShuttingDown`].
    pub fn shutdown(&self) {
        let orphans: Vec<QueuedWork> = {
            let mut state = self.state.lock().expect("scheduler lock poisoned");
            state.shutdown = true;
            state.lanes.iter_mut().flat_map(|l| l.drain(..)).collect()
        };
        for work in orphans {
            work.fulfil(Err(RuntimeError::ShuttingDown));
        }
        self.work.notify_all();
        self.idle.notify_all();
    }
}

/// Builds the profile of one batched launch: `batch` shape-identical requests
/// fused into a single kernel launch, scaling work and traffic linearly while
/// paying the launch overhead once.
pub fn batched_profile(profile: &KernelProfile, batch: usize) -> KernelProfile {
    let n = batch.max(1) as u64;
    KernelProfile {
        name: format!("{}[batch={batch}]", profile.name),
        flops: profile.flops * n,
        hbm_bytes: profile.hbm_bytes * n,
        blocks: profile.blocks * n,
        launches: profile.launches,
        ..profile.clone()
    }
}

/// Simulated latency of one batched launch on `arch`, in microseconds.
pub fn batch_latency_us(arch: &GpuArch, profile: &KernelProfile, batch: usize) -> f64 {
    estimate_latency(arch, &batched_profile(profile, batch)).total_us
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use rf_codegen::Workload;
    use rf_workloads::random_matrix;

    fn softmax_work(id: RequestId, len: usize) -> (QueuedWork, Ticket) {
        QueuedWork::new(
            id,
            Submission::workload(Request::softmax(random_matrix(2, len, id, -1.0, 1.0))),
        )
    }

    fn softmax_work_at(id: RequestId, len: usize, priority: Priority) -> (QueuedWork, Ticket) {
        QueuedWork::new(
            id,
            Submission::workload(Request::softmax(random_matrix(2, len, id, -1.0, 1.0)))
                .with_priority(priority),
        )
    }

    fn sched(max_batch: usize, max_in_flight: usize) -> StreamScheduler {
        StreamScheduler::new(max_batch, max_in_flight, [4, 2, 1])
    }

    const HINT: Duration = Duration::from_millis(1);

    fn ids(iteration: &Iteration) -> Vec<RequestId> {
        iteration.work.iter().map(|w| w.id).collect()
    }

    #[test]
    fn iterations_group_only_shape_compatible_requests() {
        let s = sched(8, 64);
        // Interleave two shapes; batching must regroup them without
        // reordering within a shape.
        for (id, len) in [(0, 16), (1, 32), (2, 16), (3, 32), (4, 16)] {
            let (work, _ticket) = softmax_work(id, len);
            s.enqueue(work, HINT).unwrap();
        }
        let first = s.next_iteration().unwrap();
        assert_eq!(first.index, 1);
        assert!(first.work.iter().all(|w| matches!(
            &w.submission,
            Submission::Workload { request, .. }
                if request.workload == Workload::Softmax { rows: 2, len: 16 }
        )));
        assert_eq!(ids(&first), [0, 2, 4]);
        // Depth counts in-flight *submissions*: 3 executing + 2 still queued.
        assert_eq!(s.depth(), 5);
        s.finish_iteration(first.work.len());
        let second = s.next_iteration().unwrap();
        assert_eq!(ids(&second), [1, 3]);
        s.finish_iteration(second.work.len());
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn requests_join_a_subsequent_iteration_while_a_batch_is_mid_flight() {
        // The continuous-batching property: iteration 1 is taken but NOT
        // finished (mid-flight), other-shaped work is still queued (the
        // stream is nowhere near drained) — and a request that arrives right
        // now is admitted and served by the very next iteration boundary.
        let s = sched(4, 64);
        for id in 0..2 {
            let (work, _t) = softmax_work(id, 16);
            s.enqueue(work, HINT).unwrap();
        }
        let (other_shape, _t2) = softmax_work(10, 32);
        s.enqueue(other_shape, HINT).unwrap();

        let mid_flight = s.next_iteration().unwrap();
        assert_eq!(ids(&mid_flight), [0, 1]);
        // Iteration 1 has NOT finished; the queue still holds id 10. A new
        // request joins the stream anyway:
        let (late, _t3) = softmax_work(11, 32);
        s.enqueue(late, HINT).unwrap();
        assert_eq!(s.depth(), 4, "2 mid-flight + 2 queued");

        // A second worker forms the next iteration while the first is still
        // mid-flight — no drain barrier — and the late request rides in it
        // (same shape as the older id-10 request).
        let second = s.next_iteration().unwrap();
        assert_eq!(second.index, 2);
        assert_eq!(ids(&second), [10, 11], "late arrival joined iteration 2");
        s.finish_iteration(mid_flight.work.len());
        s.finish_iteration(second.work.len());
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn iterations_carry_lane_and_formation_time() {
        let s = sched(4, 64);
        let (work, _t) = softmax_work_at(1, 16, Priority::Low);
        let submitted_at = work.submitted_at;
        s.enqueue(work, HINT).unwrap();
        let iteration = s.next_iteration().unwrap();
        assert_eq!(iteration.lane, Priority::Low.lane());
        assert!(iteration.formed_at >= submitted_at);
        assert_eq!(iteration.work[0].iterations_at_submit, 0);
        s.finish_iteration(1);
        // Work admitted after the first boundary records the new baseline,
        // so the worker can report iterations waited.
        let (late, _t) = softmax_work(2, 16);
        s.enqueue(late, HINT).unwrap();
        let second = s.next_iteration().unwrap();
        assert_eq!(second.work[0].iterations_at_submit, 1);
        assert_eq!(second.lane, Priority::Normal.lane());
    }

    #[test]
    fn max_batch_bounds_the_iteration() {
        let s = sched(2, 64);
        for id in 0..5 {
            let (work, _ticket) = softmax_work(id, 16);
            s.enqueue(work, HINT).unwrap();
        }
        assert_eq!(s.next_iteration().unwrap().work.len(), 2);
        assert_eq!(s.next_iteration().unwrap().work.len(), 2);
        assert_eq!(s.next_iteration().unwrap().work.len(), 1);
    }

    #[test]
    fn admission_control_sheds_past_the_budget_with_typed_errors() {
        let s = sched(2, 3);
        for id in 0..3 {
            let (work, _ticket) = softmax_work(id, 16);
            s.enqueue(work, HINT).unwrap();
        }
        // Budget exhausted: the 4th submission is shed, typed and hinted.
        let (work, _ticket) = softmax_work(3, 16);
        let err = s.enqueue(work, Duration::from_millis(7)).unwrap_err();
        assert_eq!(err.code(), "overloaded");
        let RuntimeError::Overloaded { retry_hint, source } = &err else {
            panic!("expected Overloaded, got {err:?}");
        };
        assert_eq!(*retry_hint, Duration::from_millis(7));
        assert_eq!((source.in_flight, source.budget), (3, 3));
        // The shed is observable through the source chain.
        let chained = std::error::Error::source(&err).expect("overload carries a source");
        assert!(chained.to_string().contains("3 of 3"));
        // Taking an iteration does not free budget until it finishes…
        let iteration = s.next_iteration().unwrap();
        let (work, _ticket) = softmax_work(4, 16);
        assert!(s.enqueue(work, HINT).is_err(), "mid-flight still counts");
        // …finishing does.
        s.finish_iteration(iteration.work.len());
        let (work, _ticket) = softmax_work(5, 16);
        s.enqueue(work, HINT).unwrap();
    }

    #[test]
    fn weighted_lanes_prefer_high_priority_but_never_starve_low() {
        // 12 high-priority and 3 low-priority requests of distinct shapes
        // (so nothing batches across lanes). With weights [4, 2, 1] the high
        // lane must be served more often, but every low request must be
        // scheduled before the high backlog is exhausted — the starvation
        // guard — rather than after it.
        let s = StreamScheduler::new(1, 64, [4, 2, 1]);
        for id in 0..12 {
            let (work, _t) = softmax_work_at(id, 16, Priority::High);
            s.enqueue(work, HINT).unwrap();
        }
        for id in 100..103 {
            let (work, _t) = softmax_work_at(id, 32, Priority::Low);
            s.enqueue(work, HINT).unwrap();
        }
        let mut order = Vec::new();
        for _ in 0..15 {
            let iteration = s.next_iteration().unwrap();
            assert_eq!(iteration.work.len(), 1);
            order.push(iteration.work[0].id);
            s.finish_iteration(1);
        }
        // Starvation-freedom: the low lane is served *while* the high lane
        // is still backlogged — every low request rides between highs
        // instead of waiting for the whole high backlog to drain. With
        // weights 4:1 a low must appear at least once per 5 iterations.
        let first_low = order.iter().position(|id| *id >= 100).unwrap();
        let last_high = order.iter().rposition(|id| *id < 12).unwrap();
        assert!(
            first_low < last_high,
            "low lane waited for the high backlog to drain: {order:?}"
        );
        assert!(
            first_low <= 5,
            "low lane starved beyond its weighted share: {order:?}"
        );
        // Preference still holds: the first served request is high-priority
        // and highs dominate the first half.
        assert!(order[0] < 12);
        let highs_early = order[..7].iter().filter(|id| **id < 12).count();
        assert!(highs_early >= 5, "high lane under-served early: {order:?}");
    }

    #[test]
    fn batches_fill_across_lanes_in_priority_order() {
        // One high seed + same-shape work parked in normal and low lanes:
        // the iteration fills from all lanes, high first.
        let s = sched(4, 64);
        let (low, _t1) = softmax_work_at(30, 16, Priority::Low);
        s.enqueue(low, HINT).unwrap();
        let (normal, _t2) = softmax_work_at(20, 16, Priority::Normal);
        s.enqueue(normal, HINT).unwrap();
        let (high, _t3) = softmax_work_at(10, 16, Priority::High);
        s.enqueue(high, HINT).unwrap();
        let iteration = s.next_iteration().unwrap();
        assert_eq!(ids(&iteration), [10, 20, 30]);
    }

    #[test]
    fn graphs_are_singleton_iterations() {
        use std::sync::Arc;
        let graph = Arc::new(rf_graph::builders::moe_block(4, 8, 4));
        let bindings: Vec<(String, rf_workloads::Matrix)> =
            rf_graph::builders::moe_block_inputs(4, 8, 4, 1)
                .into_iter()
                .map(|(n, m)| (n.to_string(), m))
                .collect();
        let s = sched(8, 64);
        let (g, _t1) = QueuedWork::new(0, Submission::graph(graph, bindings));
        s.enqueue(g, HINT).unwrap();
        let (r, _t2) = softmax_work(1, 16);
        s.enqueue(r, HINT).unwrap();
        let first = s.next_iteration().unwrap();
        assert_eq!(first.work.len(), 1, "graphs never batch");
        assert!(matches!(first.work[0].submission, Submission::Graph { .. }));
        let second = s.next_iteration().unwrap();
        assert_eq!(ids(&second), [1]);
    }

    #[test]
    fn shutdown_fails_queued_work_and_stops_workers() {
        let s = sched(4, 64);
        let (work, ticket) = softmax_work(7, 16);
        s.enqueue(work, HINT).unwrap();
        s.shutdown();
        assert_eq!(ticket.wait().unwrap_err(), RuntimeError::ShuttingDown);
        assert!(s.next_iteration().is_none());
        let (work, _ticket) = softmax_work(8, 16);
        assert_eq!(
            s.enqueue(work, HINT).unwrap_err(),
            RuntimeError::ShuttingDown
        );
    }

    #[test]
    fn batched_profile_amortises_the_launch() {
        let arch = GpuArch::a10();
        let profile = KernelProfile {
            flops: 1_000_000,
            hbm_bytes: 1_000_000,
            blocks: 64,
            ..KernelProfile::default()
        };
        let single = batch_latency_us(&arch, &profile, 1);
        let batched = batch_latency_us(&arch, &profile, 8);
        let serial = 8.0 * single;
        assert!(
            batched < serial,
            "one batched launch ({batched} us) must beat eight serial launches ({serial} us)"
        );
        let p = batched_profile(&profile, 8);
        assert_eq!(p.flops, 8_000_000);
        assert_eq!(p.launches, profile.launches);
    }

    #[test]
    #[should_panic(expected = "already taken via try_take")]
    fn waiting_after_try_take_panics_instead_of_hanging() {
        let (work, ticket) = softmax_work(11, 16);
        work.fulfil(Err(RuntimeError::ShuttingDown));
        assert!(ticket.try_take().is_some());
        let _ = ticket.wait();
    }

    #[test]
    fn dropping_unfulfilled_work_fails_its_ticket() {
        // A worker panic unwinds through the iteration Vec, dropping its
        // QueuedWork; waiters must observe an error, not block forever.
        let (work, ticket) = softmax_work(9, 16);
        drop(work);
        assert!(matches!(
            ticket.wait(),
            Err(RuntimeError::ExecutionFailed { workload }) if workload == "softmax_2x16"
        ));
    }

    #[test]
    fn wait_timeout_returns_none_until_delivery_and_some_after() {
        let (work, ticket) = softmax_work(21, 16);
        // Nothing delivered yet: the bounded wait must return, not hang.
        let start = Instant::now();
        assert!(ticket.wait_timeout(Duration::from_millis(30)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(30));
        // The deadline sibling behaves identically.
        assert!(ticket
            .wait_until(Instant::now() + Duration::from_millis(5))
            .is_none());
        // The ticket stays live: a later delivery is observed by both the
        // bounded and the blocking wait paths.
        let worker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            work.fulfil(Err(RuntimeError::ShuttingDown));
        });
        // Duration::MAX must degrade to an unbounded wait, not panic on
        // deadline overflow.
        let result = ticket
            .wait_timeout(Duration::MAX)
            .expect("delivery arrives well before the timeout");
        assert_eq!(result.unwrap_err(), RuntimeError::ShuttingDown);
        worker.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "already taken via try_take")]
    fn wait_timeout_after_try_take_panics_instead_of_spinning() {
        let (work, ticket) = softmax_work(22, 16);
        work.fulfil(Err(RuntimeError::ShuttingDown));
        assert!(ticket.try_take().is_some());
        let _ = ticket.wait_timeout(Duration::from_millis(10));
    }

    #[test]
    fn tickets_deliver_results_once() {
        let (work, ticket) = softmax_work(3, 8);
        assert!(ticket.try_take().is_none());
        let Submission::Workload { request, .. } = &work.submission else {
            unreachable!()
        };
        let output = crate::request::execute_reference(&request.workload, &request.input);
        let result = Response {
            id: 3,
            workload: request.workload.name(),
            output,
            simulated_us: 1.0,
            batch_size: 1,
            cache_hit: false,
            iteration: 1,
            priority: Priority::Normal,
            device: 0,
            graph: None,
            timing: crate::submit::RequestTiming::default(),
        };
        work.fulfil(Ok(result.clone()));
        assert_eq!(ticket.wait().unwrap(), result);
    }
}
