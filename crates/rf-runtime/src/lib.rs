//! A concurrent serving runtime over the RedFuser compiler pipeline.
//!
//! The compiler crates answer "how do I fuse and tune this cascade once"; this
//! crate answers "how do I serve a stream of such requests". It adds the layer
//! both serving systems this repository mirrors are built around (a
//! router/worker split with compiled-model reuse): callers submit
//! [`Request`]s — a [`rf_codegen::Workload`] plus input tensors — and a worker
//! pool serves them through three cooperating pieces:
//!
//! * [`PlanCache`] — a bounded, thread-safe LRU cache of tuned
//!   [`rf_codegen::CompiledKernel`]s keyed by [`rf_codegen::PlanKey`]
//!   (`(workload, arch)`), so detection, ACRF analysis, lowering and
//!   auto-tuning run once per distinct shape instead of once per request;
//! * [`BatchScheduler`] — a blocking queue that groups shape-compatible
//!   requests (same plan key) into batches executed as one simulated launch;
//! * [`RuntimeMetrics`] — served/batch counters, p50/p99 *simulated* latency
//!   from the `rf-gpusim` model, queue depth and cache hit rate, with a
//!   plain-text [`MetricsSnapshot::report`].
//!
//! The [`Engine`] facade ties them together:
//!
//! ```
//! use rf_gpusim::GpuArch;
//! use rf_runtime::{Engine, Request};
//! use rf_workloads::random_matrix;
//!
//! let engine = Engine::new(GpuArch::h800());
//! let tickets: Vec<_> = (0..32)
//!     .map(|seed| {
//!         let rows = random_matrix(4, 128, seed, -2.0, 2.0);
//!         engine.submit(Request::softmax(rows)).unwrap()
//!     })
//!     .collect();
//! engine.run_until_drained();
//! assert!(tickets.into_iter().all(|t| t.wait().is_ok()));
//! // 32 identical shapes -> 1 compilation.
//! assert_eq!(engine.cache_stats().misses, 1);
//! ```
//!
//! Locking discipline: the scheduler mutex and the cache's `RwLock` protect
//! only queue and map state. Compilation runs behind a per-key
//! [`std::sync::OnceLock`] and kernel execution runs on `Arc` snapshots — no
//! lock is ever held across either.

pub mod batch;
pub mod cache;
pub mod engine;
pub mod graph;
pub mod metrics;
pub mod request;

pub use batch::{BatchScheduler, QueuedRequest, RequestResult, Ticket};
pub use cache::{CacheStats, PlanCache};
pub use engine::{Engine, RuntimeConfig};
pub use graph::{execute_graph_plan, GraphResponse};
pub use metrics::{ClassSnapshot, MetricsSnapshot, RuntimeMetrics};
pub use request::{
    execute_plan, execute_reference, Request, RequestId, RequestInput, RequestOutput, RuntimeError,
};
