//! A concurrent serving runtime over the RedFuser compiler pipeline.
//!
//! The compiler crates answer "how do I fuse and tune this cascade once"; this
//! crate answers "how do I serve an **open stream** of such requests". It adds
//! the layer both serving systems this repository mirrors are built around (a
//! router/worker split with compiled-model reuse and continuous batching):
//! callers submit [`Submission`]s — a single workload [`Request`], a whole
//! operator graph, or a pre-partitioned plan, each on a [`Priority`] lane —
//! through the unified [`Engine::submit`] front door, and a worker pool serves
//! them through four cooperating pieces:
//!
//! * [`PlanCache`] — a bounded, thread-safe LRU cache of tuned
//!   [`rf_codegen::CompiledKernel`]s keyed by [`rf_codegen::PlanKey`]
//!   (`(workload, arch)`), so detection, ACRF analysis, lowering and
//!   auto-tuning run once per distinct shape instead of once per request;
//! * [`StreamScheduler`] — iteration-level continuous batching: each engine
//!   iteration's batch is formed at the iteration boundary from whatever
//!   shape-compatible work is queued, so a request submitted while a batch is
//!   mid-flight joins a subsequent iteration instead of waiting for a drain.
//!   Admission is bounded ([`RuntimeConfig::max_in_flight`]) with graceful
//!   shedding ([`RuntimeError::Overloaded`] plus a retry hint), and the three
//!   priority lanes are scheduled by deficit-weighted round-robin so no lane
//!   starves;
//! * [`RuntimeMetrics`] — served/shed/batch counters, per-lane and per-class
//!   breakdowns, p50/p99 *simulated* latency from the `rf-gpusim` model,
//!   queue depth and cache hit rate, with a plain-text
//!   [`MetricsSnapshot::report`];
//! * [`RuntimeConfig`] — a validating [`RuntimeConfig::builder`] that rejects
//!   impossible configurations (zero workers, zero budgets, inverted lane
//!   weights) with typed [`RuntimeError::InvalidConfig`] errors.
//!
//! The [`Engine`] facade ties them together:
//!
//! ```
//! use rf_gpusim::GpuArch;
//! use rf_runtime::{Engine, Request};
//! use rf_workloads::random_matrix;
//!
//! let engine = Engine::new(GpuArch::h800());
//! let tickets: Vec<_> = (0..32)
//!     .map(|seed| {
//!         let rows = random_matrix(4, 128, seed, -2.0, 2.0);
//!         engine.submit(Request::softmax(rows)).unwrap()
//!     })
//!     .collect();
//! engine.run_until_drained();
//! assert!(tickets.into_iter().all(|t| t.wait().is_ok()));
//! // 32 identical shapes -> 1 compilation.
//! assert_eq!(engine.cache_stats().misses, 1);
//! ```
//!
//! Locking discipline: the scheduler mutex and the cache's `RwLock` protect
//! only queue and map state. Compilation runs behind a per-key
//! [`std::sync::OnceLock`] and kernel execution runs on `Arc` snapshots — no
//! lock is ever held across either.

pub mod backend;
pub mod cache;
pub mod config;
pub mod engine;
pub mod graph;
pub mod metrics;
pub mod request;
pub mod stream;
pub mod submit;

pub use backend::{make_backend, CostModelBackend, ExecBackend, TileVmBackend};
pub use cache::{CacheStats, PlanCache};
pub use config::{
    BackendKind, DeviceSpec, FleetConfig, LaneWeights, RoutingPolicy, RuntimeConfig,
    RuntimeConfigBuilder,
};
pub use engine::{DeviceSnapshot, Engine};
pub use graph::{execute_graph_plan, execute_graph_plan_on, GraphResponse};
pub use metrics::{ClassSnapshot, LaneSnapshot, MetricsSnapshot, RuntimeMetrics};
pub use request::{
    execute_plan, execute_reference, OverloadInfo, Request, RequestId, RequestInput, RequestOutput,
    RuntimeError,
};
pub use stream::{QueuedWork, StreamScheduler, Ticket};
pub use submit::{GraphStats, Priority, RequestResult, RequestTiming, Response, Submission, LANES};
// Tracing/telemetry types (from `rf-trace`), re-exported so engine users
// configure and consume tracing without naming the crate.
pub use rf_trace::{
    CalibrationSnapshot, HistogramSnapshot, OpProfileSnapshot, Stage, TimeSeriesSnapshot,
    TraceCollector, TraceConfig, TraceLevel, TraceSnapshot, WindowSnapshot,
};
