//! The unified submission surface: everything the engine can serve flows
//! through one typed entry point.
//!
//! A [`Submission`] covers everything the engine serves — single workloads,
//! whole graphs ([`Submission::graph`]) and pre-partitioned plans
//! ([`Submission::graph_plan`]) — as variants of one enum, each carrying a
//! [`Priority`] lane. [`Engine::submit`](crate::Engine::submit) accepts
//! `impl Into<Submission>`, so a bare [`Request`] still submits directly.
//!
//! Every accepted submission resolves to a [`Response`] through the returned
//! [`Ticket`](crate::Ticket); graph submissions additionally carry
//! [`GraphStats`].

use std::sync::Arc;

use rf_graph::{GraphPlan, OpGraph};
use rf_workloads::Matrix;

use crate::request::{Request, RequestId, RequestOutput};

/// The scheduling lane of one submission. Lanes are served by
/// deficit-weighted round-robin (see
/// [`crate::RuntimeConfig::lane_weights`]): high-priority work is preferred
/// in proportion to its weight, while any backlogged lane accumulates credit
/// every iteration, so no lane starves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive interactive traffic.
    High,
    /// The default lane.
    #[default]
    Normal,
    /// Throughput traffic that tolerates waiting behind the other lanes.
    Low,
}

/// Number of priority lanes.
pub const LANES: usize = 3;

impl Priority {
    /// All lanes, highest first — index order matches [`Priority::lane`].
    pub const ALL: [Priority; LANES] = [Priority::High, Priority::Normal, Priority::Low];

    /// The lane index (0 = high, 1 = normal, 2 = low).
    pub fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Lane name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// One unit of work submitted to the engine: a single workload, a whole
/// operator graph, or a graph with an already-computed partition plan.
///
/// Graphs and plans ride behind `Arc`s: the queue owns its work, and a
/// caller serving the same graph many times shares one allocation across all
/// in-flight submissions.
#[derive(Debug, Clone)]
pub enum Submission {
    /// A single validated workload request.
    Workload {
        /// The request (workload + input tensors).
        request: Box<Request>,
        /// The scheduling lane.
        priority: Priority,
    },
    /// A whole operator graph with named input bindings. The engine
    /// partitions it (or reuses `plan` when given) and executes the region
    /// steps through the plan cache.
    Graph {
        /// The operator graph.
        graph: Arc<OpGraph>,
        /// A pre-computed partition plan (partition once, serve many times);
        /// `None` partitions on the worker.
        plan: Option<Arc<GraphPlan>>,
        /// Named input bindings.
        bindings: Arc<Vec<(String, Matrix)>>,
        /// The scheduling lane.
        priority: Priority,
    },
}

impl Submission {
    /// Wraps one workload request at [`Priority::Normal`].
    pub fn workload(request: Request) -> Submission {
        Submission::Workload {
            request: Box::new(request),
            priority: Priority::Normal,
        }
    }

    /// Wraps a whole graph at [`Priority::Normal`]; the engine partitions it
    /// on a worker.
    pub fn graph(graph: Arc<OpGraph>, bindings: Vec<(String, Matrix)>) -> Submission {
        Submission::Graph {
            graph,
            plan: None,
            bindings: Arc::new(bindings),
            priority: Priority::Normal,
        }
    }

    /// Wraps a graph with a pre-partitioned plan at [`Priority::Normal`].
    pub fn graph_plan(
        graph: Arc<OpGraph>,
        plan: Arc<GraphPlan>,
        bindings: Vec<(String, Matrix)>,
    ) -> Submission {
        Submission::Graph {
            graph,
            plan: Some(plan),
            bindings: Arc::new(bindings),
            priority: Priority::Normal,
        }
    }

    /// Returns the submission moved onto `priority`'s lane.
    pub fn with_priority(mut self, priority: Priority) -> Submission {
        match &mut self {
            Submission::Workload { priority: p, .. } => *p = priority,
            Submission::Graph { priority: p, .. } => *p = priority,
        }
        self
    }

    /// The submission's scheduling lane.
    pub fn priority(&self) -> Priority {
        match self {
            Submission::Workload { priority, .. } => *priority,
            Submission::Graph { priority, .. } => *priority,
        }
    }

    /// A display label: the workload name, or `graph[N nodes]`.
    pub fn label(&self) -> String {
        match self {
            Submission::Workload { request, .. } => request.workload.name(),
            Submission::Graph { graph, .. } => format!("graph[{} nodes]", graph.nodes().len()),
        }
    }
}

impl From<Request> for Submission {
    fn from(request: Request) -> Submission {
        Submission::workload(request)
    }
}

/// Per-graph serving counters carried in a graph submission's [`Response`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Fused region steps executed.
    pub fused_regions: usize,
    /// Graph ops covered by fused regions.
    pub fused_ops: usize,
    /// Glue ops executed unfused.
    pub glue_ops: usize,
    /// Region steps whose compiled plan came from the plan cache.
    pub region_cache_hits: usize,
}

/// Wall-clock breakdown of where one request's latency went, measured by the
/// engine regardless of trace level (a handful of monotonic-clock reads per
/// request) and returned on every [`Response`] via [`Response::timing`].
///
/// The stages tile the request's lifetime: `queue_us + compile_us +
/// execute_us ≈ total_us` (plan-cache hits contribute a near-zero
/// `compile_us`). `tune_us` is the auto-tuner share *inside* `compile_us`,
/// not an additional stage. All times are host wall-clock microseconds —
/// distinct from the *simulated* GPU latency in `Response::simulated_us`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RequestTiming {
    /// Submission accepted → the iteration that served it formed.
    pub queue_us: f64,
    /// Plan acquisition for the serving iteration: near zero on a cache hit,
    /// the full compile+tune wall time on a miss.
    pub compile_us: f64,
    /// Auto-tuner search time inside `compile_us` (zero on a cache hit).
    pub tune_us: f64,
    /// Plan ready → this request's result delivered, including its share of
    /// batch execution.
    pub execute_us: f64,
    /// Submission accepted → result delivered, end to end.
    pub total_us: f64,
    /// Engine iterations that started between this request's admission and
    /// the one that served it — how long it sat out the continuous-batching
    /// stream (0 = served by the first boundary after arrival).
    pub iterations_waited: u64,
}

impl RequestTiming {
    /// The part of `total_us` attributed to the three pipeline stages;
    /// the remainder (if any) is scheduler/bookkeeping overhead.
    pub fn accounted_us(&self) -> f64 {
        self.queue_us + self.compile_us + self.execute_us
    }
}

/// The outcome of one served submission.
///
/// For workload submissions this is the historical request result (the
/// compat alias [`RequestResult`] still names it); for graph submissions the
/// `output` is [`RequestOutput::Tensors`] and `graph` carries the region
/// counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The id assigned at submission.
    pub id: RequestId,
    /// Display name of the served work (workload name or graph label).
    pub workload: String,
    /// The numeric output.
    pub output: RequestOutput,
    /// Simulated latency of the iteration this submission rode in, in
    /// microseconds.
    pub simulated_us: f64,
    /// Number of requests in that iteration's batch (1 for graphs).
    pub batch_size: usize,
    /// Whether the compiled plan(s) came from the cache (`true`) or were
    /// compiled for this iteration. For graphs: every region hit.
    pub cache_hit: bool,
    /// The engine iteration (1-based) this submission executed in. Requests
    /// submitted while an iteration is mid-flight join a subsequent
    /// iteration — this field is how tests observe that.
    pub iteration: u64,
    /// The lane the submission was served from.
    pub priority: Priority,
    /// The fleet device that served this submission (0 in a single-device
    /// engine). A row-sharded submission ran on every device; this reports
    /// the lowest participating id.
    pub device: usize,
    /// Graph-serving counters; `None` for workload submissions.
    pub graph: Option<GraphStats>,
    /// Wall-clock breakdown of where this request's latency went.
    pub timing: RequestTiming,
}

impl Response {
    /// Where this request's wall-clock latency went: queue wait, compile/tune
    /// time, execute time and iterations waited. Always populated — the
    /// engine measures it at every trace level.
    pub fn timing(&self) -> &RequestTiming {
        &self.timing
    }
}

/// Compatibility alias: the pre-stream name for [`Response`]. Prefer
/// `Response` in new code.
pub type RequestResult = Response;

#[cfg(test)]
mod tests {
    use super::*;
    use rf_workloads::random_matrix;

    #[test]
    fn priority_lanes_are_ordered_high_to_low() {
        assert_eq!(Priority::ALL.map(Priority::lane), [0, 1, 2]);
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::Low.name(), "low");
    }

    #[test]
    fn requests_convert_into_normal_priority_submissions() {
        let submission: Submission = Request::softmax(random_matrix(2, 8, 1, -1.0, 1.0)).into();
        assert_eq!(submission.priority(), Priority::Normal);
        assert_eq!(submission.label(), "softmax_2x8");
        let high = submission.with_priority(Priority::High);
        assert_eq!(high.priority(), Priority::High);
    }

    #[test]
    fn graph_submissions_share_the_graph_allocation() {
        let graph = Arc::new(rf_graph::builders::moe_block(4, 8, 4));
        let bindings: Vec<(String, Matrix)> = rf_graph::builders::moe_block_inputs(4, 8, 4, 1)
            .into_iter()
            .map(|(n, m)| (n.to_string(), m))
            .collect();
        let submission = Submission::graph(Arc::clone(&graph), bindings);
        assert_eq!(Arc::strong_count(&graph), 2);
        assert!(submission.label().starts_with("graph["));
    }
}
