//! End-to-end graph serving: executing a partitioned [`GraphPlan`] through
//! the engine's plan cache.
//!
//! [`execute_graph_plan`] walks the plan's topologically-ordered steps and
//! threads intermediate tensors between them:
//!
//! * a **fused region** step compiles (or re-uses, via the [`PlanCache`]
//!   keyed by the region's workload — the graph-region fingerprint) the
//!   region's workload and interprets the compiled tile program over the
//!   region's input tensors;
//! * a **glue op** step executes the node's unfused reference kernel.
//!
//! The result of every step lands in the shared value table, so a glue op
//! can consume a fused region's output and vice versa. The whole-graph
//! unfused oracle for this execution is [`OpGraph::evaluate`].

use rf_gpusim::{estimate_latency, GpuArch};
use rf_graph::partition::{GraphPlan, RegionKind, Step};
use rf_graph::{glue_profile, OpGraph};
use rf_tile::exec::{ExecInput, ExecOutput};
use rf_workloads::Matrix;

use crate::backend::{ExecBackend, TileVmBackend};
use crate::cache::PlanCache;
use crate::metrics::RuntimeMetrics;
use crate::request::RuntimeError;

/// The result of serving one graph end-to-end.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphResponse {
    /// The graph's declared outputs, in declaration order.
    pub outputs: Vec<Matrix>,
    /// Fused region steps executed.
    pub fused_regions: usize,
    /// Graph ops covered by fused regions.
    pub fused_ops: usize,
    /// Glue ops executed unfused.
    pub glue_ops: usize,
    /// Region steps whose compiled plan came from the plan cache.
    pub region_cache_hits: usize,
    /// Total simulated latency of the plan on the analytical GPU model:
    /// every fused region's tuned kernel plus one launch per glue op, in
    /// microseconds.
    pub simulated_us: f64,
}

fn graph_err(detail: impl Into<String>) -> RuntimeError {
    RuntimeError::graph(detail)
}

/// Executes a partitioned graph over concrete input bindings, compiling each
/// fused region through `cache` and costing the execution on `arch`'s
/// analytical model. Records the graph-serving counters into `metrics` when
/// provided. Bindings are generic over the name type, so both borrowed
/// (`(&str, Matrix)`) builder output and owned (`(String, Matrix)`) queue
/// payloads execute without cloning tensors.
///
/// # Errors
///
/// [`RuntimeError::Graph`] when a binding is missing or misshapen, or when a
/// region's compiled program rejects its tensors. Errors originating in
/// `rf-graph` keep the [`rf_graph::GraphError`] reachable through
/// [`std::error::Error::source`].
pub fn execute_graph_plan<S: AsRef<str>>(
    cache: &PlanCache,
    arch: &GpuArch,
    metrics: Option<&RuntimeMetrics>,
    graph: &OpGraph,
    plan: &GraphPlan,
    bindings: &[(S, Matrix)],
) -> Result<GraphResponse, RuntimeError> {
    let backend = TileVmBackend::new(arch.clone());
    execute_graph_plan_on(cache, &backend, metrics, graph, plan, bindings)
}

/// Like [`execute_graph_plan`], but executing through an explicit
/// [`ExecBackend`] instead of constructing the tile-VM backend from an arch —
/// the form the fleet devices use, so graph regions run (or are synthesised)
/// on the same backend as workload requests, and glue ops are costed on the
/// backend's architecture.
///
/// # Errors
///
/// See [`execute_graph_plan`].
pub fn execute_graph_plan_on<S: AsRef<str>>(
    cache: &PlanCache,
    backend: &dyn ExecBackend,
    metrics: Option<&RuntimeMetrics>,
    graph: &OpGraph,
    plan: &GraphPlan,
    bindings: &[(S, Matrix)],
) -> Result<GraphResponse, RuntimeError> {
    let mut values = graph
        .bind(bindings)
        .map_err(RuntimeError::from_graph_error)?;
    let mut fused_ops = 0usize;
    let mut glue_ops = 0usize;
    let mut region_lookups = 0usize;
    let mut region_hits = 0usize;
    let mut simulated_us = 0.0;

    for step in &plan.steps {
        match step {
            Step::Glue(id) => {
                let value = graph
                    .eval_node(*id, &values)
                    .map_err(RuntimeError::from_graph_error)?;
                values[*id] = Some(value);
                glue_ops += 1;
                simulated_us +=
                    estimate_latency(backend.arch(), &glue_profile(graph, *id)).total_us;
            }
            Step::Region(region) => {
                let (kernel, hit) = cache.get_or_compile_traced(&region.workload);
                region_lookups += 1;
                region_hits += usize::from(hit);
                let value = {
                    let tensor = |id: rf_graph::NodeId| {
                        values[id].as_ref().ok_or_else(|| {
                            graph_err(format!("region input node {id} is not computed yet"))
                        })
                    };
                    let input = match region.kind {
                        RegionKind::Softmax { src } | RegionKind::Variance { src } => {
                            ExecInput::Rows(tensor(src)?)
                        }
                        RegionKind::Attention { q, k, v } => ExecInput::Attention {
                            q: tensor(q)?,
                            k: tensor(k)?,
                            v: tensor(v)?,
                        },
                        RegionKind::QuantGemm { a, w } => ExecInput::QuantGemm {
                            a: tensor(a)?,
                            w: tensor(w)?,
                        },
                    };
                    let output = backend.run_region(&region.workload, &kernel, &input);
                    let output = output.map_err(|e| {
                        graph_err(format!("region `{}`: {e}", region.workload.name()))
                    })?;
                    match output {
                        ExecOutput::Matrix(m) => m,
                        // Per-row scalars (variance) thread on as a column.
                        ExecOutput::Values(v) => {
                            let rows = v.len();
                            Matrix::from_vec(rows, 1, v)
                        }
                        ExecOutput::TopK(_) => {
                            return Err(graph_err(format!(
                                "region `{}` produced a non-tensor output",
                                region.workload.name()
                            )))
                        }
                    }
                };
                values[region.output] = Some(value);
                fused_ops += region.nodes.len();
                simulated_us += kernel.latency_us;
            }
        }
    }

    if let Some(metrics) = metrics {
        metrics.record_graph(fused_ops, glue_ops, region_hits, region_lookups);
    }
    let outputs = graph
        .outputs()
        .iter()
        .map(|&id| {
            values[id]
                .clone()
                .ok_or_else(|| graph_err(format!("output node {id} was never computed")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(GraphResponse {
        outputs,
        fused_regions: region_lookups,
        fused_ops,
        glue_ops,
        region_cache_hits: region_hits,
        simulated_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_graph::{builders, partition};

    #[test]
    fn fused_plan_matches_the_unfused_reference_for_moe() {
        let graph = builders::moe_block(6, 16, 4);
        let plan = partition::partition(&graph);
        assert_eq!(plan.fused_regions(), 1);
        let arch = GpuArch::a10();
        let cache = PlanCache::new(arch.clone(), 8);
        let inputs = builders::moe_block_inputs(6, 16, 4, 11);
        let response = execute_graph_plan(&cache, &arch, None, &graph, &plan, &inputs).unwrap();
        let reference = graph.evaluate(&inputs).unwrap();
        assert_eq!(response.outputs.len(), 1);
        assert!(response.outputs[0].max_abs_diff(&reference[0]) < 1e-9);
        assert!(response.simulated_us.is_finite() && response.simulated_us > 0.0);
        assert_eq!(response.region_cache_hits, 0);
        // Serving the same graph again hits the cached region plan.
        let again = execute_graph_plan(&cache, &arch, None, &graph, &plan, &inputs).unwrap();
        assert_eq!(again.region_cache_hits, 1);
    }

    #[test]
    fn missing_bindings_fail_cleanly() {
        let graph = builders::moe_block(4, 8, 4);
        let plan = partition::partition(&graph);
        let arch = GpuArch::a10();
        let cache = PlanCache::new(arch.clone(), 8);
        let no_bindings: [(&str, Matrix); 0] = [];
        let err = execute_graph_plan(&cache, &arch, None, &graph, &plan, &no_bindings).unwrap_err();
        assert!(matches!(err, RuntimeError::Graph { .. }));
        assert!(err.to_string().contains("not bound"));
        // The originating rf-graph error stays reachable via source().
        let source = std::error::Error::source(&err).expect("graph errors chain their source");
        assert!(source.to_string().contains("not bound"));
    }
}
