//! Placement policies: which device serves a submission.
//!
//! The router is pure decision logic — it never touches a scheduler. The
//! fleet front door samples per-device queue depths, asks [`route`] for a
//! device id (or [`shard_request`] for a tensor-parallel split) and performs
//! the admission itself, so every policy is unit-testable without threads.
//!
//! Four policies ship (see [`RoutingPolicy`]):
//!
//! * **least-loaded** — argmin of queue depth, ties to the lowest device id.
//! * **sticky-by-key** — a stable hash of the workload key (the compiled-plan
//!   cache key), so identical shapes always land on the same device and its
//!   plan cache and batches stay hot.
//! * **row-shard** — tensor-parallel row-sharding for the GEMM-dominated
//!   families whose output rows are independent: MHA over query rows and
//!   quant-GEMM over activation rows. Everything else falls back to
//!   least-loaded.
//! * **predicted-latency** — argmin of predicted completion time: queue
//!   backlog times each device's calibrated per-class cost (from its
//!   calibration ledger). The front door samples the costs and calls
//!   [`predicted_latency`]; with no calibration yet every cost is equal and
//!   the policy degrades to least-loaded.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rf_codegen::Workload;
use rf_workloads::Matrix;

use crate::config::RoutingPolicy;
use crate::request::{Request, RequestInput};
use crate::submit::Submission;

/// The device with the shallowest queue; ties break to the lowest id. The
/// chosen device's depth is the minimum at decision time, so the router
/// never places work on a device another device undercuts.
pub(crate) fn least_loaded(depths: &[usize]) -> usize {
    depths
        .iter()
        .enumerate()
        .min_by_key(|&(id, &depth)| (depth, id))
        .map(|(id, _)| id)
        .unwrap_or(0)
}

/// The device with the smallest predicted completion time for one more
/// submission: `(depth + 1) × cost_us`, where `cost_us` is the device's
/// calibrated mean latency for the submission's class (clamped to ≥ 1 µs so
/// an uncalibrated 0 never makes a device look infinitely fast). Ties break
/// to the lowest device id; when every cost is equal — the cold-start case —
/// the score reduces to queue depth and the choice matches least-loaded.
pub(crate) fn predicted_latency(depths: &[usize], costs_us: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_score = f64::INFINITY;
    for (id, (&depth, &cost)) in depths.iter().zip(costs_us).enumerate() {
        let score = (depth as f64 + 1.0) * cost.max(1.0);
        if score < best_score {
            best = id;
            best_score = score;
        }
    }
    best
}

/// Stable placement by workload key: the same key always hashes to the same
/// device, maximising plan-cache and batch locality there. Workload
/// submissions key by the [`Workload`] itself (the plan-cache key); graphs
/// key by their label.
pub(crate) fn sticky(submission: &Submission, devices: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    match submission {
        Submission::Workload { request, .. } => request.workload.hash(&mut hasher),
        Submission::Graph { .. } => submission.label().hash(&mut hasher),
    }
    (hasher.finish() % devices.max(1) as u64) as usize
}

/// Picks the device for one unsharded submission under `policy`.
/// [`RoutingPolicy::RowShard`] reaches here only for work that cannot shard,
/// which falls back to least-loaded. [`RoutingPolicy::PredictedLatency`] is
/// handled by the front door (it owns the per-device cost samples) via
/// [`predicted_latency`]; reaching it here is the cost-free fallback.
pub(crate) fn route(policy: RoutingPolicy, submission: &Submission, depths: &[usize]) -> usize {
    match policy {
        RoutingPolicy::LeastLoaded | RoutingPolicy::RowShard | RoutingPolicy::PredictedLatency => {
            least_loaded(depths)
        }
        RoutingPolicy::StickyByKey => sticky(submission, depths.len()),
    }
}

/// The row-sharded split of `request` across up to `devices` devices: one
/// shard request per contiguous row block, in device order. Each shard is a
/// full, independently valid request (the shard's workload config carries
/// the shard's row count, so compilation and costing are honest).
///
/// Returns `None` when the request cannot shard: fewer than two devices,
/// fewer than two independent rows, or a family whose output rows are not
/// independent (MLA decode is single-row by construction; MoE routing,
/// softmax/variance and inertia reduce across the whole input).
pub(crate) fn shard_request(request: &Request, devices: usize) -> Option<Vec<Request>> {
    if devices < 2 {
        return None;
    }
    match (&request.workload, &request.input) {
        (Workload::Mha(c), RequestInput::Attention { q, k, v }) if q.rows() >= 2 => Some(
            row_blocks(q, devices)
                .into_iter()
                .map(|block| Request {
                    workload: Workload::Mha(rf_workloads::MhaConfig {
                        q: block.rows(),
                        ..c.clone()
                    }),
                    input: RequestInput::Attention {
                        q: block,
                        k: k.clone(),
                        v: v.clone(),
                    },
                })
                .collect(),
        ),
        (Workload::Quant(c), RequestInput::QuantGemm { a, w }) if a.rows() >= 2 => Some(
            row_blocks(a, devices)
                .into_iter()
                .map(|block| Request {
                    workload: Workload::Quant(rf_workloads::QuantGemmConfig {
                        m: block.rows(),
                        ..c.clone()
                    }),
                    input: RequestInput::QuantGemm {
                        a: block,
                        w: w.clone(),
                    },
                })
                .collect(),
        ),
        _ => None,
    }
}

/// Splits `m` into up to `parts` contiguous row blocks (never more than the
/// row count; the first `rows % parts` blocks take one extra row). Block
/// order is row order, so concatenating the blocks reproduces `m` exactly.
fn row_blocks(m: &Matrix, parts: usize) -> Vec<Matrix> {
    let rows = m.rows();
    let cols = m.cols();
    let parts = parts.min(rows);
    let base = rows / parts;
    let extra = rows % parts;
    let mut blocks = Vec::with_capacity(parts);
    let mut start = 0usize;
    for i in 0..parts {
        let take = base + usize::from(i < extra);
        let slice = &m.as_slice()[start * cols..(start + take) * cols];
        blocks.push(Matrix::from_vec(take, cols, slice.to_vec()));
        start += take;
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_workloads::{mha_tiny, mla_tiny, quant_tiny, random_matrix};

    #[test]
    fn least_loaded_picks_the_minimum_and_ties_to_the_lowest_id() {
        assert_eq!(least_loaded(&[3, 1, 2, 1]), 1);
        assert_eq!(least_loaded(&[0, 0, 0]), 0);
        assert_eq!(least_loaded(&[5]), 0);
        // The invariant the fleet relies on: the chosen depth is the minimum.
        let depths = [7usize, 2, 9, 2, 4];
        let chosen = least_loaded(&depths);
        assert_eq!(depths[chosen], *depths.iter().min().unwrap());
    }

    #[test]
    fn predicted_latency_weighs_backlog_by_calibrated_cost() {
        // Device 1 is slower per request (300 µs vs 100 µs): even with a
        // deeper queue, device 0 finishes one more submission sooner.
        assert_eq!(predicted_latency(&[2, 0], &[100.0, 300.0]), 0);
        // A fast device digs out of a backlog a slow one never would.
        assert_eq!(predicted_latency(&[9, 0], &[100.0, 20_000.0]), 0);
        // Equal costs — the cold-start case — match least-loaded exactly,
        // including the tie-to-lowest-id rule.
        let depths = [3usize, 1, 2, 1];
        assert_eq!(predicted_latency(&depths, &[0.0; 4]), least_loaded(&depths));
        assert_eq!(predicted_latency(&[0, 0], &[1.0, 1.0]), 0);
        // Zero/negative costs are clamped, never making a device free.
        assert_eq!(predicted_latency(&[5, 1], &[0.0, 0.0]), 1);
    }

    #[test]
    fn sticky_is_deterministic_and_in_range() {
        let request = Request::softmax(random_matrix(4, 32, 1, -1.0, 1.0));
        let submission: Submission = request.into();
        let first = sticky(&submission, 4);
        for _ in 0..8 {
            assert_eq!(sticky(&submission, 4), first);
        }
        assert!(first < 4);
        // A different shape may move; the same shape never does, even with
        // different tensor *values* (the key is the workload, not the data).
        let same_shape: Submission = Request::softmax(random_matrix(4, 32, 99, -1.0, 1.0)).into();
        assert_eq!(sticky(&same_shape, 4), first);
    }

    #[test]
    fn row_blocks_partition_exactly_and_concatenate_back() {
        let m = random_matrix(7, 3, 5, -1.0, 1.0);
        let blocks = row_blocks(&m, 4);
        assert_eq!(blocks.len(), 4);
        assert_eq!(
            blocks.iter().map(Matrix::rows).collect::<Vec<_>>(),
            [2, 2, 2, 1]
        );
        let mut data = Vec::new();
        for block in &blocks {
            assert_eq!(block.cols(), 3);
            data.extend_from_slice(block.as_slice());
        }
        assert_eq!(data, m.as_slice());
        // More parts than rows degrades to one row per block.
        assert_eq!(row_blocks(&m, 100).len(), 7);
    }

    #[test]
    fn shardable_families_split_and_the_rest_refuse() {
        let mha = mha_tiny();
        let q = random_matrix(8, mha.hd, 1, -1.0, 1.0);
        let k = random_matrix(mha.kv, mha.hd, 2, -1.0, 1.0);
        let v = random_matrix(mha.kv, mha.hd, 3, -1.0, 1.0);
        let request = Request {
            workload: Workload::Mha(rf_workloads::MhaConfig { q: 8, ..mha }),
            input: RequestInput::Attention { q, k, v },
        };
        let shards = shard_request(&request, 4).expect("an 8-row MHA shards");
        assert_eq!(shards.len(), 4);
        for shard in &shards {
            // Every shard is independently valid.
            crate::request::validate(&shard.workload, &shard.input).unwrap();
        }
        // One device, or a single-row decode, cannot shard.
        assert!(shard_request(&request, 1).is_none());
        let mla = mla_tiny();
        let single = Request {
            workload: Workload::Mla(mla.clone()),
            input: RequestInput::Attention {
                q: random_matrix(1, mla.qk_dim(), 1, -1.0, 1.0),
                k: random_matrix(mla.kv, mla.qk_dim(), 2, -1.0, 1.0),
                v: random_matrix(mla.kv, mla.hd, 3, -1.0, 1.0),
            },
        };
        assert!(shard_request(&single, 4).is_none());
        // Quant-GEMM shards over activation rows, config `m` follows.
        let quant = quant_tiny();
        let gemm = Request {
            workload: Workload::Quant(rf_workloads::QuantGemmConfig {
                m: 6,
                ..quant.clone()
            }),
            input: RequestInput::QuantGemm {
                a: random_matrix(6, quant.k, 4, -1.0, 1.0),
                w: random_matrix(quant.k, quant.n, 5, -1.0, 1.0),
            },
        };
        let shards = shard_request(&gemm, 2).expect("a 6-row GEMM shards");
        assert_eq!(shards.len(), 2);
        let Workload::Quant(c) = &shards[0].workload else {
            panic!("shards keep their family");
        };
        assert_eq!(c.m, 3);
    }
}
