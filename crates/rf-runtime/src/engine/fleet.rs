//! The fleet: N running devices behind one front door, plus the merger
//! thread that reassembles row-sharded submissions.
//!
//! The fleet owns the devices (each with its own scheduler, caches, metrics
//! and workers — see [`super::device`]), the shared [`TraceCollector`], and
//! a single merger thread. A row-sharded submission fans out as one full
//! per-device submission per row block; the merger waits on the shard
//! tickets **in device order** and concatenates the row-block partials, so
//! the merged output is deterministic regardless of device completion order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use rf_trace::{ArgValue, OpProfiler, TraceCollector, TraceConfig, TraceEvent, Track};
use rf_workloads::Matrix;

use crate::config::{FleetConfig, RoutingPolicy};
use crate::request::{Request, RequestOutput, RuntimeError};
use crate::stream::{QueuedWork, Ticket};
use crate::submit::{Priority, RequestTiming, Response, Submission};

use super::device::{duration_us, Device};

/// Count of merges in flight, so `run_until_drained` can also wait for the
/// merger to deliver every outer ticket after the device queues empty.
#[derive(Default)]
struct MergeLedger {
    pending: Mutex<usize>,
    drained: Condvar,
}

impl MergeLedger {
    fn start(&self) {
        *self.pending.lock().expect("merge ledger poisoned") += 1;
    }

    fn finish(&self) {
        let mut pending = self.pending.lock().expect("merge ledger poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.drained.notify_all();
        }
    }

    fn wait_zero(&self) {
        let mut pending = self.pending.lock().expect("merge ledger poisoned");
        while *pending > 0 {
            pending = self.drained.wait(pending).expect("merge ledger poisoned");
        }
    }
}

/// One row-sharded submission awaiting reassembly: the outer queue entry
/// (whose ticket the caller holds) plus the per-device shard tickets in
/// device order.
struct MergeJob {
    queued: QueuedWork,
    shards: Vec<Ticket>,
}

/// N devices behind one front door.
pub(crate) struct Fleet {
    pub devices: Vec<Device>,
    pub routing: RoutingPolicy,
    pub trace: Arc<TraceCollector>,
    /// The trace configuration every device started with (the merged
    /// fleet-wide snapshot re-uses its window geometry).
    pub trace_config: TraceConfig,
    /// The fleet-wide tile-VM op profiler; a no-op unless
    /// [`TraceConfig::profile`] is set.
    pub profiler: Arc<OpProfiler>,
    merges: Arc<MergeLedger>,
    merger_tx: Mutex<Option<Sender<MergeJob>>>,
    merger: Option<JoinHandle<()>>,
}

impl Fleet {
    /// Starts every device of `config` (already validated) plus the merger
    /// thread.
    pub fn start(config: &FleetConfig) -> Fleet {
        let trace = Arc::new(TraceCollector::new(config.runtime.trace));
        let profiler = Arc::new(OpProfiler::new(config.runtime.trace.profile));
        let devices: Vec<Device> = config
            .devices
            .iter()
            .enumerate()
            .map(|(id, spec)| {
                Device::start(
                    id,
                    spec,
                    &config.runtime,
                    Arc::clone(&trace),
                    Arc::clone(&profiler),
                )
            })
            .collect();
        let merges = Arc::new(MergeLedger::default());
        let (tx, rx) = std::sync::mpsc::channel();
        let merger = {
            let merges = Arc::clone(&merges);
            let trace = Arc::clone(&trace);
            std::thread::Builder::new()
                .name("rf-runtime-merger".into())
                .spawn(move || merge_loop(rx, &merges, &trace))
                .expect("spawning the shard merger failed")
        };
        Fleet {
            devices,
            routing: config.routing,
            trace,
            trace_config: config.runtime.trace,
            profiler,
            merges,
            merger_tx: Mutex::new(Some(tx)),
            merger: Some(merger),
        }
    }

    /// Per-device queue depths, in device order.
    pub fn depths(&self) -> Vec<usize> {
        self.devices
            .iter()
            .map(|d| d.shared.scheduler.depth())
            .collect()
    }

    /// Blocks until every device queue is empty and every pending merge has
    /// delivered its outer ticket.
    pub fn wait_drained(&self) {
        for device in &self.devices {
            device.shared.scheduler.wait_drained();
        }
        self.merges.wait_zero();
    }

    /// Fans `shards` out across the devices (shard `i` onto device `i`) and
    /// hands the shard tickets to the merger, which fulfils the outer ticket
    /// with the reassembled response.
    ///
    /// Admission is all-or-nothing from the caller's point of view: if any
    /// shard is shed, the outer submission fails with that error (shards
    /// already admitted still execute and are accounted on their devices —
    /// their results are discarded).
    pub fn submit_sharded(
        &self,
        outer_id: u64,
        next_id: &AtomicU64,
        submission: Submission,
        shards: Vec<Request>,
        priority: Priority,
    ) -> Result<Ticket, RuntimeError> {
        let shard_count = shards.len();
        let mut tickets = Vec::with_capacity(shard_count);
        for (device, shard) in self.devices.iter().zip(shards) {
            let shard_id = next_id.fetch_add(1, Ordering::Relaxed);
            let shard_submission = Submission::workload(shard).with_priority(priority);
            tickets.push(device.shared.enqueue(shard_id, shard_submission)?);
        }
        if self.trace.enabled() {
            self.trace.record(
                TraceEvent::instant("submit", self.trace.now_us(), Track::Request(outer_id))
                    .with_request(outer_id)
                    .with_lane(priority.name())
                    .with_arg("shards", ArgValue::U64(shard_count as u64)),
            );
        }
        let (queued, ticket) = QueuedWork::new(outer_id, submission);
        self.merges.start();
        let sent = {
            let tx = self.merger_tx.lock().expect("merger sender poisoned");
            match tx.as_ref() {
                Some(tx) => tx
                    .send(MergeJob {
                        queued,
                        shards: tickets,
                    })
                    .is_ok(),
                None => false,
            }
        };
        if !sent {
            // The merger is gone (shutdown race): the dropped `queued`
            // delivers an error to the ticket; balance the ledger here.
            self.merges.finish();
        }
        Ok(ticket)
    }

    /// Shuts the fleet down: closes the merge channel, fails every queued
    /// submission, joins the merger and then every device worker.
    pub fn shutdown(&mut self) {
        // Close the channel first so the merger exits after draining its
        // queue; shut the schedulers down before joining it so any shard
        // ticket it still waits on resolves (with `ShuttingDown`) instead of
        // blocking forever.
        drop(
            self.merger_tx
                .lock()
                .expect("merger sender poisoned")
                .take(),
        );
        for device in &self.devices {
            device.shared.scheduler.shutdown();
        }
        if let Some(merger) = self.merger.take() {
            let _ = merger.join();
        }
        for device in &mut self.devices {
            device.join_workers();
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn merge_loop(rx: Receiver<MergeJob>, merges: &MergeLedger, trace: &TraceCollector) {
    while let Ok(job) = rx.recv() {
        merge_job(job, trace);
        merges.finish();
    }
}

/// Waits for every shard of one sharded submission and fulfils the outer
/// ticket with the row-concatenated response (or the first shard error).
fn merge_job(job: MergeJob, trace: &TraceCollector) {
    let MergeJob { queued, shards } = job;
    let outcome = shards
        .into_iter()
        .map(Ticket::wait)
        .collect::<Result<Vec<Response>, RuntimeError>>()
        .and_then(|responses| merge_responses(&queued, responses));
    if trace.enabled() {
        trace.record(
            TraceEvent::instant("merge", trace.now_us(), Track::Request(queued.id))
                .with_request(queued.id)
                .with_arg("ok", ArgValue::U64(outcome.is_ok() as u64)),
        );
    }
    queued.fulfil(outcome);
}

/// Concatenates per-device row-block partials (already in device order) into
/// the response the caller sees. The simulated latency is the slowest
/// shard's (devices run in parallel); the wall-clock stage times are
/// likewise element-wise maxima, except `total_us`, which is measured here —
/// submission to merged delivery.
fn merge_responses(
    queued: &QueuedWork,
    responses: Vec<Response>,
) -> Result<Response, RuntimeError> {
    let label = queued.submission.label();
    let mut rows = 0usize;
    let mut cols = 0usize;
    let mut data = Vec::new();
    let mut timing = RequestTiming::default();
    let mut simulated_us = 0.0f64;
    let mut batch_size = 1usize;
    let mut iteration = 0u64;
    let mut cache_hit = true;
    for response in &responses {
        let RequestOutput::Matrix(block) = &response.output else {
            return Err(RuntimeError::ExecutionFailed {
                workload: label.clone(),
            });
        };
        rows += block.rows();
        cols = block.cols();
        data.extend_from_slice(block.as_slice());
        simulated_us = simulated_us.max(response.simulated_us);
        batch_size = batch_size.max(response.batch_size);
        iteration = iteration.max(response.iteration);
        cache_hit &= response.cache_hit;
        timing.queue_us = timing.queue_us.max(response.timing.queue_us);
        timing.compile_us = timing.compile_us.max(response.timing.compile_us);
        timing.tune_us = timing.tune_us.max(response.timing.tune_us);
        timing.execute_us = timing.execute_us.max(response.timing.execute_us);
        timing.iterations_waited = timing
            .iterations_waited
            .max(response.timing.iterations_waited);
    }
    timing.total_us = duration_us(queued.submitted_at, Instant::now());
    Ok(Response {
        id: queued.id,
        workload: label,
        output: RequestOutput::Matrix(Matrix::from_vec(rows, cols, data)),
        simulated_us,
        batch_size,
        cache_hit,
        iteration,
        priority: queued.priority(),
        // The lowest participating device id; the shards ran on all of them.
        device: responses.first().map_or(0, |r| r.device),
        graph: None,
        timing,
    })
}
