//! One fleet device: its [`ExecBackend`], plan/tuning caches, stream
//! scheduler, worker pool and the per-iteration serving loop.
//!
//! A [`Device`] is the pre-fleet engine's whole execution half, owned per
//! device id: requests admitted onto its scheduler are formed into
//! shape-compatible batches at iteration boundaries, compiled (or re-used)
//! through its own [`PlanCache`], executed by its backend and accounted into
//! its own [`RuntimeMetrics`]. The only shared piece is the fleet-wide
//! [`TraceCollector`]; every event a device records is tagged with its id so
//! the exported trace groups per device.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rf_trace::{ArgValue, OpProfiler, OpSample, TraceCollector, TraceEvent, Track};

use crate::backend::{make_backend, ExecBackend};
use crate::cache::PlanCache;
use crate::config::{DeviceSpec, RuntimeConfig};
use crate::metrics::RuntimeMetrics;
use crate::request::{RequestOutput, RuntimeError};
use crate::stream::{Iteration, QueuedWork, StreamScheduler, Ticket};
use crate::submit::{GraphStats, Priority, RequestTiming, Response, Submission};

/// Microseconds from `from` to `to` (0 when the clock says they inverted —
/// the metrics path must never panic on a monotonic-clock edge case).
pub(crate) fn duration_us(from: Instant, to: Instant) -> f64 {
    to.checked_duration_since(from)
        .map(|d| d.as_secs_f64() * 1e6)
        .unwrap_or(0.0)
}

/// The state one device's workers and the fleet front door share.
pub(crate) struct DeviceShared {
    /// The device's position in the fleet (trace process id is `id + 2`).
    pub id: usize,
    /// How this device executes compiled plans.
    pub backend: Arc<dyn ExecBackend>,
    /// This device's own compiled-plan cache (keyed by its backend's arch).
    pub cache: PlanCache,
    /// This device's own serving counters.
    pub metrics: RuntimeMetrics,
    /// This device's own work queue and batching state.
    pub scheduler: StreamScheduler,
    /// The fleet-wide span collector (events are device-tagged).
    pub trace: Arc<TraceCollector>,
    /// The fleet-wide tile-VM op profiler (entries are device-keyed).
    /// Disabled unless [`rf_trace::TraceConfig::profile`] is set, in which
    /// case workload batches execute through the backend's profiled path.
    pub profiler: Arc<OpProfiler>,
}

impl DeviceShared {
    /// The backoff to suggest alongside an [`RuntimeError::Overloaded`] shed:
    /// roughly how long until this device's in-flight budget frees up,
    /// estimated as the mean simulated request latency times the iterations
    /// queued ahead.
    fn retry_hint(&self) -> Duration {
        let mean_us = self.metrics.mean_us();
        let depth = self.scheduler.depth() as f64;
        let iterations_ahead = (depth / self.scheduler.max_batch() as f64).max(1.0);
        let hint_us = (mean_us.max(10.0) * iterations_ahead).clamp(100.0, 100_000.0);
        Duration::from_micros(hint_us as u64)
    }

    /// Admits one already-validated submission onto this device's scheduler,
    /// maintaining the device's submit/shed ledger and trace markers.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Overloaded`] (with a retry hint) when this device's
    /// bounded in-flight budget is exhausted, [`RuntimeError::ShuttingDown`]
    /// once the fleet is being dropped.
    pub fn enqueue(&self, id: u64, submission: Submission) -> Result<Ticket, RuntimeError> {
        let priority = submission.priority();
        let (queued, ticket) = QueuedWork::new(id, submission);
        // Count before enqueueing so a snapshot can never observe a completed
        // request that was not yet counted as submitted; roll back if the
        // scheduler rejects the request (shutdown or shed), so rejected
        // requests never inflate the counter.
        self.metrics.record_submit(priority);
        if let Err(err) = self.scheduler.enqueue(queued, self.retry_hint()) {
            self.metrics.cancel_submit(priority);
            if let RuntimeError::Overloaded { retry_hint, source } = &err {
                self.metrics.record_shed(priority, *retry_hint);
                if self.trace.enabled() {
                    self.trace.record(
                        TraceEvent::instant("shed", self.trace.now_us(), Track::FrontDoor)
                            .with_device(self.id)
                            .with_request(id)
                            .with_lane(priority.name())
                            .with_arg("in_flight", ArgValue::U64(source.in_flight as u64))
                            .with_arg("budget", ArgValue::U64(source.budget as u64))
                            .with_arg("retry_us", ArgValue::F64(retry_hint.as_secs_f64() * 1e6)),
                    );
                }
            }
            return Err(err);
        }
        if self.trace.enabled() {
            self.trace.record(
                TraceEvent::instant("submit", self.trace.now_us(), Track::Request(id))
                    .with_device(self.id)
                    .with_request(id)
                    .with_lane(priority.name()),
            );
        }
        Ok(ticket)
    }

    /// This device's point-in-time metrics snapshot.
    pub fn snapshot(&self) -> crate::metrics::MetricsSnapshot {
        self.metrics.snapshot(
            self.scheduler.depth(),
            self.cache.stats(),
            self.cache.tuning_stats(),
        )
    }
}

/// One running device: its shared state plus its worker threads.
pub(crate) struct Device {
    pub shared: Arc<DeviceShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Device {
    /// Spawns device `id` per `spec`: instantiates its backend, its own
    /// caches and scheduler, and `config.workers` worker threads.
    pub fn start(
        id: usize,
        spec: &DeviceSpec,
        config: &RuntimeConfig,
        trace: Arc<TraceCollector>,
        profiler: Arc<OpProfiler>,
    ) -> Device {
        let shared = Arc::new(DeviceShared {
            id,
            backend: make_backend(spec.backend, spec.arch.clone()),
            cache: PlanCache::new(spec.arch.clone(), config.cache_capacity),
            metrics: RuntimeMetrics::with_trace(config.trace),
            scheduler: StreamScheduler::new(
                config.max_batch,
                config.max_in_flight,
                config.lane_weights.as_array(),
            ),
            trace,
            profiler,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rf-runtime-d{id}-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawning a runtime worker failed")
            })
            .collect();
        Device { shared, workers }
    }

    /// Joins the worker threads. The scheduler must already be shut down or
    /// this blocks forever.
    pub fn join_workers(&mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &DeviceShared, worker: usize) {
    while let Some(iteration) = shared.scheduler.next_iteration() {
        // A panicking kernel must not wedge the device: the unwind guard
        // keeps the in-flight accounting balanced (so `run_until_drained`
        // returns) and dropping the unfulfilled `QueuedWork`s delivers
        // `ExecutionFailed` to their tickets (so `Ticket::wait` returns).
        let size = iteration.work.len();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_iteration(shared, worker, iteration)
        }));
        shared.scheduler.finish_iteration(size);
    }
}

/// Executes one iteration taken off the stream: a shape-compatible workload
/// batch, or a singleton graph.
fn run_iteration(shared: &DeviceShared, worker: usize, iteration: Iteration) {
    let Iteration {
        index,
        lane,
        formed_at,
        work,
    } = iteration;
    let size = work.len();
    match &work[0].submission {
        Submission::Workload { .. } => run_workload_batch(shared, index, formed_at, work),
        Submission::Graph { .. } => {
            for work in work {
                run_graph(shared, index, work);
            }
        }
    }
    if shared.trace.enabled() {
        let start = shared.trace.ts_us_of(formed_at);
        shared.trace.record(
            TraceEvent::span(
                "iteration",
                start,
                shared.trace.now_us() - start,
                Track::Worker(worker),
            )
            .with_device(shared.id)
            .with_iteration(index)
            .with_lane(Priority::ALL[lane].name())
            .with_arg("batch", ArgValue::U64(size as u64))
            .with_arg(
                "occupancy",
                ArgValue::F64(size as f64 / shared.scheduler.max_batch() as f64),
            ),
        );
    }
}

/// Executes one shape-compatible batch through the device's backend — a
/// cache hit reuses both the tuning and the executable. No scheduler or
/// cache lock is held here: the plan is an `Arc` snapshot and the backend
/// runs on borrowed views of the queued tensors.
fn run_workload_batch(
    shared: &DeviceShared,
    index: u64,
    formed_at: Instant,
    work: Vec<QueuedWork>,
) {
    let Submission::Workload { request, .. } = &work[0].submission else {
        unreachable!("workload iterations contain only workload submissions");
    };
    let workload = request.workload.clone();
    let class = workload.class();
    let plan_started = Instant::now();
    let (plan, cache_hit) = shared.cache.get_or_compile_traced(&workload);
    let plan_ready = Instant::now();
    // Plan acquisition as *this iteration* experienced it: ~0 on a hit, the
    // full compile+tune wall time on a miss (the compiled kernel carries its
    // own tuner share).
    let (compile_us, tune_us) = if cache_hit {
        (0.0, 0.0)
    } else {
        (duration_us(plan_started, plan_ready), plan.timing.tune_us)
    };
    let batch_size = work.len();
    let simulated_us = shared.backend.estimate_us(&plan.profile, batch_size);
    let (mut executed, mut failed) = (0usize, 0usize);
    for queued in work {
        let priority = queued.priority();
        let Submission::Workload { request, .. } = &queued.submission else {
            unreachable!("workload iterations contain only workload submissions");
        };
        let outcome = if shared.profiler.enabled() {
            shared
                .backend
                .execute_profiled(&plan, request)
                .map(|(output, profile)| {
                    if let Some(profile) = &profile {
                        record_op_profile(shared, class, &request.workload.name(), profile);
                    }
                    output
                })
        } else {
            shared.backend.execute(&plan, request)
        };
        let delivered_at = Instant::now();
        let timing = RequestTiming {
            queue_us: duration_us(queued.submitted_at, formed_at),
            compile_us,
            tune_us,
            execute_us: duration_us(plan_ready, delivered_at),
            total_us: duration_us(queued.submitted_at, delivered_at),
            iterations_waited: index.saturating_sub(queued.iterations_at_submit + 1),
        };
        let result = outcome.map(|output| Response {
            id: queued.id,
            workload: request.workload.name(),
            output,
            simulated_us,
            batch_size,
            cache_hit,
            iteration: index,
            priority,
            device: shared.id,
            graph: None,
            timing,
        });
        match &result {
            Ok(_) => {
                executed += 1;
                shared.metrics.record_served(priority, 1);
                shared.metrics.record_timing(priority, &timing);
            }
            Err(_) => {
                failed += 1;
                shared.metrics.record_failed(priority, 1);
            }
        }
        if shared.trace.enabled() {
            record_request_spans(
                shared,
                queued.id,
                priority,
                class,
                index,
                &timing,
                queued.submitted_at,
                plan_started,
                plan_ready,
                batch_size,
                cache_hit,
                result.is_ok(),
            );
        }
        queued.fulfil(result);
    }
    // Calibrate the cost model: the analytical estimate for this batch
    // against the wall-clock time the backend actually took to serve it.
    let measured_us = duration_us(plan_ready, Instant::now());
    shared.metrics.record_calibration(
        class,
        shared.backend.arch().name,
        shared.backend.fingerprint(),
        shared.backend.name(),
        simulated_us,
        measured_us,
    );
    shared
        .metrics
        .record_batch(class, executed, failed, simulated_us, cache_hit);
}

/// Feeds one profiled execution's per-op counters into the fleet-wide op
/// profiler: one folded-stack leaf per TileOp kind, under this device, the
/// batch's workload class and the request's concrete shape (the region
/// frame).
fn record_op_profile(
    shared: &DeviceShared,
    class: &'static str,
    region: &str,
    profile: &rf_tile::ExecProfile,
) {
    for op in &profile.ops {
        shared.profiler.record(
            shared.id,
            class,
            region,
            op.op,
            &OpSample {
                invocations: op.invocations,
                rows: op.rows,
                bytes_read: op.bytes_read,
                bytes_written: op.bytes_written,
                wall_ns: op.wall_ns,
            },
        );
    }
}

/// Records one served request's lifecycle spans on its own trace track:
/// `queue` (admission → iteration formed), `compile` (miss) or a `hit`
/// instant, `execute` (plan ready → delivery) and a final `deliver` marker.
/// The three spans tile the request's wall-clock life, so their durations sum
/// to its end-to-end latency (up to scheduling gaps).
#[allow(clippy::too_many_arguments)]
fn record_request_spans(
    shared: &DeviceShared,
    id: u64,
    priority: Priority,
    class: &'static str,
    index: u64,
    timing: &RequestTiming,
    submitted_at: Instant,
    plan_started: Instant,
    plan_ready: Instant,
    batch_size: usize,
    cache_hit: bool,
    ok: bool,
) {
    let trace = &shared.trace;
    let track = Track::Request(id);
    let lane = priority.name();
    let plan_start = trace.ts_us_of(plan_started);
    let execute_start = trace.ts_us_of(plan_ready);
    trace.record(
        TraceEvent::span(
            "queue",
            trace.ts_us_of(submitted_at),
            timing.queue_us,
            track,
        )
        .with_device(shared.id)
        .with_request(id)
        .with_lane(lane)
        .with_class(class)
        .with_iteration(index),
    );
    if cache_hit {
        trace.record(
            TraceEvent::instant("hit", execute_start, track)
                .with_device(shared.id)
                .with_request(id)
                .with_class(class),
        );
    } else {
        trace.record(
            TraceEvent::span("compile", plan_start, timing.compile_us, track)
                .with_device(shared.id)
                .with_request(id)
                .with_class(class)
                .with_arg("tune_us", ArgValue::F64(timing.tune_us)),
        );
    }
    trace.record(
        TraceEvent::span("execute", execute_start, timing.execute_us, track)
            .with_device(shared.id)
            .with_request(id)
            .with_lane(lane)
            .with_class(class)
            .with_iteration(index)
            .with_arg("batch", ArgValue::U64(batch_size as u64)),
    );
    trace.record(
        TraceEvent::instant("deliver", execute_start + timing.execute_us, track)
            .with_device(shared.id)
            .with_request(id)
            .with_arg("ok", ArgValue::U64(ok as u64)),
    );
}

/// Serves one graph submission: partitions (unless a plan was supplied),
/// executes the region steps through the device's plan cache and backend,
/// and answers with the graph outputs plus serving counters.
fn run_graph(shared: &DeviceShared, index: u64, work: QueuedWork) {
    let Submission::Graph {
        graph,
        plan,
        bindings,
        priority,
    } = &work.submission
    else {
        unreachable!("graph iterations contain only graph submissions");
    };
    let priority = *priority;
    let label = work.submission.label();
    let graph = Arc::clone(graph);
    let bindings = Arc::clone(bindings);
    let started = Instant::now();
    let plan = plan
        .clone()
        .unwrap_or_else(|| Arc::new(rf_graph::partition(&graph)));
    let result = crate::graph::execute_graph_plan_on(
        &shared.cache,
        shared.backend.as_ref(),
        Some(&shared.metrics),
        &graph,
        &plan,
        bindings.as_slice(),
    );
    let delivered_at = Instant::now();
    // For a graph the `execute` stage covers partitioning plus every region
    // step — region compiles hide inside it, so `compile_us` stays zero.
    let timing = RequestTiming {
        queue_us: duration_us(work.submitted_at, started),
        compile_us: 0.0,
        tune_us: 0.0,
        execute_us: duration_us(started, delivered_at),
        total_us: duration_us(work.submitted_at, delivered_at),
        iterations_waited: index.saturating_sub(work.iterations_at_submit + 1),
    };
    if shared.trace.enabled() {
        let trace = &shared.trace;
        let track = Track::Request(work.id);
        let lane = priority.name();
        trace.record(
            TraceEvent::span(
                "queue",
                trace.ts_us_of(work.submitted_at),
                timing.queue_us,
                track,
            )
            .with_device(shared.id)
            .with_request(work.id)
            .with_lane(lane)
            .with_class("graph")
            .with_iteration(index),
        );
        trace.record(
            TraceEvent::span("execute", trace.ts_us_of(started), timing.execute_us, track)
                .with_device(shared.id)
                .with_request(work.id)
                .with_lane(lane)
                .with_class("graph")
                .with_iteration(index),
        );
        trace.record(
            TraceEvent::instant("deliver", trace.ts_us_of(delivered_at), track)
                .with_device(shared.id)
                .with_request(work.id)
                .with_arg("ok", ArgValue::U64(result.is_ok() as u64)),
        );
    }
    match result {
        Ok(graph_response) => {
            let stats = GraphStats {
                fused_regions: graph_response.fused_regions,
                fused_ops: graph_response.fused_ops,
                glue_ops: graph_response.glue_ops,
                region_cache_hits: graph_response.region_cache_hits,
            };
            // "Cache hit" for a graph means every fused region re-used an
            // already-compiled plan.
            let cache_hit =
                stats.fused_regions > 0 && stats.region_cache_hits == stats.fused_regions;
            shared.metrics.record_calibration(
                "graph",
                shared.backend.arch().name,
                shared.backend.fingerprint(),
                shared.backend.name(),
                graph_response.simulated_us,
                timing.execute_us,
            );
            shared
                .metrics
                .record_batch("graph", 1, 0, graph_response.simulated_us, cache_hit);
            shared.metrics.record_served(priority, 1);
            shared.metrics.record_timing(priority, &timing);
            let id = work.id;
            work.fulfil(Ok(Response {
                id,
                workload: label,
                output: RequestOutput::Tensors(graph_response.outputs),
                simulated_us: graph_response.simulated_us,
                batch_size: 1,
                cache_hit,
                iteration: index,
                priority,
                device: shared.id,
                graph: Some(stats),
                timing,
            }));
        }
        Err(err) => {
            shared.metrics.record_batch("graph", 0, 1, 0.0, false);
            shared.metrics.record_failed(priority, 1);
            work.fulfil(Err(err));
        }
    }
}
