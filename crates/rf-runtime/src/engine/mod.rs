//! The serving engine: the unified submission front door, a fleet of
//! backend-driven devices and the engine lifecycle.
//!
//! Everything the engine serves — single workloads, whole operator graphs,
//! pre-partitioned plans — enters through [`Engine::submit`] as a
//! [`Submission`] and resolves to a [`crate::Response`] through the returned
//! [`Ticket`]. The engine is a **fleet**: one or more devices (`device`
//! module), each owning its own [`crate::backend::ExecBackend`], plan/tuning
//! caches, work queue and workers, behind a routing policy (`router` module)
//! that decides placement at submission time ([`crate::RoutingPolicy`]).
//! Row-shardable workloads can fan out across every device and are
//! reassembled deterministically by the `fleet` module's merger. A one-device
//! fleet behaves exactly like the pre-fleet single-arch engine.
//!
//! ```
//! use rf_gpusim::GpuArch;
//! use rf_runtime::{Engine, Priority, Request, Submission};
//! use rf_workloads::random_matrix;
//!
//! let engine = Engine::new(GpuArch::a10());
//! // A bare `Request` converts into a normal-priority submission…
//! let ticket = engine
//!     .submit(Request::softmax(random_matrix(4, 64, 1, -2.0, 2.0)))
//!     .unwrap();
//! // …and the explicit form picks a priority lane.
//! let urgent = engine
//!     .submit(
//!         Submission::workload(Request::softmax(random_matrix(4, 64, 2, -2.0, 2.0)))
//!             .with_priority(Priority::High),
//!     )
//!     .unwrap();
//! let result = ticket.wait().unwrap();
//! assert_eq!(result.workload, "softmax_4x64");
//! assert!(urgent.wait().unwrap().iteration >= 1);
//! ```
//!
//! Multi-device serving needs nothing but a [`FleetConfig`]:
//!
//! ```
//! use rf_gpusim::GpuArch;
//! use rf_runtime::{Engine, FleetConfig, Request, RuntimeConfig};
//! use rf_workloads::random_matrix;
//!
//! let engine = Engine::with_fleet(FleetConfig::homogeneous(
//!     GpuArch::a10(),
//!     2,
//!     RuntimeConfig::default(),
//! ));
//! let response = engine
//!     .submit(Request::softmax(random_matrix(4, 64, 1, -2.0, 2.0)))
//!     .unwrap()
//!     .wait()
//!     .unwrap();
//! assert!(response.device < 2, "responses say which device served them");
//! ```

mod device;
mod fleet;
mod router;

use std::sync::atomic::{AtomicU64, Ordering};

use rf_gpusim::GpuArch;
use rf_trace::{OpProfileSnapshot, TraceCollector, TraceSnapshot};

use crate::cache::CacheStats;
use crate::config::{DeviceSpec, FleetConfig, RoutingPolicy, RuntimeConfig};
use crate::metrics::{MetricsSnapshot, RuntimeMetrics};
use crate::request::RuntimeError;
use crate::stream::Ticket;
use crate::submit::{Submission, LANES};

use fleet::Fleet;

/// A point-in-time view of one fleet device: identity plus its private
/// serving metrics.
#[derive(Debug, Clone)]
pub struct DeviceSnapshot {
    /// The device id (also its trace process: `device-<id>`).
    pub device: usize,
    /// The architecture the device compiles and costs for.
    pub arch: &'static str,
    /// The backend kind executing on it (`"tile-vm"`, `"cost-model"`).
    pub backend: &'static str,
    /// The backend's capability fingerprint (equal fingerprints mean
    /// interchangeable compiled plans).
    pub fingerprint: u64,
    /// The device's own metrics snapshot (its queue depth, caches, latency
    /// percentiles and ledger counters).
    pub metrics: MetricsSnapshot,
}

/// A concurrent serving engine over a fleet of one or more devices.
///
/// [`Engine::submit`] validates a [`Submission`], routes it to a device per
/// the fleet's [`RoutingPolicy`] and returns a [`Ticket`]; each device's
/// worker pool serves its stream in iterations, grouping shape-compatible
/// requests into batches formed at each iteration boundary, compiling (or
/// re-using) fused plans via its own [`crate::PlanCache`] and executing
/// through its [`crate::backend::ExecBackend`]. Admission is bounded per
/// device: past [`RuntimeConfig::max_in_flight`] a device sheds with
/// [`RuntimeError::Overloaded`] instead of queuing without bound. Dropping
/// the engine shuts the fleet down; still-queued submissions fail with
/// [`RuntimeError::ShuttingDown`].
pub struct Engine {
    fleet: Fleet,
    next_id: AtomicU64,
}

impl Engine {
    /// Creates a single-device engine for `arch` with the default
    /// [`RuntimeConfig`].
    pub fn new(arch: GpuArch) -> Self {
        Engine::with_config(arch, RuntimeConfig::default())
    }

    /// Creates a single-device engine with explicit tunables.
    ///
    /// This is a thin wrapper over [`Engine::try_with_config`] for callers
    /// that treat a bad configuration as a programming error; prefer the
    /// fallible form where the configuration is user-supplied.
    ///
    /// # Panics
    ///
    /// Panics if `config` violates its invariants (see
    /// [`RuntimeConfig::validate`]). Configurations built through
    /// [`RuntimeConfig::builder`] are already validated.
    pub fn with_config(arch: GpuArch, config: RuntimeConfig) -> Self {
        match Engine::try_with_config(arch, config) {
            Ok(engine) => engine,
            Err(err) => panic!("invalid RuntimeConfig: {err}"),
        }
    }

    /// Creates a single-device engine with explicit tunables, returning the
    /// typed validation error instead of panicking.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] describing the first violated
    /// invariant (see [`RuntimeConfig::validate`]).
    pub fn try_with_config(arch: GpuArch, config: RuntimeConfig) -> Result<Self, RuntimeError> {
        Engine::try_with_fleet(FleetConfig {
            devices: vec![DeviceSpec::tile_vm(arch)],
            routing: RoutingPolicy::default(),
            runtime: config,
        })
    }

    /// Creates a multi-device engine from a [`FleetConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `config` violates its invariants (see
    /// [`FleetConfig::validate`]).
    pub fn with_fleet(config: FleetConfig) -> Self {
        match Engine::try_with_fleet(config) {
            Ok(engine) => engine,
            Err(err) => panic!("invalid FleetConfig: {err}"),
        }
    }

    /// Creates a multi-device engine from a [`FleetConfig`], returning the
    /// typed validation error instead of panicking.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] describing the first violated
    /// invariant (an empty device list, or a bad per-device
    /// [`RuntimeConfig`]).
    pub fn try_with_fleet(config: FleetConfig) -> Result<Self, RuntimeError> {
        config.validate()?;
        Ok(Engine {
            fleet: Fleet::start(&config),
            next_id: AtomicU64::new(0),
        })
    }

    /// The architecture of device 0 — the whole fleet's architecture when it
    /// is homogeneous.
    pub fn arch(&self) -> &GpuArch {
        self.fleet.devices[0].shared.backend.arch()
    }

    /// Number of devices in the fleet.
    pub fn devices(&self) -> usize {
        self.fleet.devices.len()
    }

    /// The placement policy the front door routes with.
    pub fn routing(&self) -> RoutingPolicy {
        self.fleet.routing
    }

    /// Validates and enqueues a submission, returning the completion ticket.
    /// Accepts anything convertible into a [`Submission`] — in particular a
    /// bare [`Request`](crate::Request), which submits at
    /// [`crate::Priority::Normal`].
    ///
    /// Placement follows the fleet's [`RoutingPolicy`]: least-loaded picks
    /// the shallowest queue, sticky-by-key hashes the workload key,
    /// predicted-latency weighs each device's backlog by its calibrated
    /// per-class cost, and row-shard fans eligible workloads out across
    /// every device (the returned ticket then resolves to the merged
    /// response). The request
    /// joins its device's open stream immediately: if a batch is executing
    /// right now, the request is eligible for the next iteration boundary —
    /// it never waits for the queue to drain.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InputMismatch`] / [`RuntimeError::ShapeMismatch`] for
    /// invalid workload requests, [`RuntimeError::Overloaded`] (with a retry
    /// hint) when the target device's bounded in-flight budget is exhausted,
    /// and [`RuntimeError::ShuttingDown`] once the engine is being dropped.
    pub fn submit(&self, submission: impl Into<Submission>) -> Result<Ticket, RuntimeError> {
        let submission = submission.into();
        if let Submission::Workload { request, .. } = &submission {
            crate::request::validate(&request.workload, &request.input)?;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if self.fleet.routing == RoutingPolicy::RowShard && self.fleet.devices.len() > 1 {
            if let Submission::Workload { request, priority } = &submission {
                if let Some(shards) = router::shard_request(request, self.fleet.devices.len()) {
                    let priority = *priority;
                    return self.fleet.submit_sharded(
                        id,
                        &self.next_id,
                        submission,
                        shards,
                        priority,
                    );
                }
            }
        }
        let target = if self.fleet.devices.len() == 1 {
            0
        } else if self.fleet.routing == RoutingPolicy::PredictedLatency {
            // Predicted completion time: backlog × this device's calibrated
            // per-class cost. An uncalibrated device falls back to its
            // observed mean, and while everything is cold the costs are
            // equal and the choice degrades to least-loaded.
            let class = match &submission {
                Submission::Workload { request, .. } => request.workload.class(),
                Submission::Graph { .. } => "graph",
            };
            let costs: Vec<f64> = self
                .fleet
                .devices
                .iter()
                .map(|device| {
                    let metrics = &device.shared.metrics;
                    metrics
                        .calibrated_us(class)
                        .unwrap_or_else(|| metrics.mean_us())
                })
                .collect();
            router::predicted_latency(&self.fleet.depths(), &costs)
        } else {
            router::route(self.fleet.routing, &submission, &self.fleet.depths())
        };
        self.fleet.devices[target].shared.enqueue(id, submission)
    }

    /// Blocks until every accepted submission has been executed (and every
    /// row-sharded submission has been merged and delivered).
    pub fn run_until_drained(&self) {
        self.fleet.wait_drained();
    }

    /// Submissions currently queued or executing, summed over the fleet.
    pub fn queue_depth(&self) -> usize {
        self.fleet.depths().iter().sum()
    }

    /// Queued submissions per priority lane (high, normal, low), summed over
    /// the fleet.
    pub fn lane_depths(&self) -> [usize; LANES] {
        let mut depths = [0usize; LANES];
        for device in &self.fleet.devices {
            for (total, lane) in depths.iter_mut().zip(device.shared.scheduler.lane_depths()) {
                *total += lane;
            }
        }
        depths
    }

    /// Engine iterations started so far, summed over the fleet.
    pub fn iterations(&self) -> u64 {
        self.fleet
            .devices
            .iter()
            .map(|d| d.shared.scheduler.iterations())
            .sum()
    }

    /// Plan-cache counters, summed over the fleet's per-device caches.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            entries: 0,
        };
        for device in &self.fleet.devices {
            let stats = device.shared.cache.stats();
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.evictions += stats.evictions;
            total.entries += stats.entries;
        }
        total
    }

    /// A point-in-time metrics snapshot (latency percentiles, batch sizes,
    /// queue depth, shed counts, per-lane traffic, cache effectiveness).
    ///
    /// For a one-device fleet this is exactly the device's own snapshot.
    /// For a larger fleet the per-device metrics are folded together:
    /// counters and lifetime histograms merge exactly; the recent-window
    /// percentiles become an approximation over the concatenated windows.
    pub fn metrics(&self) -> MetricsSnapshot {
        if self.fleet.devices.len() == 1 {
            let device = &self.fleet.devices[0].shared;
            return device.metrics.snapshot(
                device.scheduler.depth(),
                device.cache.stats(),
                device.cache.tuning_stats(),
            );
        }
        let merged = RuntimeMetrics::with_trace(self.fleet.trace_config);
        let mut tuning = rf_codegen::TuningCacheStats::default();
        for device in &self.fleet.devices {
            merged.merge_from(&device.shared.metrics);
            let t = device.shared.cache.tuning_stats();
            tuning.lookups += t.lookups;
            tuning.seeded += t.seeded;
            tuning.insertions += t.insertions;
            tuning.entries += t.entries;
        }
        merged.snapshot(self.queue_depth(), self.cache_stats(), tuning)
    }

    /// Per-device snapshots, in device order: each device's identity
    /// (arch, backend, fingerprint) plus its own private metrics.
    pub fn device_snapshots(&self) -> Vec<DeviceSnapshot> {
        self.fleet
            .devices
            .iter()
            .map(|device| {
                let shared = &device.shared;
                DeviceSnapshot {
                    device: shared.id,
                    arch: shared.backend.arch().name,
                    backend: shared.backend.name(),
                    fingerprint: shared.backend.fingerprint(),
                    metrics: shared.snapshot(),
                }
            })
            .collect()
    }

    /// The fleet-wide tile-VM op profile: per-op-kind invocation, row and
    /// byte counters with attributed wall time, aggregated per (device,
    /// workload class, region). Empty unless the engine was started with
    /// [`rf_trace::TraceConfig::with_profile`]; render it with
    /// [`OpProfileSnapshot::folded`] for inferno-style flamegraph tools.
    pub fn op_profile(&self) -> OpProfileSnapshot {
        self.fleet.profiler.snapshot()
    }

    /// The fleet-wide metrics in Prometheus exposition format, including
    /// per-device labelled gauges from [`Engine::device_snapshots`] —
    /// serve it verbatim under a `/metrics` endpoint.
    pub fn prometheus(&self) -> String {
        self.metrics()
            .prometheus_with_devices(&self.device_snapshots())
    }

    /// The fleet's span collector (level, timestamps, drop count). Only
    /// records at [`rf_trace::TraceLevel::Full`]; see
    /// [`RuntimeConfig::builder`]'s `trace`/`trace_level`. One collector
    /// serves the whole fleet; events are device-tagged, so the exported
    /// trace groups one process per device.
    pub fn trace_collector(&self) -> &TraceCollector {
        &self.fleet.trace
    }

    /// A copy of the buffered span events (empty below
    /// [`rf_trace::TraceLevel::Full`]).
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.fleet.trace.snapshot()
    }

    /// The buffered span events as Chrome trace-event JSON, loadable in
    /// Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
    pub fn chrome_trace(&self) -> String {
        self.fleet.trace.chrome_trace()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("arch", &self.arch().name)
            .field("devices", &self.devices())
            .field("routing", &self.fleet.routing.name())
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{execute_reference, Request, RequestInput, RequestOutput};
    use crate::stream::Ticket;
    use crate::submit::{Priority, Response};
    use rf_codegen::Workload;
    use rf_workloads::{moe_tiny, random_matrix};
    use std::sync::Arc;

    fn tiny_engine(workers: usize) -> Engine {
        Engine::with_config(
            GpuArch::a10(),
            RuntimeConfig::builder()
                .workers(workers)
                .max_batch(4)
                .cache_capacity(16)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn served_results_match_the_reference_kernels() {
        let engine = tiny_engine(2);
        let requests: Vec<Request> = (0..6)
            .map(|seed| Request::softmax(random_matrix(2, 32, seed, -2.0, 2.0)))
            .collect();
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| engine.submit(r.clone()).unwrap())
            .collect();
        engine.run_until_drained();
        for (request, ticket) in requests.iter().zip(tickets) {
            let result = ticket.wait().unwrap();
            let oracle = execute_reference(&request.workload, &request.input);
            assert!(result.output.approx_eq(&oracle, 1e-9));
            assert!(result.simulated_us.is_finite() && result.simulated_us > 0.0);
            assert!(result.iteration >= 1, "responses carry their iteration");
            assert_eq!(result.priority, Priority::Normal);
            assert_eq!(result.device, 0, "a one-device fleet serves on device 0");
        }
        let metrics = engine.metrics();
        assert_eq!(metrics.completed, 6);
        assert_eq!(metrics.queue_depth, 0);
        assert_eq!(metrics.shed, 0);
        assert_eq!(metrics.cache.misses, 1, "one shape => one compile");
        assert!(metrics.p99_us >= metrics.p50_us);
    }

    #[test]
    fn invalid_requests_are_rejected_at_the_front_door() {
        let engine = tiny_engine(1);
        let c = moe_tiny();
        let err = engine
            .submit(Request {
                workload: Workload::Moe(c.clone()),
                input: RequestInput::Rows(random_matrix(2, 4, 1, 0.0, 1.0)),
            })
            .unwrap_err();
        assert!(matches!(err, RuntimeError::InputMismatch { .. }));
        assert_eq!(err.code(), "input_mismatch");
        assert_eq!(engine.metrics().submitted, 0);
    }

    #[test]
    fn invalid_configs_panic_with_the_typed_detail() {
        let config = RuntimeConfig {
            workers: 0,
            ..RuntimeConfig::default()
        };
        let panic = std::panic::catch_unwind(|| Engine::with_config(GpuArch::a10(), config))
            .expect_err("zero workers must be rejected");
        let message = panic
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(message.contains("workers"), "got: {message}");
    }

    #[test]
    fn try_with_config_returns_the_typed_error_instead_of_panicking() {
        let err = Engine::try_with_config(
            GpuArch::a10(),
            RuntimeConfig {
                workers: 0,
                ..RuntimeConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.code(), "invalid_config");
        assert!(err.to_string().contains("workers"));
        // An empty fleet is the fleet-level invariant.
        let err =
            Engine::try_with_fleet(FleetConfig::heterogeneous(vec![], RuntimeConfig::default()))
                .unwrap_err();
        assert!(err.to_string().contains("at least one device"));
        // And the happy path actually serves.
        let engine = Engine::try_with_config(GpuArch::a10(), RuntimeConfig::default()).unwrap();
        let response = engine
            .submit(Request::softmax(random_matrix(2, 16, 1, -1.0, 1.0)))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(response.workload, "softmax_2x16");
    }

    #[test]
    fn drop_fails_pending_tickets_cleanly() {
        let engine = tiny_engine(1);
        // Queue more work than one worker can finish instantly, then drop.
        let tickets: Vec<Ticket> = (0..16)
            .map(|seed| {
                engine
                    .submit(Request::softmax(random_matrix(8, 128, seed, -1.0, 1.0)))
                    .unwrap()
            })
            .collect();
        drop(engine);
        for ticket in tickets {
            match ticket.wait() {
                Ok(result) => assert!(result.simulated_us > 0.0),
                Err(err) => assert_eq!(err, RuntimeError::ShuttingDown),
            }
        }
    }

    #[test]
    fn failed_executions_are_counted_as_failures_not_completions() {
        use rf_workloads::inertia_tiny;
        // A massless inertia system passes shape validation but is rejected
        // by the VM at execution time: the ticket must receive the error and
        // the metrics must report a failure, not a served request.
        let engine = tiny_engine(1);
        let inertia = inertia_tiny();
        let ticket = engine
            .submit(
                Request::new(
                    Workload::Inertia(inertia.clone()),
                    RequestInput::Inertia {
                        masses: vec![0.0; 8],
                        positions: random_matrix(8, inertia.dim, 1, -1.0, 1.0),
                    },
                )
                .unwrap(),
            )
            .unwrap();
        engine.run_until_drained();
        assert!(matches!(
            ticket.wait(),
            Err(RuntimeError::ExecutionFailed { .. })
        ));
        let metrics = engine.metrics();
        assert_eq!(metrics.submitted, 1);
        assert_eq!(metrics.completed, 0);
        assert_eq!(metrics.failed, 1);
        assert_eq!(metrics.p50_us, 0.0, "failures contribute no latency");
        let class = &metrics.classes[0];
        assert_eq!(
            (class.class, class.completed, class.failed),
            ("inertia", 0, 1)
        );
        assert_eq!(class.p99_us, 0.0);
        assert!(metrics.report().contains("requests failed"));
    }

    #[test]
    fn metrics_break_down_per_workload_class() {
        use rf_workloads::variance_tiny;
        let engine = tiny_engine(2);
        let var = variance_tiny();
        for seed in 0..4 {
            engine
                .submit(Request::softmax(random_matrix(2, 32, seed, -1.0, 1.0)))
                .unwrap();
            engine
                .submit(
                    Request::new(
                        Workload::Variance(var.clone()),
                        RequestInput::Rows(random_matrix(3, var.l, seed + 50, -2.0, 2.0)),
                    )
                    .unwrap(),
                )
                .unwrap();
        }
        engine.run_until_drained();
        let metrics = engine.metrics();
        assert_eq!(metrics.completed, 8);
        let classes: Vec<&str> = metrics.classes.iter().map(|c| c.class).collect();
        assert_eq!(classes, ["softmax", "variance"]);
        for class in &metrics.classes {
            assert_eq!(class.completed, 4);
            assert!(class.batches >= 1);
            assert!(class.p99_us >= class.p50_us);
            assert!(class.p50_us > 0.0);
        }
        let total_class_batches: u64 = metrics.classes.iter().map(|c| c.batches).sum();
        assert_eq!(total_class_batches, metrics.batches);
        let report = metrics.report();
        assert!(report.contains("per-class breakdown"));
        assert!(report.contains("variance"));
    }

    #[test]
    fn graph_serving_shares_the_engine_cache_and_surfaces_metrics() {
        use rf_graph::builders;
        let engine = tiny_engine(1);
        let graph = Arc::new(builders::moe_block(4, 8, 4));
        let bindings: Vec<(String, rf_workloads::Matrix)> = builders::moe_block_inputs(4, 8, 4, 3)
            .into_iter()
            .map(|(n, m)| (n.to_string(), m))
            .collect();
        let serve = || -> Response {
            engine
                .submit(Submission::graph(Arc::clone(&graph), bindings.clone()))
                .unwrap()
                .wait()
                .unwrap()
        };
        let first = serve();
        let second = serve();
        assert_eq!(first.output, second.output);
        let first_stats = first.graph.expect("graph stats attached");
        let second_stats = second.graph.expect("graph stats attached");
        assert_eq!(first_stats.region_cache_hits, 0);
        assert_eq!(
            second_stats.region_cache_hits, 1,
            "the region plan is cached"
        );
        let metrics = engine.metrics();
        assert_eq!(metrics.graphs_served, 2);
        assert_eq!(metrics.graph_fused_ops, 2 * first_stats.fused_ops as u64);
        assert_eq!(metrics.graph_glue_ops, 2 * first_stats.glue_ops as u64);
        assert_eq!((metrics.region_hits, metrics.region_lookups), (1, 2));
        assert!(metrics.report().contains("graphs served"));
        // Graphs ride the unified stream, so they also count as served
        // requests under the "graph" class.
        assert_eq!(metrics.submitted, 2);
        assert_eq!(metrics.completed, 2);
        assert!(metrics.classes.iter().any(|c| c.class == "graph"));
        // The routing-softmax region landed in the same plan cache the
        // request path uses.
        assert_eq!(engine.cache_stats().misses, 1);
    }

    #[test]
    fn unified_submit_serves_graphs_asynchronously() {
        use rf_graph::builders;
        let engine = tiny_engine(2);
        let graph = Arc::new(builders::moe_block(4, 8, 4));
        let bindings: Vec<(String, rf_workloads::Matrix)> = builders::moe_block_inputs(4, 8, 4, 3)
            .into_iter()
            .map(|(n, m)| (n.to_string(), m))
            .collect();
        let reference = graph
            .evaluate(&builders::moe_block_inputs(4, 8, 4, 3))
            .unwrap();
        let ticket = engine
            .submit(Submission::graph(Arc::clone(&graph), bindings).with_priority(Priority::High))
            .unwrap();
        let response = ticket.wait().unwrap();
        assert_eq!(response.priority, Priority::High);
        assert_eq!(response.batch_size, 1, "graphs are singleton iterations");
        let stats = response.graph.expect("graph stats attached");
        assert!(stats.fused_regions >= 1);
        let RequestOutput::Tensors(outputs) = &response.output else {
            panic!("graph submissions produce tensors");
        };
        assert_eq!(outputs.len(), reference.len());
        assert!(outputs[0].max_abs_diff(&reference[0]) < 1e-9);
        assert!(response.workload.starts_with("graph["));
    }

    #[test]
    fn mean_batch_size_grows_when_shapes_repeat() {
        let engine = Engine::with_config(
            GpuArch::a10(),
            RuntimeConfig::builder()
                .workers(1)
                .max_batch(8)
                .cache_capacity(16)
                .build()
                .unwrap(),
        );
        for seed in 0..8 {
            engine
                .submit(Request::softmax(random_matrix(2, 64, seed, -1.0, 1.0)))
                .unwrap();
        }
        engine.run_until_drained();
        let metrics = engine.metrics();
        assert_eq!(metrics.completed, 8);
        assert!(
            metrics.mean_batch_size > 1.0,
            "identical shapes should have been batched (mean {})",
            metrics.mean_batch_size
        );
    }

    #[test]
    fn overload_sheds_are_counted_per_lane() {
        // One worker, a budget of 2: flood the engine and require typed,
        // counted sheds while everything admitted still completes.
        let engine = Engine::with_config(
            GpuArch::a10(),
            RuntimeConfig::builder()
                .workers(1)
                .max_batch(2)
                .max_in_flight(2)
                .cache_capacity(8)
                .build()
                .unwrap(),
        );
        let mut admitted = Vec::new();
        let mut sheds = 0usize;
        for seed in 0..64 {
            match engine.submit(Request::softmax(random_matrix(8, 256, seed, -1.0, 1.0))) {
                Ok(ticket) => admitted.push(ticket),
                Err(err @ RuntimeError::Overloaded { .. }) => {
                    assert_eq!(err.code(), "overloaded");
                    sheds += 1;
                }
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        engine.run_until_drained();
        for ticket in admitted {
            ticket.wait().unwrap();
        }
        let metrics = engine.metrics();
        assert_eq!(metrics.shed as usize, sheds);
        assert_eq!(metrics.submitted + metrics.shed, 64);
        assert_eq!(metrics.completed, metrics.submitted);
        let normal = &metrics.lanes[Priority::Normal.lane()];
        assert_eq!(normal.shed as usize, sheds);
        assert_eq!(normal.completed, metrics.completed);
        assert!(metrics.report().contains("requests shed"));
        if sheds > 0 {
            assert!(metrics.shed_retry_last_us > 0.0, "sheds carry retry hints");
            assert!(metrics.shed_retry_mean_us > 0.0);
            assert!(normal.shed_rate() > 0.0);
            assert!(metrics.report().contains("shed retry hint"));
        }
    }

    #[test]
    fn responses_carry_a_wall_clock_timing_breakdown() {
        let engine = tiny_engine(1);
        let first = engine
            .submit(Request::softmax(random_matrix(2, 64, 1, -1.0, 1.0)))
            .unwrap()
            .wait()
            .unwrap();
        let timing = *first.timing();
        assert!(!first.cache_hit);
        assert!(timing.total_us > 0.0);
        assert!(timing.execute_us > 0.0);
        assert!(
            timing.compile_us > 0.0,
            "the first request of a shape pays the compile"
        );
        assert!(
            timing.tune_us <= timing.compile_us,
            "tuning is inside compile"
        );
        assert!(timing.accounted_us() <= timing.total_us * 1.001);
        // Same shape again: served off the cache, so no compile share.
        let second = engine
            .submit(Request::softmax(random_matrix(2, 64, 2, -1.0, 1.0)))
            .unwrap()
            .wait()
            .unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.timing().compile_us, 0.0);
        assert_eq!(second.timing().tune_us, 0.0);
        // The stage histograms saw both requests.
        let metrics = engine.metrics();
        let e2e = metrics.stages.iter().find(|s| s.stage == "e2e").unwrap();
        assert_eq!(e2e.wall.count, 2);
        let compile = metrics
            .stages
            .iter()
            .find(|s| s.stage == "compile")
            .unwrap();
        assert_eq!(compile.wall.count, 1, "cache hits record no compile sample");
    }

    #[test]
    fn full_tracing_exports_a_valid_nested_chrome_trace() {
        let engine = Engine::with_config(
            GpuArch::a10(),
            RuntimeConfig::builder()
                .workers(2)
                .max_batch(4)
                .trace_level(rf_trace::TraceLevel::Full)
                .build()
                .unwrap(),
        );
        let tickets: Vec<Ticket> = (0..8)
            .map(|seed| {
                engine
                    .submit(Request::softmax(random_matrix(2, 32, seed, -1.0, 1.0)))
                    .unwrap()
            })
            .collect();
        engine.run_until_drained();
        let responses: Vec<Response> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        let snapshot = engine.trace_snapshot();
        assert_eq!(snapshot.dropped, 0);
        // Every lifecycle stage appears, plus worker iteration spans.
        for name in ["submit", "queue", "execute", "deliver", "iteration"] {
            assert!(
                snapshot.events.iter().any(|e| e.name == name),
                "trace must contain `{name}` events"
            );
        }
        // Every event of a one-device engine is tagged with device 0.
        assert!(snapshot.events.iter().all(|e| e.device == Some(0)));
        let json = engine.chrome_trace();
        let stats = rf_trace::validate_chrome_trace(&json).expect("trace must be well-formed");
        assert!(stats.spans >= 8 * 2, "≥ queue+execute per request");
        assert!(stats.request_tracks >= 1);
        // The sampled request's spans account for its reported e2e latency.
        let sampled = &responses[0];
        let span_sum: f64 = snapshot
            .events
            .iter()
            .filter(|e| e.request == Some(sampled.id) && e.dur_us > 0.0)
            .map(|e| e.dur_us)
            .sum();
        let total = sampled.timing().total_us;
        assert!(
            span_sum <= total * 1.001 && span_sum >= total * 0.9,
            "request spans must sum to within 10% of the e2e latency \
             (spans {span_sum:.1} us vs e2e {total:.1} us)"
        );
    }

    #[test]
    fn tracing_off_records_no_spans_but_still_times_responses() {
        let engine = Engine::with_config(
            GpuArch::a10(),
            RuntimeConfig::builder()
                .workers(1)
                .trace(rf_trace::TraceConfig::off())
                .build()
                .unwrap(),
        );
        let response = engine
            .submit(Request::softmax(random_matrix(2, 32, 7, -1.0, 1.0)))
            .unwrap()
            .wait()
            .unwrap();
        assert!(
            response.timing().total_us > 0.0,
            "timing is always measured"
        );
        assert!(engine.trace_snapshot().events.is_empty());
        assert_eq!(engine.trace_collector().dropped(), 0);
        let metrics = engine.metrics();
        assert_eq!(metrics.trace_level, rf_trace::TraceLevel::Off);
        assert!(metrics.stages.iter().all(|s| s.wall.count == 0));
        assert_eq!(metrics.lifetime.count, 0);
    }

    #[test]
    fn graph_submissions_time_their_execute_stage() {
        use rf_graph::builders;
        let engine = Engine::with_config(
            GpuArch::a10(),
            RuntimeConfig::builder()
                .workers(1)
                .trace_level(rf_trace::TraceLevel::Full)
                .build()
                .unwrap(),
        );
        let graph = Arc::new(builders::moe_block(4, 8, 4));
        let bindings: Vec<(String, rf_workloads::Matrix)> = builders::moe_block_inputs(4, 8, 4, 3)
            .into_iter()
            .map(|(n, m)| (n.to_string(), m))
            .collect();
        let response = engine
            .submit(Submission::graph(graph, bindings))
            .unwrap()
            .wait()
            .unwrap();
        let timing = response.timing();
        assert!(timing.execute_us > 0.0);
        assert_eq!(
            timing.compile_us, 0.0,
            "region compiles hide inside execute"
        );
        assert!(timing.total_us >= timing.execute_us);
        let snapshot = engine.trace_snapshot();
        assert!(snapshot
            .events
            .iter()
            .any(|e| e.name == "execute" && e.class == Some("graph")));
        rf_trace::validate_chrome_trace(&engine.chrome_trace()).expect("graph trace well-formed");
    }

    #[test]
    fn serving_populates_calibration_and_timeseries() {
        let engine = tiny_engine(2);
        for seed in 0..6 {
            engine
                .submit(Request::softmax(random_matrix(4, 64, seed, -1.0, 1.0)))
                .unwrap();
        }
        engine.run_until_drained();
        let metrics = engine.metrics();
        assert!(!metrics.calibration.is_empty());
        let entry = &metrics.calibration[0];
        assert_eq!(entry.class, "softmax");
        assert_eq!(entry.arch, "NVIDIA A10");
        assert_eq!(entry.backend, "tile-vm");
        assert!(entry.samples >= 1);
        assert!(entry.predicted_mean_us > 0.0);
        assert!(entry.measured_mean_us > 0.0);
        assert!(entry.mean_ratio > 0.0);
        let window = metrics
            .timeseries
            .latest_active()
            .expect("serving filled a telemetry window");
        assert!(window.completed >= 1);
        assert!(window.throughput_rps > 0.0);
        // The engine-level exposition carries the fleet families plus
        // per-device labels.
        let text = engine.prometheus();
        assert!(text.contains("redfuser_calibration_mape_pct"));
        assert!(text.contains("redfuser_window_throughput_rps"));
        assert!(text.contains("redfuser_device_queue_depth{device=\"0\""));
    }

    #[test]
    fn op_profiler_captures_folded_stacks_only_when_enabled() {
        let engine = Engine::with_config(
            GpuArch::a10(),
            RuntimeConfig::builder()
                .workers(1)
                .trace(rf_trace::TraceConfig::default().with_profile(true))
                .build()
                .unwrap(),
        );
        engine
            .submit(Request::softmax(random_matrix(4, 64, 1, -2.0, 2.0)))
            .unwrap()
            .wait()
            .unwrap();
        let profile = engine.op_profile();
        assert!(!profile.is_empty(), "profiling was on");
        let folded = profile.folded();
        let frames = rf_trace::validate_folded(&folded).expect("folded output validates");
        assert!(frames >= 3, "softmax runs several op kinds, got {frames}");
        assert!(
            folded.contains("device-0;softmax;softmax_4x64;"),
            "frames are device;class;region;op:\n{folded}"
        );
        // Without the opt-in the profiler records nothing.
        let plain = tiny_engine(1);
        plain
            .submit(Request::softmax(random_matrix(4, 64, 1, -2.0, 2.0)))
            .unwrap()
            .wait()
            .unwrap();
        assert!(plain.op_profile().is_empty());
    }

    #[test]
    fn predicted_latency_fleet_serves_and_stays_correct() {
        let engine = Engine::with_fleet(FleetConfig {
            devices: vec![
                DeviceSpec::tile_vm(GpuArch::a10()),
                DeviceSpec::tile_vm(GpuArch::h800()),
            ],
            routing: RoutingPolicy::PredictedLatency,
            runtime: RuntimeConfig::builder()
                .workers(1)
                .max_batch(4)
                .build()
                .unwrap(),
        });
        assert_eq!(engine.routing(), RoutingPolicy::PredictedLatency);
        let requests: Vec<Request> = (0..12)
            .map(|seed| Request::softmax(random_matrix(4, 64, seed, -1.0, 1.0)))
            .collect();
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| engine.submit(r.clone()).unwrap())
            .collect();
        engine.run_until_drained();
        for (request, ticket) in requests.iter().zip(tickets) {
            let response = ticket.wait().unwrap();
            let oracle = execute_reference(&request.workload, &request.input);
            assert!(response.output.approx_eq(&oracle, 1e-9));
            assert!(response.device < 2);
        }
        assert_eq!(engine.metrics().completed, 12);
    }

    #[test]
    fn multi_device_fleet_spreads_load_and_merges_metrics() {
        let engine = Engine::with_fleet(FleetConfig::homogeneous(
            GpuArch::a10(),
            3,
            RuntimeConfig::builder()
                .workers(1)
                .max_batch(4)
                .cache_capacity(16)
                .build()
                .unwrap(),
        ));
        assert_eq!(engine.devices(), 3);
        let tickets: Vec<Ticket> = (0..24)
            .map(|seed| {
                engine
                    .submit(Request::softmax(random_matrix(4, 64, seed, -1.0, 1.0)))
                    .unwrap()
            })
            .collect();
        engine.run_until_drained();
        let mut devices_seen = std::collections::HashSet::new();
        for ticket in tickets {
            let response = ticket.wait().unwrap();
            assert!(response.device < 3);
            devices_seen.insert(response.device);
        }
        assert!(
            devices_seen.len() > 1,
            "least-loaded routing must use more than one device, saw {devices_seen:?}"
        );
        // The fleet-wide snapshot is the sum of the per-device ledgers.
        let merged = engine.metrics();
        assert_eq!(merged.completed, 24);
        let snapshots = engine.device_snapshots();
        assert_eq!(snapshots.len(), 3);
        let per_device_completed: u64 = snapshots.iter().map(|d| d.metrics.completed).sum();
        assert_eq!(per_device_completed, 24);
        assert!(snapshots.iter().all(|d| d.backend == "tile-vm"));
        assert!(snapshots.iter().all(|d| d.arch == "NVIDIA A10"));
        // Every device compiled the (one) shape it saw.
        assert!(merged.cache.misses >= devices_seen.len() as u64);
    }
}
