//! Algebraic simplification.
//!
//! The simplifier performs constant folding and the small set of identity
//! rewrites that make ACRF's extracted `G_i`/`H_i` expressions readable (and
//! cheaper to evaluate in generated scalar kernels):
//!
//! * `x + 0 → x`, `0 + x → x`
//! * `x * 1 → x`, `1 * x → x`, `x * 0 → 0`
//! * `x - 0 → x`, `x - x → 0`
//! * `x / 1 → x`, `0 / x → 0` (when `x` is a non-zero constant)
//! * `max(x, -inf) → x`, `min(x, +inf) → x`
//! * `neg(neg(x)) → x`, `recip(recip(x)) → x`
//! * `exp(ln(x)) → x`, `ln(exp(x)) → x`
//!
//! Simplification never changes the meaning of an expression on its defined
//! domain; the property test below checks this by evaluating both forms on
//! random environments.

use std::sync::Arc;

use rf_algebra::BinaryOp;

use crate::ast::{Expr, ExprKind, UnaryFn};

/// Simplifies an expression bottom-up. Idempotent.
pub fn simplify(expr: &Expr) -> Expr {
    let out = simplify_once(expr);
    // A second pass catches rewrites enabled by the first (cheap in practice:
    // expressions in this system are small).
    simplify_once(&out)
}

fn simplify_once(expr: &Expr) -> Expr {
    match expr.kind() {
        ExprKind::Const(_) | ExprKind::Var(_) => expr.clone(),
        ExprKind::Unary(f, a) => {
            let a = simplify_once(a);
            simplify_unary(*f, a)
        }
        ExprKind::Binary(op, a, b) => {
            let a = simplify_once(a);
            let b = simplify_once(b);
            simplify_binary(*op, a, b)
        }
        ExprKind::Sub(a, b) => {
            let a = simplify_once(a);
            let b = simplify_once(b);
            simplify_sub(a, b)
        }
        ExprKind::Div(a, b) => {
            let a = simplify_once(a);
            let b = simplify_once(b);
            simplify_div(a, b)
        }
    }
}

fn simplify_unary(f: UnaryFn, a: Expr) -> Expr {
    if let Some(c) = a.as_const() {
        return Expr::constant(f.apply(c));
    }
    match (f, a.kind()) {
        (UnaryFn::Neg, ExprKind::Unary(UnaryFn::Neg, inner)) => inner.clone(),
        (UnaryFn::Recip, ExprKind::Unary(UnaryFn::Recip, inner)) => inner.clone(),
        (UnaryFn::Exp, ExprKind::Unary(UnaryFn::Ln, inner)) => inner.clone(),
        (UnaryFn::Ln, ExprKind::Unary(UnaryFn::Exp, inner)) => inner.clone(),
        _ => Expr(Arc::new(ExprKind::Unary(f, a))),
    }
}

fn simplify_binary(op: BinaryOp, a: Expr, b: Expr) -> Expr {
    if let (Some(ca), Some(cb)) = (a.as_const(), b.as_const()) {
        return Expr::constant(op.apply(ca, cb));
    }
    let identity = op.identity();
    if a.as_const() == Some(identity) {
        return b;
    }
    if b.as_const() == Some(identity) {
        return a;
    }
    if op == BinaryOp::Mul && (a.as_const() == Some(0.0) || b.as_const() == Some(0.0)) {
        return Expr::zero();
    }
    Expr::binary(op, a, b)
}

fn simplify_sub(a: Expr, b: Expr) -> Expr {
    if let (Some(ca), Some(cb)) = (a.as_const(), b.as_const()) {
        return Expr::constant(ca - cb);
    }
    if b.as_const() == Some(0.0) {
        return a;
    }
    if a == b {
        return Expr::zero();
    }
    Expr(Arc::new(ExprKind::Sub(a, b)))
}

fn simplify_div(a: Expr, b: Expr) -> Expr {
    if let (Some(ca), Some(cb)) = (a.as_const(), b.as_const()) {
        return Expr::constant(ca / cb);
    }
    if b.as_const() == Some(1.0) {
        return a;
    }
    if a.as_const() == Some(0.0) && b.as_const().map(|c| c != 0.0).unwrap_or(false) {
        return Expr::zero();
    }
    Expr(Arc::new(ExprKind::Div(a, b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Env;
    use proptest::prelude::*;

    #[test]
    fn folds_constants() {
        let e = Expr::constant(2.0) + Expr::constant(3.0);
        assert_eq!(simplify(&e).as_const(), Some(5.0));
    }

    #[test]
    fn removes_additive_and_multiplicative_identities() {
        let x = Expr::var("x");
        assert_eq!(simplify(&(x.clone() + Expr::zero())), x);
        assert_eq!(simplify(&(Expr::one() * x.clone())), x);
        assert_eq!(simplify(&(x.clone() * Expr::zero())).as_const(), Some(0.0));
        assert_eq!(simplify(&(x.clone() - Expr::zero())), x);
        assert_eq!(simplify(&(x.clone() / Expr::one())), x);
    }

    #[test]
    fn self_subtraction_is_zero() {
        let x = Expr::var("x");
        assert_eq!(simplify(&(x.clone() - x)).as_const(), Some(0.0));
    }

    #[test]
    fn max_with_neg_infinity_disappears() {
        let x = Expr::var("x");
        let e = x.clone().max(Expr::constant(f64::NEG_INFINITY));
        assert_eq!(simplify(&e), x);
    }

    #[test]
    fn involutions_cancel() {
        let x = Expr::var("x");
        assert_eq!(simplify(&(-(-x.clone()))), x);
        assert_eq!(simplify(&x.clone().recip().recip()), x);
        assert_eq!(simplify(&x.clone().exp().ln()), x);
        assert_eq!(simplify(&x.clone().ln().exp()), x);
    }

    #[test]
    fn simplify_is_idempotent() {
        let x = Expr::var("x");
        let e = ((x.clone() + Expr::zero()) * Expr::one()).exp().ln();
        let s1 = simplify(&e);
        let s2 = simplify(&s1);
        assert_eq!(s1, s2);
    }

    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (-10.0f64..10.0).prop_map(Expr::constant),
            prop::sample::select(vec!["x", "y", "z"]).prop_map(Expr::var),
        ];
        leaf.prop_recursive(4, 32, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.max(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.min(b)),
                inner.clone().prop_map(|a| -a),
                inner.clone().prop_map(|a| a.abs()),
            ]
        })
    }

    proptest! {
        #[test]
        fn prop_simplify_preserves_semantics(
            e in arb_expr(),
            x in -10.0f64..10.0,
            y in -10.0f64..10.0,
            z in -10.0f64..10.0,
        ) {
            let env = Env::from_pairs([("x", x), ("y", y), ("z", z)]);
            let original = e.eval(&env).unwrap();
            let simplified = simplify(&e).eval(&env).unwrap();
            if original.is_nan() {
                prop_assert!(simplified.is_nan());
            } else {
                prop_assert!((original - simplified).abs() <= 1e-9 * (1.0 + original.abs()),
                    "orig={original} simp={simplified} expr={e}");
            }
        }

        #[test]
        fn prop_simplify_never_grows(e in arb_expr()) {
            prop_assert!(simplify(&e).node_count() <= e.node_count());
        }
    }
}
