//! Expression AST and construction helpers.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::sync::Arc;

use rf_algebra::BinaryOp;

/// Built-in unary functions.
///
/// The vocabulary intentionally covers exactly what appears in the paper's
/// workloads: safe softmax (`exp`), FP8 quantization (`abs`), normalisation /
/// moment-of-inertia style expressions (`sqrt`), products-as-log-sums (`ln`),
/// and reciprocals for the inverse terms `H_i(·)^{-1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryFn {
    /// Arithmetic negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Square root.
    Sqrt,
    /// Multiplicative reciprocal `1/x`.
    Recip,
}

impl UnaryFn {
    /// Applies the function to a value.
    #[inline]
    pub fn apply(self, v: f64) -> f64 {
        match self {
            UnaryFn::Neg => -v,
            UnaryFn::Abs => v.abs(),
            UnaryFn::Exp => v.exp(),
            UnaryFn::Ln => v.ln(),
            UnaryFn::Sqrt => v.sqrt(),
            UnaryFn::Recip => 1.0 / v,
        }
    }

    /// The printable name of the function.
    pub fn name(self) -> &'static str {
        match self {
            UnaryFn::Neg => "neg",
            UnaryFn::Abs => "abs",
            UnaryFn::Exp => "exp",
            UnaryFn::Ln => "ln",
            UnaryFn::Sqrt => "sqrt",
            UnaryFn::Recip => "recip",
        }
    }
}

/// The node kinds of the expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// A floating-point literal.
    Const(f64),
    /// A named free variable.
    Var(String),
    /// A unary function applied to a sub-expression.
    Unary(UnaryFn, Expr),
    /// A binary combine-operator application (`+`, `*`, `max`, `min`).
    Binary(BinaryOp, Expr, Expr),
    /// Subtraction (kept distinct from `Add`+`Neg` for readable printing).
    Sub(Expr, Expr),
    /// Division (kept distinct from `Mul`+`Recip` for readable printing).
    Div(Expr, Expr),
}

/// An immutable, reference-counted symbolic expression.
///
/// `Expr` is a thin wrapper around `Arc<ExprKind>` (atomically refcounted so
/// compiled plans embedding expressions can cross the serving runtime's
/// worker threads), so cloning is O(1) and
/// sub-expressions are shared. Expressions are constructed either with the
/// named constructors ([`Expr::var`], [`Expr::constant`], [`Expr::max`], …) or
/// with the overloaded arithmetic operators.
#[derive(Clone, PartialEq)]
pub struct Expr(pub Arc<ExprKind>);

impl Expr {
    /// A named variable.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr(Arc::new(ExprKind::Var(name.into())))
    }

    /// A floating-point constant.
    pub fn constant(value: f64) -> Expr {
        Expr(Arc::new(ExprKind::Const(value)))
    }

    /// The constant zero.
    pub fn zero() -> Expr {
        Expr::constant(0.0)
    }

    /// The constant one.
    pub fn one() -> Expr {
        Expr::constant(1.0)
    }

    /// Applies a binary combine operator to two expressions.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr(Arc::new(ExprKind::Binary(op, lhs, rhs)))
    }

    /// `max(self, other)`.
    pub fn max(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Max, self, other)
    }

    /// `min(self, other)`.
    pub fn min(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Min, self, other)
    }

    /// `exp(self)`.
    pub fn exp(self) -> Expr {
        Expr(Arc::new(ExprKind::Unary(UnaryFn::Exp, self)))
    }

    /// `ln(self)`.
    pub fn ln(self) -> Expr {
        Expr(Arc::new(ExprKind::Unary(UnaryFn::Ln, self)))
    }

    /// `abs(self)`.
    pub fn abs(self) -> Expr {
        Expr(Arc::new(ExprKind::Unary(UnaryFn::Abs, self)))
    }

    /// `sqrt(self)`.
    pub fn sqrt(self) -> Expr {
        Expr(Arc::new(ExprKind::Unary(UnaryFn::Sqrt, self)))
    }

    /// `1 / self`.
    pub fn recip(self) -> Expr {
        Expr(Arc::new(ExprKind::Unary(UnaryFn::Recip, self)))
    }

    /// The node kind of the root.
    pub fn kind(&self) -> &ExprKind {
        &self.0
    }

    /// Returns the constant value if the expression is a literal.
    pub fn as_const(&self) -> Option<f64> {
        match self.kind() {
            ExprKind::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Returns the variable name if the expression is a bare variable.
    pub fn as_var(&self) -> Option<&str> {
        match self.kind() {
            ExprKind::Var(name) => Some(name),
            _ => None,
        }
    }

    /// Collects the free variables of the expression in sorted order.
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self.kind() {
            ExprKind::Const(_) => {}
            ExprKind::Var(name) => {
                out.insert(name.clone());
            }
            ExprKind::Unary(_, a) => a.collect_vars(out),
            ExprKind::Binary(_, a, b) | ExprKind::Sub(a, b) | ExprKind::Div(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Whether the expression mentions the given variable.
    pub fn depends_on(&self, name: &str) -> bool {
        match self.kind() {
            ExprKind::Const(_) => false,
            ExprKind::Var(v) => v == name,
            ExprKind::Unary(_, a) => a.depends_on(name),
            ExprKind::Binary(_, a, b) | ExprKind::Sub(a, b) | ExprKind::Div(a, b) => {
                a.depends_on(name) || b.depends_on(name)
            }
        }
    }

    /// Whether the expression mentions any variable from `names`.
    pub fn depends_on_any<'a, I: IntoIterator<Item = &'a str>>(&self, names: I) -> bool {
        names.into_iter().any(|n| self.depends_on(n))
    }

    /// Substitutes `replacement` for every occurrence of variable `name`.
    pub fn substitute(&self, name: &str, replacement: &Expr) -> Expr {
        match self.kind() {
            ExprKind::Const(_) => self.clone(),
            ExprKind::Var(v) => {
                if v == name {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            ExprKind::Unary(f, a) => Expr(Arc::new(ExprKind::Unary(
                *f,
                a.substitute(name, replacement),
            ))),
            ExprKind::Binary(op, a, b) => Expr(Arc::new(ExprKind::Binary(
                *op,
                a.substitute(name, replacement),
                b.substitute(name, replacement),
            ))),
            ExprKind::Sub(a, b) => Expr(Arc::new(ExprKind::Sub(
                a.substitute(name, replacement),
                b.substitute(name, replacement),
            ))),
            ExprKind::Div(a, b) => Expr(Arc::new(ExprKind::Div(
                a.substitute(name, replacement),
                b.substitute(name, replacement),
            ))),
        }
    }

    /// Substitutes many variables at once.
    pub fn substitute_all(&self, bindings: &[(&str, Expr)]) -> Expr {
        bindings
            .iter()
            .fold(self.clone(), |acc, (name, repl)| acc.substitute(name, repl))
    }

    /// Number of nodes in the expression tree (a size metric used by the
    /// auto-tuner cost heuristics and tests).
    pub fn node_count(&self) -> usize {
        match self.kind() {
            ExprKind::Const(_) | ExprKind::Var(_) => 1,
            ExprKind::Unary(_, a) => 1 + a.node_count(),
            ExprKind::Binary(_, a, b) | ExprKind::Sub(a, b) | ExprKind::Div(a, b) => {
                1 + a.node_count() + b.node_count()
            }
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            ExprKind::Const(c) => write!(f, "{c}"),
            ExprKind::Var(v) => write!(f, "{v}"),
            ExprKind::Unary(func, a) => write!(f, "{}({a})", func.name()),
            ExprKind::Binary(BinaryOp::Add, a, b) => write!(f, "({a} + {b})"),
            ExprKind::Binary(BinaryOp::Mul, a, b) => write!(f, "({a} * {b})"),
            ExprKind::Binary(BinaryOp::Max, a, b) => write!(f, "max({a}, {b})"),
            ExprKind::Binary(BinaryOp::Min, a, b) => write!(f, "min({a}, {b})"),
            ExprKind::Sub(a, b) => write!(f, "({a} - {b})"),
            ExprKind::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

impl From<f64> for Expr {
    fn from(value: f64) -> Self {
        Expr::constant(value)
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Add, self, rhs)
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr(Arc::new(ExprKind::Sub(self, rhs)))
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Mul, self, rhs)
    }
}

impl Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr(Arc::new(ExprKind::Div(self, rhs)))
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr(Arc::new(ExprKind::Unary(UnaryFn::Neg, self)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_display() {
        let x = Expr::var("x");
        let y = Expr::var("y");
        let e = (x.clone() + y.clone()) * Expr::constant(2.0);
        assert_eq!(e.to_string(), "((x + y) * 2)");
        assert_eq!(e.node_count(), 5);
        assert_eq!(
            e.free_vars().into_iter().collect::<Vec<_>>(),
            vec!["x".to_string(), "y".to_string()]
        );
    }

    #[test]
    fn substitution_replaces_all_occurrences() {
        let x = Expr::var("x");
        let e = x.clone() * x.clone() + x.clone();
        let s = e.substitute("x", &Expr::constant(3.0));
        assert!(s.free_vars().is_empty());
        assert_eq!(s.to_string(), "((3 * 3) + 3)");
    }

    #[test]
    fn depends_on_checks_nested_expressions() {
        let e = (Expr::var("a") - Expr::var("b")).exp() / Expr::var("t");
        assert!(e.depends_on("a"));
        assert!(e.depends_on("t"));
        assert!(!e.depends_on("z"));
        assert!(e.depends_on_any(["z", "b"]));
        assert!(!e.depends_on_any(["z", "w"]));
    }

    #[test]
    fn as_const_and_as_var() {
        assert_eq!(Expr::constant(4.0).as_const(), Some(4.0));
        assert_eq!(Expr::var("x").as_var(), Some("x"));
        assert_eq!(Expr::var("x").as_const(), None);
    }

    #[test]
    fn unary_functions_apply() {
        assert_eq!(UnaryFn::Abs.apply(-2.0), 2.0);
        assert_eq!(UnaryFn::Neg.apply(2.0), -2.0);
        assert_eq!(UnaryFn::Recip.apply(4.0), 0.25);
        assert!((UnaryFn::Sqrt.apply(9.0) - 3.0).abs() < 1e-12);
        assert!((UnaryFn::Ln.apply(UnaryFn::Exp.apply(1.5)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_f64_builds_constant() {
        let e: Expr = 2.5.into();
        assert_eq!(e.as_const(), Some(2.5));
    }
}
