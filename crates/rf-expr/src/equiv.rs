//! Randomized semantic-equivalence testing.
//!
//! The ACRF algorithm must decide whether the fixed-point identity (Eq. 23)
//!
//! ```text
//! F(x, d) ⊗ F(x0, d0) = F(x, d0) ⊗ F(x0, d)
//! ```
//!
//! holds for *all* `x, d`. A computer-algebra system would prove this
//! symbolically; we substitute the standard compiler-testing approach of
//! evaluating both sides at many random points. For the restricted expression
//! vocabulary of ML reductions (polynomials, exp/ln/abs/sqrt, max/min) a
//! disagreement manifests on random inputs with overwhelming probability, and
//! the sample count is configurable for callers that want more assurance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ast::Expr;
use crate::eval::Env;

/// Configuration for [`semantically_equal`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquivConfig {
    /// Number of random sample points.
    pub trials: usize,
    /// Lower bound of the sampling interval for each variable.
    pub low: f64,
    /// Upper bound of the sampling interval for each variable.
    pub high: f64,
    /// Relative comparison tolerance.
    pub tolerance: f64,
    /// RNG seed (deterministic by default so analyses are reproducible).
    pub seed: u64,
}

impl Default for EquivConfig {
    fn default() -> Self {
        EquivConfig {
            trials: 64,
            low: -4.0,
            high: 4.0,
            tolerance: 1e-7,
            seed: 0x52ED_F05E,
        }
    }
}

impl EquivConfig {
    /// A configuration sampling only strictly positive values, for expressions
    /// whose domain excludes non-positive inputs (e.g. containing `ln` or used
    /// as divisors).
    pub fn positive() -> Self {
        EquivConfig {
            low: 0.05,
            high: 6.0,
            ..EquivConfig::default()
        }
    }
}

/// Tests whether `lhs` and `rhs` agree on random assignments to `vars`.
///
/// Sample points where either side evaluates to a non-finite value are skipped
/// (they are outside the shared domain); if every sample is skipped the
/// expressions are conservatively reported as *not* equivalent.
pub fn semantically_equal(lhs: &Expr, rhs: &Expr, vars: &[&str], config: &EquivConfig) -> bool {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut valid_samples = 0usize;
    for _ in 0..config.trials {
        let mut env = Env::new();
        for &v in vars {
            env.set(v, rng.gen_range(config.low..=config.high));
        }
        let (Ok(a), Ok(b)) = (lhs.eval(&env), rhs.eval(&env)) else {
            return false;
        };
        if !a.is_finite() || !b.is_finite() {
            continue;
        }
        valid_samples += 1;
        if (a - b).abs() > config.tolerance * (1.0 + a.abs().max(b.abs())) {
            return false;
        }
    }
    valid_samples > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_expressions_are_equal() {
        let x = Expr::var("x");
        let e1 = (x.clone() + Expr::one()) * (x.clone() + Expr::one());
        let e2 = x.clone() * x.clone() + Expr::constant(2.0) * x.clone() + Expr::one();
        assert!(semantically_equal(
            &e1,
            &e2,
            &["x"],
            &EquivConfig::default()
        ));
    }

    #[test]
    fn different_expressions_are_not_equal() {
        let x = Expr::var("x");
        let e1 = x.clone() * x.clone();
        let e2 = x.clone() * Expr::constant(2.0);
        assert!(!semantically_equal(
            &e1,
            &e2,
            &["x"],
            &EquivConfig::default()
        ));
    }

    #[test]
    fn exp_of_sum_equals_product_of_exps() {
        let a = Expr::var("a");
        let b = Expr::var("b");
        let lhs = (a.clone() + b.clone()).exp();
        let rhs = a.exp() * b.exp();
        assert!(semantically_equal(
            &lhs,
            &rhs,
            &["a", "b"],
            &EquivConfig::default()
        ));
    }

    #[test]
    fn unbound_variable_reports_not_equal() {
        let lhs = Expr::var("x");
        let rhs = Expr::var("y");
        assert!(!semantically_equal(
            &lhs,
            &rhs,
            &["x"],
            &EquivConfig::default()
        ));
    }

    #[test]
    fn positive_domain_handles_ln() {
        let x = Expr::var("x");
        let lhs = x.clone().ln().exp();
        let rhs = x.clone();
        assert!(semantically_equal(
            &lhs,
            &rhs,
            &["x"],
            &EquivConfig::positive()
        ));
    }

    #[test]
    fn all_samples_invalid_is_not_equal() {
        // ln of a negative constant is NaN for every sample.
        let lhs = Expr::constant(-1.0).ln();
        let rhs = Expr::constant(-1.0).ln();
        assert!(!semantically_equal(
            &lhs,
            &rhs,
            &[],
            &EquivConfig::default()
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let x = Expr::var("x");
        let e1 = x.clone() * Expr::constant(3.0);
        let e2 = x.clone() + x.clone() + x.clone();
        let cfg = EquivConfig::default();
        assert_eq!(
            semantically_equal(&e1, &e2, &["x"], &cfg),
            semantically_equal(&e1, &e2, &["x"], &cfg)
        );
    }
}
