//! Expression evaluation against a variable environment.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{Expr, ExprKind};

/// Errors produced while evaluating an [`Expr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A free variable had no binding in the environment.
    UnboundVariable(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(name) => write!(f, "unbound variable `{name}`"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A variable environment mapping names to `f64` values.
///
/// # Examples
///
/// ```
/// use rf_expr::{Expr, eval::Env};
///
/// let e = Expr::var("a") * Expr::var("b");
/// let env = Env::from_pairs([("a", 2.0), ("b", 3.0)]);
/// assert_eq!(e.eval(&env).unwrap(), 6.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Env {
    bindings: HashMap<String, f64>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Creates an environment from `(name, value)` pairs.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        let mut env = Env::new();
        for (name, value) in pairs {
            env.set(name, value);
        }
        env
    }

    /// Binds (or rebinds) a variable.
    pub fn set(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.bindings.insert(name.into(), value);
        self
    }

    /// Looks up a variable.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.bindings.get(name).copied()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the environment has no bindings.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

impl Expr {
    /// Evaluates the expression against `env`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::UnboundVariable`] if a free variable of the
    /// expression has no binding. Domain errors (log of a negative number,
    /// division by zero, …) follow IEEE-754 semantics and produce `NaN`/`inf`
    /// rather than errors, matching the behaviour of generated kernels.
    pub fn eval(&self, env: &Env) -> Result<f64, EvalError> {
        match self.kind() {
            ExprKind::Const(c) => Ok(*c),
            ExprKind::Var(name) => env
                .get(name)
                .ok_or_else(|| EvalError::UnboundVariable(name.clone())),
            ExprKind::Unary(f, a) => Ok(f.apply(a.eval(env)?)),
            ExprKind::Binary(op, a, b) => Ok(op.apply(a.eval(env)?, b.eval(env)?)),
            ExprKind::Sub(a, b) => Ok(a.eval(env)? - b.eval(env)?),
            ExprKind::Div(a, b) => Ok(a.eval(env)? / b.eval(env)?),
        }
    }

    /// Evaluates a closed expression (no free variables).
    ///
    /// # Panics
    ///
    /// Panics if the expression has free variables; use [`Expr::eval`] when the
    /// expression may be open.
    pub fn eval_closed(&self) -> f64 {
        self.eval(&Env::new())
            .expect("expression has free variables; use eval() with an environment")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_constants_and_vars() {
        let e = Expr::constant(2.0) * Expr::var("x") + Expr::constant(1.0);
        let env = Env::from_pairs([("x", 5.0)]);
        assert_eq!(e.eval(&env).unwrap(), 11.0);
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let e = Expr::var("missing");
        let err = e.eval(&Env::new()).unwrap_err();
        assert_eq!(err, EvalError::UnboundVariable("missing".to_string()));
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn division_by_zero_yields_infinity() {
        let e = Expr::one() / Expr::zero();
        assert!(e.eval(&Env::new()).unwrap().is_infinite());
    }

    #[test]
    fn eval_closed_works_without_env() {
        let e = (Expr::constant(3.0) - Expr::constant(1.0)).exp();
        assert!((e.eval_closed() - (2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "free variables")]
    fn eval_closed_panics_on_open_expression() {
        Expr::var("x").eval_closed();
    }

    #[test]
    fn env_accessors() {
        let mut env = Env::new();
        assert!(env.is_empty());
        env.set("a", 1.0).set("b", 2.0);
        assert_eq!(env.len(), 2);
        assert_eq!(env.get("a"), Some(1.0));
        assert_eq!(env.get("c"), None);
    }

    #[test]
    fn max_min_sub_div_evaluate() {
        let env = Env::from_pairs([("x", -4.0), ("y", 3.0)]);
        let x = Expr::var("x");
        let y = Expr::var("y");
        assert_eq!(x.clone().max(y.clone()).eval(&env).unwrap(), 3.0);
        assert_eq!(x.clone().min(y.clone()).eval(&env).unwrap(), -4.0);
        assert_eq!((x.clone() - y.clone()).eval(&env).unwrap(), -7.0);
        assert_eq!((y / x).eval(&env).unwrap(), -0.75);
    }
}
