//! Symbolic scalar expression engine.
//!
//! RedFuser's automatic fusion algorithm (ACRF, §4.2 of the paper) manipulates
//! the per-element map functions `F_i(x[l], d_i)` of cascaded reductions as
//! *symbolic expressions*: it substitutes fixed points into them, builds the
//! candidate decomposition `G_i(x) ⊗ H_i(d)` and checks the fixed-point
//! identity (Eq. 23). The original system uses SymPy for this; this crate is a
//! self-contained substitute that provides
//!
//! * an immutable, cheaply-clonable expression AST ([`Expr`]),
//! * evaluation against a variable environment ([`eval::Env`]),
//! * substitution and free-variable analysis,
//! * algebraic simplification (constant folding + identity rules),
//! * a randomized **semantic equivalence** test ([`equiv::semantically_equal`])
//!   used in place of CAS identity proving.
//!
//! # Example
//!
//! ```
//! use rf_expr::{Expr, eval::Env};
//!
//! let x = Expr::var("x");
//! let m = Expr::var("m");
//! // The softmax numerator exp(x - m).
//! let e = (x - m).exp();
//! let mut env = Env::new();
//! env.set("x", 3.0);
//! env.set("m", 1.0);
//! assert!((e.eval(&env).unwrap() - (2.0f64).exp()).abs() < 1e-12);
//! ```

pub mod ast;
pub mod equiv;
pub mod eval;
pub mod simplify;

pub use ast::{Expr, ExprKind, UnaryFn};
pub use equiv::{semantically_equal, EquivConfig};
pub use eval::{Env, EvalError};
pub use simplify::simplify;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_softmax_term() {
        let x = Expr::var("x");
        let m = Expr::var("m");
        let term = (x - m).exp();
        let mut env = Env::new();
        env.set("x", 2.0);
        env.set("m", 2.0);
        assert_eq!(term.eval(&env).unwrap(), 1.0);
    }
}
