//! Compiler-behaviour baseline models.
//!
//! The paper compares RedFuser against PyTorch Eager, PyTorch Dynamo
//! (Inductor) and TVM, plus hand-optimized libraries (FlashAttention2,
//! FlashMLA). Running those frameworks is not possible here, so this crate
//! models *how they execute a workload*: which kernels they launch and which
//! intermediate tensors they spill to global memory. The resulting
//! [`rf_gpusim::KernelProfile`] sequences are fed to the same analytical GPU
//! model as RedFuser's generated kernels, so the comparison isolates exactly
//! the effects the paper attributes to fusion (memory traffic, kernel-launch
//! count, and schedule quality).
//!
//! Modeling assumptions (documented per baseline in [`CompilerBaseline`]):
//!
//! * **PyTorch Eager** launches one kernel per operator and materialises every
//!   intermediate tensor in global memory.
//! * **PyTorch Dynamo / Inductor** fuses element-wise operators into their
//!   producer, eliminating the intermediate traffic of those element-wise ops,
//!   but keeps every reduction as a separate kernel (it has no cross-reduction
//!   fusion — the gap this paper addresses).
//! * **TVM** (default pipeline, no CUTLASS/FlashInfer backends, matching §5.1)
//!   also keeps reductions separate and additionally reaches a lower fraction
//!   of peak on GEMM-shaped operators because its generated schedules do not
//!   use tensor-core instructions.
//! * **FlashAttention2 / FlashMLA** are single fused kernels with minimal
//!   traffic and highly tuned inner loops.

pub mod ops;
pub mod sequences;

pub use ops::{
    inertia_op_list, mha_op_list, mla_op_list, moe_op_list, quant_op_list, variance_op_list, OpSpec,
};
pub use sequences::{flash_attention2_profile, flash_mla_profile, CompilerBaseline};

#[cfg(test)]
mod tests {
    use super::*;
    use rf_gpusim::{sequence_latency, GpuArch};
    use rf_workloads::mha_configs;

    #[test]
    fn eager_is_slower_than_dynamo_on_attention() {
        let arch = GpuArch::a10();
        let config = &mha_configs()[1];
        let ops = mha_op_list(config);
        let eager = sequence_latency(&arch, &CompilerBaseline::PyTorchEager.kernels(&ops));
        let dynamo = sequence_latency(&arch, &CompilerBaseline::Dynamo.kernels(&ops));
        assert!(
            dynamo < eager,
            "inductor-style elementwise fusion must help"
        );
    }
}
