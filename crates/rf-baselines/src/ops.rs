//! Operator lists: the logical operator sequence of each evaluated subgraph.
//!
//! Each [`OpSpec`] records the work and the global-memory traffic of one
//! framework-level operator executed in isolation (its inputs read from and
//! its outputs written to global memory). The baseline models in
//! [`crate::sequences`] then decide which of these operators share a kernel
//! and which intermediates are actually spilled.

use rf_workloads::{
    InertiaConfig, MhaConfig, MlaConfig, MoeConfig, Precision, QuantGemmConfig, VarianceConfig,
};

/// One framework-level operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSpec {
    /// Operator name, e.g. `"gemm_qk"` or `"softmax_sum"`.
    pub name: String,
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes read from global memory when executed stand-alone.
    pub read_bytes: u64,
    /// Bytes written to global memory when executed stand-alone.
    pub write_bytes: u64,
    /// Whether the operator is element-wise (fusable by Inductor-style fusion).
    pub elementwise: bool,
    /// Whether the operator is GEMM-shaped (eligible for tensor cores).
    pub gemm: bool,
    /// Dominant precision of the operator.
    pub precision: &'static str,
}

impl OpSpec {
    fn new(name: &str, flops: u64, read_bytes: u64, write_bytes: u64) -> Self {
        OpSpec {
            name: name.to_string(),
            flops,
            read_bytes,
            write_bytes,
            elementwise: false,
            gemm: false,
            precision: "fp16",
        }
    }

    fn elementwise(mut self) -> Self {
        self.elementwise = true;
        self
    }

    fn gemm(mut self) -> Self {
        self.gemm = true;
        self
    }

    /// Total stand-alone traffic of the operator.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

const E16: u64 = Precision::Fp16.bytes() as u64;
const E32: u64 = Precision::Fp32.bytes() as u64;
const E8: u64 = Precision::Fp8.bytes() as u64;

/// Operator list of an MHA forward pass: `QK^T` GEMM, row max, shift + exp,
/// row sum, normalise, `PV` GEMM.
pub fn mha_op_list(c: &MhaConfig) -> Vec<OpSpec> {
    let rows = c.rows() as u64;
    let kv = c.kv as u64;
    let hd = c.hd as u64;
    let q_bytes = rows * hd * E16;
    let kv_bytes = (c.bs * c.hn * c.kv * c.hd) as u64 * E16;
    let score_bytes = rows * kv * E16;
    let stat_bytes = rows * E32;
    vec![
        OpSpec::new(
            "gemm_qk",
            2 * rows * kv * hd,
            q_bytes + kv_bytes,
            score_bytes,
        )
        .gemm(),
        OpSpec::new("softmax_max", rows * kv, score_bytes, stat_bytes),
        OpSpec::new(
            "softmax_shift_exp",
            2 * rows * kv,
            score_bytes + stat_bytes,
            score_bytes,
        )
        .elementwise(),
        OpSpec::new("softmax_sum", rows * kv, score_bytes, stat_bytes),
        OpSpec::new(
            "softmax_div",
            rows * kv,
            score_bytes + stat_bytes,
            score_bytes,
        )
        .elementwise(),
        OpSpec::new(
            "gemm_pv",
            2 * rows * kv * hd,
            score_bytes + kv_bytes,
            q_bytes,
        )
        .gemm(),
    ]
}

/// Operator list of an MLA decode step (query length 1, latent KV cache).
pub fn mla_op_list(c: &MlaConfig) -> Vec<OpSpec> {
    let rows = c.rows() as u64;
    let kv = c.kv as u64;
    let qk_dim = c.qk_dim() as u64;
    let hd = c.hd as u64;
    let q_bytes = rows * qk_dim * E16;
    let kv_cache_bytes = (c.bs * c.kv) as u64 * (qk_dim + hd) * E16;
    let score_bytes = rows * kv * E16;
    let stat_bytes = rows * E32;
    let out_bytes = rows * hd * E16;
    vec![
        OpSpec::new(
            "gemm_qk",
            2 * rows * kv * qk_dim,
            q_bytes + kv_cache_bytes,
            score_bytes,
        )
        .gemm(),
        OpSpec::new("softmax_max", rows * kv, score_bytes, stat_bytes),
        OpSpec::new(
            "softmax_shift_exp",
            2 * rows * kv,
            score_bytes + stat_bytes,
            score_bytes,
        )
        .elementwise(),
        OpSpec::new("softmax_sum", rows * kv, score_bytes, stat_bytes),
        OpSpec::new(
            "softmax_div",
            rows * kv,
            score_bytes + stat_bytes,
            score_bytes,
        )
        .elementwise(),
        OpSpec::new(
            "gemm_pv",
            2 * rows * kv * hd,
            score_bytes + kv_cache_bytes,
            out_bytes,
        )
        .gemm(),
    ]
}

/// Operator list of MoE routing: scoring GEMM, softmax (max / exp / sum /
/// normalise) and top-k selection.
pub fn moe_op_list(c: &MoeConfig) -> Vec<OpSpec> {
    let s = c.s as u64;
    let hd = c.hd as u64;
    let en = c.en as u64;
    let act_bytes = s * hd * E16;
    let w_bytes = hd * en * E16;
    let score_bytes = s * en * E16;
    let stat_bytes = s * E32;
    let out_bytes = s * c.topk as u64 * (E32 + 4);
    vec![
        OpSpec::new(
            "gemm_scores",
            2 * s * hd * en,
            act_bytes + w_bytes,
            score_bytes,
        )
        .gemm(),
        OpSpec::new("softmax_max", s * en, score_bytes, stat_bytes),
        OpSpec::new(
            "softmax_shift_exp",
            2 * s * en,
            score_bytes + stat_bytes,
            score_bytes,
        )
        .elementwise(),
        OpSpec::new("softmax_sum", s * en, score_bytes, stat_bytes),
        OpSpec::new("softmax_div", s * en, score_bytes + stat_bytes, score_bytes).elementwise(),
        OpSpec::new(
            "topk",
            s * en * (c.topk.max(2) as u64).ilog2() as u64,
            score_bytes,
            out_bytes,
        ),
    ]
}

/// Operator list of FP8 per-token quantization + GEMM.
pub fn quant_op_list(c: &QuantGemmConfig) -> Vec<OpSpec> {
    let m = c.m as u64;
    let n = c.n as u64;
    let k = c.k as u64;
    let act_bytes = m * k * E16;
    let q_bytes = m * k * E8;
    let w_bytes = k * n * E8;
    let out_bytes = m * n * E16;
    let scale_bytes = m * E32;
    vec![
        OpSpec::new("absmax", m * k, act_bytes, scale_bytes),
        OpSpec::new("quantize", 2 * m * k, act_bytes + scale_bytes, q_bytes).elementwise(),
        OpSpec {
            precision: "fp8",
            ..OpSpec::new("gemm_fp8", 2 * m * n * k, q_bytes + w_bytes, out_bytes).gemm()
        },
        OpSpec::new("dequantize", m * n, out_bytes + scale_bytes, out_bytes).elementwise(),
    ]
}

/// Operator list of batched variance (mean, centred squares, mean again).
pub fn variance_op_list(c: &VarianceConfig) -> Vec<OpSpec> {
    let elems = c.elements() as u64;
    let data_bytes = elems * E32;
    let stat_bytes = c.bs as u64 * E32;
    vec![
        OpSpec::new("mean", elems, data_bytes, stat_bytes),
        OpSpec::new(
            "centre_square",
            2 * elems,
            data_bytes + stat_bytes,
            data_bytes,
        )
        .elementwise(),
        OpSpec::new("mean_of_squares", elems, data_bytes, stat_bytes),
    ]
}

/// Operator list of the moment-of-inertia computation (total mass, centre of
/// mass, centred squared distances, weighted sum).
pub fn inertia_op_list(c: &InertiaConfig) -> Vec<OpSpec> {
    let particles = c.particles() as u64;
    let dim = c.dim as u64;
    let mass_bytes = particles * E32;
    let pos_bytes = particles * dim * E32;
    let stat_bytes = c.bs as u64 * E32;
    let centre_bytes = c.bs as u64 * dim * E32;
    vec![
        OpSpec::new("mass_sum", particles, mass_bytes, stat_bytes),
        OpSpec::new(
            "weighted_position_sum",
            2 * particles * dim,
            mass_bytes + pos_bytes,
            centre_bytes,
        ),
        OpSpec::new(
            "centre_divide",
            c.bs as u64 * dim,
            centre_bytes + stat_bytes,
            centre_bytes,
        )
        .elementwise(),
        OpSpec::new(
            "centred_norm_sq",
            3 * particles * dim,
            pos_bytes + centre_bytes,
            mass_bytes,
        )
        .elementwise(),
        OpSpec::new("weighted_sum", 2 * particles, 2 * mass_bytes, stat_bytes),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_workloads::{
        inertia_configs, mha_configs, mla_configs, moe_configs, quant_configs, variance_configs,
    };

    #[test]
    fn every_workload_has_a_nonempty_op_list() {
        assert_eq!(mha_op_list(&mha_configs()[0]).len(), 6);
        assert_eq!(mla_op_list(&mla_configs()[0]).len(), 6);
        assert_eq!(moe_op_list(&moe_configs()[0]).len(), 6);
        assert_eq!(quant_op_list(&quant_configs()[0]).len(), 4);
        assert_eq!(variance_op_list(&variance_configs()[0]).len(), 3);
        assert_eq!(inertia_op_list(&inertia_configs()[0]).len(), 5);
    }

    #[test]
    fn traffic_and_flops_are_positive() {
        for op in mha_op_list(&mha_configs()[2]) {
            assert!(op.flops > 0, "{}", op.name);
            assert!(op.total_bytes() > 0, "{}", op.name);
        }
    }

    #[test]
    fn gemm_dominates_quant_flops() {
        let ops = quant_op_list(&quant_configs()[0]);
        let gemm: u64 = ops.iter().filter(|o| o.gemm).map(|o| o.flops).sum();
        let rest: u64 = ops.iter().filter(|o| !o.gemm).map(|o| o.flops).sum();
        assert!(gemm > 10 * rest);
        assert_eq!(ops[2].precision, "fp8");
    }

    #[test]
    fn elementwise_flags_mark_fusable_ops() {
        let ops = mha_op_list(&mha_configs()[0]);
        let elementwise: Vec<&str> = ops
            .iter()
            .filter(|o| o.elementwise)
            .map(|o| o.name.as_str())
            .collect();
        assert_eq!(elementwise, vec!["softmax_shift_exp", "softmax_div"]);
    }
}
