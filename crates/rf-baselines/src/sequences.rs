//! Baseline kernel sequences and hand-optimized kernel profiles.

use rf_gpusim::KernelProfile;
use rf_workloads::{MhaConfig, MlaConfig, Precision};

use crate::ops::OpSpec;

/// The deep-learning-compiler baselines of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilerBaseline {
    /// Native PyTorch: one kernel per operator, every intermediate spilled.
    PyTorchEager,
    /// `torch.compile` with the Inductor backend: element-wise operators are
    /// fused into their producers, reductions remain separate kernels.
    Dynamo,
    /// TVM's default Relax pipeline without vendor GEMM backends: no
    /// cross-operator fusion of reductions, and GEMM schedules that do not use
    /// tensor cores (modelled as FP32-rate GEMMs at reduced efficiency).
    Tvm,
}

impl CompilerBaseline {
    /// All baselines, in the paper's presentation order.
    pub const ALL: [CompilerBaseline; 3] = [
        CompilerBaseline::PyTorchEager,
        CompilerBaseline::Dynamo,
        CompilerBaseline::Tvm,
    ];

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CompilerBaseline::PyTorchEager => "PyTorch Eager",
            CompilerBaseline::Dynamo => "PyTorch Dynamo",
            CompilerBaseline::Tvm => "TVM",
        }
    }

    /// Lowers an operator list into the kernel sequence this baseline launches.
    pub fn kernels(self, ops: &[OpSpec]) -> Vec<KernelProfile> {
        match self {
            CompilerBaseline::PyTorchEager => {
                ops.iter().map(|op| profile_for(op, 0.55, false)).collect()
            }
            CompilerBaseline::Tvm => ops.iter().map(|op| profile_for(op, 0.40, true)).collect(),
            CompilerBaseline::Dynamo => {
                // Fuse each element-wise op into the kernel before it: the
                // element-wise op's flops join that kernel and the intermediate
                // tensor between them is no longer written + re-read.
                let mut kernels: Vec<KernelProfile> = Vec::new();
                for op in ops {
                    if op.elementwise {
                        if let Some(last) = kernels.last_mut() {
                            last.flops += op.flops;
                            // The producer's output stays on chip: remove its
                            // write and this op's read of it, keep any extra
                            // operand reads (op.read - producer.write) plus the
                            // fused op's own write.
                            let producer_write = last.hbm_bytes.min(op.read_bytes);
                            last.hbm_bytes = last.hbm_bytes - producer_write
                                + op.read_bytes.saturating_sub(producer_write)
                                + op.write_bytes;
                            last.name = format!("{}+{}", last.name, op.name);
                            continue;
                        }
                    }
                    kernels.push(profile_for(op, 0.55, false));
                }
                kernels
            }
        }
    }
}

fn profile_for(op: &OpSpec, gemm_efficiency: f64, force_fp32_gemm: bool) -> KernelProfile {
    let bytes = op.total_bytes();
    let precision = if op.gemm && force_fp32_gemm {
        "fp32"
    } else {
        op.precision
    };
    let efficiency = if op.gemm { gemm_efficiency } else { 0.5 };
    KernelProfile {
        name: op.name.clone(),
        flops: op.flops,
        hbm_bytes: bytes,
        blocks: (bytes / (128 * 1024)).max(64),
        threads_per_block: 256,
        shared_mem_per_block: 48 * 1024,
        precision,
        compute_efficiency: efficiency,
        overlap: 0.6,
        launches: 1,
    }
}

/// The FlashAttention2 hand-optimized kernel: one fused kernel with highly
/// tuned inner loops. Like every tiled attention kernel it re-reads the K/V
/// tensors once per query block (of 128 rows), so its traffic is the minimal
/// Q/O traffic plus that re-read factor.
pub fn flash_attention2_profile(c: &MhaConfig) -> KernelProfile {
    let q_blocks = c.q.div_ceil(128).max(1) as u64;
    let kv_bytes = 2 * (c.bs * c.hn * c.kv * c.hd) as u64 * Precision::Fp16.bytes() as u64;
    KernelProfile {
        name: format!("flash_attention2_{}", c.name),
        flops: c.flops(),
        hbm_bytes: c.min_bytes(Precision::Fp16) + kv_bytes * (q_blocks - 1),
        blocks: (c.rows() as u64 / 64).max(c.bs as u64 * c.hn as u64),
        threads_per_block: 256,
        shared_mem_per_block: 96 * 1024,
        precision: "fp16",
        compute_efficiency: 0.70,
        overlap: 0.9,
        launches: 1,
    }
}

/// The FlashMLA hand-optimized decode kernel. Like FlashDecoding it splits the
/// KV cache across blocks and merges partial results with a combine kernel, so
/// besides the minimal Q/KV/O traffic it spills and re-reads the per-split
/// partial outputs and statistics once.
pub fn flash_mla_profile(c: &MlaConfig) -> KernelProfile {
    let splits = 2u64;
    let partial_bytes =
        2 * splits * (c.rows() * (c.hd + 2)) as u64 * Precision::Fp32.bytes() as u64;
    KernelProfile {
        name: format!("flash_mla_{}", c.name),
        flops: c.flops(),
        hbm_bytes: c.min_bytes(Precision::Fp16) + partial_bytes,
        blocks: (c.rows() as u64).max(128),
        threads_per_block: 256,
        shared_mem_per_block: 160 * 1024,
        precision: "fp16",
        compute_efficiency: 0.72,
        overlap: 0.9,
        launches: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{mha_op_list, mla_op_list, moe_op_list, quant_op_list};
    use rf_gpusim::{sequence_latency, GpuArch};
    use rf_workloads::{mha_configs, mla_configs, moe_configs, quant_configs};

    #[test]
    fn dynamo_fuses_elementwise_and_reduces_traffic() {
        let ops = mha_op_list(&mha_configs()[1]);
        let eager = CompilerBaseline::PyTorchEager.kernels(&ops);
        let dynamo = CompilerBaseline::Dynamo.kernels(&ops);
        assert_eq!(eager.len(), 6);
        assert_eq!(
            dynamo.len(),
            4,
            "two element-wise ops fold into their producers"
        );
        let eager_bytes: u64 = eager.iter().map(|k| k.hbm_bytes).sum();
        let dynamo_bytes: u64 = dynamo.iter().map(|k| k.hbm_bytes).sum();
        assert!(dynamo_bytes < eager_bytes);
    }

    #[test]
    fn tvm_is_slowest_on_gemm_heavy_workloads() {
        let arch = GpuArch::h800();
        for config in quant_configs().iter().take(3) {
            let ops = quant_op_list(config);
            let eager = sequence_latency(&arch, &CompilerBaseline::PyTorchEager.kernels(&ops));
            let tvm = sequence_latency(&arch, &CompilerBaseline::Tvm.kernels(&ops));
            assert!(
                tvm > eager,
                "{}: TVM without tensor cores must trail eager",
                config.name
            );
        }
    }

    #[test]
    fn hand_optimized_kernels_have_minimal_traffic() {
        let mha = &mha_configs()[0];
        let fa2 = flash_attention2_profile(mha);
        let eager_bytes: u64 = CompilerBaseline::PyTorchEager
            .kernels(&mha_op_list(mha))
            .iter()
            .map(|k| k.hbm_bytes)
            .sum();
        assert!(fa2.hbm_bytes < eager_bytes / 2);
        let mla = &mla_configs()[0];
        assert_eq!(flash_mla_profile(mla).launches, 2);
    }

    #[test]
    fn baseline_orderings_match_the_paper_on_moe_and_mla() {
        // MoE routing (Fig. 5c) and MLA (Fig. 5b): Dynamo beats eager, TVM trails.
        let a10 = GpuArch::a10();
        let h800 = GpuArch::h800();
        let moe = moe_op_list(&moe_configs()[3]);
        let eager = sequence_latency(&a10, &CompilerBaseline::PyTorchEager.kernels(&moe));
        let dynamo = sequence_latency(&a10, &CompilerBaseline::Dynamo.kernels(&moe));
        assert!(dynamo < eager);
        let mla = mla_op_list(&mla_configs()[0]);
        let eager = sequence_latency(&h800, &CompilerBaseline::PyTorchEager.kernels(&mla));
        let tvm = sequence_latency(&h800, &CompilerBaseline::Tvm.kernels(&mla));
        assert!(tvm > eager);
    }

    #[test]
    fn baseline_names_are_stable() {
        assert_eq!(CompilerBaseline::PyTorchEager.name(), "PyTorch Eager");
        assert_eq!(CompilerBaseline::ALL.len(), 3);
    }
}
