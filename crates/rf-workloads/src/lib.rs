//! Workload configurations and synthetic data generation.
//!
//! The paper evaluates RedFuser on four ML subgraph families (Table 2) and two
//! non-ML cascaded reductions (Table 3):
//!
//! * Multi-Head Attention (MHA) — configurations `H1..H9` ([`attention`]),
//! * Multi-Latent Attention (MLA) decode — configurations `L1..L9` ([`attention`]),
//! * MoE routing — configurations `R1..R8` ([`moe`]),
//! * FP8 PerToken Quant + GEMM — configurations `Q1..Q10` ([`quant`]),
//! * variance `V1..V8` and moment of inertia `I1..I8` ([`nonml`]).
//!
//! Every configuration struct knows its shape parameters, the model it was
//! taken from, and provides floating-point-operation and memory-traffic
//! accounting used by the analytical GPU model and the baselines. The
//! [`data`] module provides deterministic random tensor generation shared by
//! kernels, tests and benchmarks.

pub mod attention;
pub mod data;
pub mod moe;
pub mod nonml;
pub mod quant;

pub use attention::{mha_configs, mla_configs, MhaConfig, MlaConfig};
pub use data::{random_matrix, random_vec, Matrix};
pub use moe::{moe_configs, MoeConfig};
pub use nonml::{inertia_configs, variance_configs, InertiaConfig, VarianceConfig};
pub use quant::{quant_configs, QuantGemmConfig};

/// Bytes per element for the storage precisions used in the paper's workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// 8-bit floating point (FP8 E4M3).
    Fp8,
    /// 16-bit floating point (FP16/BF16), the default activation precision.
    Fp16,
    /// 32-bit floating point, used for accumulators and the non-ML workloads.
    Fp32,
}

impl Precision {
    /// Size of one element in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            Precision::Fp8 => 1,
            Precision::Fp16 => 2,
            Precision::Fp32 => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_sizes() {
        assert_eq!(Precision::Fp8.bytes(), 1);
        assert_eq!(Precision::Fp16.bytes(), 2);
        assert_eq!(Precision::Fp32.bytes(), 4);
    }

    #[test]
    fn all_tables_have_paper_row_counts() {
        assert_eq!(mha_configs().len(), 9);
        assert_eq!(mla_configs().len(), 9);
        assert_eq!(moe_configs().len(), 8);
        assert_eq!(quant_configs().len(), 10);
        assert_eq!(variance_configs().len(), 8);
        assert_eq!(inertia_configs().len(), 8);
    }
}
