//! Workload configurations and synthetic data generation.
//!
//! The paper evaluates RedFuser on four ML subgraph families (Table 2) and two
//! non-ML cascaded reductions (Table 3):
//!
//! * Multi-Head Attention (MHA) — configurations `H1..H9` ([`attention`]),
//! * Multi-Latent Attention (MLA) decode — configurations `L1..L9` ([`attention`]),
//! * MoE routing — configurations `R1..R8` ([`moe`]),
//! * FP8 PerToken Quant + GEMM — configurations `Q1..Q10` ([`quant`]),
//! * variance `V1..V8` and moment of inertia `I1..I8` ([`nonml`]).
//!
//! Every configuration struct knows its shape parameters, the model it was
//! taken from, and provides floating-point-operation and memory-traffic
//! accounting used by the analytical GPU model and the baselines. The
//! [`data`] module provides deterministic random tensor generation shared by
//! kernels, tests and benchmarks.

pub mod attention;
pub mod data;
pub mod moe;
pub mod nonml;
pub mod quant;

pub use attention::{mha_configs, mha_tiny, mla_configs, mla_tiny, MhaConfig, MlaConfig};
pub use data::{random_matrix, random_vec, Matrix};
pub use moe::{moe_configs, moe_tiny, MoeConfig};
pub use nonml::{
    inertia_configs, inertia_tiny, variance_configs, variance_tiny, InertiaConfig, VarianceConfig,
};
pub use quant::{fp8_round, quant_configs, quant_tiny, QuantGemmConfig, FP8_MAX};

/// Bytes per element for the storage precisions used in the paper's workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 8-bit floating point (FP8 E4M3).
    Fp8,
    /// 16-bit floating point (FP16/BF16), the default activation precision.
    Fp16,
    /// 32-bit floating point, used for accumulators and the non-ML workloads.
    Fp32,
}

impl Precision {
    /// Size of one element in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            Precision::Fp8 => 1,
            Precision::Fp16 => 2,
            Precision::Fp32 => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_sizes() {
        assert_eq!(Precision::Fp8.bytes(), 1);
        assert_eq!(Precision::Fp16.bytes(), 2);
        assert_eq!(Precision::Fp32.bytes(), 4);
    }

    #[test]
    fn configs_work_as_hash_map_keys() {
        use std::collections::HashMap;
        let mut by_mha: HashMap<MhaConfig, usize> = HashMap::new();
        for (i, c) in mha_configs().into_iter().enumerate() {
            by_mha.insert(c, i);
        }
        assert_eq!(by_mha.len(), 9);
        assert_eq!(by_mha.get(&mha_configs()[3]), Some(&3));

        let mut mixed: HashMap<(MoeConfig, Precision), u64> = HashMap::new();
        mixed.insert((moe_configs()[0].clone(), Precision::Fp16), 1);
        mixed.insert((moe_configs()[0].clone(), Precision::Fp8), 2);
        assert_eq!(mixed.len(), 2);

        let mut nonml: HashMap<(VarianceConfig, InertiaConfig), ()> = HashMap::new();
        nonml.insert(
            (variance_configs()[0].clone(), inertia_configs()[0].clone()),
            (),
        );
        assert_eq!(nonml.len(), 1);

        let mut by_quant: HashMap<(MlaConfig, QuantGemmConfig), ()> = HashMap::new();
        by_quant.insert((mla_configs()[0].clone(), quant_configs()[0].clone()), ());
        assert!(by_quant.contains_key(&(mla_configs()[0].clone(), quant_configs()[0].clone())));
    }

    #[test]
    fn all_tables_have_paper_row_counts() {
        assert_eq!(mha_configs().len(), 9);
        assert_eq!(mla_configs().len(), 9);
        assert_eq!(moe_configs().len(), 8);
        assert_eq!(quant_configs().len(), 10);
        assert_eq!(variance_configs().len(), 8);
        assert_eq!(inertia_configs().len(), 8);
    }
}
