//! FP8 PerToken Quant + GEMM configurations (Table 2d of the paper), plus the
//! simulated FP8 E4M3 grid shared by every execution path of the workload.
//!
//! The workload quantizes an activation matrix `[M, K]` to FP8 with per-token
//! (per-row) dynamic scaling factors derived from an abs-max reduction, then
//! multiplies with a weight matrix `[K, N]`.

use crate::Precision;

/// Maximum representable magnitude of the simulated FP8 E4M3 grid.
pub const FP8_MAX: f64 = 448.0;

/// Rounds a value to the simulated FP8 E4M3 grid: clamp to ±448, keep a 3-bit
/// mantissa, flush sub-subnormal and non-finite values to zero.
///
/// This is the single definition of the rounding model; the hand-written
/// kernels (`rf-kernels`) and the tile-program VM (`rf_tile::exec`) both
/// re-export it, so fused, unfused and interpreted executions perform
/// bit-identical roundings.
pub fn fp8_round(x: f64) -> f64 {
    if !x.is_finite() || x == 0.0 {
        return 0.0;
    }
    let clamped = x.clamp(-FP8_MAX, FP8_MAX);
    let magnitude = clamped.abs();
    // E4M3 minimum normal is 2^-6; treat anything below the smallest subnormal
    // (2^-9) as zero.
    if magnitude < 2f64.powi(-9) {
        return 0.0;
    }
    let exponent = magnitude.log2().floor();
    let scale = 2f64.powf(exponent - 3.0);
    let rounded = (magnitude / scale).round() * scale;
    rounded.copysign(clamped)
}

/// One Quant + GEMM configuration (a row of Table 2d).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QuantGemmConfig {
    /// Row name (`Q1..Q10`).
    pub name: &'static str,
    /// Number of tokens (rows of the activation matrix).
    pub m: usize,
    /// Output dimension (columns of the weight matrix).
    pub n: usize,
    /// Reduction dimension.
    pub k: usize,
    /// The model this configuration is taken from.
    pub model: &'static str,
}

impl QuantGemmConfig {
    /// Floating-point operations: abs-max + scaling over `[M, K]`, then the GEMM.
    pub fn flops(&self) -> u64 {
        let quant = 3 * (self.m * self.k) as u64;
        let gemm = 2 * (self.m * self.n * self.k) as u64;
        quant + gemm
    }

    /// Minimal HBM traffic: activations read once (FP16), weights read once
    /// (FP8), outputs written once (FP16), scales written once (FP32).
    pub fn min_bytes(&self) -> u64 {
        let act = (self.m * self.k) as u64 * Precision::Fp16.bytes() as u64;
        let weights = (self.k * self.n) as u64 * Precision::Fp8.bytes() as u64;
        let out = (self.m * self.n) as u64 * Precision::Fp16.bytes() as u64;
        let scales = self.m as u64 * Precision::Fp32.bytes() as u64;
        act + weights + out + scales
    }

    /// Bytes of the quantized activation matrix `[M, K]` in FP8, which unfused
    /// execution writes after the quantization kernel and re-reads in the GEMM.
    pub fn quantized_bytes(&self) -> u64 {
        (self.m * self.k) as u64 * Precision::Fp8.bytes() as u64
    }
}

/// Table 2d: the ten Quant + GEMM configurations.
pub fn quant_configs() -> Vec<QuantGemmConfig> {
    vec![
        QuantGemmConfig {
            name: "Q1",
            m: 4096,
            n: 1536,
            k: 2560,
            model: "ERNIE-21B-A3B",
        },
        QuantGemmConfig {
            name: "Q2",
            m: 4096,
            n: 2560,
            k: 1536,
            model: "ERNIE-21B-A3B",
        },
        QuantGemmConfig {
            name: "Q3",
            m: 4096,
            n: 3584,
            k: 8192,
            model: "ERNIE-300B-A47B",
        },
        QuantGemmConfig {
            name: "Q4",
            m: 4096,
            n: 8192,
            k: 3584,
            model: "ERNIE-300B-A47B",
        },
        QuantGemmConfig {
            name: "Q5",
            m: 4096,
            n: 7168,
            k: 2048,
            model: "DeepSeek-R1",
        },
        QuantGemmConfig {
            name: "Q6",
            m: 4096,
            n: 2048,
            k: 7168,
            model: "DeepSeek-R1",
        },
        QuantGemmConfig {
            name: "Q7",
            m: 4096,
            n: 2048,
            k: 768,
            model: "Qwen3-30B-A3B",
        },
        QuantGemmConfig {
            name: "Q8",
            m: 4096,
            n: 768,
            k: 2048,
            model: "Qwen3-30B-A3B",
        },
        QuantGemmConfig {
            name: "Q9",
            m: 4096,
            n: 4096,
            k: 1536,
            model: "Qwen3-235B-A30B",
        },
        QuantGemmConfig {
            name: "Q10",
            m: 4096,
            n: 1536,
            k: 4096,
            model: "Qwen3-235B-A30B",
        },
    ]
}

/// A scaled-down configuration for fast tests and examples.
pub fn quant_tiny() -> QuantGemmConfig {
    QuantGemmConfig {
        name: "tiny",
        m: 8,
        n: 12,
        k: 16,
        model: "unit-test",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2d_matches_paper() {
        let configs = quant_configs();
        assert_eq!(configs.len(), 10);
        assert!(configs.iter().all(|c| c.m == 4096));
        assert_eq!(configs[4].n, 7168);
        assert_eq!(configs[5].k, 7168);
        assert_eq!(configs[9].model, "Qwen3-235B-A30B");
    }

    #[test]
    fn flops_dominated_by_gemm() {
        for c in quant_configs() {
            let gemm = 2 * (c.m * c.n * c.k) as u64;
            assert!(c.flops() >= gemm);
            assert!(c.flops() < gemm + gemm / 10);
        }
    }

    #[test]
    fn traffic_accounting() {
        let c = quant_tiny();
        assert!(c.min_bytes() > 0);
        assert_eq!(c.quantized_bytes(), (c.m * c.k) as u64);
    }
}
