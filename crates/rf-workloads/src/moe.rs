//! MoE routing configurations (Table 2c of the paper).
//!
//! The routing function computes expert scores with a GEMM between the token
//! activations `[s, hd]` and the routing weights `[hd, en]`, then applies a
//! softmax + top-k over the `en` experts of every token.

use crate::Precision;

/// One MoE routing configuration (a row of Table 2c).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MoeConfig {
    /// Row name (`R1..R8`).
    pub name: &'static str,
    /// Sequence length (number of tokens routed).
    pub s: usize,
    /// Hidden dimension of the token activations.
    pub hd: usize,
    /// Number of experts.
    pub en: usize,
    /// Number of experts selected per token.
    pub topk: usize,
    /// The model this configuration is taken from.
    pub model: &'static str,
}

impl MoeConfig {
    /// Floating-point operations: the scoring GEMM dominates, plus the softmax
    /// and top-k selection over the expert axis.
    pub fn flops(&self) -> u64 {
        let gemm = 2 * (self.s * self.hd * self.en) as u64;
        let softmax = 5 * (self.s * self.en) as u64;
        let topk = (self.s * self.en * self.topk.max(1).ilog2().max(1) as usize) as u64;
        gemm + softmax + topk
    }

    /// Minimal HBM traffic: activations and routing weights read once, the
    /// selected expert indices and probabilities written once.
    pub fn min_bytes(&self, precision: Precision) -> u64 {
        let e = precision.bytes() as u64;
        let activations = (self.s * self.hd) as u64 * e;
        let weights = (self.hd * self.en) as u64 * e;
        let outputs = (self.s * self.topk) as u64 * (e + 4); // probability + index
        activations + weights + outputs
    }

    /// Bytes of the intermediate score matrix `[s, en]`, spilled by unfused
    /// execution between the GEMM, softmax and top-k stages.
    pub fn score_bytes(&self, precision: Precision) -> u64 {
        (self.s * self.en) as u64 * precision.bytes() as u64
    }
}

/// Table 2c: the eight MoE routing configurations.
pub fn moe_configs() -> Vec<MoeConfig> {
    vec![
        MoeConfig {
            name: "R1",
            s: 2048,
            hd: 768,
            en: 128,
            topk: 1,
            model: "switch-base-128",
        },
        MoeConfig {
            name: "R2",
            s: 2048,
            hd: 1024,
            en: 128,
            topk: 1,
            model: "switch-large-128",
        },
        MoeConfig {
            name: "R3",
            s: 2048,
            hd: 4096,
            en: 128,
            topk: 1,
            model: "switch-xxl-128",
        },
        MoeConfig {
            name: "R4",
            s: 2048,
            hd: 2560,
            en: 64,
            topk: 6,
            model: "ERNIE-21B-A3B",
        },
        MoeConfig {
            name: "R5",
            s: 2048,
            hd: 8192,
            en: 64,
            topk: 8,
            model: "ERNIE-300B-A47B",
        },
        MoeConfig {
            name: "R6",
            s: 2048,
            hd: 2048,
            en: 64,
            topk: 6,
            model: "DeepSeek-V2-Lite",
        },
        MoeConfig {
            name: "R7",
            s: 2048,
            hd: 2048,
            en: 128,
            topk: 8,
            model: "Qwen3-30B-A3B",
        },
        MoeConfig {
            name: "R8",
            s: 2048,
            hd: 4096,
            en: 128,
            topk: 8,
            model: "Qwen3-235B-A30B",
        },
    ]
}

/// A scaled-down configuration for fast tests and examples.
pub fn moe_tiny() -> MoeConfig {
    MoeConfig {
        name: "tiny",
        s: 16,
        hd: 32,
        en: 16,
        topk: 4,
        model: "unit-test",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2c_matches_paper() {
        let configs = moe_configs();
        assert_eq!(configs.len(), 8);
        assert!(configs.iter().all(|c| c.s == 2048));
        assert_eq!(configs[0].topk, 1);
        assert_eq!(configs[4].hd, 8192);
        assert_eq!(configs[7].model, "Qwen3-235B-A30B");
    }

    #[test]
    fn accounting_is_positive_and_monotone() {
        let configs = moe_configs();
        for c in &configs {
            assert!(c.flops() > 0);
            assert!(c.min_bytes(Precision::Fp16) > 0);
            assert!(c.score_bytes(Precision::Fp16) > 0);
        }
        // R3 has a larger hidden dim than R1 and therefore more flops.
        assert!(configs[2].flops() > configs[0].flops());
    }

    #[test]
    fn topk_never_exceeds_expert_count() {
        for c in moe_configs() {
            assert!(c.topk <= c.en);
        }
        assert!(moe_tiny().topk <= moe_tiny().en);
    }
}
