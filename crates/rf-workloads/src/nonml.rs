//! Non-ML workload configurations (Table 3 of the paper, Appendix A.6).
//!
//! Two cascaded reductions outside machine learning: per-batch variance of a
//! data vector, and the moment of inertia of a particle system about its
//! center of mass.

use crate::Precision;

/// One variance configuration (a row of Table 3a).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VarianceConfig {
    /// Row name (`V1..V8`).
    pub name: &'static str,
    /// Batch size (number of independent variance computations).
    pub bs: usize,
    /// Number of data points per batch.
    pub l: usize,
}

impl VarianceConfig {
    /// Floating-point operations of the two-pass definition (mean then
    /// sum of squared deviations).
    pub fn flops(&self) -> u64 {
        (4 * self.bs * self.l) as u64
    }

    /// Minimal HBM traffic: data read once, one variance written per batch.
    pub fn min_bytes(&self) -> u64 {
        ((self.bs * self.l + self.bs) * Precision::Fp32.bytes()) as u64
    }

    /// Total number of input elements.
    pub fn elements(&self) -> usize {
        self.bs * self.l
    }
}

/// One moment-of-inertia configuration (a row of Table 3b).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InertiaConfig {
    /// Row name (`I1..I8`).
    pub name: &'static str,
    /// Batch size (number of independent particle systems).
    pub bs: usize,
    /// Number of particles per system.
    pub n: usize,
    /// Spatial dimensionality (always 3 in the paper).
    pub dim: usize,
}

impl InertiaConfig {
    /// Floating-point operations of the three-pass definition (total mass,
    /// center of mass, then the weighted squared distances).
    pub fn flops(&self) -> u64 {
        (self.bs * self.n * (2 + 2 * self.dim + 3 * self.dim)) as u64
    }

    /// Minimal HBM traffic: masses and positions read once, one inertia value
    /// written per batch.
    pub fn min_bytes(&self) -> u64 {
        ((self.bs * self.n * (1 + self.dim) + self.bs) * Precision::Fp32.bytes()) as u64
    }

    /// Total number of particles across the batch.
    pub fn particles(&self) -> usize {
        self.bs * self.n
    }
}

/// Table 3a: the eight variance configurations.
pub fn variance_configs() -> Vec<VarianceConfig> {
    vec![
        VarianceConfig {
            name: "V1",
            bs: 1,
            l: 8192,
        },
        VarianceConfig {
            name: "V2",
            bs: 1,
            l: 32768,
        },
        VarianceConfig {
            name: "V3",
            bs: 128,
            l: 8192,
        },
        VarianceConfig {
            name: "V4",
            bs: 128,
            l: 32768,
        },
        VarianceConfig {
            name: "V5",
            bs: 512,
            l: 8192,
        },
        VarianceConfig {
            name: "V6",
            bs: 512,
            l: 32768,
        },
        VarianceConfig {
            name: "V7",
            bs: 1024,
            l: 8192,
        },
        VarianceConfig {
            name: "V8",
            bs: 1024,
            l: 32768,
        },
    ]
}

/// Table 3b: the eight moment-of-inertia configurations.
pub fn inertia_configs() -> Vec<InertiaConfig> {
    vec![
        InertiaConfig {
            name: "I1",
            bs: 1,
            n: 8192,
            dim: 3,
        },
        InertiaConfig {
            name: "I2",
            bs: 1,
            n: 32768,
            dim: 3,
        },
        InertiaConfig {
            name: "I3",
            bs: 128,
            n: 8192,
            dim: 3,
        },
        InertiaConfig {
            name: "I4",
            bs: 128,
            n: 32768,
            dim: 3,
        },
        InertiaConfig {
            name: "I5",
            bs: 512,
            n: 8192,
            dim: 3,
        },
        InertiaConfig {
            name: "I6",
            bs: 512,
            n: 32768,
            dim: 3,
        },
        InertiaConfig {
            name: "I7",
            bs: 1024,
            n: 8192,
            dim: 3,
        },
        InertiaConfig {
            name: "I8",
            bs: 1024,
            n: 32768,
            dim: 3,
        },
    ]
}

/// A scaled-down variance configuration for fast tests and examples.
pub fn variance_tiny() -> VarianceConfig {
    VarianceConfig {
        name: "tiny",
        bs: 4,
        l: 256,
    }
}

/// A scaled-down moment-of-inertia configuration for fast tests and examples.
pub fn inertia_tiny() -> InertiaConfig {
    InertiaConfig {
        name: "tiny",
        bs: 4,
        n: 128,
        dim: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        let v = variance_configs();
        let i = inertia_configs();
        assert_eq!(v.len(), 8);
        assert_eq!(i.len(), 8);
        assert_eq!(v[0].bs, 1);
        assert_eq!(v[7].l, 32768);
        assert!(i.iter().all(|c| c.dim == 3));
        assert_eq!(i[7].bs, 1024);
    }

    #[test]
    fn accounting_scales_with_size() {
        let v = variance_configs();
        assert!(v[7].flops() > v[0].flops());
        assert!(v[7].min_bytes() > v[0].min_bytes());
        let i = inertia_configs();
        assert!(i[7].particles() > i[0].particles());
        assert!(i[3].flops() > i[2].flops());
    }

    #[test]
    fn tiny_configs_are_small() {
        assert!(variance_tiny().elements() <= 1024);
        assert!(inertia_tiny().particles() <= 1024);
    }
}
