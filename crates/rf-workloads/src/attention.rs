//! Attention workload configurations (Table 2a and 2b of the paper).
//!
//! MHA tensors are shaped `[bs, hn, q, hd]` for the query and `[bs, hn, kv, hd]`
//! for key/value. MLA models the decode phase: the query length is always 1 and
//! the hidden dimensions of query and key are extended by the RoPE embedding
//! dimension `ped`.

use crate::Precision;

/// One Multi-Head Attention configuration (a row of Table 2a).
///
/// All shape fields are integers, so the struct derives `Hash`/`Eq` and can be
/// used directly as (part of) a compiled-plan cache key in `rf-runtime`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MhaConfig {
    /// Row name (`H1..H9`).
    pub name: &'static str,
    /// Batch size.
    pub bs: usize,
    /// Number of attention heads.
    pub hn: usize,
    /// Query sequence length.
    pub q: usize,
    /// Key/value sequence length.
    pub kv: usize,
    /// Head dimension.
    pub hd: usize,
    /// The model this configuration is taken from.
    pub model: &'static str,
}

impl MhaConfig {
    /// Number of independent attention rows (`bs * hn * q`), each of which is
    /// one cascaded reduction over the `kv` axis.
    pub fn rows(&self) -> usize {
        self.bs * self.hn * self.q
    }

    /// Total floating-point operations of the attention forward pass
    /// (QK^T + softmax + PV), counted as multiply-adds = 2 flops.
    pub fn flops(&self) -> u64 {
        let rows = self.rows() as u64;
        let kv = self.kv as u64;
        let hd = self.hd as u64;
        let qk = 2 * rows * kv * hd;
        let softmax = 5 * rows * kv;
        let pv = 2 * rows * kv * hd;
        qk + softmax + pv
    }

    /// Bytes of tensor data that must cross HBM at minimum (Q, K, V read once,
    /// O written once) at the given activation precision.
    pub fn min_bytes(&self, precision: Precision) -> u64 {
        let e = precision.bytes() as u64;
        let q = (self.bs * self.hn * self.q * self.hd) as u64;
        let kv = (self.bs * self.hn * self.kv * self.hd) as u64;
        (q + 2 * kv + q) * e
    }

    /// Bytes of the intermediate score/probability matrix `[q, kv]` per batch ×
    /// head, which unfused execution must spill to HBM (twice: write + read)
    /// for each of the softmax stages.
    pub fn score_bytes(&self, precision: Precision) -> u64 {
        (self.bs * self.hn * self.q * self.kv) as u64 * precision.bytes() as u64
    }
}

/// One Multi-Latent Attention (decode) configuration (a row of Table 2b).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MlaConfig {
    /// Row name (`L1..L9`).
    pub name: &'static str,
    /// Batch size.
    pub bs: usize,
    /// Number of attention heads.
    pub hn: usize,
    /// Key/value sequence length.
    pub kv: usize,
    /// Latent head dimension.
    pub hd: usize,
    /// RoPE positional-embedding extension of the query/key hidden dimension.
    pub ped: usize,
}

impl MlaConfig {
    /// Number of independent decode attention rows (`bs * hn`, query length 1).
    pub fn rows(&self) -> usize {
        self.bs * self.hn
    }

    /// Effective query/key dimension including the RoPE extension.
    pub fn qk_dim(&self) -> usize {
        self.hd + self.ped
    }

    /// Total floating-point operations of one decode step.
    pub fn flops(&self) -> u64 {
        let rows = self.rows() as u64;
        let kv = self.kv as u64;
        let qk = 2 * rows * kv * self.qk_dim() as u64;
        let softmax = 5 * rows * kv;
        let pv = 2 * rows * kv * self.hd as u64;
        qk + softmax + pv
    }

    /// Minimal HBM traffic: for decode the KV cache read dominates.
    pub fn min_bytes(&self, precision: Precision) -> u64 {
        let e = precision.bytes() as u64;
        let q = (self.bs * self.hn * self.qk_dim()) as u64;
        let kv = (self.bs * self.kv * (self.qk_dim() + self.hd)) as u64;
        let o = (self.bs * self.hn * self.hd) as u64;
        (q + kv + o) * e
    }

    /// Bytes of the per-row score vector `[kv]`, which unfused execution
    /// spills between the GEMM and softmax stages.
    pub fn score_bytes(&self, precision: Precision) -> u64 {
        (self.rows() * self.kv) as u64 * precision.bytes() as u64
    }
}

/// Table 2a: the nine MHA configurations.
pub fn mha_configs() -> Vec<MhaConfig> {
    vec![
        MhaConfig {
            name: "H1",
            bs: 32,
            hn: 8,
            q: 512,
            kv: 512,
            hd: 64,
            model: "BERT-Small",
        },
        MhaConfig {
            name: "H2",
            bs: 32,
            hn: 12,
            q: 512,
            kv: 512,
            hd: 64,
            model: "BERT-Base",
        },
        MhaConfig {
            name: "H3",
            bs: 32,
            hn: 16,
            q: 512,
            kv: 512,
            hd: 64,
            model: "BERT-Large",
        },
        MhaConfig {
            name: "H4",
            bs: 32,
            hn: 12,
            q: 256,
            kv: 256,
            hd: 64,
            model: "ViT-Base",
        },
        MhaConfig {
            name: "H5",
            bs: 32,
            hn: 16,
            q: 256,
            kv: 256,
            hd: 64,
            model: "ViT-Large",
        },
        MhaConfig {
            name: "H6",
            bs: 32,
            hn: 16,
            q: 256,
            kv: 256,
            hd: 80,
            model: "ViT-Huge",
        },
        MhaConfig {
            name: "H7",
            bs: 32,
            hn: 64,
            q: 1,
            kv: 1024,
            hd: 128,
            model: "LLaMA-65B",
        },
        MhaConfig {
            name: "H8",
            bs: 32,
            hn: 64,
            q: 1,
            kv: 2048,
            hd: 128,
            model: "LLaMA-65B",
        },
        MhaConfig {
            name: "H9",
            bs: 32,
            hn: 64,
            q: 1,
            kv: 4096,
            hd: 128,
            model: "LLaMA-65B",
        },
    ]
}

/// Table 2b: the nine MLA decode configurations.
pub fn mla_configs() -> Vec<MlaConfig> {
    vec![
        MlaConfig {
            name: "L1",
            bs: 32,
            hn: 128,
            kv: 1024,
            hd: 512,
            ped: 64,
        },
        MlaConfig {
            name: "L2",
            bs: 32,
            hn: 128,
            kv: 2048,
            hd: 512,
            ped: 64,
        },
        MlaConfig {
            name: "L3",
            bs: 32,
            hn: 128,
            kv: 4096,
            hd: 512,
            ped: 64,
        },
        MlaConfig {
            name: "L4",
            bs: 16,
            hn: 128,
            kv: 1024,
            hd: 512,
            ped: 64,
        },
        MlaConfig {
            name: "L5",
            bs: 16,
            hn: 128,
            kv: 2048,
            hd: 512,
            ped: 64,
        },
        MlaConfig {
            name: "L6",
            bs: 16,
            hn: 128,
            kv: 4096,
            hd: 512,
            ped: 64,
        },
        MlaConfig {
            name: "L7",
            bs: 1,
            hn: 128,
            kv: 1024,
            hd: 512,
            ped: 64,
        },
        MlaConfig {
            name: "L8",
            bs: 1,
            hn: 128,
            kv: 2048,
            hd: 512,
            ped: 64,
        },
        MlaConfig {
            name: "L9",
            bs: 1,
            hn: 128,
            kv: 4096,
            hd: 512,
            ped: 64,
        },
    ]
}

/// A scaled-down MHA configuration for fast tests and examples: the same shape
/// family as `H2` (BERT-Base) but with a small batch and sequence length.
pub fn mha_tiny() -> MhaConfig {
    MhaConfig {
        name: "tiny",
        bs: 2,
        hn: 2,
        q: 16,
        kv: 32,
        hd: 8,
        model: "unit-test",
    }
}

/// A scaled-down MLA configuration for fast tests and examples.
pub fn mla_tiny() -> MlaConfig {
    MlaConfig {
        name: "tiny",
        bs: 2,
        hn: 4,
        kv: 64,
        hd: 16,
        ped: 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2a_matches_paper() {
        let configs = mha_configs();
        assert_eq!(configs.len(), 9);
        assert_eq!(configs[1].model, "BERT-Base");
        assert_eq!(configs[1].hn, 12);
        assert_eq!(configs[8].kv, 4096);
        assert_eq!(configs[5].hd, 80);
        assert!(configs.iter().all(|c| c.bs == 32));
    }

    #[test]
    fn table2b_matches_paper() {
        let configs = mla_configs();
        assert_eq!(configs.len(), 9);
        assert!(configs
            .iter()
            .all(|c| c.hn == 128 && c.hd == 512 && c.ped == 64));
        assert_eq!(configs[6].bs, 1);
        assert_eq!(configs[2].kv, 4096);
    }

    #[test]
    fn flops_scale_with_sequence_length() {
        let configs = mha_configs();
        // H7 -> H8 -> H9 double the kv length with other parameters fixed.
        assert!(configs[7].flops() > configs[6].flops());
        assert!(configs[8].flops() > configs[7].flops());
        let ratio = configs[8].flops() as f64 / configs[7].flops() as f64;
        assert!((ratio - 2.0).abs() < 0.05);
    }

    #[test]
    fn traffic_accounting_is_consistent() {
        let c = &mha_configs()[1];
        assert!(c.min_bytes(Precision::Fp16) < c.min_bytes(Precision::Fp32));
        assert!(c.score_bytes(Precision::Fp16) > 0);
        let l = &mla_configs()[0];
        assert_eq!(l.qk_dim(), 576);
        assert!(l.min_bytes(Precision::Fp16) > 0);
        assert_eq!(l.rows(), 32 * 128);
    }

    #[test]
    fn tiny_configs_are_small() {
        assert!(mha_tiny().rows() < 100);
        assert!(mla_tiny().rows() < 100);
    }
}
