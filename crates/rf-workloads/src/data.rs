//! Deterministic synthetic data generation and a small dense matrix type.
//!
//! The paper's experiments run on random activations; reproducibility here
//! relies on seeded RNGs so that every kernel, test and benchmark sees the same
//! data for a given `(workload, seed)` pair.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major `f64` matrix.
///
/// This intentionally small type is shared by the reference kernels, the tile
/// interpreter and the benchmarks; it is not meant to be a general linear
/// algebra library.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows * cols");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix with uniformly distributed entries in `[low, high)`.
    pub fn random(rows: usize, cols: usize, seed: u64, low: f64, high: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.gen_range(low..high)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        self.data[r * self.cols + c] = value;
    }

    /// A view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// A uniformly-random vector in `[low, high)` with a deterministic seed.
pub fn random_vec(len: usize, seed: u64, low: f64, high: f64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(low..high)).collect()
}

/// A uniformly-random row-major matrix in `[low, high)` with a deterministic seed.
pub fn random_matrix(rows: usize, cols: usize, seed: u64, low: f64, high: f64) -> Matrix {
    Matrix::random(rows, cols, seed, low, high)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        m.row_mut(0)[0] = 1.0;
        assert_eq!(m.as_slice()[0], 1.0);
    }

    #[test]
    fn matmul_small_case() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::random(3, 5, 7, -1.0, 1.0);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn random_generation_is_deterministic() {
        assert_eq!(random_vec(16, 42, -1.0, 1.0), random_vec(16, 42, -1.0, 1.0));
        assert_eq!(
            random_matrix(4, 4, 42, -1.0, 1.0),
            random_matrix(4, 4, 42, -1.0, 1.0)
        );
        assert_ne!(random_vec(16, 42, -1.0, 1.0), random_vec(16, 43, -1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        Matrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_matmul_transpose_identity(rows in 1usize..6, inner in 1usize..6, cols in 1usize..6, seed in 0u64..100) {
            // (A * B)^T == B^T * A^T
            let a = Matrix::random(rows, inner, seed, -2.0, 2.0);
            let b = Matrix::random(inner, cols, seed + 1, -2.0, 2.0);
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
        }

        #[test]
        fn prop_values_within_range(len in 1usize..64, seed in 0u64..100) {
            let v = random_vec(len, seed, -3.0, 3.0);
            prop_assert!(v.iter().all(|x| (-3.0..3.0).contains(x)));
        }
    }
}
