//! Traffic and flop accounting for tile programs.

/// The memory scope of a tile buffer (the GPU memory hierarchy of §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryScope {
    /// Global (HBM) memory.
    Global,
    /// Block-scoped shared memory.
    Shared,
    /// Per-thread register fragments.
    Fragment,
}

impl MemoryScope {
    /// Short name used by the pretty-printer.
    pub fn name(self) -> &'static str {
        match self {
            MemoryScope::Global => "global",
            MemoryScope::Shared => "shared",
            MemoryScope::Fragment => "fragment",
        }
    }
}

/// Aggregate cost of executing a tile program once (all blocks, all stages).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostSummary {
    /// Bytes moved between global memory and on-chip storage.
    pub global_bytes: u64,
    /// Bytes moved between shared memory and register fragments.
    pub shared_bytes: u64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Number of kernel launches required (1 for a fused single-kernel
    /// program; >1 when a separate combine kernel is needed).
    pub kernel_launches: u32,
    /// Bytes of shared memory required per block (peak).
    pub shared_mem_per_block: u64,
    /// Registers (in f32 equivalents) required per thread (rough estimate).
    pub registers_per_thread: u64,
}

impl CostSummary {
    /// Adds another summary's traffic and flops (kernel launches add too; the
    /// per-block peaks take the maximum).
    pub fn combine(&self, other: &CostSummary) -> CostSummary {
        CostSummary {
            global_bytes: self.global_bytes + other.global_bytes,
            shared_bytes: self.shared_bytes + other.shared_bytes,
            flops: self.flops + other.flops,
            kernel_launches: self.kernel_launches + other.kernel_launches,
            shared_mem_per_block: self.shared_mem_per_block.max(other.shared_mem_per_block),
            registers_per_thread: self.registers_per_thread.max(other.registers_per_thread),
        }
    }

    /// Arithmetic intensity in flops per global byte (0 when no traffic).
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.global_bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.global_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_adds_traffic_and_takes_peak_shared() {
        let a = CostSummary {
            global_bytes: 100,
            shared_bytes: 10,
            flops: 1000,
            kernel_launches: 1,
            shared_mem_per_block: 32,
            registers_per_thread: 16,
        };
        let b = CostSummary {
            global_bytes: 50,
            shared_bytes: 20,
            flops: 500,
            kernel_launches: 2,
            shared_mem_per_block: 64,
            registers_per_thread: 8,
        };
        let c = a.combine(&b);
        assert_eq!(c.global_bytes, 150);
        assert_eq!(c.flops, 1500);
        assert_eq!(c.kernel_launches, 3);
        assert_eq!(c.shared_mem_per_block, 64);
        assert_eq!(c.registers_per_thread, 16);
    }

    #[test]
    fn arithmetic_intensity() {
        let a = CostSummary {
            global_bytes: 100,
            flops: 400,
            ..Default::default()
        };
        assert_eq!(a.arithmetic_intensity(), 4.0);
        assert_eq!(CostSummary::default().arithmetic_intensity(), 0.0);
    }

    #[test]
    fn scope_names() {
        assert_eq!(MemoryScope::Global.name(), "global");
        assert_eq!(MemoryScope::Shared.name(), "shared");
        assert_eq!(MemoryScope::Fragment.name(), "fragment");
    }
}
