//! TileOps, tile buffers and tile programs (Figure 10 of the paper).

use std::fmt;

use rf_algebra::BinaryOp;

use crate::cost::{CostSummary, MemoryScope};
use crate::exec::ExecBinding;

/// A tile buffer: a named on-chip or global region with a shape, a memory
/// scope and an element width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileBuffer {
    /// Buffer name.
    pub name: String,
    /// Extent of each dimension.
    pub shape: Vec<usize>,
    /// Where the buffer lives.
    pub scope: MemoryScope,
    /// Bytes per element (1 for FP8, 2 for FP16, 4 for FP32 accumulators).
    pub element_bytes: u32,
}

impl TileBuffer {
    /// Creates a buffer.
    pub fn new(
        name: impl Into<String>,
        shape: Vec<usize>,
        scope: MemoryScope,
        element_bytes: u32,
    ) -> Self {
        TileBuffer {
            name: name.into(),
            shape,
            scope,
            element_bytes,
        }
    }

    /// Total elements.
    pub fn elements(&self) -> u64 {
        self.shape.iter().map(|&d| d as u64).product::<u64>().max(1)
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        self.elements() * self.element_bytes as u64
    }
}

/// Precision tag implied by an input element width: 1 byte → `"fp8"`,
/// 4 bytes → `"fp32"`, anything else (2-byte FP16/BF16) → `"fp16"`.
pub fn precision_for_element_bytes(element_bytes: u32) -> &'static str {
    match element_bytes {
        1 => "fp8",
        4 => "fp32",
        _ => "fp16",
    }
}

/// One tile-level operation (the grammar of Figure 10).
#[derive(Debug, Clone, PartialEq)]
pub enum TileOp {
    /// `copy(src, dst)`: moves `elements` elements between two tiles.
    Copy {
        /// Source tile name.
        src: String,
        /// Destination tile name.
        dst: String,
        /// Number of elements moved.
        elements: u64,
    },
    /// `gemm(a, b, c)`: `c += a * b` on an `m × k` by `k × n` tile pair.
    Gemm {
        /// Left operand tile.
        a: String,
        /// Right operand tile.
        b: String,
        /// Accumulator tile.
        c: String,
        /// Rows of `a`/`c`.
        m: u64,
        /// Columns of `b`/`c`.
        n: u64,
        /// Reduction depth.
        k: u64,
    },
    /// `reduce(src, dst, axis, op)`: reduces `rows × axis_len` down to `rows`.
    Reduce {
        /// Source tile.
        src: String,
        /// Destination tile.
        dst: String,
        /// Length of the reduced axis.
        axis_len: u64,
        /// Number of independent rows reduced.
        rows: u64,
        /// Reduction operator.
        op: BinaryOp,
    },
    /// `parallel(buf[idx] , f(args), iters, ranges)`: an elementwise map over
    /// `elements` elements costing `flops_per_element` each. The expression is
    /// kept as display text (it has already been validated at the scalar level).
    Parallel {
        /// Human-readable expression, e.g. `psum[i] *= exp(pmax_prev[i] - pmax[i])`.
        expr: String,
        /// Number of elements written.
        elements: u64,
        /// Scalar operations per element.
        flops_per_element: u64,
    },
    /// `fill(tile, c)`: initialises a tile with a constant.
    Fill {
        /// Destination tile.
        tile: String,
        /// Fill value.
        value: f64,
        /// Number of elements filled.
        elements: u64,
    },
}

impl fmt::Display for TileOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileOp::Copy { src, dst, .. } => write!(f, "copy({src}, {dst})"),
            TileOp::Gemm { a, b, c, .. } => write!(f, "gemm({a}, {b}, {c})"),
            TileOp::Reduce { src, dst, op, .. } => {
                write!(f, "reduce({src}, {dst}, axis=1, op={op})")
            }
            TileOp::Parallel { expr, .. } => write!(f, "parallel({expr})"),
            TileOp::Fill { tile, value, .. } => write!(f, "fill({tile}, {value})"),
        }
    }
}

/// The main per-block loop of a tile program: `iterations` pipeline stages,
/// each executing the same TileOp sequence on the next input tile.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageLoop {
    /// Number of loop iterations (KV blocks, K blocks, …).
    pub iterations: u64,
    /// The TileOps executed per iteration.
    pub ops: Vec<TileOp>,
}

/// A tile-level program: the unit handed to code generation and to the GPU
/// performance model. A program describes the work of one kernel; programs
/// needing a separate combine kernel (Multi-Segment strategy) chain it via
/// [`TileProgram::combine_kernel`].
#[derive(Debug, Clone, PartialEq)]
pub struct TileProgram {
    /// Program name.
    pub name: String,
    /// Number of thread blocks launched.
    pub grid_blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Software-pipeline depth (1 = no pipelining).
    pub pipeline_depth: u32,
    /// Dominant compute precision of the kernel's inner loops (`"fp8"`,
    /// `"fp16"` or `"fp32"`), used by the GPU model to pick the peak
    /// throughput the kernel is rated against.
    pub precision: &'static str,
    /// All tile buffers used by one block.
    pub buffers: Vec<TileBuffer>,
    /// Ops executed once per block before the main loop.
    pub prologue: Vec<TileOp>,
    /// The main per-block loop.
    pub main_loop: StageLoop,
    /// Ops executed once per block after the main loop.
    pub epilogue: Vec<TileOp>,
    /// Optional separate combine kernel (e.g. the FlashDecoding merge).
    pub combine_kernel: Option<Box<TileProgram>>,
    /// Execution binding: the reduction semantics and clamped loop extents the
    /// [`crate::exec`] virtual machine needs to run the program over real
    /// tensors. `None` for cost-model-only programs (they can be displayed and
    /// costed but not executed).
    pub binding: Option<ExecBinding>,
}

impl TileProgram {
    /// Creates an empty program with the given launch configuration.
    pub fn new(name: impl Into<String>, grid_blocks: u64, threads_per_block: u32) -> Self {
        TileProgram {
            name: name.into(),
            grid_blocks,
            threads_per_block,
            pipeline_depth: 1,
            precision: "fp16",
            buffers: Vec::new(),
            prologue: Vec::new(),
            main_loop: StageLoop::default(),
            epilogue: Vec::new(),
            combine_kernel: None,
            binding: None,
        }
    }

    /// Looks up a buffer by name.
    pub fn buffer(&self, name: &str) -> Option<&TileBuffer> {
        self.buffers.iter().find(|b| b.name == name)
    }

    /// Number of TileOps executed per block (prologue + all loop iterations +
    /// epilogue).
    pub fn ops_per_block(&self) -> u64 {
        self.prologue.len() as u64
            + self.main_loop.iterations * self.main_loop.ops.len() as u64
            + self.epilogue.len() as u64
    }

    fn op_cost(&self, op: &TileOp) -> CostSummary {
        let mut cost = CostSummary::default();
        match op {
            TileOp::Copy { src, dst, elements } => {
                let src_scope = self
                    .buffer(src)
                    .map(|b| b.scope)
                    .unwrap_or(MemoryScope::Global);
                let dst_scope = self
                    .buffer(dst)
                    .map(|b| b.scope)
                    .unwrap_or(MemoryScope::Shared);
                let width = self
                    .buffer(dst)
                    .or_else(|| self.buffer(src))
                    .map(|b| b.element_bytes as u64)
                    .unwrap_or(2);
                let bytes = elements * width;
                if src_scope == MemoryScope::Global || dst_scope == MemoryScope::Global {
                    cost.global_bytes += bytes;
                } else {
                    cost.shared_bytes += bytes;
                }
            }
            TileOp::Gemm { m, n, k, .. } => {
                cost.flops += 2 * m * n * k;
            }
            TileOp::Reduce { axis_len, rows, .. } => {
                cost.flops += axis_len * rows;
            }
            TileOp::Parallel {
                elements,
                flops_per_element,
                ..
            } => {
                cost.flops += elements * flops_per_element;
            }
            TileOp::Fill { .. } => {}
        }
        cost
    }

    /// Aggregate execution cost across the whole grid, including the combine
    /// kernel when present.
    pub fn cost(&self) -> CostSummary {
        let mut per_block = CostSummary::default();
        for op in &self.prologue {
            per_block = per_block.combine(&self.op_cost(op));
        }
        let mut per_iter = CostSummary::default();
        for op in &self.main_loop.ops {
            per_iter = per_iter.combine(&self.op_cost(op));
        }
        per_block.global_bytes += per_iter.global_bytes * self.main_loop.iterations;
        per_block.shared_bytes += per_iter.shared_bytes * self.main_loop.iterations;
        per_block.flops += per_iter.flops * self.main_loop.iterations;
        for op in &self.epilogue {
            per_block = per_block.combine(&self.op_cost(op));
        }

        let shared_mem_per_block: u64 = self
            .buffers
            .iter()
            .filter(|b| b.scope == MemoryScope::Shared)
            .map(TileBuffer::bytes)
            .sum();
        let fragment_bytes: u64 = self
            .buffers
            .iter()
            .filter(|b| b.scope == MemoryScope::Fragment)
            .map(TileBuffer::bytes)
            .sum();

        let mut total = CostSummary {
            global_bytes: per_block.global_bytes * self.grid_blocks,
            shared_bytes: per_block.shared_bytes * self.grid_blocks,
            flops: per_block.flops * self.grid_blocks,
            kernel_launches: 1,
            shared_mem_per_block,
            registers_per_thread: (fragment_bytes / 4)
                .div_ceil(self.threads_per_block.max(1) as u64),
        };
        if let Some(combine) = &self.combine_kernel {
            total = total.combine(&combine.cost());
        }
        total
    }
}

impl fmt::Display for TileProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "// {} — grid = {}, threads = {}, pipeline depth = {}",
            self.name, self.grid_blocks, self.threads_per_block, self.pipeline_depth
        )?;
        writeln!(
            f,
            "bx = launch_thread(\"blockIdx.x\", {})",
            self.grid_blocks
        )?;
        for b in &self.buffers {
            let dims: Vec<String> = b.shape.iter().map(|d| d.to_string()).collect();
            writeln!(
                f,
                "alloc_{}({}, [{}])",
                b.scope.name(),
                b.name,
                dims.join(", ")
            )?;
        }
        for op in &self.prologue {
            writeln!(f, "{op}")?;
        }
        writeln!(f, "for stage in range({}):", self.main_loop.iterations)?;
        for op in &self.main_loop.ops {
            writeln!(f, "    {op}")?;
        }
        for op in &self.epilogue {
            writeln!(f, "{op}")?;
        }
        if let Some(combine) = &self.combine_kernel {
            writeln!(f, "\n// combine kernel")?;
            write!(f, "{combine}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> TileProgram {
        let mut p = TileProgram::new("sample", 4, 128);
        p.buffers = vec![
            TileBuffer::new("Q", vec![128, 64], MemoryScope::Global, 2),
            TileBuffer::new("Q_shared", vec![128, 64], MemoryScope::Shared, 2),
            TileBuffer::new("P_frag", vec![128, 128], MemoryScope::Fragment, 4),
        ];
        p.prologue = vec![TileOp::Copy {
            src: "Q".into(),
            dst: "Q_shared".into(),
            elements: 128 * 64,
        }];
        p.main_loop = StageLoop {
            iterations: 4,
            ops: vec![
                TileOp::Gemm {
                    a: "Q_shared".into(),
                    b: "K_shared".into(),
                    c: "P_frag".into(),
                    m: 128,
                    n: 128,
                    k: 64,
                },
                TileOp::Reduce {
                    src: "P_frag".into(),
                    dst: "pmax".into(),
                    axis_len: 128,
                    rows: 128,
                    op: BinaryOp::Max,
                },
                TileOp::Parallel {
                    expr: "pexp[i,j] = exp(P[i,j] - pmax[i])".into(),
                    elements: 128 * 128,
                    flops_per_element: 2,
                },
            ],
        };
        p.epilogue = vec![TileOp::Copy {
            src: "o_frag".into(),
            dst: "o".into(),
            elements: 128 * 64,
        }];
        p
    }

    #[test]
    fn cost_accumulates_across_grid_and_iterations() {
        let p = sample_program();
        let cost = p.cost();
        assert_eq!(cost.kernel_launches, 1);
        // Prologue copy: 128*64 elements * 2 bytes * 4 blocks; epilogue copy
        // falls back to 2-byte width since `o` is undeclared.
        assert!(cost.global_bytes >= (128 * 64 * 2 * 4) as u64 * 2);
        // 4 iterations of a 128x128x64 gemm per block, 4 blocks.
        assert!(cost.flops >= 2 * 128 * 128 * 64 * 4 * 4);
        assert_eq!(cost.shared_mem_per_block, 128 * 64 * 2);
        assert!(cost.registers_per_thread > 0);
        assert!(cost.arithmetic_intensity() > 1.0);
    }

    #[test]
    fn ops_per_block_counts_loop_iterations() {
        let p = sample_program();
        assert_eq!(p.ops_per_block(), 1 + 4 * 3 + 1);
    }

    #[test]
    fn display_contains_figure_style_ops() {
        let p = sample_program();
        let text = p.to_string();
        assert!(text.contains("launch_thread(\"blockIdx.x\", 4)"));
        assert!(text.contains("gemm(Q_shared, K_shared, P_frag)"));
        assert!(text.contains("reduce(P_frag, pmax, axis=1, op=max)"));
        assert!(text.contains("for stage in range(4):"));
    }

    #[test]
    fn combine_kernel_adds_a_launch() {
        let mut p = sample_program();
        p.combine_kernel = Some(Box::new(TileProgram::new("combine", 4, 128)));
        assert_eq!(p.cost().kernel_launches, 2);
        assert!(p.to_string().contains("// combine kernel"));
    }

    #[test]
    fn buffer_helpers() {
        let b = TileBuffer::new("t", vec![4, 8], MemoryScope::Shared, 4);
        assert_eq!(b.elements(), 32);
        assert_eq!(b.bytes(), 128);
    }
}
