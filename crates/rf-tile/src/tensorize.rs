//! Tensorization and Parallelization passes (§4.4).
//!
//! **Tensorization** turns the fused scalar kernel into a tile program:
//!
//! * *Blockization* — the independent cascade rows are partitioned into block
//!   tiles; the shared reduction axis is partitioned into per-iteration tiles.
//! * *Block-level buffer management* — explicit `copy` ops move input tiles
//!   from global to shared memory, accumulators live in register fragments,
//!   and buffer sizes are compacted to the tile footprint.
//! * *Conversion to TileOps* — the per-reduction work becomes `reduce` +
//!   `parallel` (correction) ops, GEMM-shaped reductions become `gemm`.
//!
//! **Parallelization** binds block tiles to `blockIdx.x`, i.e. fixes the grid.
//!
//! The pass exposes the knob that distinguishes the paper's two computation
//! modes: in **incremental** mode the per-iteration state is constant-sized
//! and corrections run every iteration; in **non-incremental** mode the whole
//! axis must be staged in shared memory before the reductions run, so shared
//! memory grows linearly with the axis length (Figure 4, §5.4).

use crate::cost::MemoryScope;
use crate::ops::{StageLoop, TileBuffer, TileOp, TileProgram};

/// Configuration for the tensorization pass (the auto-tuner's search space,
/// §4.4: block tile size, threads per block, software pipeline depth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TensorizeConfig {
    /// Cascade rows processed by one block.
    pub block_rows: usize,
    /// Elements of the shared reduction axis consumed per main-loop iteration.
    pub block_axis: usize,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Software pipeline depth.
    pub pipeline_depth: u32,
    /// Bytes per input element.
    pub element_bytes: u32,
    /// Incremental (streaming) mode vs non-incremental (stage-everything) mode.
    pub incremental: bool,
}

impl Default for TensorizeConfig {
    fn default() -> Self {
        TensorizeConfig {
            block_rows: 128,
            block_axis: 128,
            threads_per_block: 128,
            pipeline_depth: 2,
            element_bytes: 2,
            incremental: true,
        }
    }
}

/// Tensorizes a generic fused cascade of `num_reductions` dependent reductions
/// over an axis of length `axis_len`, applied independently to `rows` rows.
///
/// The returned program is a single fused kernel: the input is loaded once,
/// every reduction's running state lives on-chip, and corrections are applied
/// per iteration (incremental) or once after staging (non-incremental).
pub fn tensorize_cascade(
    name: &str,
    num_reductions: usize,
    axis_len: usize,
    rows: usize,
    cfg: &TensorizeConfig,
) -> TileProgram {
    assert!(num_reductions > 0, "a cascade has at least one reduction");
    assert!(
        axis_len > 0 && rows > 0,
        "axis length and rows must be positive"
    );
    let block_rows = cfg.block_rows.min(rows).max(1);
    let block_axis = cfg.block_axis.min(axis_len).max(1);
    let grid_blocks = rows.div_ceil(block_rows) as u64;
    let iterations = axis_len.div_ceil(block_axis) as u64;

    let mut program = TileProgram::new(format!("fused_{name}"), grid_blocks, cfg.threads_per_block);
    program.pipeline_depth = cfg.pipeline_depth;
    program.precision = crate::ops::precision_for_element_bytes(cfg.element_bytes);

    // Input tile staged per iteration; in non-incremental mode the whole axis
    // must be resident before the reductions can run.
    let staged_axis = if cfg.incremental {
        block_axis
    } else {
        axis_len
    };
    program.buffers.push(TileBuffer::new(
        "x",
        vec![rows, axis_len],
        MemoryScope::Global,
        cfg.element_bytes,
    ));
    program.buffers.push(TileBuffer::new(
        "x_shared",
        vec![block_rows, staged_axis],
        MemoryScope::Shared,
        cfg.element_bytes,
    ));
    for i in 0..num_reductions {
        program.buffers.push(TileBuffer::new(
            format!("state{i}"),
            vec![block_rows],
            MemoryScope::Fragment,
            4,
        ));
        program.buffers.push(TileBuffer::new(
            format!("state{i}_prev"),
            vec![block_rows],
            MemoryScope::Fragment,
            4,
        ));
    }
    program.buffers.push(TileBuffer::new(
        "out",
        vec![rows, num_reductions],
        MemoryScope::Global,
        4,
    ));

    for i in 0..num_reductions {
        program.prologue.push(TileOp::Fill {
            tile: format!("state{i}"),
            value: 0.0,
            elements: block_rows as u64,
        });
    }

    let per_iter_reduction_ops = |ops: &mut Vec<TileOp>, axis: usize| {
        for i in 0..num_reductions {
            if i > 0 && cfg.incremental {
                // Store previous result + correction (steps 1 and 2 of the
                // fused reduction template).
                ops.push(TileOp::Copy {
                    src: format!("state{i}"),
                    dst: format!("state{i}_prev"),
                    elements: block_rows as u64,
                });
                ops.push(TileOp::Parallel {
                    expr: format!(
                        "state{i}[r] *= correction(state{}_prev[r], state{}[r])",
                        i - 1,
                        i - 1
                    ),
                    elements: block_rows as u64,
                    flops_per_element: 3,
                });
            }
            ops.push(TileOp::Reduce {
                src: "x_shared".into(),
                dst: format!("state{i}"),
                axis_len: axis as u64,
                rows: block_rows as u64,
                op: rf_algebra::BinaryOp::Add,
            });
        }
    };

    if cfg.incremental {
        let mut ops = vec![TileOp::Copy {
            src: "x".into(),
            dst: "x_shared".into(),
            elements: (block_rows * block_axis) as u64,
        }];
        per_iter_reduction_ops(&mut ops, block_axis);
        program.main_loop = StageLoop { iterations, ops };
    } else {
        // Stage the whole axis, then run the reductions once.
        program.main_loop = StageLoop {
            iterations,
            ops: vec![TileOp::Copy {
                src: "x".into(),
                dst: "x_shared".into(),
                elements: (block_rows * block_axis) as u64,
            }],
        };
        let mut ops = Vec::new();
        per_iter_reduction_ops(&mut ops, axis_len);
        program.epilogue.extend(ops);
    }

    program.epilogue.push(TileOp::Copy {
        src: "state0".into(),
        dst: "out".into(),
        elements: (block_rows * num_reductions) as u64,
    });
    program
}

/// The Parallelization pass: binds the program to a grid of `grid_blocks`
/// blocks (one block index per block tile).
pub fn parallelize(mut program: TileProgram, grid_blocks: u64) -> TileProgram {
    assert!(grid_blocks > 0, "grid must contain at least one block");
    program.grid_blocks = grid_blocks;
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn incremental_shared_memory_is_constant_in_axis_length() {
        let cfg = TensorizeConfig::default();
        let small = tensorize_cascade("softmax", 2, 1024, 512, &cfg);
        let large = tensorize_cascade("softmax", 2, 65536, 512, &cfg);
        assert_eq!(
            small.cost().shared_mem_per_block,
            large.cost().shared_mem_per_block,
            "incremental mode keeps O(1) on-chip state"
        );
    }

    #[test]
    fn non_incremental_shared_memory_grows_with_axis_length() {
        let cfg = TensorizeConfig {
            incremental: false,
            ..TensorizeConfig::default()
        };
        let small = tensorize_cascade("softmax", 2, 1024, 512, &cfg);
        let large = tensorize_cascade("softmax", 2, 8192, 512, &cfg);
        assert!(large.cost().shared_mem_per_block > small.cost().shared_mem_per_block);
        let ratio =
            large.cost().shared_mem_per_block as f64 / small.cost().shared_mem_per_block as f64;
        assert!(
            (ratio - 8.0).abs() < 0.5,
            "shared memory should scale with the staged axis"
        );
    }

    #[test]
    fn non_incremental_avoids_per_iteration_corrections() {
        let base = TensorizeConfig::default();
        let inc = tensorize_cascade("softmax", 2, 4096, 128, &base);
        let non = tensorize_cascade(
            "softmax",
            2,
            4096,
            128,
            &TensorizeConfig {
                incremental: false,
                ..base
            },
        );
        // Same memory traffic (input loaded once either way), fewer flops for
        // the non-incremental variant (no per-iteration correction), which is
        // the §5.4 observation that non-incremental wins at equal parallelism.
        assert_eq!(inc.cost().global_bytes, non.cost().global_bytes);
        assert!(non.cost().flops < inc.cost().flops);
    }

    #[test]
    fn element_width_sets_the_program_precision() {
        let base = TensorizeConfig::default();
        assert_eq!(tensorize_cascade("s", 1, 64, 64, &base).precision, "fp16");
        let fp8 = TensorizeConfig {
            element_bytes: 1,
            ..base
        };
        assert_eq!(tensorize_cascade("q", 1, 64, 64, &fp8).precision, "fp8");
        let fp32 = TensorizeConfig {
            element_bytes: 4,
            ..base
        };
        assert_eq!(tensorize_cascade("v", 1, 64, 64, &fp32).precision, "fp32");
    }

    #[test]
    fn grid_covers_all_rows() {
        let cfg = TensorizeConfig {
            block_rows: 100,
            ..TensorizeConfig::default()
        };
        let p = tensorize_cascade("quant", 2, 2048, 250, &cfg);
        assert_eq!(p.grid_blocks, 3);
        let p = parallelize(p, 8);
        assert_eq!(p.grid_blocks, 8);
    }

    #[test]
    #[should_panic(expected = "at least one reduction")]
    fn zero_reductions_panics() {
        tensorize_cascade("empty", 0, 16, 16, &TensorizeConfig::default());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_traffic_scales_linearly_with_rows(
            rows_pow in 5u32..10,
            axis_pow in 6u32..12,
        ) {
            let cfg = TensorizeConfig::default();
            let rows = 1usize << rows_pow;
            let axis = 1usize << axis_pow;
            let one = tensorize_cascade("softmax", 2, axis, rows, &cfg);
            let two = tensorize_cascade("softmax", 2, axis, rows * 2, &cfg);
            let ratio = two.cost().global_bytes as f64 / one.cost().global_bytes as f64;
            prop_assert!((ratio - 2.0).abs() < 0.25, "ratio = {ratio}");
        }

        #[test]
        fn prop_fused_program_is_single_kernel(
            reductions in 1usize..5,
            axis_pow in 4u32..12,
        ) {
            let p = tensorize_cascade("cascade", reductions, 1usize << axis_pow, 256, &TensorizeConfig::default());
            prop_assert_eq!(p.cost().kernel_launches, 1);
        }
    }
}
