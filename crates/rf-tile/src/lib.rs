//! Tile-level IR: the TileOps of Figure 10 and the tensorization pipeline.
//!
//! After ACRF produces fused expressions, RedFuser lowers them from the scalar
//! loop-nest IR to a **tile-level IR** (§4.4): buffers become tiles with an
//! explicit memory scope (global / shared / register fragment), and the body
//! becomes a sequence of TileOps — `copy`, `gemm`, `reduce`, `parallel`,
//! `fill` — grouped into per-block stages that a software pipeline can
//! overlap. This crate provides:
//!
//! * [`ops`] — the TileOp vocabulary, tile buffers and tile programs, with a
//!   pretty-printer that reproduces the style of Figures 12b/13b;
//! * [`tensorize`] — the Blockization / buffer-management / TileOp-conversion
//!   pass from scalar reduction parameters to a tile program, and the
//!   Parallelization pass that binds block tiles to block indices;
//! * [`cost`] — traffic and flop accounting per tile program, the interface
//!   consumed by the analytical GPU model in `rf-gpusim`;
//! * [`exec`] — a deterministic CPU virtual machine that runs a fully-bound
//!   tile program over real tensors, honouring the tuned tile sizes, segment
//!   counts and the store → correct → reduce template.

pub mod cost;
pub mod exec;
pub mod ops;
pub mod tensorize;

pub use cost::{CostSummary, MemoryScope};
pub use exec::{
    ExecBinding, ExecError, ExecInput, ExecOutput, ExecProfile, OpStats, Semantics, TopKDecision,
};
pub use ops::{precision_for_element_bytes, StageLoop, TileBuffer, TileOp, TileProgram};
pub use tensorize::{parallelize, tensorize_cascade, TensorizeConfig};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_compose() {
        let cfg = TensorizeConfig::default();
        let program = tensorize_cascade("softmax", 2, 1024, 1, &cfg);
        assert!(program.ops_per_block() > 0);
        assert!(program.cost().global_bytes > 0);
    }
}
