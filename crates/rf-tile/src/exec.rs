//! A deterministic CPU virtual machine for [`TileProgram`]s.
//!
//! The rest of this crate builds tile programs for *costing*: the GPU model
//! only needs op counts and buffer footprints. This module makes the same
//! programs *executable*, closing the loop the paper's §4 pipeline promises —
//! the kernel the tuner chose is the kernel that produces the numbers.
//!
//! # Execution model
//!
//! A program is executable when it carries an [`ExecBinding`]: the reduction
//! semantics of its cascade plus the **clamped** loop extents the lowering
//! baked in (rows per block tile, reduction-axis elements per main-loop
//! iteration, number of axis segments from the Multi-Segment strategy). The VM
//! mirrors the launch structure of the generated kernel exactly:
//!
//! * **grid** — independent output rows are processed in block tiles of
//!   [`ExecBinding::block_rows`] rows (one simulated thread block each);
//! * **segments** — the shared reduction axis is split into
//!   [`ExecBinding::segments`] contiguous ranges. Each segment produces a
//!   partial reduction state, exactly like the Multi-Segment strategy's
//!   independent CTAs; with one segment no partials exist (Single-Segment);
//! * **main loop** — within a segment the axis is consumed in tiles of
//!   [`ExecBinding::block_axis`] elements. Every tile goes through the
//!   paper's three-step fused reduction template: **store** the previous
//!   running state, **correct** the dependent accumulators for the state
//!   change, **reduce** the new tile into the running state;
//! * **combine kernel** — when segments > 1 the per-segment partials are
//!   merged with the level-`k` fused combine expression (Eq. 31 for softmax
//!   statistics, plain addition for group-like reductions, a rescaling merge
//!   for the FP8 accumulators);
//! * **epilogue** — the finalisation that the generated kernel's epilogue
//!   performs (normalisation, variance/inertia closed forms, de-quantisation,
//!   top-k probability extraction).
//!
//! The VM is deterministic: for a fixed program and input it performs the same
//! floating-point operations in the same order on every run. Different tuning
//! points change the association order of the reductions (that is exactly what
//! tiling does on hardware), so outputs across tuning points agree to rounding
//! error — never more. The one intentional exception is FP8 quant + GEMM,
//! where early tiles are quantised under a provisional scale (Eq. 21–22);
//! there the tile size moves results within the quantisation noise floor, the
//! same behaviour the hand-written fused kernel and the real generated kernel
//! exhibit.
//!
//! Inputs are borrowed views ([`ExecInput`]) so the serving hot path never
//! copies a tensor; outputs ([`ExecOutput`]) are owned.

use std::fmt;

use rf_algebra::BinaryOp;
use rf_workloads::Matrix;

use crate::ops::TileProgram;

// The simulated FP8 E4M3 grid is defined once in `rf_workloads::quant` and
// shared with the hand-written kernels, so the VM and the oracles perform
// bit-identical roundings.
pub use rf_workloads::{fp8_round, FP8_MAX};

/// The reduction semantics of an executable cascade: what the store → correct
/// → reduce template computes per tile and how the epilogue finalises it.
///
/// Workload-shape parameters that the input tensors cannot carry themselves
/// (the GEMM output width, the top-k count, the attention head split) live
/// here; everything else — row counts, axis lengths — is read from the live
/// input, clamped exactly the way the lowering clamps tile sizes to shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// Row-wise safe softmax: max reduction → corrected sum of exponentials →
    /// normalisation epilogue. Consumes [`ExecInput::Rows`], produces
    /// [`ExecOutput::Matrix`] of probabilities.
    Softmax,
    /// Row-wise population variance via the sum / sum-of-squares sufficient
    /// statistics. Consumes [`ExecInput::Rows`], produces one value per row.
    Variance,
    /// Fused attention over one `(batch, head)` slice: the FlashAttention
    /// online-softmax loop over KV tiles, with FlashDecoding partials and the
    /// combine merge when the program is Multi-Segment. Consumes
    /// [`ExecInput::Attention`], produces the `[q_len, head_dim]` output.
    Attention {
        /// Query/key dimension (sets the `1/sqrt(qk_dim)` score scale).
        qk_dim: usize,
        /// Value/output head dimension.
        head_dim: usize,
    },
    /// MoE routing: scoring GEMM + streaming softmax statistics + streaming
    /// top-k over the expert axis. Consumes [`ExecInput::Routing`], produces
    /// [`ExecOutput::TopK`].
    Routing {
        /// Experts selected per token.
        topk: usize,
    },
    /// FP8 per-token quantization + GEMM: running abs-max with accumulator
    /// rescaling (Eq. 21–22), de-quantisation in the epilogue. Consumes
    /// [`ExecInput::QuantGemm`], produces the `[m, n]` output matrix.
    QuantGemm {
        /// GEMM output width (columns of the weight matrix).
        n: usize,
    },
    /// Moment of inertia about the center of mass via the parallel-axis
    /// sufficient statistics `(Σm, Σm·x, Σm·‖x‖²)`. Consumes
    /// [`ExecInput::Inertia`], produces a single value.
    Inertia {
        /// Spatial dimension of the particle positions.
        dim: usize,
    },
}

impl Semantics {
    /// Short display name of the cascade family.
    pub fn name(&self) -> &'static str {
        match self {
            Semantics::Softmax => "softmax",
            Semantics::Variance => "variance",
            Semantics::Attention { .. } => "attention",
            Semantics::Routing { .. } => "routing",
            Semantics::QuantGemm { .. } => "quant-gemm",
            Semantics::Inertia { .. } => "inertia",
        }
    }
}

/// Everything the VM needs to run a [`TileProgram`]: the cascade semantics
/// plus the clamped loop extents of the tuned launch configuration.
///
/// The extents are the *compiled* shape; at execution time each is re-clamped
/// to the live input (`block_rows` to the actual row count, `block_axis` to
/// the per-segment axis length, `segments` to the axis length), mirroring the
/// clamps `rf-codegen` applies when it lowers a raw tuning point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecBinding {
    /// The reduction template the program instantiates.
    pub semantics: Semantics,
    /// Independent reduction rows of the compiled shape.
    pub rows: usize,
    /// Length of the shared reduction axis of the compiled shape.
    pub axis_len: usize,
    /// Rows per block tile (the tuned `block_rows`, already clamped).
    pub block_rows: usize,
    /// Axis elements per main-loop iteration (the tuned `block_axis`, already
    /// clamped to the per-segment extent).
    pub block_axis: usize,
    /// Number of axis segments (1 = Single-Segment; > 1 adds the combine
    /// step, exactly when the program carries a combine kernel).
    pub segments: usize,
}

/// Borrowed input tensors for one program execution. Each variant feeds one
/// [`Semantics`] family; the VM rejects mismatches with
/// [`ExecError::InputMismatch`].
#[derive(Debug, Clone, Copy)]
pub enum ExecInput<'a> {
    /// Independent rows reduced along the row axis (softmax, variance).
    Rows(&'a Matrix),
    /// One attention slice: `q` is `[q_len, qk_dim]`, `k` is
    /// `[kv_len, qk_dim]`, `v` is `[kv_len, head_dim]`.
    Attention {
        /// Query matrix.
        q: &'a Matrix,
        /// Key matrix.
        k: &'a Matrix,
        /// Value matrix.
        v: &'a Matrix,
    },
    /// MoE routing: token activations `[tokens, hd]`, router weights
    /// `[hd, experts]`.
    Routing {
        /// Token activations.
        x: &'a Matrix,
        /// Routing weight matrix.
        w: &'a Matrix,
    },
    /// FP8 quant + GEMM: activations `[m, k]`, weights `[k, n]`.
    QuantGemm {
        /// Activation matrix.
        a: &'a Matrix,
        /// Weight matrix.
        w: &'a Matrix,
    },
    /// Moment of inertia: per-particle masses and positions `[n, dim]`.
    Inertia {
        /// Particle masses.
        masses: &'a [f64],
        /// Particle positions.
        positions: &'a Matrix,
    },
}

impl ExecInput<'_> {
    /// Short name of the input kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            ExecInput::Rows(_) => "row-matrix",
            ExecInput::Attention { .. } => "attention (q/k/v)",
            ExecInput::Routing { .. } => "routing (x/w)",
            ExecInput::QuantGemm { .. } => "quant-gemm (a/w)",
            ExecInput::Inertia { .. } => "inertia (masses/positions)",
        }
    }
}

/// One token's routing decision: selected experts in decreasing probability
/// order with their normalised probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKDecision {
    /// Indices of the selected experts.
    pub experts: Vec<usize>,
    /// Normalised probabilities of the selected experts.
    pub probs: Vec<f64>,
}

/// Owned result of one program execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutput {
    /// A dense matrix (softmax probabilities, attention output, GEMM result).
    Matrix(Matrix),
    /// One scalar per row/system (variance, moment of inertia).
    Values(Vec<f64>),
    /// Per-token expert selections (MoE routing).
    TopK(Vec<TopKDecision>),
}

/// Errors reported by the VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The program carries no [`ExecBinding`] and therefore cannot be run.
    NotExecutable {
        /// Name of the program.
        program: String,
    },
    /// The input variant does not feed the program's semantics.
    InputMismatch {
        /// Name of the program.
        program: String,
        /// The input kind the semantics require.
        expected: &'static str,
        /// The input kind that was provided.
        got: &'static str,
    },
    /// The input tensor shapes disagree with the binding.
    ShapeMismatch {
        /// Name of the program.
        program: String,
        /// Human-readable description of the disagreement.
        detail: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NotExecutable { program } => {
                write!(f, "program `{program}` carries no execution binding")
            }
            ExecError::InputMismatch {
                program,
                expected,
                got,
            } => write!(
                f,
                "program `{program}` requires {expected} input, got {got}"
            ),
            ExecError::ShapeMismatch { program, detail } => {
                write!(f, "program `{program}`: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Executes `program` over `input` on the deterministic CPU VM.
///
/// The program must carry an [`ExecBinding`] (programs emitted by
/// `rf-codegen`'s lowering always do). Loop extents honour the tuned tile
/// sizes and segment counts, clamped to the live input shape the same way the
/// lowering clamps them to the compiled shape.
///
/// # Errors
///
/// [`ExecError::NotExecutable`] for unbound programs,
/// [`ExecError::InputMismatch`] / [`ExecError::ShapeMismatch`] when the input
/// cannot feed the binding.
pub fn execute(program: &TileProgram, input: &ExecInput<'_>) -> Result<ExecOutput, ExecError> {
    let binding = program
        .binding
        .as_ref()
        .ok_or_else(|| ExecError::NotExecutable {
            program: program.name.clone(),
        })?;
    let name = &program.name;
    match (&binding.semantics, input) {
        (Semantics::Softmax, ExecInput::Rows(m)) => exec_softmax(name, binding, m),
        (Semantics::Variance, ExecInput::Rows(m)) => exec_variance(name, binding, m),
        (Semantics::Attention { qk_dim, head_dim }, ExecInput::Attention { q, k, v }) => {
            exec_attention(name, binding, *qk_dim, *head_dim, q, k, v)
        }
        (Semantics::Routing { topk }, ExecInput::Routing { x, w }) => {
            exec_routing(name, binding, *topk, x, w)
        }
        (Semantics::QuantGemm { n }, ExecInput::QuantGemm { a, w }) => {
            exec_quant_gemm(name, binding, *n, a, w)
        }
        (Semantics::Inertia { dim }, ExecInput::Inertia { masses, positions }) => {
            exec_inertia(name, binding, *dim, masses, positions)
        }
        (semantics, other) => Err(ExecError::InputMismatch {
            program: name.clone(),
            expected: expected_kind(semantics),
            got: other.kind(),
        }),
    }
}

/// Per-op-kind counters of one profiled program execution.
///
/// Invocation, row and byte counts are the deterministic loop-structure
/// counts of the tile template — they depend only on the live shapes and the
/// tuned extents, never on tensor values — so profiles of identical
/// (program, shape) pairs are identical. `wall_ns` is measured: the
/// execution's host wall time apportioned across the ops by their share of
/// modelled traffic (the VM interleaves the template steps per tile, so
/// per-op timers would perturb exactly the loop being measured).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpStats {
    /// Op kind within the store → correct → reduce template.
    pub op: &'static str,
    /// Times the op ran (e.g. once per main-loop tile per row).
    pub invocations: u64,
    /// Output rows the op contributed to.
    pub rows: u64,
    /// Modelled bytes read.
    pub bytes_read: u64,
    /// Modelled bytes written.
    pub bytes_written: u64,
    /// Measured wall time attributed to this op, in nanoseconds.
    pub wall_ns: u64,
}

/// The op-level profile of one [`execute_profiled`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecProfile {
    /// Per-op counters, in template order.
    pub ops: Vec<OpStats>,
    /// Total measured wall time of the execution, in nanoseconds. The
    /// per-op `wall_ns` values sum exactly to this.
    pub wall_ns: u64,
}

/// Executes `program` over `input` exactly like [`execute`] and additionally
/// returns the op-level profile: the template's per-op invocation/row/byte
/// counts plus the measured wall time.
///
/// The numeric output is bit-identical to [`execute`]'s — this entry point
/// wraps the same interpreter without touching its loops, which is what lets
/// the serving engine keep the unprofiled path byte-for-byte unchanged when
/// profiling is off.
///
/// # Errors
///
/// Exactly the errors of [`execute`].
pub fn execute_profiled(
    program: &TileProgram,
    input: &ExecInput<'_>,
) -> Result<(ExecOutput, ExecProfile), ExecError> {
    let start = std::time::Instant::now();
    let output = execute(program, input)?;
    let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let binding = program
        .binding
        .as_ref()
        .expect("execute succeeded, so the program is bound");
    let mut ops = op_breakdown(binding, input);
    attribute_wall(&mut ops, wall_ns);
    Ok((output, ExecProfile { ops, wall_ns }))
}

/// Number of main-loop tiles and non-empty segments for a live axis length
/// under the binding's (clamped) segment count and tile width.
fn loop_extents(axis_len: usize, segments: usize, block_axis: usize) -> (u64, u64) {
    let ranges = segment_ranges(axis_len, segments);
    let tiles: usize = ranges
        .iter()
        .map(|&(start, end)| tile_ranges(start, end, block_axis).len())
        .sum();
    (tiles as u64, ranges.len() as u64)
}

/// The deterministic per-op counts of one execution: which template ops ran,
/// how often, over how many rows, touching how many modelled bytes. Mirrors
/// the loop structure of the `exec_*` interpreters (including their clamps).
fn op_breakdown(binding: &ExecBinding, input: &ExecInput<'_>) -> Vec<OpStats> {
    const F64: u64 = 8;
    let op = |op, invocations, rows, bytes_read, bytes_written| OpStats {
        op,
        invocations,
        rows,
        bytes_read,
        bytes_written,
        wall_ns: 0,
    };
    match (&binding.semantics, input) {
        (Semantics::Softmax, ExecInput::Rows(m)) => {
            let (rows, len) = (m.rows() as u64, m.cols() as u64);
            let (tiles, segs) = loop_extents(m.cols(), binding.segments, binding.block_axis);
            let mut ops = vec![
                op("store", rows * tiles, rows, 0, 0),
                op("correct", rows * tiles, rows, 0, 0),
                op("reduce", rows * tiles, rows, rows * len * F64, 0),
            ];
            if segs > 1 {
                ops.push(op("combine", rows * segs, rows, 0, 0));
            }
            ops.push(op(
                "epilogue",
                rows,
                rows,
                rows * len * F64,
                rows * len * F64,
            ));
            ops
        }
        (Semantics::Variance, ExecInput::Rows(m)) => {
            let (rows, len) = (m.rows() as u64, m.cols() as u64);
            let (tiles, segs) = loop_extents(m.cols(), binding.segments, binding.block_axis);
            let mut ops = vec![op("reduce", rows * tiles, rows, rows * len * F64, 0)];
            if segs > 1 {
                ops.push(op("combine", rows * segs, rows, 0, 0));
            }
            ops.push(op("epilogue", rows, rows, 0, rows * F64));
            ops
        }
        (Semantics::Attention { qk_dim, head_dim }, ExecInput::Attention { q, k, .. }) => {
            let (rows, kv) = (q.rows() as u64, k.rows() as u64);
            let (qk, hd) = (*qk_dim as u64, *head_dim as u64);
            let (tiles, segs) = loop_extents(k.rows(), binding.segments, binding.block_axis);
            let mut ops = vec![
                op(
                    "score-gemm",
                    rows * tiles,
                    rows,
                    rows * (tiles * qk + kv * qk) * F64,
                    0,
                ),
                op("store", rows * tiles, rows, 0, 0),
                op("correct", rows * tiles, rows, 0, rows * tiles * hd * F64),
                op(
                    "reduce",
                    rows * tiles,
                    rows,
                    rows * kv * hd * F64,
                    rows * kv * hd * F64,
                ),
            ];
            if segs > 1 {
                ops.push(op("combine", rows * segs, rows, rows * segs * hd * F64, 0));
            }
            ops.push(op("epilogue", rows, rows, 0, rows * hd * F64));
            ops
        }
        (Semantics::Routing { topk }, ExecInput::Routing { x, w }) => {
            let (tokens, hidden, experts) = (x.rows() as u64, x.cols() as u64, w.cols() as u64);
            let (_, segs) = loop_extents(w.cols(), binding.segments, binding.block_axis);
            let scores = tokens * experts;
            let mut ops = vec![
                op("score-gemm", scores, tokens, scores * hidden * 2 * F64, 0),
                op("store", scores, tokens, 0, 0),
                op("correct", scores, tokens, 0, 0),
                op("reduce", scores, tokens, 0, 0),
            ];
            if segs > 1 {
                ops.push(op("combine", tokens * segs, tokens, 0, 0));
            }
            ops.push(op(
                "epilogue",
                tokens,
                tokens,
                0,
                tokens * (*topk as u64) * 2 * F64,
            ));
            ops
        }
        (Semantics::QuantGemm { n }, ExecInput::QuantGemm { a, .. }) => {
            let (rows, k_len, width) = (a.rows() as u64, a.cols() as u64, *n as u64);
            let (tiles, segs) = loop_extents(a.cols(), binding.segments, binding.block_axis);
            let mut ops = vec![
                op("store", rows * tiles, rows, 0, 0),
                op("correct", rows * tiles, rows, 0, rows * tiles * width * F64),
                op(
                    "reduce",
                    rows * tiles,
                    rows,
                    rows * (2 * k_len + k_len * width) * F64,
                    0,
                ),
            ];
            if segs > 1 {
                ops.push(op(
                    "combine",
                    rows * segs,
                    rows,
                    rows * segs * width * F64,
                    0,
                ));
            }
            ops.push(op("epilogue", rows, rows, 0, rows * width * F64));
            ops
        }
        (Semantics::Inertia { dim }, ExecInput::Inertia { masses, .. }) => {
            let particles = masses.len() as u64;
            let (tiles, segs) = loop_extents(masses.len(), binding.segments, binding.block_axis);
            let mut ops = vec![op(
                "reduce",
                tiles,
                1,
                particles * (1 + *dim as u64) * F64,
                0,
            )];
            if segs > 1 {
                ops.push(op("combine", segs, 1, 0, 0));
            }
            ops.push(op("epilogue", 1, 1, 0, F64));
            ops
        }
        // `execute` validated the (semantics, input) pairing already.
        _ => Vec::new(),
    }
}

/// Apportions the measured wall time across ops by their modelled traffic
/// (bytes moved, plus a small per-invocation term so compute-only ops like
/// `store` keep a visible share). The shares sum exactly to `wall_ns`.
fn attribute_wall(ops: &mut [OpStats], wall_ns: u64) {
    if ops.is_empty() {
        return;
    }
    let weights: Vec<u128> = ops
        .iter()
        .map(|o| (o.bytes_read + o.bytes_written).max(1) as u128 + 16 * o.invocations as u128)
        .collect();
    let total_weight: u128 = weights.iter().sum();
    let mut assigned = 0u64;
    let mut heaviest = 0usize;
    for (index, (stats, weight)) in ops.iter_mut().zip(&weights).enumerate() {
        let share = (wall_ns as u128 * weight / total_weight) as u64;
        stats.wall_ns = share;
        assigned += share;
        if *weight > weights[heaviest] {
            heaviest = index;
        }
    }
    ops[heaviest].wall_ns += wall_ns - assigned;
}

fn expected_kind(semantics: &Semantics) -> &'static str {
    match semantics {
        Semantics::Softmax | Semantics::Variance => "row-matrix",
        Semantics::Attention { .. } => "attention (q/k/v)",
        Semantics::Routing { .. } => "routing (x/w)",
        Semantics::QuantGemm { .. } => "quant-gemm (a/w)",
        Semantics::Inertia { .. } => "inertia (masses/positions)",
    }
}

fn shape_err(program: &str, detail: impl Into<String>) -> ExecError {
    ExecError::ShapeMismatch {
        program: program.to_string(),
        detail: detail.into(),
    }
}

/// The contiguous `[start, end)` axis ranges of the Multi-Segment split:
/// `ceil(axis_len / segments)` elements per segment, empty trailing segments
/// dropped (the lowering launches no blocks for them either).
fn segment_ranges(axis_len: usize, segments: usize) -> Vec<(usize, usize)> {
    let segments = segments.clamp(1, axis_len.max(1));
    let per_segment = axis_len.div_ceil(segments);
    (0..segments)
        .filter_map(|s| {
            let start = s * per_segment;
            let end = ((s + 1) * per_segment).min(axis_len);
            (start < end).then_some((start, end))
        })
        .collect()
}

/// The main-loop tile ranges of one segment.
fn tile_ranges(start: usize, end: usize, block_axis: usize) -> Vec<(usize, usize)> {
    let block = block_axis.max(1);
    (start..end)
        .step_by(block)
        .map(|tile_start| (tile_start, (tile_start + block).min(end)))
        .collect()
}

/// Row-block tiles of the simulated grid (one per thread block).
fn row_blocks(rows: usize, block_rows: usize) -> Vec<(usize, usize)> {
    tile_ranges(0, rows, block_rows)
}

/// Running online-softmax statistics: the fused max / rescaled-sum pair.
#[derive(Debug, Clone, Copy)]
struct OnlineStats {
    max: f64,
    sum: f64,
}

impl OnlineStats {
    fn identity() -> Self {
        OnlineStats {
            max: BinaryOp::Max.identity(),
            sum: BinaryOp::Add.identity(),
        }
    }

    /// The level-`k` fused combine of two disjoint segments (Eq. 31).
    fn merge(self, other: OnlineStats) -> OnlineStats {
        let max = BinaryOp::Max.apply(self.max, other.max);
        let rescale = |s: OnlineStats| {
            if s.sum == 0.0 {
                0.0
            } else {
                s.sum * (s.max - max).exp()
            }
        };
        OnlineStats {
            max,
            sum: rescale(self) + rescale(other),
        }
    }
}

/// Softmax statistics of one row over `[start, end)`, consumed tile by tile
/// with the store → correct → reduce template.
fn softmax_segment_stats(
    row: &[f64],
    (start, end): (usize, usize),
    block_axis: usize,
) -> OnlineStats {
    let mut stats = OnlineStats::identity();
    for (tile_start, tile_end) in tile_ranges(start, end, block_axis) {
        // Store: snapshot the previous running maximum.
        let prev_max = stats.max;
        let tile = &row[tile_start..tile_end];
        let tile_max = tile
            .iter()
            .copied()
            .fold(BinaryOp::Max.identity(), f64::max);
        let new_max = BinaryOp::Max.apply(prev_max, tile_max);
        // Correct: rescale the dependent sum for the moved maximum.
        if stats.sum != 0.0 {
            stats.sum *= (prev_max - new_max).exp();
        }
        // Reduce: fold the tile under the updated maximum.
        for &v in tile {
            stats.sum += (v - new_max).exp();
        }
        stats.max = new_max;
    }
    stats
}

fn exec_softmax(name: &str, binding: &ExecBinding, m: &Matrix) -> Result<ExecOutput, ExecError> {
    let (rows, len) = (m.rows(), m.cols());
    if rows == 0 || len == 0 {
        return Err(shape_err(name, "softmax input must be non-empty"));
    }
    let block_rows = binding.block_rows.clamp(1, rows);
    let segments = segment_ranges(len, binding.segments);
    let mut out = Matrix::zeros(rows, len);
    for (r0, r1) in row_blocks(rows, block_rows) {
        for r in r0..r1 {
            let row = m.row(r);
            let stats = segments
                .iter()
                .map(|&range| softmax_segment_stats(row, range, binding.block_axis))
                .fold(OnlineStats::identity(), OnlineStats::merge);
            let out_row = out.row_mut(r);
            for (j, &v) in row.iter().enumerate() {
                out_row[j] = (v - stats.max).exp() / stats.sum;
            }
        }
    }
    Ok(ExecOutput::Matrix(out))
}

fn exec_variance(name: &str, binding: &ExecBinding, m: &Matrix) -> Result<ExecOutput, ExecError> {
    let (rows, len) = (m.rows(), m.cols());
    if rows == 0 || len == 0 {
        return Err(shape_err(name, "variance input must be non-empty"));
    }
    let block_rows = binding.block_rows.clamp(1, rows);
    let segments = segment_ranges(len, binding.segments);
    let mut out = Vec::with_capacity(rows);
    for (r0, r1) in row_blocks(rows, block_rows) {
        for r in r0..r1 {
            let row = m.row(r);
            // Both reductions are group-like (plain sums): corrections are the
            // identity and segment partials combine by addition.
            let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
            for &(start, end) in &segments {
                let (mut seg_sum, mut seg_sq) = (0.0f64, 0.0f64);
                for (tile_start, tile_end) in tile_ranges(start, end, binding.block_axis) {
                    for &v in &row[tile_start..tile_end] {
                        seg_sum += v;
                        seg_sq += v * v;
                    }
                }
                sum = BinaryOp::Add.apply(sum, seg_sum);
                sum_sq = BinaryOp::Add.apply(sum_sq, seg_sq);
            }
            let n = len as f64;
            let mean = sum / n;
            out.push((sum_sq / n - mean * mean).max(0.0));
        }
    }
    Ok(ExecOutput::Values(out))
}

/// Per-(row, segment) attention partial: max-shifted unnormalised output plus
/// the running softmax statistics (the FlashDecoding split state).
struct AttentionPartial {
    stats: OnlineStats,
    acc: Vec<f64>,
}

#[allow(clippy::too_many_arguments)]
fn attention_row_segment(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    row: usize,
    scale: f64,
    (start, end): (usize, usize),
    block_axis: usize,
    head_dim: usize,
) -> AttentionPartial {
    let mut stats = OnlineStats::identity();
    let mut acc = vec![0.0f64; head_dim];
    let qk_dim = q.cols();
    let mut scores = Vec::with_capacity(block_axis.max(1));
    for (tile_start, tile_end) in tile_ranges(start, end, block_axis) {
        // Reduce (reduction 1): the scoring GEMM tile Q·Kᵀ.
        scores.clear();
        let mut tile_max = BinaryOp::Max.identity();
        for j in tile_start..tile_end {
            let mut dot = 0.0;
            for t in 0..qk_dim {
                dot += q.get(row, t) * k.get(j, t);
            }
            let s = dot * scale;
            tile_max = tile_max.max(s);
            scores.push(s);
        }
        // Store: snapshot the previous maximum; correct: rescale the running
        // sum and the output accumulator for the moved maximum.
        let prev_max = stats.max;
        let new_max = BinaryOp::Max.apply(prev_max, tile_max);
        let correction = if prev_max == f64::NEG_INFINITY {
            0.0
        } else {
            (prev_max - new_max).exp()
        };
        stats.sum *= correction;
        for slot in acc.iter_mut() {
            *slot *= correction;
        }
        // Reduce (reductions 2–4): accumulate the tile's probabilities and
        // value contributions under the updated maximum.
        for (offset, &s) in scores.iter().enumerate() {
            let p = (s - new_max).exp();
            stats.sum += p;
            let j = tile_start + offset;
            for (t, slot) in acc.iter_mut().enumerate() {
                *slot += p * v.get(j, t);
            }
        }
        stats.max = new_max;
    }
    AttentionPartial { stats, acc }
}

fn exec_attention(
    name: &str,
    binding: &ExecBinding,
    qk_dim: usize,
    head_dim: usize,
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
) -> Result<ExecOutput, ExecError> {
    if q.cols() != qk_dim || k.cols() != qk_dim {
        return Err(shape_err(
            name,
            format!(
                "q/k width must be {qk_dim}, got q [{}x{}], k [{}x{}]",
                q.rows(),
                q.cols(),
                k.rows(),
                k.cols()
            ),
        ));
    }
    if v.cols() != head_dim || v.rows() != k.rows() {
        return Err(shape_err(
            name,
            format!(
                "v must be [{}x{head_dim}], got [{}x{}]",
                k.rows(),
                v.rows(),
                v.cols()
            ),
        ));
    }
    let (q_rows, kv_len) = (q.rows(), k.rows());
    if q_rows == 0 || kv_len == 0 {
        return Err(shape_err(name, "attention input must be non-empty"));
    }
    let scale = 1.0 / (qk_dim.max(1) as f64).sqrt();
    let block_q = binding.block_rows.clamp(1, q_rows);
    let segments = segment_ranges(kv_len, binding.segments);
    let mut out = Matrix::zeros(q_rows, head_dim);
    for (r0, r1) in row_blocks(q_rows, block_q) {
        for row in r0..r1 {
            let partials: Vec<AttentionPartial> = segments
                .iter()
                .map(|&range| {
                    attention_row_segment(q, k, v, row, scale, range, binding.block_axis, head_dim)
                })
                .collect();
            // Combine kernel: merge the segment partials under the global
            // maximum, then normalise (with one segment this degenerates to
            // the plain FlashAttention epilogue).
            let global = partials
                .iter()
                .map(|p| p.stats)
                .fold(OnlineStats::identity(), OnlineStats::merge);
            let out_row = out.row_mut(row);
            for partial in &partials {
                let rescale = (partial.stats.max - global.max).exp();
                if rescale == 0.0 {
                    continue;
                }
                for (t, slot) in out_row.iter_mut().enumerate() {
                    *slot += partial.acc[t] * rescale;
                }
            }
            for slot in out_row.iter_mut() {
                *slot /= global.sum;
            }
        }
    }
    Ok(ExecOutput::Matrix(out))
}

/// One streaming top-k candidate.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    index: usize,
    score: f64,
}

/// Inserts into a descending-(score, ascending-index) bounded candidate list —
/// the same comparator for the streaming pass and the segment merge, so the
/// selected expert *set* is independent of the tiling.
fn insert_candidate(best: &mut Vec<Candidate>, candidate: Candidate, topk: usize) {
    let pos = best
        .iter()
        .position(|b| {
            candidate.score > b.score || (candidate.score == b.score && candidate.index < b.index)
        })
        .unwrap_or(best.len());
    best.insert(pos, candidate);
    if best.len() > topk {
        best.pop();
    }
}

fn exec_routing(
    name: &str,
    binding: &ExecBinding,
    topk: usize,
    x: &Matrix,
    w: &Matrix,
) -> Result<ExecOutput, ExecError> {
    let (tokens, hidden) = (x.rows(), x.cols());
    let experts = w.cols();
    if w.rows() != hidden {
        return Err(shape_err(
            name,
            format!(
                "activation width {hidden} must match weight height {}",
                w.rows()
            ),
        ));
    }
    if topk == 0 || topk > experts {
        return Err(shape_err(
            name,
            format!("topk ({topk}) must be in 1..={experts} (expert count)"),
        ));
    }
    if tokens == 0 || experts == 0 {
        return Err(shape_err(name, "routing input must be non-empty"));
    }
    let block_rows = binding.block_rows.clamp(1, tokens);
    let segments = segment_ranges(experts, binding.segments);
    let mut decisions = Vec::with_capacity(tokens);
    for (t0, t1) in row_blocks(tokens, block_rows) {
        for token in t0..t1 {
            let mut merged_stats = OnlineStats::identity();
            let mut merged_best: Vec<Candidate> = Vec::with_capacity(topk * segments.len());
            for &(start, end) in &segments {
                let mut stats = OnlineStats::identity();
                let mut best: Vec<Candidate> = Vec::with_capacity(topk + 1);
                for (tile_start, tile_end) in tile_ranges(start, end, binding.block_axis) {
                    for e in tile_start..tile_end {
                        // Reduce: the per-(token, expert) scoring dot product
                        // is the cascade's innermost reduction.
                        let mut score = 0.0;
                        for h in 0..hidden {
                            score += x.get(token, h) * w.get(h, e);
                        }
                        // Store + correct + reduce on the softmax statistics.
                        let prev_max = stats.max;
                        let new_max = BinaryOp::Max.apply(prev_max, score);
                        stats.sum =
                            stats.sum * (prev_max - new_max).exp() + (score - new_max).exp();
                        stats.max = new_max;
                        // Streaming top-k over the raw scores (softmax is
                        // order-preserving, so selection and normalisation
                        // commute).
                        insert_candidate(&mut best, Candidate { index: e, score }, topk);
                    }
                }
                // Combine kernel: merge statistics with Eq. 31 and the
                // candidate lists under the shared comparator.
                merged_stats = merged_stats.merge(stats);
                for candidate in best {
                    insert_candidate(&mut merged_best, candidate, topk);
                }
            }
            decisions.push(TopKDecision {
                experts: merged_best.iter().map(|c| c.index).collect(),
                probs: merged_best
                    .iter()
                    .map(|c| (c.score - merged_stats.max).exp() / merged_stats.sum)
                    .collect(),
            });
        }
    }
    Ok(ExecOutput::TopK(decisions))
}

/// Per-segment quant state: the running abs-max and the accumulator expressed
/// in the segment's final quantisation scale.
struct QuantPartial {
    amax: f64,
    acc: Vec<f64>,
}

fn quant_row_segment(
    a: &Matrix,
    w: &Matrix,
    row: usize,
    (start, end): (usize, usize),
    block_axis: usize,
    n: usize,
) -> QuantPartial {
    let mut amax = 0.0f64;
    let mut acc = vec![0.0f64; n];
    for (tile_start, tile_end) in tile_ranges(start, end, block_axis) {
        // Reduce (reduction 1): the tile's abs-max.
        let mut tile_amax = 0.0f64;
        for kk in tile_start..tile_end {
            tile_amax = tile_amax.max(a.get(row, kk).abs());
        }
        let new_amax = amax.max(tile_amax);
        if new_amax == 0.0 {
            continue;
        }
        // Store + correct: rescale the accumulator from the provisional scale
        // to the updated one (Eq. 21).
        if amax > 0.0 && new_amax > amax {
            let correction = amax / new_amax;
            for slot in acc.iter_mut() {
                *slot *= correction;
            }
        }
        // Reduce (reduction 2): quantise the tile under the updated scale and
        // accumulate its GEMM contribution (Eq. 22).
        let scale = new_amax / FP8_MAX;
        for kk in tile_start..tile_end {
            let qv = fp8_round(a.get(row, kk) / scale);
            if qv == 0.0 {
                continue;
            }
            for (j, slot) in acc.iter_mut().enumerate() {
                *slot += qv * w.get(kk, j);
            }
        }
        amax = new_amax;
    }
    QuantPartial { amax, acc }
}

fn exec_quant_gemm(
    name: &str,
    binding: &ExecBinding,
    n: usize,
    a: &Matrix,
    w: &Matrix,
) -> Result<ExecOutput, ExecError> {
    if w.rows() != a.cols() {
        return Err(shape_err(
            name,
            format!(
                "activation width {} must match weight height {}",
                a.cols(),
                w.rows()
            ),
        ));
    }
    if w.cols() != n {
        return Err(shape_err(
            name,
            format!(
                "weight width {} must match the bound GEMM width {n}",
                w.cols()
            ),
        ));
    }
    let (m, k_len) = (a.rows(), a.cols());
    if m == 0 || k_len == 0 || n == 0 {
        return Err(shape_err(name, "quant-gemm input must be non-empty"));
    }
    let block_rows = binding.block_rows.clamp(1, m);
    let segments = segment_ranges(k_len, binding.segments);
    let mut out = Matrix::zeros(m, n);
    for (r0, r1) in row_blocks(m, block_rows) {
        for row in r0..r1 {
            let partials: Vec<QuantPartial> = segments
                .iter()
                .map(|&range| quant_row_segment(a, w, row, range, binding.block_axis, n))
                .collect();
            // Combine kernel + epilogue: de-quantise each partial under its
            // own segment scale and sum — algebraically the rescale-to-global
            // merge of Eq. 21 followed by the final de-quantisation.
            let out_row = out.row_mut(row);
            for partial in &partials {
                if partial.amax == 0.0 {
                    continue;
                }
                let scale = partial.amax / FP8_MAX;
                for (j, slot) in out_row.iter_mut().enumerate() {
                    *slot += partial.acc[j] * scale;
                }
            }
        }
    }
    Ok(ExecOutput::Matrix(out))
}

fn exec_inertia(
    name: &str,
    binding: &ExecBinding,
    dim: usize,
    masses: &[f64],
    positions: &Matrix,
) -> Result<ExecOutput, ExecError> {
    if masses.len() != positions.rows() {
        return Err(shape_err(
            name,
            format!("{} masses for {} positions", masses.len(), positions.rows()),
        ));
    }
    if positions.cols() != dim {
        return Err(shape_err(
            name,
            format!("positions must be [*x{dim}], got [*x{}]", positions.cols()),
        ));
    }
    let particles = masses.len();
    if particles == 0 {
        return Err(shape_err(name, "inertia input must be non-empty"));
    }
    // One independent system per request: the cascade's axis is the particle
    // index; all three sufficient statistics are group-like sums.
    let segments = segment_ranges(particles, binding.segments);
    let mut total_mass = 0.0f64;
    let mut weighted = vec![0.0f64; dim];
    let mut weighted_sq = 0.0f64;
    for &(start, end) in &segments {
        let mut seg_mass = 0.0f64;
        let mut seg_weighted = vec![0.0f64; dim];
        let mut seg_weighted_sq = 0.0f64;
        for (tile_start, tile_end) in tile_ranges(start, end, binding.block_axis) {
            for (offset, &mass) in masses[tile_start..tile_end].iter().enumerate() {
                let i = tile_start + offset;
                seg_mass += mass;
                let mut norm_sq = 0.0;
                for (d, slot) in seg_weighted.iter_mut().enumerate() {
                    let pos = positions.get(i, d);
                    *slot += mass * pos;
                    norm_sq += pos * pos;
                }
                seg_weighted_sq += mass * norm_sq;
            }
        }
        total_mass += seg_mass;
        for (d, slot) in weighted.iter_mut().enumerate() {
            *slot += seg_weighted[d];
        }
        weighted_sq += seg_weighted_sq;
    }
    if total_mass <= 0.0 {
        return Err(shape_err(name, "total mass must be positive"));
    }
    let center_norm_sq: f64 = weighted.iter().map(|w| w * w).sum::<f64>() / total_mass;
    Ok(ExecOutput::Values(vec![
        (weighted_sq - center_norm_sq).max(0.0)
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::TileProgram;
    use rf_workloads::{random_matrix, random_vec};

    fn bound_program(
        semantics: Semantics,
        rows: usize,
        axis: usize,
        point: (usize, usize, usize),
    ) -> TileProgram {
        let (block_rows, block_axis, segments) = point;
        let mut p = TileProgram::new("vm-test", 1, 128);
        p.binding = Some(ExecBinding {
            semantics,
            rows,
            axis_len: axis,
            block_rows,
            block_axis,
            segments,
        });
        p
    }

    fn naive_softmax_row(row: &[f64]) -> Vec<f64> {
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = row.iter().map(|&v| (v - max).exp()).sum();
        row.iter().map(|&v| (v - max).exp() / sum).collect()
    }

    #[test]
    fn profiled_execution_is_bit_identical_to_plain_execution() {
        let m = random_matrix(4, 64, 10, -3.0, 3.0);
        let q = random_matrix(4, 16, 1, -1.0, 1.0);
        let k = random_matrix(32, 16, 2, -1.0, 1.0);
        let v = random_matrix(32, 8, 3, -1.0, 1.0);
        let x = random_matrix(6, 16, 4, -1.0, 1.0);
        let w = random_matrix(16, 8, 5, -1.0, 1.0);
        let a = random_matrix(4, 32, 6, -1.0, 1.0);
        let wq = random_matrix(32, 8, 7, -1.0, 1.0);
        let masses = random_vec(24, 8, 0.1, 2.0);
        let positions = random_matrix(24, 3, 9, -1.0, 1.0);
        let cases: Vec<(TileProgram, ExecInput<'_>)> = vec![
            (
                bound_program(Semantics::Softmax, 4, 64, (2, 16, 2)),
                ExecInput::Rows(&m),
            ),
            (
                bound_program(Semantics::Variance, 4, 64, (2, 16, 2)),
                ExecInput::Rows(&m),
            ),
            (
                bound_program(
                    Semantics::Attention {
                        qk_dim: 16,
                        head_dim: 8,
                    },
                    4,
                    32,
                    (2, 8, 2),
                ),
                ExecInput::Attention {
                    q: &q,
                    k: &k,
                    v: &v,
                },
            ),
            (
                bound_program(Semantics::Routing { topk: 2 }, 6, 8, (2, 4, 2)),
                ExecInput::Routing { x: &x, w: &w },
            ),
            (
                bound_program(Semantics::QuantGemm { n: 8 }, 4, 32, (2, 8, 2)),
                ExecInput::QuantGemm { a: &a, w: &wq },
            ),
            (
                bound_program(Semantics::Inertia { dim: 3 }, 1, 24, (1, 8, 2)),
                ExecInput::Inertia {
                    masses: &masses,
                    positions: &positions,
                },
            ),
        ];
        for (program, input) in &cases {
            let plain = execute(program, input).expect("plain execution");
            let (profiled, profile) = execute_profiled(program, input).expect("profiled execution");
            // Bit-identical: the profiled entry point wraps the exact same
            // interpreter call.
            assert_eq!(plain, profiled);
            assert!(!profile.ops.is_empty());
            let attributed: u64 = profile.ops.iter().map(|o| o.wall_ns).sum();
            assert_eq!(attributed, profile.wall_ns, "wall time fully attributed");
        }
    }

    #[test]
    fn profiled_counts_mirror_the_loop_structure() {
        let m = random_matrix(4, 64, 10, -3.0, 3.0);
        let program = bound_program(Semantics::Softmax, 4, 64, (2, 16, 2));
        let (_, profile) = execute_profiled(&program, &ExecInput::Rows(&m)).unwrap();
        let find = |op: &str| {
            profile
                .ops
                .iter()
                .find(|o| o.op == op)
                .unwrap_or_else(|| panic!("missing op {op}"))
        };
        // 2 segments × 2 tiles each × 4 rows = 16 main-loop reductions.
        assert_eq!(find("reduce").invocations, 16);
        assert_eq!(find("reduce").rows, 4);
        assert_eq!(find("reduce").bytes_read, 4 * 64 * 8);
        // Multi-Segment: the combine op is present.
        assert_eq!(find("combine").invocations, 4 * 2);
        assert_eq!(find("epilogue").bytes_written, 4 * 64 * 8);
        // Single-Segment drops the combine op entirely.
        let single = bound_program(Semantics::Softmax, 4, 64, (2, 16, 1));
        let (_, profile) = execute_profiled(&single, &ExecInput::Rows(&m)).unwrap();
        assert!(profile.ops.iter().all(|o| o.op != "combine"));
    }

    #[test]
    fn profiled_execution_propagates_vm_errors() {
        let program = bound_program(Semantics::Softmax, 2, 8, (2, 4, 1));
        let empty = Matrix::zeros(0, 0);
        assert!(execute_profiled(&program, &ExecInput::Rows(&empty)).is_err());
        let bare = TileProgram::new("bare", 1, 128);
        let m = random_matrix(2, 8, 1, -1.0, 1.0);
        assert!(matches!(
            execute_profiled(&bare, &ExecInput::Rows(&m)),
            Err(ExecError::NotExecutable { .. })
        ));
    }

    #[test]
    fn unbound_programs_are_rejected() {
        let p = TileProgram::new("bare", 1, 128);
        let m = random_matrix(2, 8, 1, -1.0, 1.0);
        let err = execute(&p, &ExecInput::Rows(&m)).unwrap_err();
        assert!(matches!(err, ExecError::NotExecutable { .. }));
        assert!(err.to_string().contains("bare"));
    }

    #[test]
    fn input_kind_mismatch_is_rejected() {
        let p = bound_program(Semantics::Softmax, 2, 8, (2, 4, 1));
        let m = random_matrix(2, 8, 1, -1.0, 1.0);
        let err = execute(
            &p,
            &ExecInput::Inertia {
                masses: &[1.0],
                positions: &m,
            },
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::InputMismatch { .. }));
        assert!(err.to_string().contains("row-matrix"));
    }

    #[test]
    fn softmax_matches_naive_for_every_tiling() {
        let m = random_matrix(5, 37, 3, -4.0, 4.0);
        for point in [(1, 1, 1), (2, 5, 1), (128, 16, 3), (5, 37, 7), (3, 4, 37)] {
            let p = bound_program(Semantics::Softmax, 5, 37, point);
            let ExecOutput::Matrix(out) = execute(&p, &ExecInput::Rows(&m)).unwrap() else {
                panic!("softmax returns a matrix");
            };
            for r in 0..m.rows() {
                let expected = naive_softmax_row(m.row(r));
                for (a, e) in out.row(r).iter().zip(&expected) {
                    assert!((a - e).abs() < 1e-12, "point {point:?}: {a} vs {e}");
                }
            }
        }
    }

    #[test]
    fn variance_matches_definition_for_every_tiling() {
        let m = random_matrix(4, 53, 9, -3.0, 3.0);
        let expected: Vec<f64> = (0..m.rows())
            .map(|r| {
                let row = m.row(r);
                let mean = row.iter().sum::<f64>() / row.len() as f64;
                row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / row.len() as f64
            })
            .collect();
        for point in [(1, 53, 1), (4, 7, 2), (2, 1, 5)] {
            let p = bound_program(Semantics::Variance, 4, 53, point);
            let ExecOutput::Values(out) = execute(&p, &ExecInput::Rows(&m)).unwrap() else {
                panic!("variance returns values");
            };
            for (a, e) in out.iter().zip(&expected) {
                assert!((a - e).abs() < 1e-9 * (1.0 + e), "point {point:?}");
            }
        }
    }

    #[test]
    fn attention_segments_merge_to_the_single_segment_result() {
        let q = random_matrix(6, 8, 1, -1.0, 1.0);
        let k = random_matrix(33, 8, 2, -1.0, 1.0);
        let v = random_matrix(33, 5, 3, -1.0, 1.0);
        let single = bound_program(
            Semantics::Attention {
                qk_dim: 8,
                head_dim: 5,
            },
            6,
            33,
            (128, 128, 1),
        );
        let input = ExecInput::Attention {
            q: &q,
            k: &k,
            v: &v,
        };
        let ExecOutput::Matrix(reference) = execute(&single, &input).unwrap() else {
            panic!()
        };
        for point in [(1, 7, 4), (2, 3, 2), (6, 1, 33)] {
            let p = bound_program(
                Semantics::Attention {
                    qk_dim: 8,
                    head_dim: 5,
                },
                6,
                33,
                point,
            );
            let ExecOutput::Matrix(out) = execute(&p, &input).unwrap() else {
                panic!()
            };
            assert!(
                reference.max_abs_diff(&out) < 1e-9,
                "point {point:?} diverged"
            );
        }
    }

    #[test]
    fn routing_expert_sets_are_tiling_invariant() {
        let x = random_matrix(7, 12, 4, -1.0, 1.0);
        let w = random_matrix(12, 20, 5, -1.0, 1.0);
        let input = ExecInput::Routing { x: &x, w: &w };
        let reference = {
            let p = bound_program(Semantics::Routing { topk: 4 }, 7, 20, (128, 128, 1));
            let ExecOutput::TopK(d) = execute(&p, &input).unwrap() else {
                panic!()
            };
            d
        };
        for point in [(1, 3, 5), (3, 20, 2), (7, 1, 1)] {
            let p = bound_program(Semantics::Routing { topk: 4 }, 7, 20, point);
            let ExecOutput::TopK(out) = execute(&p, &input).unwrap() else {
                panic!()
            };
            for (a, b) in out.iter().zip(&reference) {
                assert_eq!(a.experts, b.experts, "point {point:?}");
                for (p1, p2) in a.probs.iter().zip(&b.probs) {
                    assert!((p1 - p2).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn quant_gemm_single_tile_matches_exact_quantization() {
        let a = random_matrix(3, 24, 6, -2.0, 2.0);
        let w = random_matrix(24, 5, 7, -1.0, 1.0);
        // Reference: quantize the whole row under its final scale, then GEMM.
        let mut expected = Matrix::zeros(3, 5);
        for i in 0..3 {
            let amax = a.row(i).iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
            let scale = amax / FP8_MAX;
            for j in 0..5 {
                let mut acc = 0.0;
                for kk in 0..24 {
                    acc += fp8_round(a.get(i, kk) / scale) * w.get(kk, j);
                }
                expected.set(i, j, acc * scale);
            }
        }
        let p = bound_program(Semantics::QuantGemm { n: 5 }, 3, 24, (128, 128, 1));
        let ExecOutput::Matrix(out) = execute(&p, &ExecInput::QuantGemm { a: &a, w: &w }).unwrap()
        else {
            panic!()
        };
        assert!(expected.max_abs_diff(&out) < 1e-12);
        // Blocked execution stays within the provisional-scale noise floor.
        let blocked = bound_program(Semantics::QuantGemm { n: 5 }, 3, 24, (1, 4, 3));
        let ExecOutput::Matrix(out) =
            execute(&blocked, &ExecInput::QuantGemm { a: &a, w: &w }).unwrap()
        else {
            panic!()
        };
        let peak = expected
            .as_slice()
            .iter()
            .fold(0.0f64, |acc, v| acc.max(v.abs()));
        assert!(expected.max_abs_diff(&out) <= 0.05 * peak + 1e-9);
    }

    #[test]
    fn inertia_matches_parallel_axis_formula() {
        let masses = random_vec(40, 8, 0.1, 2.0);
        let positions = random_matrix(40, 3, 9, -2.0, 2.0);
        let expected = {
            let total: f64 = masses.iter().sum();
            let mut center = [0.0; 3];
            for (i, &mass) in masses.iter().enumerate() {
                for (d, c) in center.iter_mut().enumerate() {
                    *c += mass * positions.get(i, d);
                }
            }
            for c in center.iter_mut() {
                *c /= total;
            }
            masses
                .iter()
                .enumerate()
                .map(|(i, &mass)| {
                    (0..3)
                        .map(|d| {
                            let delta = positions.get(i, d) - center[d];
                            mass * delta * delta
                        })
                        .sum::<f64>()
                })
                .sum::<f64>()
        };
        for point in [(1, 40, 1), (1, 7, 3), (1, 1, 8)] {
            let p = bound_program(Semantics::Inertia { dim: 3 }, 1, 40, point);
            let ExecOutput::Values(out) = execute(
                &p,
                &ExecInput::Inertia {
                    masses: &masses,
                    positions: &positions,
                },
            )
            .unwrap() else {
                panic!()
            };
            assert_eq!(out.len(), 1);
            assert!((out[0] - expected).abs() < 1e-7 * (1.0 + expected));
        }
    }

    #[test]
    fn massless_systems_are_rejected_not_panicking() {
        let positions = Matrix::zeros(2, 3);
        let p = bound_program(Semantics::Inertia { dim: 3 }, 1, 2, (1, 2, 1));
        let err = execute(
            &p,
            &ExecInput::Inertia {
                masses: &[0.0, 0.0],
                positions: &positions,
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("total mass"));
    }

    #[test]
    fn segment_ranges_cover_the_axis_without_overlap() {
        for (axis, segments) in [(10, 3), (1, 8), (64, 64), (7, 1), (5, 9)] {
            let ranges = segment_ranges(axis, segments);
            let mut covered = 0;
            let mut prev_end = 0;
            for &(start, end) in &ranges {
                assert_eq!(start, prev_end, "contiguous");
                assert!(end > start, "non-empty");
                covered += end - start;
                prev_end = end;
            }
            assert_eq!(covered, axis);
        }
    }

    #[test]
    fn oversized_topk_is_rejected() {
        let x = random_matrix(2, 4, 1, -1.0, 1.0);
        let w = random_matrix(4, 3, 2, -1.0, 1.0);
        let p = bound_program(Semantics::Routing { topk: 5 }, 2, 3, (1, 1, 1));
        let err = execute(&p, &ExecInput::Routing { x: &x, w: &w }).unwrap_err();
        assert!(err.to_string().contains("topk"));
    }
}
