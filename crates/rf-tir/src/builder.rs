//! Builders for the canonical unfused loop nests of the paper's workloads.
//!
//! The single-row builders (`unfused_softmax`, `unfused_attention_row`,
//! `unfused_quant_gemm_row`, `unfused_sum_sum`) emit one reduction loop per
//! reduction over a shared axis `l`, with scalar result buffers — the form the
//! pattern detector consumes. [`figure11_attention`] reproduces the full
//! two-dimensional unfused attention loop nest of Figure 11 for IR dumps and
//! interpreter-level validation against the dense kernels.

use rf_algebra::BinaryOp;
use rf_expr::UnaryFn;

use crate::ir::{BufferDecl, Stmt, TirExpr, TirFunction};

fn reduction_loop(axis: &str, extent: usize, buffer: &str, op: BinaryOp, value: TirExpr) -> Stmt {
    Stmt::For {
        var: axis.to_string(),
        start: 0,
        extent,
        body: vec![Stmt::Update {
            buffer: buffer.to_string(),
            indices: vec![],
            op,
            value,
        }],
    }
}

/// Unfused safe softmax statistics over a length-`len` vector `x`:
/// a max-reduction loop followed by a sum-of-exponentials loop.
pub fn unfused_softmax(len: usize) -> TirFunction {
    let x = || TirExpr::load1("x", "l");
    let m = || TirExpr::load0("m");
    TirFunction {
        name: "unfused_softmax".into(),
        buffers: vec![
            BufferDecl::input("x", vec![len]),
            BufferDecl::output("m", vec![], f64::NEG_INFINITY),
            BufferDecl::output("t", vec![], 0.0),
        ],
        body: vec![
            reduction_loop("l", len, "m", BinaryOp::Max, x()),
            reduction_loop(
                "l",
                len,
                "t",
                BinaryOp::Add,
                TirExpr::Unary(
                    UnaryFn::Exp,
                    Box::new(TirExpr::Sub(Box::new(x()), Box::new(m()))),
                ),
            ),
        ],
    }
}

/// Unfused single attention row (Appendix A.2.1): score vector `p[kv]`, value
/// component vector `v[kv]`, producing the max `m`, the normaliser `t` and the
/// output component `o`.
pub fn unfused_attention_row(kv: usize) -> TirFunction {
    let p = || TirExpr::load1("p", "l");
    let v = || TirExpr::load1("v", "l");
    let m = || TirExpr::load0("m");
    let t = || TirExpr::load0("t");
    let shifted_exp = || {
        TirExpr::Unary(
            UnaryFn::Exp,
            Box::new(TirExpr::Sub(Box::new(p()), Box::new(m()))),
        )
    };
    TirFunction {
        name: "unfused_attention_row".into(),
        buffers: vec![
            BufferDecl::input("p", vec![kv]),
            BufferDecl::input("v", vec![kv]),
            BufferDecl::output("m", vec![], f64::NEG_INFINITY),
            BufferDecl::output("t", vec![], 0.0),
            BufferDecl::output("o", vec![], 0.0),
        ],
        body: vec![
            reduction_loop("l", kv, "m", BinaryOp::Max, p()),
            reduction_loop("l", kv, "t", BinaryOp::Add, shifted_exp()),
            reduction_loop(
                "l",
                kv,
                "o",
                BinaryOp::Add,
                TirExpr::Binary(
                    BinaryOp::Mul,
                    Box::new(TirExpr::Div(Box::new(shifted_exp()), Box::new(t()))),
                    Box::new(v()),
                ),
            ),
        ],
    }
}

/// Unfused FP8 per-token quantization + one GEMM output element (§3.4):
/// abs-max over the activation row `a[k]`, then the scaled inner product with
/// the weight column `w[k]`.
pub fn unfused_quant_gemm_row(k: usize) -> TirFunction {
    let a = || TirExpr::load1("a", "l");
    let w = || TirExpr::load1("w", "l");
    let m = || TirExpr::load0("m");
    TirFunction {
        name: "unfused_quant_gemm_row".into(),
        buffers: vec![
            BufferDecl::input("a", vec![k]),
            BufferDecl::input("w", vec![k]),
            BufferDecl::output("m", vec![], f64::NEG_INFINITY),
            BufferDecl::output("c", vec![], 0.0),
        ],
        body: vec![
            reduction_loop(
                "l",
                k,
                "m",
                BinaryOp::Max,
                TirExpr::Unary(UnaryFn::Abs, Box::new(a())),
            ),
            reduction_loop(
                "l",
                k,
                "c",
                BinaryOp::Add,
                TirExpr::Binary(
                    BinaryOp::Mul,
                    Box::new(TirExpr::Div(
                        Box::new(TirExpr::Binary(
                            BinaryOp::Mul,
                            Box::new(TirExpr::Const(448.0)),
                            Box::new(a()),
                        )),
                        Box::new(m()),
                    )),
                    Box::new(w()),
                ),
            ),
        ],
    }
}

/// Unfused "Sum + Sum" internal pattern (Appendix A.2.3).
pub fn unfused_sum_sum(len: usize) -> TirFunction {
    let x1 = || TirExpr::load1("x1", "l");
    let x2 = || TirExpr::load1("x2", "l");
    let m = || TirExpr::load0("m");
    let denom = TirExpr::Unary(
        UnaryFn::Sqrt,
        Box::new(TirExpr::Binary(
            BinaryOp::Max,
            Box::new(TirExpr::Sub(Box::new(m()), Box::new(TirExpr::Const(10.0)))),
            Box::new(TirExpr::Const(1e-3)),
        )),
    );
    TirFunction {
        name: "unfused_sum_sum".into(),
        buffers: vec![
            BufferDecl::input("x1", vec![len]),
            BufferDecl::input("x2", vec![len]),
            BufferDecl::output("m", vec![], 0.0),
            BufferDecl::output("s", vec![], 0.0),
        ],
        body: vec![
            reduction_loop(
                "l",
                len,
                "m",
                BinaryOp::Add,
                TirExpr::Binary(BinaryOp::Mul, Box::new(x1()), Box::new(x1())),
            ),
            reduction_loop(
                "l",
                len,
                "s",
                BinaryOp::Add,
                TirExpr::Div(
                    Box::new(TirExpr::Binary(
                        BinaryOp::Mul,
                        Box::new(x1()),
                        Box::new(x2()),
                    )),
                    Box::new(denom),
                ),
            ),
        ],
    }
}

/// The full unfused attention loop nest of Figure 11: query block `Q[q, d]`,
/// keys `K[kv, d]`, values `V[kv, d]`, with the score matrix `P`, row maxima
/// `pmax`, row sums `psum` and output `o` all materialised.
pub fn figure11_attention(q: usize, kv: usize, d: usize) -> TirFunction {
    let load2 = |buf: &str, i: &str, j: &str| TirExpr::Load {
        buffer: buf.into(),
        indices: vec![i.into(), j.into()],
    };
    let load1 = |buf: &str, i: &str| TirExpr::Load {
        buffer: buf.into(),
        indices: vec![i.into()],
    };
    let shifted_exp = TirExpr::Unary(
        UnaryFn::Exp,
        Box::new(TirExpr::Sub(
            Box::new(load2("P", "qs", "kvs")),
            Box::new(load1("pmax", "qs")),
        )),
    );
    TirFunction {
        name: "figure11_attention".into(),
        buffers: vec![
            BufferDecl::input("Q", vec![q, d]),
            BufferDecl::input("K", vec![kv, d]),
            BufferDecl::input("V", vec![kv, d]),
            BufferDecl::temp("P", vec![q, kv], 0.0),
            BufferDecl::temp("pmax", vec![q], f64::NEG_INFINITY),
            BufferDecl::temp("psum", vec![q], 0.0),
            BufferDecl::output("o", vec![q, d], 0.0),
        ],
        body: vec![Stmt::For {
            var: "qs".into(),
            start: 0,
            extent: q,
            body: vec![
                // reduction 1: gemm(Q, K)
                Stmt::For {
                    var: "kvs".into(),
                    start: 0,
                    extent: kv,
                    body: vec![Stmt::For {
                        var: "dd".into(),
                        start: 0,
                        extent: d,
                        body: vec![Stmt::Update {
                            buffer: "P".into(),
                            indices: vec!["qs".into(), "kvs".into()],
                            op: BinaryOp::Add,
                            value: TirExpr::Binary(
                                BinaryOp::Mul,
                                Box::new(load2("Q", "qs", "dd")),
                                Box::new(load2("K", "kvs", "dd")),
                            ),
                        }],
                    }],
                },
                // reduction 2: max(P)
                Stmt::For {
                    var: "kvs".into(),
                    start: 0,
                    extent: kv,
                    body: vec![Stmt::Update {
                        buffer: "pmax".into(),
                        indices: vec!["qs".into()],
                        op: BinaryOp::Max,
                        value: load2("P", "qs", "kvs"),
                    }],
                },
                // reduction 3: sum(exp(P - pmax))
                Stmt::For {
                    var: "kvs".into(),
                    start: 0,
                    extent: kv,
                    body: vec![Stmt::Update {
                        buffer: "psum".into(),
                        indices: vec!["qs".into()],
                        op: BinaryOp::Add,
                        value: shifted_exp.clone(),
                    }],
                },
                // reduction 4: gemm(exp(P - pmax) / psum, V)
                Stmt::For {
                    var: "kvs".into(),
                    start: 0,
                    extent: kv,
                    body: vec![Stmt::For {
                        var: "dd".into(),
                        start: 0,
                        extent: d,
                        body: vec![Stmt::Update {
                            buffer: "o".into(),
                            indices: vec!["qs".into(), "dd".into()],
                            op: BinaryOp::Add,
                            value: TirExpr::Binary(
                                BinaryOp::Mul,
                                Box::new(TirExpr::Div(
                                    Box::new(shifted_exp.clone()),
                                    Box::new(load1("psum", "qs")),
                                )),
                                Box::new(load2("V", "kvs", "dd")),
                            ),
                        }],
                    }],
                },
            ],
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use std::collections::HashMap;

    #[test]
    fn softmax_builder_runs_and_matches_kernel_semantics() {
        let f = unfused_softmax(16);
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.37).sin()).collect();
        let out = Interpreter::new()
            .run(&f, &HashMap::from([("x".to_string(), x.clone())]))
            .unwrap();
        let max = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = x.iter().map(|v| (v - max).exp()).sum();
        assert!((out["m"][0] - max).abs() < 1e-12);
        assert!((out["t"][0] - sum).abs() < 1e-12);
    }

    #[test]
    fn attention_row_builder_has_three_reductions() {
        let f = unfused_attention_row(8);
        assert_eq!(f.body.len(), 3);
        assert_eq!(f.output_names(), vec!["m", "t", "o"]);
        let text = f.to_string();
        assert!(text.contains("o[0] +="));
    }

    #[test]
    fn figure11_matches_figure_structure() {
        let f = figure11_attention(4, 8, 2);
        let text = f.to_string();
        assert!(text.contains("for qs in range(4):"));
        assert!(text.contains("P[qs, kvs] += (Q[qs, dd] * K[kvs, dd])"));
        assert!(text.contains("pmax[qs] = max(pmax[qs], P[qs, kvs])"));
        assert!(f.stmt_count() > 10);
    }

    #[test]
    fn figure11_runs_numerically() {
        let (q, kv, d) = (2, 4, 3);
        let f = figure11_attention(q, kv, d);
        let qm = rf_workloads::random_matrix(q, d, 1, -1.0, 1.0);
        let km = rf_workloads::random_matrix(kv, d, 2, -1.0, 1.0);
        let vm = rf_workloads::random_matrix(kv, d, 3, -1.0, 1.0);
        let inputs = HashMap::from([
            ("Q".to_string(), qm.as_slice().to_vec()),
            ("K".to_string(), km.as_slice().to_vec()),
            ("V".to_string(), vm.as_slice().to_vec()),
        ]);
        let out = Interpreter::new().run(&f, &inputs).unwrap();
        // The attention rows of the interpreted IR must sum each probability
        // row to one: check via the identity sum_d o = sum over value columns
        // weighted by probabilities; instead verify against the dense kernel.
        let expected = rf_kernels::attention::attention_naive(&qm, &km, &vm, 1.0);
        for (a, b) in out["o"].iter().zip(expected.as_slice()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}
