//! Cascaded-reduction pattern detection (§4.1 of the paper).
//!
//! The detector walks a scalar loop-nest function, finds the reduction loops
//! (a `for` over a shared axis whose body is a single reduction update into a
//! scalar buffer), checks that they form a dependency chain over the same
//! axis, and lifts the chain into a [`rf_fusion::CascadeSpec`] — the
//! "mathematical representation of cascaded reductions" that feeds the ACRF
//! algorithm.

use std::collections::BTreeSet;
use std::fmt;

use rf_algebra::{BinaryOp, ReduceOp};
use rf_expr::Expr;
use rf_fusion::{CascadeSpec, ReductionSpec};

use crate::ir::{BufferKind, Stmt, TirExpr, TirFunction};

/// A detected cascaded-reduction pattern, ready for fusion.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedCascade {
    /// The shared reduction axis (loop variable name).
    pub axis: String,
    /// Trip count of the reduction loops.
    pub extent: usize,
    /// The lifted mathematical cascade.
    pub cascade: CascadeSpec,
    /// Input buffers consumed along the axis, in cascade-input order.
    pub input_buffers: Vec<String>,
    /// Result buffers of the reductions, in cascade order.
    pub reduction_buffers: Vec<String>,
}

/// Errors reported by [`detect_cascade`].
#[derive(Debug, Clone, PartialEq)]
pub enum DetectError {
    /// The function contains no reduction loops of the supported shape.
    NoReductions,
    /// The reduction loops do not all iterate over the same axis and extent.
    MismatchedAxes {
        /// Expected `(axis, extent)` from the first reduction loop.
        expected: (String, usize),
        /// Found `(axis, extent)`.
        found: (String, usize),
    },
    /// A map expression contains a load the detector cannot lift (e.g. a
    /// multi-dimensional load or a load of a buffer that is neither an input
    /// indexed by the axis nor an earlier reduction result).
    UnsupportedLoad {
        /// The offending buffer.
        buffer: String,
    },
    /// A map expression uses a loop variable as a value, which has no
    /// mathematical counterpart in the cascade model.
    UnsupportedVariable(String),
    /// The lifted cascade failed validation.
    InvalidCascade(String),
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::NoReductions => {
                write!(f, "no reduction loops of the supported shape found")
            }
            DetectError::MismatchedAxes { expected, found } => write!(
                f,
                "reduction loops disagree on the shared axis: expected {}[{}], found {}[{}]",
                expected.0, expected.1, found.0, found.1
            ),
            DetectError::UnsupportedLoad { buffer } => {
                write!(
                    f,
                    "cannot lift load of buffer `{buffer}` into the cascade model"
                )
            }
            DetectError::UnsupportedVariable(v) => {
                write!(f, "loop variable `{v}` used as a value is not supported")
            }
            DetectError::InvalidCascade(msg) => write!(f, "lifted cascade is invalid: {msg}"),
        }
    }
}

impl std::error::Error for DetectError {}

fn reduce_op_of(op: BinaryOp) -> ReduceOp {
    match op {
        BinaryOp::Add => ReduceOp::Sum,
        BinaryOp::Mul => ReduceOp::Prod,
        BinaryOp::Max => ReduceOp::Max,
        BinaryOp::Min => ReduceOp::Min,
    }
}

/// Detects the cascaded-reduction pattern of a function built from scalar
/// reduction loops over a shared axis.
///
/// # Errors
///
/// Returns a [`DetectError`] if the function does not match the supported
/// shape; callers fall back to unfused execution in that case (exactly what
/// the paper's framework does for non-reduction subgraphs).
pub fn detect_cascade(function: &TirFunction) -> Result<DetectedCascade, DetectError> {
    // Collect (axis, extent, destination buffer, reduce op, map expression)
    // from every top-level loop whose body is a single scalar reduction update.
    let mut reductions: Vec<(String, usize, String, BinaryOp, TirExpr)> = Vec::new();
    for stmt in &function.body {
        if let Stmt::For {
            var,
            start: 0,
            extent,
            body,
        } = stmt
        {
            if let [Stmt::Update {
                buffer,
                indices,
                op,
                value,
            }] = body.as_slice()
            {
                if indices.is_empty() {
                    reductions.push((var.clone(), *extent, buffer.clone(), *op, value.clone()));
                }
            }
        }
    }
    if reductions.is_empty() {
        return Err(DetectError::NoReductions);
    }

    let (axis, extent) = (reductions[0].0.clone(), reductions[0].1);
    for (var, ext, ..) in &reductions {
        if *var != axis || *ext != extent {
            return Err(DetectError::MismatchedAxes {
                expected: (axis.clone(), extent),
                found: (var.clone(), *ext),
            });
        }
    }

    let input_names: BTreeSet<String> = function
        .buffers
        .iter()
        .filter(|b| b.kind == BufferKind::Input)
        .map(|b| b.name.clone())
        .collect();

    let mut result_buffers: Vec<String> = Vec::new();
    let mut used_inputs: Vec<String> = Vec::new();
    let mut specs: Vec<ReductionSpec> = Vec::new();
    for (_, _, dest, op, value) in &reductions {
        let map = lift_expr(
            value,
            &axis,
            &input_names,
            &result_buffers,
            &mut used_inputs,
        )?;
        specs.push(ReductionSpec::new(dest.clone(), reduce_op_of(*op), map));
        result_buffers.push(dest.clone());
    }

    let cascade = CascadeSpec::new(function.name.clone(), used_inputs.clone(), specs)
        .map_err(|e| DetectError::InvalidCascade(e.to_string()))?;
    Ok(DetectedCascade {
        axis,
        extent,
        cascade,
        input_buffers: used_inputs,
        reduction_buffers: result_buffers,
    })
}

fn lift_expr(
    expr: &TirExpr,
    axis: &str,
    inputs: &BTreeSet<String>,
    earlier_results: &[String],
    used_inputs: &mut Vec<String>,
) -> Result<Expr, DetectError> {
    Ok(match expr {
        TirExpr::Const(c) => Expr::constant(*c),
        TirExpr::Var(v) => return Err(DetectError::UnsupportedVariable(v.clone())),
        TirExpr::Load { buffer, indices } => {
            let is_axis_indexed = indices.len() == 1 && indices[0] == axis;
            let is_scalar = indices.is_empty();
            if is_axis_indexed && inputs.contains(buffer) {
                if !used_inputs.contains(buffer) {
                    used_inputs.push(buffer.clone());
                }
                Expr::var(buffer.clone())
            } else if is_scalar && earlier_results.contains(buffer) {
                Expr::var(buffer.clone())
            } else {
                return Err(DetectError::UnsupportedLoad {
                    buffer: buffer.clone(),
                });
            }
        }
        TirExpr::Unary(f, a) => {
            let inner = lift_expr(a, axis, inputs, earlier_results, used_inputs)?;
            match f {
                rf_expr::UnaryFn::Neg => -inner,
                rf_expr::UnaryFn::Abs => inner.abs(),
                rf_expr::UnaryFn::Exp => inner.exp(),
                rf_expr::UnaryFn::Ln => inner.ln(),
                rf_expr::UnaryFn::Sqrt => inner.sqrt(),
                rf_expr::UnaryFn::Recip => inner.recip(),
            }
        }
        TirExpr::Binary(op, a, b) => Expr::binary(
            *op,
            lift_expr(a, axis, inputs, earlier_results, used_inputs)?,
            lift_expr(b, axis, inputs, earlier_results, used_inputs)?,
        ),
        TirExpr::Sub(a, b) => {
            lift_expr(a, axis, inputs, earlier_results, used_inputs)?
                - lift_expr(b, axis, inputs, earlier_results, used_inputs)?
        }
        TirExpr::Div(a, b) => {
            lift_expr(a, axis, inputs, earlier_results, used_inputs)?
                / lift_expr(b, axis, inputs, earlier_results, used_inputs)?
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use rf_fusion::analyze_cascade;

    #[test]
    fn detects_softmax() {
        let f = builder::unfused_softmax(32);
        let detected = detect_cascade(&f).unwrap();
        assert_eq!(detected.axis, "l");
        assert_eq!(detected.extent, 32);
        assert_eq!(detected.reduction_buffers, vec!["m", "t"]);
        assert_eq!(detected.input_buffers, vec!["x"]);
        assert_eq!(detected.cascade.dependencies_of(1), vec!["m".to_string()]);
        assert!(analyze_cascade(&detected.cascade).is_ok());
    }

    #[test]
    fn detects_attention_row_and_quant() {
        for f in [
            builder::unfused_attention_row(16),
            builder::unfused_quant_gemm_row(16),
        ] {
            let detected = detect_cascade(&f).unwrap();
            assert!(analyze_cascade(&detected.cascade).is_ok(), "{}", f.name);
        }
    }

    #[test]
    fn detects_sum_sum() {
        let detected = detect_cascade(&builder::unfused_sum_sum(8)).unwrap();
        assert_eq!(detected.cascade.reductions[0].reduce, ReduceOp::Sum);
        assert_eq!(detected.input_buffers, vec!["x1", "x2"]);
    }

    #[test]
    fn figure11_is_not_of_the_scalar_shape() {
        // The 2-D Figure 11 loop nest needs blockization first; the scalar
        // detector reports it as unsupported rather than mis-detecting it.
        let err = detect_cascade(&builder::figure11_attention(2, 4, 2)).unwrap_err();
        assert_eq!(err, DetectError::NoReductions);
    }

    #[test]
    fn mismatched_axes_are_rejected() {
        let mut f = builder::unfused_softmax(8);
        if let Stmt::For { extent, .. } = &mut f.body[1] {
            *extent = 4;
        }
        let err = detect_cascade(&f).unwrap_err();
        assert!(matches!(err, DetectError::MismatchedAxes { .. }));
        assert!(err.to_string().contains("disagree"));
    }

    #[test]
    fn unsupported_load_is_reported() {
        let mut f = builder::unfused_softmax(8);
        // Replace the second reduction's value with a load of an undeclared,
        // non-axis-indexed buffer.
        if let Stmt::For { body, .. } = &mut f.body[1] {
            if let Stmt::Update { value, .. } = &mut body[0] {
                *value = TirExpr::load0("mystery");
            }
        }
        let err = detect_cascade(&f).unwrap_err();
        assert_eq!(
            err,
            DetectError::UnsupportedLoad {
                buffer: "mystery".into()
            }
        );
    }

    #[test]
    fn empty_function_has_no_reductions() {
        let f = TirFunction {
            name: "empty".into(),
            buffers: vec![],
            body: vec![],
        };
        assert_eq!(detect_cascade(&f).unwrap_err(), DetectError::NoReductions);
    }
}
