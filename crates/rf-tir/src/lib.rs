//! Scalar loop-nest IR (the TensorIR substitute) and its fusion passes.
//!
//! RedFuser's front-end (§4.1 of the paper) lowers a computational graph to a
//! scalar loop-nest IR, detects cascaded-reduction patterns in it, lifts them
//! to mathematical expressions for the ACRF analysis, and re-emits a fused
//! loop nest following the three-step reduction template of Appendix A.4
//! (store previous result → apply correction → perform reduction), with
//! dataflow-based elimination of unnecessary steps.
//!
//! Modules:
//!
//! * [`ir`] — expressions, statements, buffers and functions of the scalar IR,
//!   plus a pretty-printer that reproduces the style of Figures 11–13.
//! * [`interp`] — a reference interpreter used to validate transformations.
//! * [`builder`] — canonical unfused loop nests for the paper's workloads
//!   (safe softmax, one attention row, FP8 quant + GEMM, …).
//! * [`detect`] — cascaded-reduction pattern detection: finds reductions that
//!   share a reduction axis and depend on each other, and lifts them into a
//!   [`rf_fusion::CascadeSpec`].
//! * [`fuse`] — fused-kernel generation from a [`rf_fusion::FusionPlan`]: a
//!   single loop over the shared axis applying the three-step template.

pub mod builder;
pub mod detect;
pub mod fuse;
pub mod interp;
pub mod ir;

pub use detect::{detect_cascade, DetectError, DetectedCascade};
pub use fuse::generate_fused;
pub use interp::{Interpreter, RunError};
pub use ir::{BufferDecl, BufferKind, Stmt, TirExpr, TirFunction};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_softmax_pipeline() {
        let unfused = builder::unfused_softmax(64);
        let detected = detect_cascade(&unfused).unwrap();
        assert_eq!(detected.cascade.reductions.len(), 2);
        let plan = rf_fusion::analyze_cascade(&detected.cascade).unwrap();
        let fused = generate_fused(&plan, &detected);
        assert!(fused.to_string().contains("for"));
    }
}
