//! Fused scalar-kernel generation (Appendix A.4's three-step template).
//!
//! Given the [`rf_fusion::FusionPlan`] produced by ACRF and the
//! [`DetectedCascade`] it came from, [`generate_fused`] emits a single loop
//! over the shared axis in which every reduction applies, per element:
//!
//! 1. **store previous result** — copy the running value into a `*_prev`
//!    buffer (omitted when no later reduction depends on it),
//! 2. **apply correction** — rescale the running value by
//!    `H(D_prev)^{-1} ⊗ H(D_cur)` (omitted for independent reductions),
//! 3. **perform reduction** — fold in the new element's `G(x) ⊗ H(D_cur)`.
//!
//! The first input element is peeled into a separate single-iteration loop so
//! the main loop never divides by (or subtracts) the reduction identities; the
//! same loop-splitting is what the tile-level lowering performs before
//! software pipelining.

use rf_algebra::BinaryOp;
use rf_expr::{Expr, ExprKind};
use rf_fusion::{FusedReduction, FusionPlan};

use crate::detect::DetectedCascade;
use crate::ir::{BufferDecl, Stmt, TirExpr, TirFunction};

/// Generates the fused single-pass scalar kernel for a detected cascade.
///
/// # Panics
///
/// Panics if the plan and the detected cascade disagree on the reduction list
/// (they always agree when the plan was produced from `detected.cascade`).
pub fn generate_fused(plan: &FusionPlan, detected: &DetectedCascade) -> TirFunction {
    assert!(
        plan.matches_spec(&detected.cascade),
        "fusion plan does not correspond to the detected cascade"
    );
    let axis = detected.axis.clone();
    let extent = detected.extent;

    let mut buffers: Vec<BufferDecl> = detected
        .input_buffers
        .iter()
        .map(|name| BufferDecl::input(name.clone(), vec![extent]))
        .collect();

    // A reduction needs a `*_prev` buffer when a later reduction's H references it.
    let needs_prev: Vec<bool> = plan
        .reductions
        .iter()
        .map(|r| {
            plan.reductions
                .iter()
                .any(|later| later.index > r.index && later.deps.contains(&r.name))
        })
        .collect();

    for (r, &prev) in plan.reductions.iter().zip(&needs_prev) {
        buffers.push(BufferDecl::output(
            r.name.clone(),
            vec![],
            r.plus.identity(),
        ));
        if prev {
            buffers.push(BufferDecl::temp(
                format!("{}_prev", r.name),
                vec![],
                r.plus.identity(),
            ));
        }
    }

    let reduction_names: Vec<String> = plan.reductions.iter().map(|r| r.name.clone()).collect();

    // Peeled first iteration: direct stores, no corrections.
    let peel_body: Vec<Stmt> = plan
        .reductions
        .iter()
        .map(|r| Stmt::Store {
            buffer: r.name.clone(),
            indices: vec![],
            value: incoming_value(r, &axis, &reduction_names),
        })
        .collect();

    // Main loop: the three-step template per reduction.
    let mut main_body: Vec<Stmt> = Vec::new();
    for (r, &prev) in plan.reductions.iter().zip(&needs_prev) {
        // Step 1: store previous result (only if later reductions need it).
        if prev {
            main_body.push(Stmt::Store {
                buffer: format!("{}_prev", r.name),
                indices: vec![],
                value: TirExpr::load0(r.name.clone()),
            });
        }
        // Step 2: apply correction (only for dependent reductions).
        if !r.is_independent() {
            let h_cur = lower_expr(&r.h, &axis, &reduction_names, &[]);
            let h_prev = lower_expr(&r.h, &axis, &reduction_names, &r.deps);
            let ratio = match r.combine {
                BinaryOp::Mul => TirExpr::Div(Box::new(h_cur), Box::new(h_prev)),
                BinaryOp::Add => TirExpr::Sub(Box::new(h_cur), Box::new(h_prev)),
                other => panic!("Table 1 never selects {other} as a combine operator"),
            };
            main_body.push(Stmt::Store {
                buffer: r.name.clone(),
                indices: vec![],
                value: TirExpr::Binary(
                    r.combine,
                    Box::new(TirExpr::load0(r.name.clone())),
                    Box::new(ratio),
                ),
            });
        }
        // Step 3: perform the reduction.
        main_body.push(Stmt::Update {
            buffer: r.name.clone(),
            indices: vec![],
            op: r.plus,
            value: incoming_value(r, &axis, &reduction_names),
        });
    }

    TirFunction {
        name: format!("fused_{}", detected.cascade.name),
        buffers,
        body: vec![
            Stmt::For {
                var: axis.clone(),
                start: 0,
                extent: 1.min(extent),
                body: peel_body,
            },
            Stmt::For {
                var: axis,
                start: 1,
                extent,
                body: main_body,
            },
        ],
    }
}

/// The per-element contribution `G(x) ⊗ H(D_cur)` (or just `G(x)` for
/// independent reductions), with dependency loads referencing the current
/// (already-updated) reduction buffers.
fn incoming_value(reduction: &FusedReduction, axis: &str, reduction_names: &[String]) -> TirExpr {
    let g = lower_expr(&reduction.g, axis, reduction_names, &[]);
    if reduction.is_independent() {
        g
    } else {
        let h = lower_expr(&reduction.h, axis, reduction_names, &[]);
        TirExpr::Binary(reduction.combine, Box::new(g), Box::new(h))
    }
}

/// Lowers a symbolic expression into the loop-nest IR. Variables that name
/// reduction results become scalar loads — of the `*_prev` buffer when listed
/// in `prev_deps` — while all other variables are cascade inputs streamed
/// along the axis and become 1-D loads.
fn lower_expr(
    expr: &Expr,
    axis: &str,
    reduction_names: &[String],
    prev_deps: &[String],
) -> TirExpr {
    match expr.kind() {
        ExprKind::Const(c) => TirExpr::Const(*c),
        ExprKind::Var(name) => {
            if prev_deps.contains(name) {
                TirExpr::load0(format!("{name}_prev"))
            } else if reduction_names.contains(name) {
                TirExpr::load0(name.clone())
            } else {
                TirExpr::load1(name.clone(), axis)
            }
        }
        ExprKind::Unary(f, a) => TirExpr::Unary(
            *f,
            Box::new(lower_expr(a, axis, reduction_names, prev_deps)),
        ),
        ExprKind::Binary(op, a, b) => TirExpr::Binary(
            *op,
            Box::new(lower_expr(a, axis, reduction_names, prev_deps)),
            Box::new(lower_expr(b, axis, reduction_names, prev_deps)),
        ),
        ExprKind::Sub(a, b) => TirExpr::Sub(
            Box::new(lower_expr(a, axis, reduction_names, prev_deps)),
            Box::new(lower_expr(b, axis, reduction_names, prev_deps)),
        ),
        ExprKind::Div(a, b) => TirExpr::Div(
            Box::new(lower_expr(a, axis, reduction_names, prev_deps)),
            Box::new(lower_expr(b, axis, reduction_names, prev_deps)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use crate::detect::detect_cascade;
    use crate::interp::Interpreter;
    use rf_fusion::analyze_cascade;
    use std::collections::HashMap;

    type Outputs = HashMap<String, Vec<f64>>;

    fn run_both(unfused: &TirFunction, inputs: &Outputs) -> (Outputs, Outputs, TirFunction) {
        let detected = detect_cascade(unfused).unwrap();
        let plan = analyze_cascade(&detected.cascade).unwrap();
        let fused = generate_fused(&plan, &detected);
        let interp = Interpreter::new();
        let a = interp.run(unfused, inputs).unwrap();
        let b = interp.run(&fused, inputs).unwrap();
        (a, b, fused)
    }

    fn assert_outputs_match(a: &HashMap<String, Vec<f64>>, b: &HashMap<String, Vec<f64>>) {
        for (name, expected) in a {
            let actual = &b[name];
            for (x, y) in expected.iter().zip(actual) {
                assert!(
                    (x - y).abs() <= 1e-8 * (1.0 + x.abs()),
                    "{name}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn fused_softmax_matches_unfused() {
        let unfused = builder::unfused_softmax(48);
        let inputs = HashMap::from([("x".to_string(), rf_workloads::random_vec(48, 5, -3.0, 3.0))]);
        let (a, b, fused) = run_both(&unfused, &inputs);
        assert_outputs_match(&a, &b);
        // The fused kernel has exactly one main loop over the axis (plus the peel).
        assert!(fused.to_string().contains("for l in range(1, 48):"));
    }

    #[test]
    fn fused_attention_row_matches_unfused() {
        let unfused = builder::unfused_attention_row(64);
        let inputs = HashMap::from([
            ("p".to_string(), rf_workloads::random_vec(64, 7, -2.0, 2.0)),
            ("v".to_string(), rf_workloads::random_vec(64, 8, -2.0, 2.0)),
        ]);
        let (a, b, fused) = run_both(&unfused, &inputs);
        assert_outputs_match(&a, &b);
        // Dataflow elimination: `o` is not reused, so no `o_prev` buffer exists,
        // while `m` and `t` are reused and get one each (Appendix A.4).
        assert!(fused.buffer("m_prev").is_some());
        assert!(fused.buffer("t_prev").is_some());
        assert!(fused.buffer("o_prev").is_none());
    }

    #[test]
    fn fused_quant_row_matches_unfused() {
        let unfused = builder::unfused_quant_gemm_row(40);
        let inputs = HashMap::from([
            ("a".to_string(), rf_workloads::random_vec(40, 11, -2.0, 2.0)),
            ("w".to_string(), rf_workloads::random_vec(40, 12, -1.0, 1.0)),
        ]);
        let (a, b, _) = run_both(&unfused, &inputs);
        assert_outputs_match(&a, &b);
    }

    #[test]
    fn fused_sum_sum_matches_unfused() {
        let unfused = builder::unfused_sum_sum(32);
        let inputs = HashMap::from([
            ("x1".to_string(), rf_workloads::random_vec(32, 21, 0.5, 2.0)),
            (
                "x2".to_string(),
                rf_workloads::random_vec(32, 22, -1.0, 1.0),
            ),
        ]);
        let (a, b, _) = run_both(&unfused, &inputs);
        assert_outputs_match(&a, &b);
    }

    #[test]
    fn independent_reductions_have_no_correction_step() {
        let unfused = builder::unfused_softmax(16);
        let detected = detect_cascade(&unfused).unwrap();
        let plan = analyze_cascade(&detected.cascade).unwrap();
        let fused = generate_fused(&plan, &detected);
        let text = fused.to_string();
        // `m` (independent) appears only with max-updates, never with a
        // self-multiplying correction store.
        assert!(!text.contains("m[0] = (m[0] *"));
        // `t` (dependent) does get a correction.
        assert!(text.contains("t[0] = (t[0] *"));
    }

    #[test]
    #[should_panic(expected = "does not correspond")]
    fn mismatched_plan_is_rejected() {
        let softmax = detect_cascade(&builder::unfused_softmax(8)).unwrap();
        let other = detect_cascade(&builder::unfused_quant_gemm_row(8)).unwrap();
        let plan = analyze_cascade(&other.cascade).unwrap();
        generate_fused(&plan, &softmax);
    }
}
