//! Core data types of the scalar loop-nest IR.
//!
//! The IR is deliberately small: loop nests over named integer loop variables,
//! loads/stores of named buffers indexed by loop variables, and the scalar
//! expression vocabulary of `rf-expr`. This is the subset of TVM's TensorIR
//! that the paper's Figures 11–13 exercise.

use std::collections::BTreeSet;
use std::fmt;

use rf_algebra::BinaryOp;
use rf_expr::UnaryFn;

/// A scalar expression in the loop-nest IR.
#[derive(Debug, Clone, PartialEq)]
pub enum TirExpr {
    /// A floating-point literal.
    Const(f64),
    /// A loop variable used as a value (rare; kept for completeness).
    Var(String),
    /// A load of `buffer[indices...]`; indices are loop-variable names.
    /// Scalar (0-dimensional) buffers use an empty index list.
    Load {
        /// Buffer name.
        buffer: String,
        /// Loop variables indexing each dimension.
        indices: Vec<String>,
    },
    /// A unary function application.
    Unary(UnaryFn, Box<TirExpr>),
    /// A commutative binary operator application.
    Binary(BinaryOp, Box<TirExpr>, Box<TirExpr>),
    /// Subtraction.
    Sub(Box<TirExpr>, Box<TirExpr>),
    /// Division.
    Div(Box<TirExpr>, Box<TirExpr>),
}

impl TirExpr {
    /// A load of a scalar (0-dimensional) buffer.
    pub fn load0(buffer: impl Into<String>) -> TirExpr {
        TirExpr::Load {
            buffer: buffer.into(),
            indices: vec![],
        }
    }

    /// A load of a 1-dimensional buffer at index `var`.
    pub fn load1(buffer: impl Into<String>, var: impl Into<String>) -> TirExpr {
        TirExpr::Load {
            buffer: buffer.into(),
            indices: vec![var.into()],
        }
    }

    /// All buffer names loaded by this expression.
    pub fn loaded_buffers(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_loads(&mut out);
        out
    }

    fn collect_loads(&self, out: &mut BTreeSet<String>) {
        match self {
            TirExpr::Const(_) | TirExpr::Var(_) => {}
            TirExpr::Load { buffer, .. } => {
                out.insert(buffer.clone());
            }
            TirExpr::Unary(_, a) => a.collect_loads(out),
            TirExpr::Binary(_, a, b) | TirExpr::Sub(a, b) | TirExpr::Div(a, b) => {
                a.collect_loads(out);
                b.collect_loads(out);
            }
        }
    }

    /// Whether any load of `buffer` in this expression uses `axis` among its
    /// indices.
    pub fn load_uses_axis(&self, buffer: &str, axis: &str) -> bool {
        match self {
            TirExpr::Const(_) | TirExpr::Var(_) => false,
            TirExpr::Load { buffer: b, indices } => {
                b == buffer && indices.iter().any(|i| i == axis)
            }
            TirExpr::Unary(_, a) => a.load_uses_axis(buffer, axis),
            TirExpr::Binary(_, a, b) | TirExpr::Sub(a, b) | TirExpr::Div(a, b) => {
                a.load_uses_axis(buffer, axis) || b.load_uses_axis(buffer, axis)
            }
        }
    }
}

impl fmt::Display for TirExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TirExpr::Const(c) => write!(f, "{c}"),
            TirExpr::Var(v) => write!(f, "{v}"),
            TirExpr::Load { buffer, indices } => {
                if indices.is_empty() {
                    write!(f, "{buffer}[0]")
                } else {
                    write!(f, "{buffer}[{}]", indices.join(", "))
                }
            }
            TirExpr::Unary(func, a) => write!(f, "{}({a})", func.name()),
            TirExpr::Binary(BinaryOp::Add, a, b) => write!(f, "({a} + {b})"),
            TirExpr::Binary(BinaryOp::Mul, a, b) => write!(f, "({a} * {b})"),
            TirExpr::Binary(BinaryOp::Max, a, b) => write!(f, "max({a}, {b})"),
            TirExpr::Binary(BinaryOp::Min, a, b) => write!(f, "min({a}, {b})"),
            TirExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            TirExpr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

/// A statement of the loop-nest IR.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `for var in range(start, extent) { body }`; `start` is 0 for ordinary
    /// loops and non-zero for peeled loops produced by the fusion pass.
    For {
        /// Loop variable name.
        var: String,
        /// First iteration value (inclusive).
        start: usize,
        /// End of the iteration range (exclusive).
        extent: usize,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `buffer[indices...] = value`
    Store {
        /// Destination buffer.
        buffer: String,
        /// Loop variables indexing each dimension.
        indices: Vec<String>,
        /// Value to store.
        value: TirExpr,
    },
    /// `buffer[indices...] = op(buffer[indices...], value)` — the reduction
    /// update form (`+=`, `max=`, …).
    Update {
        /// Destination buffer.
        buffer: String,
        /// Loop variables indexing each dimension.
        indices: Vec<String>,
        /// Reduction operator.
        op: BinaryOp,
        /// Value combined into the destination.
        value: TirExpr,
    },
}

impl Stmt {
    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "    ".repeat(indent);
        match self {
            Stmt::For {
                var,
                start,
                extent,
                body,
            } => {
                if *start == 0 {
                    writeln!(f, "{pad}for {var} in range({extent}):")?;
                } else {
                    writeln!(f, "{pad}for {var} in range({start}, {extent}):")?;
                }
                for stmt in body {
                    stmt.fmt_indented(f, indent + 1)?;
                }
                Ok(())
            }
            Stmt::Store {
                buffer,
                indices,
                value,
            } => {
                writeln!(f, "{pad}{buffer}[{}] = {value}", format_indices(indices))
            }
            Stmt::Update {
                buffer,
                indices,
                op,
                value,
            } => match op {
                BinaryOp::Add => {
                    writeln!(f, "{pad}{buffer}[{}] += {value}", format_indices(indices))
                }
                BinaryOp::Mul => {
                    writeln!(f, "{pad}{buffer}[{}] *= {value}", format_indices(indices))
                }
                _ => writeln!(
                    f,
                    "{pad}{buffer}[{idx}] = {op}({buffer}[{idx}], {value})",
                    idx = format_indices(indices),
                ),
            },
        }
    }
}

fn format_indices(indices: &[String]) -> String {
    if indices.is_empty() {
        "0".to_string()
    } else {
        indices.join(", ")
    }
}

/// The role of a buffer in a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferKind {
    /// Provided by the caller.
    Input,
    /// Produced by the function and returned to the caller.
    Output,
    /// Internal temporary.
    Temp,
}

/// A buffer declaration: name, shape (empty for scalars) and initial value for
/// non-input buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferDecl {
    /// Buffer name.
    pub name: String,
    /// Extent of each dimension; empty for a scalar buffer.
    pub shape: Vec<usize>,
    /// Role of the buffer.
    pub kind: BufferKind,
    /// Initial value of every element (ignored for inputs).
    pub init: f64,
}

impl BufferDecl {
    /// An input buffer.
    pub fn input(name: impl Into<String>, shape: Vec<usize>) -> Self {
        BufferDecl {
            name: name.into(),
            shape,
            kind: BufferKind::Input,
            init: 0.0,
        }
    }

    /// An output buffer initialised to `init`.
    pub fn output(name: impl Into<String>, shape: Vec<usize>, init: f64) -> Self {
        BufferDecl {
            name: name.into(),
            shape,
            kind: BufferKind::Output,
            init,
        }
    }

    /// A temporary buffer initialised to `init`.
    pub fn temp(name: impl Into<String>, shape: Vec<usize>, init: f64) -> Self {
        BufferDecl {
            name: name.into(),
            shape,
            kind: BufferKind::Temp,
            init,
        }
    }

    /// Total number of elements (1 for scalars).
    ///
    /// Always at least 1 — scalars occupy one slot — so an `is_empty`
    /// counterpart would be vacuously false.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.shape.iter().product::<usize>().max(1)
    }

    /// Whether the buffer is 0-dimensional.
    pub fn is_scalar(&self) -> bool {
        self.shape.is_empty()
    }
}

/// A function of the loop-nest IR: buffer declarations plus a statement list.
#[derive(Debug, Clone, PartialEq)]
pub struct TirFunction {
    /// Function name.
    pub name: String,
    /// All buffers used by the body.
    pub buffers: Vec<BufferDecl>,
    /// The statements, executed in order.
    pub body: Vec<Stmt>,
}

impl TirFunction {
    /// Looks up a buffer declaration by name.
    pub fn buffer(&self, name: &str) -> Option<&BufferDecl> {
        self.buffers.iter().find(|b| b.name == name)
    }

    /// Names of the input buffers, in declaration order.
    pub fn input_names(&self) -> Vec<String> {
        self.buffers
            .iter()
            .filter(|b| b.kind == BufferKind::Input)
            .map(|b| b.name.clone())
            .collect()
    }

    /// Names of the output buffers, in declaration order.
    pub fn output_names(&self) -> Vec<String> {
        self.buffers
            .iter()
            .filter(|b| b.kind == BufferKind::Output)
            .map(|b| b.name.clone())
            .collect()
    }

    /// Counts the statements of the body, recursing into loops. Used as a
    /// rough size metric in tests and reports.
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::For { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body)
    }
}

impl fmt::Display for TirFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "def {}({}):", self.name, self.input_names().join(", "))?;
        for stmt in &self.body {
            stmt.fmt_indented(f, 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_display_and_loads() {
        let e = TirExpr::Binary(
            BinaryOp::Mul,
            Box::new(TirExpr::load1("x", "l")),
            Box::new(TirExpr::load0("m")),
        );
        assert_eq!(e.to_string(), "(x[l] * m[0])");
        let loads = e.loaded_buffers();
        assert!(loads.contains("x") && loads.contains("m"));
        assert!(e.load_uses_axis("x", "l"));
        assert!(!e.load_uses_axis("m", "l"));
    }

    #[test]
    fn function_display_matches_figure_style() {
        let f = TirFunction {
            name: "softmax_stats".into(),
            buffers: vec![
                BufferDecl::input("x", vec![8]),
                BufferDecl::output("m", vec![], f64::NEG_INFINITY),
            ],
            body: vec![Stmt::For {
                var: "l".into(),
                start: 0,
                extent: 8,
                body: vec![Stmt::Update {
                    buffer: "m".into(),
                    indices: vec![],
                    op: BinaryOp::Max,
                    value: TirExpr::load1("x", "l"),
                }],
            }],
        };
        let text = f.to_string();
        assert!(text.contains("for l in range(8):"));
        assert!(text.contains("m[0] = max(m[0], x[l])"));
        assert_eq!(f.stmt_count(), 2);
        assert_eq!(f.input_names(), vec!["x"]);
        assert_eq!(f.output_names(), vec!["m"]);
        assert!(f.buffer("m").unwrap().is_scalar());
        assert_eq!(f.buffer("x").unwrap().len(), 8);
    }

    #[test]
    fn update_display_for_add_and_mul() {
        let add = Stmt::Update {
            buffer: "s".into(),
            indices: vec![],
            op: BinaryOp::Add,
            value: TirExpr::Const(1.0),
        };
        let f = TirFunction {
            name: "t".into(),
            buffers: vec![],
            body: vec![add],
        };
        assert!(f.to_string().contains("s[0] += 1"));
    }
}
