//! Reference interpreter for the scalar loop-nest IR.
//!
//! The interpreter executes a [`TirFunction`] against caller-provided input
//! buffers and returns the output buffers. It is intentionally simple (no
//! vectorisation, no caching) — its only job is to define the semantics that
//! the fusion passes must preserve, which the tests check by running the
//! unfused and fused functions on the same inputs.

use std::collections::HashMap;
use std::fmt;

use crate::ir::{BufferKind, Stmt, TirExpr, TirFunction};

/// Errors produced while running a function.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// An input buffer was not supplied or has the wrong length.
    BadInput {
        /// Buffer name.
        buffer: String,
        /// Expected element count.
        expected: usize,
        /// Provided element count (0 when missing).
        provided: usize,
    },
    /// A load or store referenced an undeclared buffer.
    UnknownBuffer(String),
    /// A load or store used an index variable that is not an enclosing loop
    /// variable, or the wrong number of indices.
    BadIndex {
        /// Buffer name.
        buffer: String,
        /// Diagnostic message.
        message: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::BadInput {
                buffer,
                expected,
                provided,
            } => {
                write!(
                    f,
                    "input `{buffer}` has {provided} elements, expected {expected}"
                )
            }
            RunError::UnknownBuffer(name) => write!(f, "unknown buffer `{name}`"),
            RunError::BadIndex { buffer, message } => {
                write!(f, "bad index into `{buffer}`: {message}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Executes scalar loop-nest functions.
#[derive(Debug, Clone, Copy, Default)]
pub struct Interpreter;

impl Interpreter {
    /// Creates an interpreter.
    pub fn new() -> Self {
        Interpreter
    }

    /// Runs `function` with the given input buffers and returns all output
    /// buffers by name.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if inputs are missing or mis-sized, or the body
    /// references unknown buffers or invalid indices.
    pub fn run(
        &self,
        function: &TirFunction,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> Result<HashMap<String, Vec<f64>>, RunError> {
        let mut storage: HashMap<String, Vec<f64>> = HashMap::new();
        let mut shapes: HashMap<String, Vec<usize>> = HashMap::new();
        for decl in &function.buffers {
            shapes.insert(decl.name.clone(), decl.shape.clone());
            match decl.kind {
                BufferKind::Input => {
                    let provided = inputs.get(&decl.name).cloned().unwrap_or_default();
                    if provided.len() != decl.len() {
                        return Err(RunError::BadInput {
                            buffer: decl.name.clone(),
                            expected: decl.len(),
                            provided: provided.len(),
                        });
                    }
                    storage.insert(decl.name.clone(), provided);
                }
                BufferKind::Output | BufferKind::Temp => {
                    storage.insert(decl.name.clone(), vec![decl.init; decl.len()]);
                }
            }
        }

        let mut loop_vars: HashMap<String, usize> = HashMap::new();
        exec_block(&function.body, &mut storage, &shapes, &mut loop_vars)?;

        Ok(function
            .buffers
            .iter()
            .filter(|b| b.kind == BufferKind::Output)
            .map(|b| (b.name.clone(), storage.remove(&b.name).unwrap()))
            .collect())
    }
}

fn exec_block(
    stmts: &[Stmt],
    storage: &mut HashMap<String, Vec<f64>>,
    shapes: &HashMap<String, Vec<usize>>,
    loop_vars: &mut HashMap<String, usize>,
) -> Result<(), RunError> {
    for stmt in stmts {
        match stmt {
            Stmt::For {
                var,
                start,
                extent,
                body,
            } => {
                for i in *start..*extent {
                    loop_vars.insert(var.clone(), i);
                    exec_block(body, storage, shapes, loop_vars)?;
                }
                loop_vars.remove(var);
            }
            Stmt::Store {
                buffer,
                indices,
                value,
            } => {
                let v = eval_expr(value, storage, shapes, loop_vars)?;
                let offset = flat_index(buffer, indices, shapes, loop_vars)?;
                let data = storage
                    .get_mut(buffer)
                    .ok_or_else(|| RunError::UnknownBuffer(buffer.clone()))?;
                data[offset] = v;
            }
            Stmt::Update {
                buffer,
                indices,
                op,
                value,
            } => {
                let v = eval_expr(value, storage, shapes, loop_vars)?;
                let offset = flat_index(buffer, indices, shapes, loop_vars)?;
                let data = storage
                    .get_mut(buffer)
                    .ok_or_else(|| RunError::UnknownBuffer(buffer.clone()))?;
                data[offset] = op.apply(data[offset], v);
            }
        }
    }
    Ok(())
}

fn flat_index(
    buffer: &str,
    indices: &[String],
    shapes: &HashMap<String, Vec<usize>>,
    loop_vars: &HashMap<String, usize>,
) -> Result<usize, RunError> {
    let shape = shapes
        .get(buffer)
        .ok_or_else(|| RunError::UnknownBuffer(buffer.to_string()))?;
    if shape.len() != indices.len() {
        return Err(RunError::BadIndex {
            buffer: buffer.to_string(),
            message: format!(
                "{} indices for {}-dimensional buffer",
                indices.len(),
                shape.len()
            ),
        });
    }
    let mut offset = 0usize;
    for (dim, index_var) in shape.iter().zip(indices) {
        let value = *loop_vars.get(index_var).ok_or_else(|| RunError::BadIndex {
            buffer: buffer.to_string(),
            message: format!("`{index_var}` is not an enclosing loop variable"),
        })?;
        if value >= *dim {
            return Err(RunError::BadIndex {
                buffer: buffer.to_string(),
                message: format!("index {value} out of bounds for extent {dim}"),
            });
        }
        offset = offset * dim + value;
    }
    Ok(offset)
}

fn eval_expr(
    expr: &TirExpr,
    storage: &HashMap<String, Vec<f64>>,
    shapes: &HashMap<String, Vec<usize>>,
    loop_vars: &HashMap<String, usize>,
) -> Result<f64, RunError> {
    Ok(match expr {
        TirExpr::Const(c) => *c,
        TirExpr::Var(v) => *loop_vars.get(v).unwrap_or(&0) as f64,
        TirExpr::Load { buffer, indices } => {
            let offset = flat_index(buffer, indices, shapes, loop_vars)?;
            let data = storage
                .get(buffer)
                .ok_or_else(|| RunError::UnknownBuffer(buffer.clone()))?;
            data[offset]
        }
        TirExpr::Unary(f, a) => f.apply(eval_expr(a, storage, shapes, loop_vars)?),
        TirExpr::Binary(op, a, b) => op.apply(
            eval_expr(a, storage, shapes, loop_vars)?,
            eval_expr(b, storage, shapes, loop_vars)?,
        ),
        TirExpr::Sub(a, b) => {
            eval_expr(a, storage, shapes, loop_vars)? - eval_expr(b, storage, shapes, loop_vars)?
        }
        TirExpr::Div(a, b) => {
            eval_expr(a, storage, shapes, loop_vars)? / eval_expr(b, storage, shapes, loop_vars)?
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::BufferDecl;
    use rf_algebra::BinaryOp;

    fn sum_function(len: usize) -> TirFunction {
        TirFunction {
            name: "sum".into(),
            buffers: vec![
                BufferDecl::input("x", vec![len]),
                BufferDecl::output("s", vec![], 0.0),
            ],
            body: vec![Stmt::For {
                var: "l".into(),
                start: 0,
                extent: len,
                body: vec![Stmt::Update {
                    buffer: "s".into(),
                    indices: vec![],
                    op: BinaryOp::Add,
                    value: TirExpr::load1("x", "l"),
                }],
            }],
        }
    }

    #[test]
    fn runs_a_simple_reduction() {
        let f = sum_function(4);
        let inputs = HashMap::from([("x".to_string(), vec![1.0, 2.0, 3.0, 4.0])]);
        let out = Interpreter::new().run(&f, &inputs).unwrap();
        assert_eq!(out["s"], vec![10.0]);
    }

    #[test]
    fn missing_input_is_reported() {
        let f = sum_function(4);
        let err = Interpreter::new().run(&f, &HashMap::new()).unwrap_err();
        assert!(matches!(err, RunError::BadInput { .. }));
        assert!(err.to_string().contains("expected 4"));
    }

    #[test]
    fn unknown_buffer_is_reported() {
        let mut f = sum_function(2);
        f.body = vec![Stmt::Store {
            buffer: "ghost".into(),
            indices: vec![],
            value: TirExpr::Const(1.0),
        }];
        let inputs = HashMap::from([("x".to_string(), vec![1.0, 2.0])]);
        let err = Interpreter::new().run(&f, &inputs).unwrap_err();
        assert_eq!(err, RunError::UnknownBuffer("ghost".into()));
    }

    #[test]
    fn bad_index_variable_is_reported() {
        let mut f = sum_function(2);
        f.body = vec![Stmt::Update {
            buffer: "s".into(),
            indices: vec![],
            op: BinaryOp::Add,
            value: TirExpr::load1("x", "not_a_loop"),
        }];
        let inputs = HashMap::from([("x".to_string(), vec![1.0, 2.0])]);
        let err = Interpreter::new().run(&f, &inputs).unwrap_err();
        assert!(matches!(err, RunError::BadIndex { .. }));
    }

    #[test]
    fn two_dimensional_buffers_use_row_major_layout() {
        let f = TirFunction {
            name: "rowsum".into(),
            buffers: vec![
                BufferDecl::input("x", vec![2, 3]),
                BufferDecl::output("s", vec![2], 0.0),
            ],
            body: vec![Stmt::For {
                var: "r".into(),
                start: 0,
                extent: 2,
                body: vec![Stmt::For {
                    var: "c".into(),
                    start: 0,
                    extent: 3,
                    body: vec![Stmt::Update {
                        buffer: "s".into(),
                        indices: vec!["r".into()],
                        op: BinaryOp::Add,
                        value: TirExpr::Load {
                            buffer: "x".into(),
                            indices: vec!["r".into(), "c".into()],
                        },
                    }],
                }],
            }],
        };
        let inputs = HashMap::from([("x".to_string(), vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0])]);
        let out = Interpreter::new().run(&f, &inputs).unwrap();
        assert_eq!(out["s"], vec![6.0, 60.0]);
    }
}
