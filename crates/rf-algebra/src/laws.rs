//! Numeric law checking for operator pairs.
//!
//! The fusion feasibility conditions of §3.2.1 require, for each reduction,
//! that `(S, ⊗_i)` is a commutative monoid and that `⊕_i` distributes over
//! `⊗_i`. These helpers check the laws on sampled points; they back both the
//! ACRF analysis in `rf-fusion` and the property-test suites.

use crate::op::BinaryOp;

/// Relative tolerance used when comparing floating-point law instances.
pub const LAW_TOLERANCE: f64 = 1e-7;

/// Sample points used by the deterministic law checks. They mix signs,
/// magnitudes and the two monoid identities' neighbourhoods.
pub const SAMPLE_POINTS: [f64; 9] = [-13.5, -3.0, -1.0, -0.25, 0.0, 0.25, 1.0, 4.5, 11.0];

fn close(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    if a.is_infinite() || b.is_infinite() {
        return a == b;
    }
    (a - b).abs() <= LAW_TOLERANCE * (1.0 + a.abs().max(b.abs()))
}

/// Checks associativity of `op` on the sample grid.
pub fn check_associative(op: BinaryOp) -> bool {
    for &a in &SAMPLE_POINTS {
        for &b in &SAMPLE_POINTS {
            for &c in &SAMPLE_POINTS {
                if !close(op.apply(op.apply(a, b), c), op.apply(a, op.apply(b, c))) {
                    return false;
                }
            }
        }
    }
    true
}

/// Checks commutativity of `op` on the sample grid.
pub fn check_commutative(op: BinaryOp) -> bool {
    for &a in &SAMPLE_POINTS {
        for &b in &SAMPLE_POINTS {
            if !close(op.apply(a, b), op.apply(b, a)) {
                return false;
            }
        }
    }
    true
}

/// Checks that `op.identity()` really is a two-sided identity on the sample grid.
pub fn check_identity(op: BinaryOp) -> bool {
    let e = op.identity();
    SAMPLE_POINTS
        .iter()
        .all(|&s| close(op.apply(e, s), s) && close(op.apply(s, e), s))
}

/// Checks that `plus` distributes over `times`:
/// `(a ⊕ b) ⊗ c = (a ⊗ c) ⊕ (b ⊗ c)` (Eq. 5 of the paper).
pub fn check_distributes_over(plus: BinaryOp, times: BinaryOp) -> bool {
    for &a in &SAMPLE_POINTS {
        for &b in &SAMPLE_POINTS {
            for &c in &SAMPLE_POINTS {
                let lhs = times.apply(plus.apply(a, b), c);
                let rhs = plus.apply(times.apply(a, c), times.apply(b, c));
                if !close(lhs, rhs) {
                    return false;
                }
            }
        }
    }
    true
}

/// A structured report of the commutative-monoid + distributivity check for a
/// `(⊕, ⊗)` pair, as required by the fusion feasibility conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LawReport {
    /// `⊗` is associative.
    pub combine_associative: bool,
    /// `⊗` is commutative.
    pub combine_commutative: bool,
    /// `⊗` has a two-sided identity.
    pub combine_has_identity: bool,
    /// `⊕` distributes over `⊗`.
    pub distributive: bool,
}

impl LawReport {
    /// Evaluates all laws for the pair `(plus, times)`.
    pub fn evaluate(plus: BinaryOp, times: BinaryOp) -> Self {
        LawReport {
            combine_associative: check_associative(times),
            combine_commutative: check_commutative(times),
            combine_has_identity: check_identity(times),
            distributive: check_distributes_over(plus, times),
        }
    }

    /// Whether every fusion feasibility condition holds.
    pub fn all_hold(&self) -> bool {
        self.combine_associative
            && self.combine_commutative
            && self.combine_has_identity
            && self.distributive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::ReduceOp;
    use crate::table1::compatible_combine;

    #[test]
    fn every_operator_is_a_commutative_monoid() {
        for op in BinaryOp::ALL {
            assert!(check_associative(op), "{op} associative");
            assert!(check_commutative(op), "{op} commutative");
            assert!(check_identity(op), "{op} identity");
        }
    }

    #[test]
    fn table1_rows_pass_full_law_report() {
        for reduce in ReduceOp::ALL {
            let plus = reduce.fusion_plus();
            let times = compatible_combine(reduce);
            let report = LawReport::evaluate(plus, times);
            assert!(report.all_hold(), "{reduce}: {report:?}");
        }
    }

    #[test]
    fn mismatched_pair_is_rejected() {
        // max does not distribute over * (negative scaling flips the max).
        let report = LawReport::evaluate(BinaryOp::Max, BinaryOp::Mul);
        assert!(!report.distributive);
        assert!(!report.all_hold());
    }

    #[test]
    fn close_handles_infinities() {
        assert!(close(f64::NEG_INFINITY, f64::NEG_INFINITY));
        assert!(!close(f64::NEG_INFINITY, 0.0));
    }
}
