//! Table 1 of the paper: compatible combine operators for each reduction.
//!
//! | Reduction operation `R_i`              | `⊕_i` | `⊗_i` |
//! |----------------------------------------|-------|-------|
//! | Max, ArgMax, TopK, …                   | max   | +     |
//! | Min, ArgMin, …                         | min   | +     |
//! | Sum, Inner Product, Matrix Multiply, … | +     | *     |
//! | Prod                                   | +     | *     |
//!
//! (The paper rewrites products as sums of logs, so `Prod` shares `Sum`'s row.)
//!
//! The pairing is exactly the distributivity requirement of §3.2.1:
//! `max` distributes over `+` (`max(a,b)+c = max(a+c, b+c)`) and `+`
//! distributes over `*`.

use crate::op::BinaryOp;
use crate::reduce::ReduceOp;

/// Returns the combine operator `⊗_i` compatible with the given reduction
/// operator, per Table 1 of the paper.
///
/// # Examples
///
/// ```
/// use rf_algebra::{compatible_combine, BinaryOp, ReduceOp};
///
/// assert_eq!(compatible_combine(ReduceOp::Max), BinaryOp::Add);
/// assert_eq!(compatible_combine(ReduceOp::Sum), BinaryOp::Mul);
/// ```
#[inline]
pub fn compatible_combine(reduce: ReduceOp) -> BinaryOp {
    match reduce {
        ReduceOp::Max | ReduceOp::Min => BinaryOp::Add,
        ReduceOp::Sum | ReduceOp::Prod => BinaryOp::Mul,
    }
}

/// A row of Table 1: a reduction operator, its underlying `⊕`, and the
/// compatible `⊗`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Reduction operation family name as printed in the paper.
    pub family: &'static str,
    /// The reduction operator.
    pub reduce: ReduceOp,
    /// The underlying `⊕` operator.
    pub plus: BinaryOp,
    /// The compatible combine operator `⊗`.
    pub times: BinaryOp,
}

/// The full contents of Table 1, in paper order.
pub fn table1() -> Vec<Table1Row> {
    [
        ("Max, ArgMax, TopK", ReduceOp::Max),
        ("Min, ArgMin", ReduceOp::Min),
        ("Sum, Inner Product, Matrix Multiply", ReduceOp::Sum),
        ("Prod", ReduceOp::Prod),
    ]
    .into_iter()
    .map(|(family, reduce)| Table1Row {
        family,
        reduce,
        plus: reduce.fusion_plus(),
        times: compatible_combine(reduce),
    })
    .collect()
}

/// Numerically verifies that `⊕` distributes over `⊗` for the given pair, on a
/// grid of sample points. Used both in tests and by the Table 1 harness.
pub fn verify_distributivity(plus: BinaryOp, times: BinaryOp) -> bool {
    let samples = [-7.5, -2.0, -0.5, 0.0, 0.5, 1.0, 3.25, 9.0];
    for &a in &samples {
        for &b in &samples {
            for &c in &samples {
                let lhs = times.apply(plus.apply(a, b), c);
                let rhs = plus.apply(times.apply(a, c), times.apply(b, c));
                if (lhs - rhs).abs() > 1e-9 * (1.0 + lhs.abs().max(rhs.abs())) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_has_four_rows() {
        let t = table1();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].reduce, ReduceOp::Max);
        assert_eq!(t[2].times, BinaryOp::Mul);
    }

    #[test]
    fn every_row_is_distributive() {
        for row in table1() {
            assert!(
                verify_distributivity(row.plus, row.times),
                "{} must distribute over {}",
                row.plus,
                row.times
            );
        }
    }

    #[test]
    fn incompatible_pair_fails_distributivity() {
        // `*` does not distribute over `+` in the direction required here:
        // (a + b) * c == a*c + b*c holds, but (a * b) + c != (a+c)*(b+c).
        assert!(!verify_distributivity(BinaryOp::Mul, BinaryOp::Add));
        // max over * also fails: max(a,b)*c != max(a*c, b*c) for negative c.
        assert!(!verify_distributivity(BinaryOp::Max, BinaryOp::Mul));
    }

    proptest! {
        #[test]
        fn prop_max_plus_distributes(a in -100.0f64..100.0, b in -100.0f64..100.0, c in -100.0f64..100.0) {
            let lhs = BinaryOp::Add.apply(BinaryOp::Max.apply(a, b), c);
            let rhs = BinaryOp::Max.apply(BinaryOp::Add.apply(a, c), BinaryOp::Add.apply(b, c));
            prop_assert!((lhs - rhs).abs() < 1e-9);
        }

        #[test]
        fn prop_sum_mul_distributes(a in -100.0f64..100.0, b in -100.0f64..100.0, c in -100.0f64..100.0) {
            let lhs = BinaryOp::Mul.apply(BinaryOp::Add.apply(a, b), c);
            let rhs = BinaryOp::Add.apply(BinaryOp::Mul.apply(a, c), BinaryOp::Mul.apply(b, c));
            prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + lhs.abs()));
        }
    }
}
