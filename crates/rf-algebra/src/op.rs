//! Combine operators `⊗` used to decompose reduction map functions.
//!
//! A combine operator together with the real numbers must form a commutative
//! monoid (§3.2.1 of the paper): associative, commutative, with an identity
//! element. Inverses are used by the fused-expression derivation (Eq. 8/11);
//! when an element has no inverse (e.g. `0` under `*`) the reversibility-repair
//! mechanism of Appendix A.1 substitutes the identity element instead.

use std::fmt;

/// A binary combine operator `⊗` over `f64`.
///
/// Only operators that appear in the paper's Table 1 are represented: the
/// decomposition search space is deliberately restricted to this vocabulary
/// (§4.2.1, "domain-specific decomposition feasibility").
///
/// # Examples
///
/// ```
/// use rf_algebra::BinaryOp;
///
/// assert_eq!(BinaryOp::Add.apply(2.0, 3.0), 5.0);
/// assert_eq!(BinaryOp::Mul.identity(), 1.0);
/// assert_eq!(BinaryOp::Mul.inverse(4.0), Some(0.25));
/// assert_eq!(BinaryOp::Max.inverse(4.0), None); // max has no inverses
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinaryOp {
    /// Addition; identity `0`, every element invertible (negation).
    Add,
    /// Multiplication; identity `1`, every non-zero element invertible.
    Mul,
    /// Maximum; identity `-inf`, no inverses (idempotent semilattice).
    Max,
    /// Minimum; identity `+inf`, no inverses (idempotent semilattice).
    Min,
}

impl BinaryOp {
    /// All combine operators, in a fixed order (useful for exhaustive tests).
    pub const ALL: [BinaryOp; 4] = [BinaryOp::Add, BinaryOp::Mul, BinaryOp::Max, BinaryOp::Min];

    /// Applies the operator to two operands.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Mul => a * b,
            BinaryOp::Max => a.max(b),
            BinaryOp::Min => a.min(b),
        }
    }

    /// The identity element `e` with `e ⊗ s = s ⊗ e = s`.
    #[inline]
    pub fn identity(self) -> f64 {
        match self {
            BinaryOp::Add => 0.0,
            BinaryOp::Mul => 1.0,
            BinaryOp::Max => f64::NEG_INFINITY,
            BinaryOp::Min => f64::INFINITY,
        }
    }

    /// Reduces an iterator of values with this operator, starting from the
    /// identity element.
    pub fn fold<I: IntoIterator<Item = f64>>(self, values: I) -> f64 {
        values
            .into_iter()
            .fold(self.identity(), |acc, v| self.apply(acc, v))
    }

    /// Whether the operator admits inverses for (almost) all elements.
    ///
    /// `Add` is a group; `Mul` is a group on the non-zero reals; `Max`/`Min`
    /// are idempotent and admit no inverses at all.
    #[inline]
    pub fn is_group_like(self) -> bool {
        matches!(self, BinaryOp::Add | BinaryOp::Mul)
    }

    /// The inverse of `value` under this operator, if it exists.
    ///
    /// Returns `None` for non-invertible elements (`0` under `Mul`, anything
    /// under `Max`/`Min`). Callers that need totality should use
    /// [`BinaryOp::inverse_or_repair`].
    #[inline]
    pub fn inverse(self, value: f64) -> Option<f64> {
        match self {
            BinaryOp::Add => Some(-value),
            BinaryOp::Mul => {
                if value == 0.0 || !value.is_finite() {
                    None
                } else {
                    Some(1.0 / value)
                }
            }
            BinaryOp::Max | BinaryOp::Min => None,
        }
    }

    /// The reversibility-repair of Appendix A.1: the inverse when it exists,
    /// otherwise the identity element (which is always its own inverse).
    #[inline]
    pub fn inverse_or_repair(self, value: f64) -> f64 {
        self.inverse(value).unwrap_or_else(|| self.identity())
    }

    /// Whether `value` is invertible under the operator.
    #[inline]
    pub fn is_invertible(self, value: f64) -> bool {
        self.inverse(value).is_some()
    }

    /// Whether this operator is idempotent (`s ⊗ s = s`).
    #[inline]
    pub fn is_idempotent(self) -> bool {
        matches!(self, BinaryOp::Max | BinaryOp::Min)
    }

    /// A short lowercase mnemonic used by IR printers.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinaryOp::Add => "add",
            BinaryOp::Mul => "mul",
            BinaryOp::Max => "max",
            BinaryOp::Min => "min",
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let symbol = match self {
            BinaryOp::Add => "+",
            BinaryOp::Mul => "*",
            BinaryOp::Max => "max",
            BinaryOp::Min => "min",
        };
        f.write_str(symbol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identities() {
        for op in BinaryOp::ALL {
            let e = op.identity();
            for v in [-3.5, 0.0, 1.0, 7.25] {
                assert_eq!(op.apply(e, v), v, "{op} identity (left)");
                assert_eq!(op.apply(v, e), v, "{op} identity (right)");
            }
        }
    }

    #[test]
    fn inverse_add() {
        assert_eq!(BinaryOp::Add.inverse(3.0), Some(-3.0));
        assert_eq!(
            BinaryOp::Add.apply(3.0, BinaryOp::Add.inverse(3.0).unwrap()),
            0.0
        );
    }

    #[test]
    fn inverse_mul_zero_is_repaired() {
        assert_eq!(BinaryOp::Mul.inverse(0.0), None);
        assert_eq!(BinaryOp::Mul.inverse_or_repair(0.0), 1.0);
    }

    #[test]
    fn max_min_have_no_inverse() {
        assert_eq!(BinaryOp::Max.inverse(1.0), None);
        assert_eq!(BinaryOp::Min.inverse(1.0), None);
        assert_eq!(BinaryOp::Max.inverse_or_repair(1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn fold_matches_manual() {
        assert_eq!(BinaryOp::Add.fold([1.0, 2.0, 3.0]), 6.0);
        assert_eq!(BinaryOp::Mul.fold([2.0, 3.0, 4.0]), 24.0);
        assert_eq!(BinaryOp::Max.fold([2.0, -3.0, 4.0]), 4.0);
        assert_eq!(BinaryOp::Min.fold([2.0, -3.0, 4.0]), -3.0);
    }

    #[test]
    fn idempotency_flags() {
        assert!(BinaryOp::Max.is_idempotent());
        assert!(BinaryOp::Min.is_idempotent());
        assert!(!BinaryOp::Add.is_idempotent());
        assert!(!BinaryOp::Mul.is_idempotent());
    }

    #[test]
    fn display_and_mnemonic() {
        assert_eq!(BinaryOp::Add.to_string(), "+");
        assert_eq!(BinaryOp::Max.mnemonic(), "max");
    }

    fn finite() -> impl Strategy<Value = f64> {
        -1.0e3..1.0e3
    }

    proptest! {
        #[test]
        fn prop_associative(op in prop::sample::select(BinaryOp::ALL.to_vec()),
                            a in finite(), b in finite(), c in finite()) {
            let lhs = op.apply(op.apply(a, b), c);
            let rhs = op.apply(a, op.apply(b, c));
            prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + lhs.abs().max(rhs.abs())));
        }

        #[test]
        fn prop_commutative(op in prop::sample::select(BinaryOp::ALL.to_vec()),
                            a in finite(), b in finite()) {
            prop_assert_eq!(op.apply(a, b), op.apply(b, a));
        }

        #[test]
        fn prop_inverse_cancels(a in finite()) {
            prop_assume!(a != 0.0);
            let inv = BinaryOp::Mul.inverse(a).unwrap();
            prop_assert!((BinaryOp::Mul.apply(a, inv) - 1.0).abs() < 1e-9);
            let ninv = BinaryOp::Add.inverse(a).unwrap();
            prop_assert_eq!(BinaryOp::Add.apply(a, ninv), 0.0);
        }

        #[test]
        fn prop_idempotent_ops(a in finite()) {
            prop_assert_eq!(BinaryOp::Max.apply(a, a), a);
            prop_assert_eq!(BinaryOp::Min.apply(a, a), a);
        }
    }
}
