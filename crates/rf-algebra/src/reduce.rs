//! Reduction operators `⊕` underlying the reductions `R_i`.
//!
//! A reduction derives a single value from a sequence through repeated
//! application of an associative, commutative binary operator. The paper's
//! formal model (Eq. 1) writes the `i`-th reduction as
//! `d_i = R_i_{l=1..L0} F_i(X[l], D_i)`; this module captures the `R_i` part.

use std::fmt;

use crate::op::BinaryOp;

/// A reduction operator, i.e. the `⊕_i` used by `R_i`.
///
/// The distinction from [`BinaryOp`] is one of role: a `ReduceOp` is the
/// operator that folds the mapped elements together (the vertical dimension of
/// the reduction tree), while a `BinaryOp` is the combine operator `⊗_i` used
/// to factor the map function. Table 1 of the paper links the two; see
/// [`crate::table1::compatible_combine`].
///
/// # Examples
///
/// ```
/// use rf_algebra::ReduceOp;
///
/// let xs = [1.0, 4.0, 2.0];
/// assert_eq!(ReduceOp::Sum.reduce(xs), 7.0);
/// assert_eq!(ReduceOp::Max.reduce(xs), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReduceOp {
    /// Summation (`Σ`). Covers sum, inner product, matrix multiply.
    Sum,
    /// Product (`Π`). The paper notes it can be rewritten as a sum of logs.
    Prod,
    /// Maximum. Covers max, argmax (value part), top-k (threshold part).
    Max,
    /// Minimum. Covers min and argmin (value part).
    Min,
}

impl ReduceOp {
    /// All reduction operators in a fixed order.
    pub const ALL: [ReduceOp; 4] = [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Max, ReduceOp::Min];

    /// The underlying binary operator `⊕`.
    #[inline]
    pub fn binary_op(self) -> BinaryOp {
        match self {
            ReduceOp::Sum => BinaryOp::Add,
            ReduceOp::Prod => BinaryOp::Mul,
            ReduceOp::Max => BinaryOp::Max,
            ReduceOp::Min => BinaryOp::Min,
        }
    }

    /// The identity (neutral) element of the reduction.
    #[inline]
    pub fn identity(self) -> f64 {
        self.binary_op().identity()
    }

    /// Combines two partial reduction results.
    #[inline]
    pub fn combine(self, a: f64, b: f64) -> f64 {
        self.binary_op().apply(a, b)
    }

    /// The `⊕` operator used *for fusion analysis*.
    ///
    /// This is identical to [`ReduceOp::binary_op`] except for `Prod`: the
    /// paper's Table 1 footnote rewrites products as sums of logarithms
    /// (`Π F = sgn(·) 2^(Σ log2 |F|)`), so the fused form reduces with `+`.
    #[inline]
    pub fn fusion_plus(self) -> BinaryOp {
        match self {
            ReduceOp::Prod => BinaryOp::Add,
            other => other.binary_op(),
        }
    }

    /// Reduces a sequence of values.
    pub fn reduce<I: IntoIterator<Item = f64>>(self, values: I) -> f64 {
        self.binary_op().fold(values)
    }

    /// Reduces a slice, splitting it into `segments` contiguous chunks, reducing
    /// each chunk independently and then combining the partial results.
    ///
    /// Because `⊕` is associative and commutative this always equals
    /// [`ReduceOp::reduce`]; it mirrors the reduction-tree evaluation order and
    /// is exercised by the property tests.
    pub fn reduce_segmented(self, values: &[f64], segments: usize) -> f64 {
        assert!(segments > 0, "segments must be positive");
        let chunk = values.len().div_ceil(segments.max(1)).max(1);
        let partials = values.chunks(chunk).map(|c| self.reduce(c.iter().copied()));
        self.reduce(partials)
    }

    /// A short lowercase mnemonic used by IR printers.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Prod => "prod",
            ReduceOp::Max => "max",
            ReduceOp::Min => "min",
        }
    }
}

impl fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl From<ReduceOp> for BinaryOp {
    fn from(value: ReduceOp) -> Self {
        value.binary_op()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reduce_basic() {
        assert_eq!(ReduceOp::Sum.reduce([1.0, 2.0, 3.0]), 6.0);
        assert_eq!(ReduceOp::Prod.reduce([1.0, 2.0, 3.0]), 6.0);
        assert_eq!(ReduceOp::Max.reduce([1.0, 5.0, 3.0]), 5.0);
        assert_eq!(ReduceOp::Min.reduce([1.0, 5.0, 3.0]), 1.0);
    }

    #[test]
    fn reduce_empty_is_identity() {
        assert_eq!(ReduceOp::Sum.reduce([]), 0.0);
        assert_eq!(ReduceOp::Prod.reduce([]), 1.0);
        assert_eq!(ReduceOp::Max.reduce([]), f64::NEG_INFINITY);
        assert_eq!(ReduceOp::Min.reduce([]), f64::INFINITY);
    }

    #[test]
    fn conversion_to_binary_op() {
        assert_eq!(BinaryOp::from(ReduceOp::Sum), BinaryOp::Add);
        assert_eq!(BinaryOp::from(ReduceOp::Max), BinaryOp::Max);
    }

    #[test]
    #[should_panic(expected = "segments must be positive")]
    fn segmented_zero_segments_panics() {
        ReduceOp::Sum.reduce_segmented(&[1.0], 0);
    }

    proptest! {
        #[test]
        fn prop_segmented_matches_flat(
            op in prop::sample::select(ReduceOp::ALL.to_vec()),
            values in prop::collection::vec(-100.0f64..100.0, 1..64),
            segments in 1usize..8,
        ) {
            let flat = op.reduce(values.iter().copied());
            let seg = op.reduce_segmented(&values, segments);
            let tol = 1e-9 * (1.0 + flat.abs());
            // Product can diverge in magnitude; loosen relative tolerance.
            let tol = if op == ReduceOp::Prod { 1e-6 * (1.0 + flat.abs()) } else { tol };
            prop_assert!((flat - seg).abs() <= tol, "flat={flat} seg={seg}");
        }

        #[test]
        fn prop_reduce_is_order_insensitive(
            op in prop::sample::select(vec![ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min]),
            mut values in prop::collection::vec(-100.0f64..100.0, 1..32),
        ) {
            let forward = op.reduce(values.iter().copied());
            values.reverse();
            let backward = op.reduce(values.iter().copied());
            prop_assert!((forward - backward).abs() <= 1e-9 * (1.0 + forward.abs()));
        }
    }
}
