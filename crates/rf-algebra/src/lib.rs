//! Operator algebra for cascaded reduction fusion.
//!
//! The fusion methodology of RedFuser (§3 of the paper) is parameterised by two
//! binary operators per reduction:
//!
//! * the **reduction operator** `⊕_i` underlying the reduction `R_i`
//!   (summation, product, max, min — see [`ReduceOp`]), and
//! * the **combine operator** `⊗_i` used to split the map function
//!   `F_i(x, d) = G_i(x) ⊗_i H_i(d)` (see [`BinaryOp`]).
//!
//! Fusion is only valid when `(S, ⊗_i)` forms a commutative monoid and `⊕_i`
//! distributes over `⊗_i` (§3.2.1). This crate encodes these operators, their
//! identities and inverses, numeric law-checking helpers used by the ACRF
//! analysis and by property tests, and the paper's Table 1 mapping from a
//! reduction operator to its compatible combine operator.

pub mod laws;
pub mod op;
pub mod reduce;
pub mod table1;

pub use laws::{
    check_associative, check_commutative, check_distributes_over, check_identity, LawReport,
};
pub use op::BinaryOp;
pub use reduce::ReduceOp;
pub use table1::compatible_combine;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_are_usable() {
        assert_eq!(compatible_combine(ReduceOp::Sum), BinaryOp::Mul);
        assert_eq!(BinaryOp::Add.identity(), 0.0);
    }
}
