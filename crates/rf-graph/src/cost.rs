//! Analytical cost profiles for graph ops.
//!
//! Glue ops execute unfused — one kernel launch each, reading their operands
//! from and writing their result to global memory. This module builds the
//! [`KernelProfile`]s the serving runtime and the benchmarks feed to the
//! `rf-gpusim` latency model: for glue steps of a fused
//! [`GraphPlan`](crate::partition::GraphPlan), and for *every* node of a
//! graph when costing the fully-unfused baseline a fused plan is compared
//! against.

use rf_gpusim::KernelProfile;

use crate::graph::{NodeId, Op, OpGraph};

/// Bytes per element of the activation precision glue ops move (fp16).
const ELEMENT_BYTES: u64 = 2;

/// Elements processed per thread block of a glue kernel.
const ELEMENTS_PER_BLOCK: u64 = 4096;

/// The launch profile of one graph op executed as an unfused kernel.
///
/// # Panics
///
/// Panics when called on an [`Op::Input`] node — inputs are bindings, not
/// kernels.
pub fn glue_profile(graph: &OpGraph, id: NodeId) -> KernelProfile {
    let node = graph.node(id);
    let out_elems = node.shape.len() as u64;
    let in_elems: u64 = node
        .args
        .iter()
        .map(|&a| graph.node(a).shape.len() as u64)
        .sum();
    let flops = match &node.op {
        Op::Input { .. } => panic!("inputs are bound, not launched"),
        // [m, k] @ [k, n]: one multiply-add per contraction element.
        Op::MatMul => {
            let a = graph.node(node.args[0]).shape;
            2 * (a.rows * a.cols) as u64 * graph.node(node.args[1]).shape.cols as u64
        }
        // Pure data movement.
        Op::Transpose | Op::Reshape | Op::ColSlice(_) => 0,
        // Roughly one op per input element (exp/abs/div/compare all count 1
        // in the model's flop accounting).
        _ => in_elems.max(out_elems),
    };
    KernelProfile {
        name: format!("glue_{}_{}", node.op.name(), id),
        flops,
        hbm_bytes: (in_elems + out_elems) * ELEMENT_BYTES,
        blocks: out_elems.div_ceil(ELEMENTS_PER_BLOCK).max(1),
        threads_per_block: 256,
        shared_mem_per_block: 0,
        precision: "fp16",
        // Unfused glue kernels: short, launch-bound, little overlap.
        compute_efficiency: 0.6,
        overlap: 0.5,
        launches: 1,
    }
}

/// The fully-unfused execution of a graph: one kernel launch per non-input
/// node. This is the baseline a fused [`GraphPlan`](crate::partition::GraphPlan) is costed against (feed
/// it to `rf_gpusim::sequence_latency`).
pub fn unfused_profiles(graph: &OpGraph) -> Vec<KernelProfile> {
    (0..graph.len())
        .filter(|&id| !matches!(graph.node(id).op, Op::Input { .. }))
        .map(|id| glue_profile(graph, id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use rf_gpusim::{estimate_latency, GpuArch};

    #[test]
    fn profiles_cover_every_non_input_node_and_cost_finitely() {
        let g = builders::transformer_decoder_layer(8, 16, 32);
        let profiles = unfused_profiles(&g);
        let non_inputs = (0..g.len())
            .filter(|&id| !matches!(g.node(id).op, Op::Input { .. }))
            .count();
        assert_eq!(profiles.len(), non_inputs);
        let arch = GpuArch::a10();
        for p in &profiles {
            let us = estimate_latency(&arch, p).total_us;
            assert!(us.is_finite() && us > 0.0, "{}: {us}", p.name);
        }
    }

    #[test]
    fn matmul_flops_dominate_elementwise_flops() {
        let mut g = crate::graph::OpGraph::new();
        let a = g.input("a", 32, 64);
        let b = g.input("b", 64, 32);
        let mm = g.matmul(a, b);
        let r = g.map(crate::graph::MapOp::Relu, mm);
        g.mark_output(r);
        let mm_profile = glue_profile(&g, mm);
        let relu_profile = glue_profile(&g, r);
        assert_eq!(mm_profile.flops, 2 * 32 * 64 * 32);
        assert!(mm_profile.flops > relu_profile.flops);
        assert_eq!(relu_profile.hbm_bytes, 2 * (1024 + 1024));
    }
}
