//! Operator-graph frontend: automatic cascade detection over whole
//! computation graphs.
//!
//! The compiler crates answer "how do I fuse this *given* cascade"; this
//! crate answers "where are the cascades in this *graph*" — the detect stage
//! that makes RedFuser's fusion automatic rather than pre-labelled. It is
//! organised as a pipeline:
//!
//! * [`graph`] — a small tensor-level operator IR ([`OpGraph`]): named
//!   inputs, elementwise glue ops, GEMMs, transposes, reshapes, slices and
//!   row-wise reductions, with eager shape checking and an unfused
//!   whole-graph reference evaluator.
//! * [`builders`] — ready-made unfused graphs for a transformer decoder
//!   layer, a mixture-of-experts block and an FP8-quantized MLP.
//! * [`detect`] — walks the graph, lifts dependency-connected reduction
//!   chains into [`rf_fusion::CascadeSpec`]s and proves (or refutes) each
//!   one with the real ACRF analysis ([`rf_fusion::analyze_cascade`]).
//! * [`mod@partition`] — greedily grows maximal fusable regions around the
//!   proved chains, lowers each region to an existing
//!   [`rf_codegen::Workload`] and emits a topologically-ordered
//!   [`GraphPlan`] of fused region steps and unfused glue ops.
//! * [`cost`] — analytical launch profiles for glue ops and for the
//!   fully-unfused baseline plan.
//!
//! The serving side lives in `rf-runtime`: a graph submission
//! (`Engine::submit` with `Submission::graph`) executes a [`GraphPlan`]
//! end-to-end, compiling each region through the ordinary pipeline (cached
//! in the engine's plan cache) and threading intermediate tensors between
//! steps.
//!
//! # Example: detecting and partitioning a transformer layer
//!
//! ```
//! use rf_graph::{builders, partition};
//!
//! let graph = builders::transformer_decoder_layer(8, 16, 32);
//! let plan = partition::partition(&graph);
//! // The attention core fuses into one MHA workload; projections, residual
//! // adds and the MLP stay glue.
//! assert_eq!(plan.fused_regions(), 1);
//! assert!(plan.glue_ops() > 0);
//! ```

pub mod builders;
pub mod cost;
pub mod detect;
pub mod graph;
pub mod partition;

pub use cost::{glue_profile, unfused_profiles};
pub use detect::{chain_matches_spec, detect_cascades, CascadeCandidate};
pub use graph::{GraphError, MapOp, Node, NodeId, Op, OpGraph, Shape, ZipOp};
pub use partition::{partition, FusedRegion, GraphPlan, RegionKind, Step};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_compose() {
        let graph = builders::moe_block(4, 8, 4);
        let candidates = detect_cascades(&graph);
        assert!(candidates.iter().any(|c| c.is_fusable()));
        assert_eq!(partition(&graph).fused_regions(), 1);
    }
}
