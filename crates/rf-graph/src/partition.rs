//! The region partitioner: from proved cascade candidates to a servable
//! [`GraphPlan`].
//!
//! The partitioner greedily grows **maximal fusable regions** around the
//! detector's ACRF-proved chains — largest template first, so an attention
//! region absorbs its score GEMM, scaling, softmax cascade and output GEMM
//! rather than fusing the softmax alone — and leaves everything else as
//! unfused **glue ops**. Each fused region lowers to an existing
//! [`rf_codegen::Workload`], so the serving runtime compiles it with the
//! ordinary pipeline (ACRF → lowering → auto-tuning) and caches the result
//! in its plan cache; each glue op executes with the unfused reference
//! kernel of [`OpGraph::eval_node`].
//!
//! A region is only formed when
//!
//! 1. the covering reduction chain was **proved** fusable by ACRF (refuted
//!    chains — e.g. the dependent two-pass variance — can never be fused),
//! 2. the graph structure matches the workload's template, and
//! 3. no interior node escapes: every value produced inside the region is
//!    consumed inside it, except the single region output.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use rf_algebra::ReduceOp;
use rf_codegen::Workload;
use rf_fusion::{analyze_cascade, FusionPlan};
use rf_workloads::{MhaConfig, QuantGemmConfig, VarianceConfig, FP8_MAX};

use crate::detect::{detect_cascades, CascadeCandidate};
use crate::graph::{MapOp, NodeId, Op, OpGraph, ZipOp};

/// Relative tolerance when matching compile-time constants (the attention
/// score scale, the `1/MAX` quantization factor, the `1/L` mean factor).
const CONST_TOL: f64 = 1e-9;

/// How a fused region's input nodes feed the compiled workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// Row-wise safe softmax over one tensor.
    Softmax {
        /// The node whose rows are normalised.
        src: NodeId,
    },
    /// A full attention slice: score GEMM, scaling, softmax and output GEMM.
    Attention {
        /// Query node `[q_len, qk_dim]`.
        q: NodeId,
        /// Key node `[kv_len, qk_dim]`.
        k: NodeId,
        /// Value node `[kv_len, head_dim]`.
        v: NodeId,
    },
    /// FP8 per-token quantization + GEMM.
    QuantGemm {
        /// Activation node `[m, k]`.
        a: NodeId,
        /// Weight node `[k, n]`.
        w: NodeId,
    },
    /// Row-wise population variance via the sufficient statistics.
    Variance {
        /// The node whose row variances are computed.
        src: NodeId,
    },
}

/// One maximal fusable region: a set of graph nodes that lowers to a single
/// compiled workload.
#[derive(Debug, Clone)]
pub struct FusedRegion {
    /// The workload the region compiles to (and the plan-cache key).
    pub workload: Workload,
    /// How the region's inputs feed the workload.
    pub kind: RegionKind,
    /// Every graph node the region covers, in topological order.
    pub nodes: Vec<NodeId>,
    /// The node whose value the compiled kernel produces.
    pub output: NodeId,
    /// The ACRF fusion plan of the region's canonical cascade
    /// ([`Workload::cascade_spec`]) — the proof that the region is fusable.
    pub fusion: FusionPlan,
}

impl FusedRegion {
    /// The graph-region fingerprint: a stable-within-process hash of the
    /// workload the region lowers to. Two regions with the same fingerprint
    /// compile to the same plan, so the serving runtime's plan cache (keyed
    /// by `(workload, arch)`) shares one compiled kernel between them.
    pub fn fingerprint(&self) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.workload.hash(&mut hasher);
        hasher.finish()
    }
}

/// One execution step of a partitioned graph.
#[derive(Debug, Clone)]
pub enum Step {
    /// Execute a fused region through the compiled-workload pipeline. Boxed:
    /// a region (workload + fusion plan) is two orders of magnitude larger
    /// than a glue step, and glue steps dominate typical plans.
    Region(Box<FusedRegion>),
    /// Execute one glue op with its unfused reference kernel.
    Glue(NodeId),
}

/// A topologically-ordered execution plan for one graph: fused region steps
/// interleaved with unfused glue ops.
#[derive(Debug, Clone, Default)]
pub struct GraphPlan {
    /// The steps, in execution order. Executing them front to back computes
    /// every non-input node of the graph exactly once.
    pub steps: Vec<Step>,
}

impl GraphPlan {
    /// The fused regions, in execution order.
    pub fn regions(&self) -> Vec<&FusedRegion> {
        self.steps
            .iter()
            .filter_map(|s| match s {
                Step::Region(r) => Some(r.as_ref()),
                Step::Glue(_) => None,
            })
            .collect()
    }

    /// Number of fused region steps.
    pub fn fused_regions(&self) -> usize {
        self.regions().len()
    }

    /// Number of graph ops covered by fused regions.
    pub fn fused_ops(&self) -> usize {
        self.regions().iter().map(|r| r.nodes.len()).sum()
    }

    /// Number of unfused glue op steps.
    pub fn glue_ops(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Glue(_)))
            .count()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let names: Vec<String> = self.regions().iter().map(|r| r.workload.name()).collect();
        format!(
            "{} fused region(s) [{}] covering {} op(s), {} glue op(s)",
            self.fused_regions(),
            names.join(", "),
            self.fused_ops(),
            self.glue_ops()
        )
    }
}

/// Partitions a graph into maximal fusable regions plus glue ops.
///
/// Every non-input node ends up in exactly one step: covered by one fused
/// region, or executed as glue. Steps are emitted in topological order (a
/// region is emitted at its output node's position), so executing the plan
/// front to back always finds its operands computed.
pub fn partition(graph: &OpGraph) -> GraphPlan {
    let candidates = detect_cascades(graph);
    let mut claimed: Vec<bool> = vec![false; graph.len()];
    let mut regions: Vec<FusedRegion> = Vec::new();

    let mut claim = |region: FusedRegion, claimed: &mut Vec<bool>| {
        if region.nodes.iter().any(|&n| claimed[n]) {
            return;
        }
        for &n in &region.nodes {
            claimed[n] = true;
        }
        regions.push(region);
    };

    // Dependency-bearing templates first (largest region wins), then the
    // independent-reduction variance pairing over whatever is left.
    for cand in candidates.iter().filter(|c| c.is_fusable()) {
        if let Some(parts) = match_softmax_core(graph, cand) {
            let region = try_attention(graph, &parts).or_else(|| finish_softmax(graph, &parts));
            if let Some(region) = region {
                claim(region, &mut claimed);
            }
        } else if let Some(region) = try_quant(graph, cand) {
            claim(region, &mut claimed);
        }
    }
    let sums: Vec<&CascadeCandidate> = candidates
        .iter()
        .filter(|c| {
            c.is_fusable()
                && c.reductions.len() == 1
                && matches!(graph.node(c.reductions[0]).op, Op::RowReduce(ReduceOp::Sum))
                && !claimed[c.reductions[0]]
        })
        .collect();
    for (i, plain) in sums.iter().enumerate() {
        for squared in sums.iter().skip(i + 1).chain(sums.iter().take(i)) {
            if let Some(region) = try_variance(graph, plain, squared) {
                claim(region, &mut claimed);
                break;
            }
        }
    }

    let mut steps = Vec::new();
    for (id, node) in graph.nodes().iter().enumerate() {
        if matches!(node.op, Op::Input { .. }) {
            continue;
        }
        if claimed[id] {
            if let Some(pos) = regions.iter().position(|r| r.output == id) {
                steps.push(Step::Region(Box::new(regions[pos].clone())));
            }
        } else {
            steps.push(Step::Glue(id));
        }
    }
    GraphPlan { steps }
}

/// The canonical fusion plan of a workload's cascade, recorded on the region
/// as its proof of fusability.
fn canonical_fusion(workload: &Workload) -> FusionPlan {
    analyze_cascade(&workload.cascade_spec()).expect("canonical cascades are fusable")
}

/// Whether every consumer of `id` lies inside `region`, and `id` is not a
/// graph output — the condition for an interior region value.
fn interior(graph: &OpGraph, id: NodeId, region: &HashSet<NodeId>) -> bool {
    !graph.outputs().contains(&id) && graph.consumers(id).iter().all(|c| region.contains(c))
}

/// The matched nodes of a softmax cascade core plus its normalisation
/// finalizer.
struct SoftmaxParts {
    src: NodeId,
    m: NodeId,
    sub: NodeId,
    e: NodeId,
    t: NodeId,
    probs: NodeId,
}

/// Matches the structural softmax core around a proved `[max, sum]` chain:
/// `m = rowmax(src)`, `t = rowsum(exp(src - m))`, `probs = exp(src - m) / t`.
fn match_softmax_core(graph: &OpGraph, cand: &CascadeCandidate) -> Option<SoftmaxParts> {
    let [m, t] = cand.reductions[..] else {
        return None;
    };
    if !matches!(graph.node(m).op, Op::RowReduce(ReduceOp::Max))
        || !matches!(graph.node(t).op, Op::RowReduce(ReduceOp::Sum))
    {
        return None;
    }
    let src = graph.node(m).args[0];
    let e = graph.node(t).args[0];
    if graph.node(e).op != Op::Map(MapOp::Exp) {
        return None;
    }
    let sub = graph.node(e).args[0];
    if graph.node(sub).op != Op::Zip(ZipOp::Sub) || graph.node(sub).args != vec![src, m] {
        return None;
    }
    // The finalizer: division of the shifted exponentials by their sum.
    let probs = graph
        .consumers(e)
        .into_iter()
        .find(|&p| graph.node(p).op == Op::Zip(ZipOp::Div) && graph.node(p).args == vec![e, t])?;
    Some(SoftmaxParts {
        src,
        m,
        sub,
        e,
        t,
        probs,
    })
}

/// Finishes a plain softmax region from its matched core, checking interior
/// exclusivity.
fn finish_softmax(graph: &OpGraph, parts: &SoftmaxParts) -> Option<FusedRegion> {
    let nodes = vec![parts.m, parts.sub, parts.e, parts.t, parts.probs];
    let region: HashSet<NodeId> = nodes.iter().copied().collect();
    for &n in &[parts.m, parts.sub, parts.e, parts.t] {
        if !interior(graph, n, &region) {
            return None;
        }
    }
    let shape = graph.node(parts.src).shape;
    let workload = Workload::Softmax {
        rows: shape.rows,
        len: shape.cols,
    };
    Some(FusedRegion {
        fusion: canonical_fusion(&workload),
        workload,
        kind: RegionKind::Softmax { src: parts.src },
        nodes,
        output: parts.probs,
    })
}

/// Grows a matched softmax core into a full attention region when the
/// surrounding graph is `softmax(q @ kᵀ / sqrt(d)) @ v` with matching head
/// dimensions.
fn try_attention(graph: &OpGraph, parts: &SoftmaxParts) -> Option<FusedRegion> {
    // The softmax input is the scaled score GEMM.
    let Op::Scale(factor) = graph.node(parts.src).op else {
        return None;
    };
    let scores = graph.node(parts.src).args[0];
    if !matches!(graph.node(scores).op, Op::MatMul) {
        return None;
    }
    let [q, kt] = graph.node(scores).args[..] else {
        return None;
    };
    if !matches!(graph.node(kt).op, Op::Transpose) {
        return None;
    }
    let k = graph.node(kt).args[0];
    // The probabilities feed exactly one output GEMM with the values.
    let out = match graph.consumers(parts.probs)[..] {
        [out] => out,
        _ => return None,
    };
    if graph.node(out).op != Op::MatMul || graph.node(out).args[0] != parts.probs {
        return None;
    }
    let v = graph.node(out).args[1];
    // Shape constraints of the compiled MHA workload: shared qk/head dim,
    // shared kv length, and the canonical 1/sqrt(d) score scale.
    let (qs, ks, vs) = (
        graph.node(q).shape,
        graph.node(k).shape,
        graph.node(v).shape,
    );
    let qk_dim = qs.cols;
    if ks.cols != qk_dim || vs.cols != qk_dim || ks.rows != vs.rows {
        return None;
    }
    let expected = 1.0 / (qk_dim as f64).sqrt();
    if (factor - expected).abs() > CONST_TOL * expected {
        return None;
    }
    let nodes = vec![
        kt,
        scores,
        parts.src,
        parts.m,
        parts.sub,
        parts.e,
        parts.t,
        parts.probs,
        out,
    ];
    let region: HashSet<NodeId> = nodes.iter().copied().collect();
    if nodes[..nodes.len() - 1]
        .iter()
        .any(|&n| !interior(graph, n, &region))
    {
        return None;
    }
    let workload = Workload::Mha(MhaConfig {
        name: "graph",
        bs: 1,
        hn: 1,
        q: qs.rows,
        kv: ks.rows,
        hd: qk_dim,
        model: "graph",
    });
    Some(FusedRegion {
        fusion: canonical_fusion(&workload),
        workload,
        kind: RegionKind::Attention { q, k, v },
        nodes,
        output: out,
    })
}

/// Matches the FP8 per-token quantization + GEMM region around a proved
/// abs-max chain: `s = rowmax(|a|) / MAX`, `out = (fp8(a / s) @ w) * s`.
fn try_quant(graph: &OpGraph, cand: &CascadeCandidate) -> Option<FusedRegion> {
    let [mx] = cand.reductions[..] else {
        return None;
    };
    if !matches!(graph.node(mx).op, Op::RowReduce(ReduceOp::Max)) {
        return None;
    }
    let absn = graph.node(mx).args[0];
    if graph.node(absn).op != Op::Map(MapOp::Abs) {
        return None;
    }
    let a = graph.node(absn).args[0];
    // The dynamic per-row scale `s = amax / MAX`.
    let s = graph.consumers(mx).into_iter().find(|&s| {
        matches!(graph.node(s).op, Op::Scale(f) if (f - 1.0 / FP8_MAX).abs() <= CONST_TOL / FP8_MAX)
    })?;
    let d = graph
        .consumers(s)
        .into_iter()
        .find(|&d| graph.node(d).op == Op::Zip(ZipOp::Div) && graph.node(d).args == vec![a, s])?;
    let qm = graph
        .consumers(d)
        .into_iter()
        .find(|&q| graph.node(q).op == Op::Map(MapOp::Fp8Round))?;
    let gemm = graph
        .consumers(qm)
        .into_iter()
        .find(|&g| graph.node(g).op == Op::MatMul && graph.node(g).args[0] == qm)?;
    let w = graph.node(gemm).args[1];
    // The de-quantization: the GEMM result scaled back by `s`.
    let out = graph.consumers(gemm).into_iter().find(|&o| {
        graph.node(o).op == Op::Zip(ZipOp::Mul)
            && (graph.node(o).args == vec![gemm, s] || graph.node(o).args == vec![s, gemm])
    })?;
    let nodes = vec![absn, mx, s, d, qm, gemm, out];
    let region: HashSet<NodeId> = nodes.iter().copied().collect();
    if nodes[..nodes.len() - 1]
        .iter()
        .any(|&n| !interior(graph, n, &region))
    {
        return None;
    }
    let (ashape, wshape) = (graph.node(a).shape, graph.node(w).shape);
    let workload = Workload::Quant(QuantGemmConfig {
        name: "graph",
        m: ashape.rows,
        n: wshape.cols,
        k: ashape.cols,
        model: "graph",
    });
    Some(FusedRegion {
        fusion: canonical_fusion(&workload),
        workload,
        kind: RegionKind::QuantGemm { a, w },
        nodes,
        output: out,
    })
}

/// Matches the single-pass variance region from two independent sum chains
/// over the same source: `var = rowsum(x²)/L - (rowsum(x)/L)²`.
fn try_variance(
    graph: &OpGraph,
    plain: &CascadeCandidate,
    squared: &CascadeCandidate,
) -> Option<FusedRegion> {
    let (s1, s2) = (plain.reductions[0], squared.reductions[0]);
    let src = graph.node(s1).args[0];
    let sq = graph.node(s2).args[0];
    let square_of_src = match &graph.node(sq).op {
        Op::Map(MapOp::Square) => graph.node(sq).args[0] == src,
        Op::Zip(ZipOp::Mul) => graph.node(sq).args == vec![src, src],
        _ => false,
    };
    if !square_of_src {
        return None;
    }
    let len = graph.node(src).shape.cols;
    let inv_len = 1.0 / len as f64;
    let mean_of = |sum: NodeId| {
        graph.consumers(sum).into_iter().find(|&m| {
            matches!(graph.node(m).op, Op::Scale(f) if (f - inv_len).abs() <= CONST_TOL * inv_len)
        })
    };
    let m1 = mean_of(s1)?;
    let m2 = mean_of(s2)?;
    let m1sq = graph.consumers(m1).into_iter().find(|&n| {
        graph.node(n).op == Op::Map(MapOp::Square)
            || (graph.node(n).op == Op::Zip(ZipOp::Mul) && graph.node(n).args == vec![m1, m1])
    })?;
    let var = graph.consumers(m2).into_iter().find(|&n| {
        graph.node(n).op == Op::Zip(ZipOp::Sub) && graph.node(n).args == vec![m2, m1sq]
    })?;
    let mut nodes = vec![sq, s1, s2, m1, m2, m1sq, var];
    nodes.sort_unstable();
    let region: HashSet<NodeId> = nodes.iter().copied().collect();
    if nodes
        .iter()
        .filter(|&&n| n != var)
        .any(|&n| !interior(graph, n, &region))
    {
        return None;
    }
    let shape = graph.node(src).shape;
    let workload = Workload::Variance(VarianceConfig {
        name: "graph",
        bs: shape.rows,
        l: shape.cols,
    });
    Some(FusedRegion {
        fusion: canonical_fusion(&workload),
        workload,
        kind: RegionKind::Variance { src },
        nodes,
        output: var,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn standalone_softmax_partitions_into_one_region() {
        let mut g = OpGraph::new();
        let x = g.input("x", 4, 32);
        let m = g.row_reduce(ReduceOp::Max, x);
        let sub = g.zip(ZipOp::Sub, x, m);
        let e = g.map(MapOp::Exp, sub);
        let t = g.row_reduce(ReduceOp::Sum, e);
        let p = g.zip(ZipOp::Div, e, t);
        g.mark_output(p);
        let plan = partition(&g);
        assert_eq!(plan.fused_regions(), 1);
        assert_eq!(plan.glue_ops(), 0);
        let region = &plan.regions()[0];
        assert_eq!(region.workload, Workload::Softmax { rows: 4, len: 32 });
        assert_eq!(region.output, p);
        assert_eq!(region.fusion.cascade_name, "safe_softmax");
        assert!(plan.summary().contains("softmax_4x32"));
    }

    #[test]
    fn escaping_interior_values_block_fusion() {
        // The sum of exponentials is also a graph output, so the softmax
        // region would lose it; everything must stay glue.
        let mut g = OpGraph::new();
        let x = g.input("x", 4, 32);
        let m = g.row_reduce(ReduceOp::Max, x);
        let sub = g.zip(ZipOp::Sub, x, m);
        let e = g.map(MapOp::Exp, sub);
        let t = g.row_reduce(ReduceOp::Sum, e);
        let p = g.zip(ZipOp::Div, e, t);
        g.mark_output(p);
        g.mark_output(t);
        let plan = partition(&g);
        assert_eq!(plan.fused_regions(), 0);
        assert_eq!(plan.glue_ops(), 5);
    }

    #[test]
    fn transformer_layer_fuses_attention_and_leaves_glue() {
        let g = builders::transformer_decoder_layer(8, 16, 32);
        let plan = partition(&g);
        assert_eq!(plan.fused_regions(), 1);
        let region = &plan.regions()[0];
        assert!(matches!(region.kind, RegionKind::Attention { .. }));
        assert!(
            matches!(&region.workload, Workload::Mha(c) if c.q == 8 && c.kv == 8 && c.hd == 16)
        );
        assert_eq!(region.nodes.len(), 9, "the full attention slice is fused");
        assert!(plan.glue_ops() >= 6, "projections and MLP stay glue");
        assert_eq!(region.fusion.cascade_name, "attention_row");
    }

    #[test]
    fn wrong_scale_degrades_attention_to_a_softmax_region() {
        // A non-canonical score scale cannot lower to the MHA workload; the
        // partitioner must fall back to fusing just the softmax.
        let mut g = OpGraph::new();
        let q = g.input("q", 4, 8);
        let k = g.input("k", 6, 8);
        let v = g.input("v", 6, 8);
        let kt = g.transpose(k);
        let scores = g.matmul(q, kt);
        let scaled = g.scale(0.5, scores);
        let m = g.row_reduce(ReduceOp::Max, scaled);
        let sub = g.zip(ZipOp::Sub, scaled, m);
        let e = g.map(MapOp::Exp, sub);
        let t = g.row_reduce(ReduceOp::Sum, e);
        let p = g.zip(ZipOp::Div, e, t);
        let out = g.matmul(p, v);
        g.mark_output(out);
        let plan = partition(&g);
        assert_eq!(plan.fused_regions(), 1);
        let region = &plan.regions()[0];
        assert!(matches!(
            region.workload,
            Workload::Softmax { rows: 4, len: 6 }
        ));
        // The GEMMs and the scale stay glue.
        assert_eq!(plan.glue_ops(), 4);
    }

    #[test]
    fn quantized_mlp_fuses_both_quant_regions() {
        let g = builders::quantized_mlp(4, 32, 16, 8);
        let plan = partition(&g);
        assert_eq!(plan.fused_regions(), 2);
        for region in plan.regions() {
            assert!(matches!(region.kind, RegionKind::QuantGemm { .. }));
            assert!(matches!(region.workload, Workload::Quant(_)));
            assert_eq!(region.fusion.cascade_name, "fp8_quant_gemm");
        }
        assert_eq!(plan.glue_ops(), 1, "the relu between the layers is glue");
    }

    #[test]
    fn moe_block_fuses_the_routing_softmax() {
        let g = builders::moe_block(6, 16, 4);
        let plan = partition(&g);
        assert_eq!(plan.fused_regions(), 1);
        assert!(matches!(
            plan.regions()[0].workload,
            Workload::Softmax { rows: 6, len: 4 }
        ));
        assert!(plan.glue_ops() >= 6);
    }

    #[test]
    fn variance_region_is_matched_from_sufficient_statistics() {
        let mut g = OpGraph::new();
        let x = g.input("x", 3, 64);
        let s1 = g.row_reduce(ReduceOp::Sum, x);
        let sq = g.map(MapOp::Square, x);
        let s2 = g.row_reduce(ReduceOp::Sum, sq);
        let m1 = g.scale(1.0 / 64.0, s1);
        let m2 = g.scale(1.0 / 64.0, s2);
        let m1sq = g.map(MapOp::Square, m1);
        let var = g.zip(ZipOp::Sub, m2, m1sq);
        g.mark_output(var);
        let plan = partition(&g);
        assert_eq!(plan.fused_regions(), 1);
        let region = &plan.regions()[0];
        assert!(matches!(region.workload, Workload::Variance(ref c) if c.bs == 3 && c.l == 64));
        assert_eq!(region.output, var);
        assert_eq!(plan.glue_ops(), 0);
    }

    #[test]
    fn refuted_chains_are_never_fused() {
        let mut g = OpGraph::new();
        let y = g.input("y", 3, 16);
        let s1 = g.row_reduce(ReduceOp::Sum, y);
        let mu = g.scale(1.0 / 16.0, s1);
        let centered = g.zip(ZipOp::Sub, y, mu);
        let sq = g.map(MapOp::Square, centered);
        let v = g.row_reduce(ReduceOp::Sum, sq);
        let var = g.scale(1.0 / 16.0, v);
        g.mark_output(var);
        let plan = partition(&g);
        assert_eq!(plan.fused_regions(), 0);
        assert_eq!(plan.glue_ops(), 6);
    }

    #[test]
    fn every_non_input_node_is_planned_exactly_once() {
        for graph in [
            builders::transformer_decoder_layer(8, 16, 32),
            builders::moe_block(6, 16, 4),
            builders::quantized_mlp(4, 32, 16, 8),
        ] {
            let plan = partition(&graph);
            let mut covered: Vec<NodeId> = Vec::new();
            for step in &plan.steps {
                match step {
                    Step::Region(r) => covered.extend(&r.nodes),
                    Step::Glue(id) => covered.push(*id),
                }
            }
            covered.sort_unstable();
            let expected: Vec<NodeId> = (0..graph.len())
                .filter(|&id| !matches!(graph.node(id).op, Op::Input { .. }))
                .collect();
            assert_eq!(covered, expected);
        }
    }

    #[test]
    fn fingerprints_follow_the_workload() {
        let a = builders::quantized_mlp(4, 32, 16, 16);
        let plan = partition(&a);
        let regions = plan.regions();
        assert_eq!(regions.len(), 2);
        // Same [4,32]x[32,16] vs [4,16]x[16,16] shapes: different workloads,
        // different fingerprints.
        assert_ne!(regions[0].fingerprint(), regions[1].fingerprint());
        // Identical workloads share a fingerprint (and hence a cached plan).
        let b = builders::quantized_mlp(4, 32, 16, 16);
        assert_eq!(
            partition(&b).regions()[0].fingerprint(),
            regions[0].fingerprint()
        );
    }
}
