//! The tensor-level operator graph IR and its unfused reference evaluator.
//!
//! An [`OpGraph`] is a DAG of tensor-valued nodes: named inputs, elementwise
//! glue ops, matrix multiplies, transposes, reshapes, column slices and
//! row-wise reductions. Every tensor is a 2-D [`Matrix`] with a static
//! [`Shape`]; broadcasting follows the single rule the cascade model needs —
//! a `[rows, 1]` per-row column (a reduction result) combines elementwise
//! with a `[rows, cols]` operand.
//!
//! Nodes are appended through the builder methods, which infer and check
//! shapes eagerly, so a constructed graph is always topologically ordered by
//! node id and shape-consistent. [`OpGraph::evaluate`] executes the graph
//! node by node with naive unfused kernels — the whole-graph correctness
//! oracle everything fused is verified against.

use std::fmt;

use rf_algebra::ReduceOp;
use rf_workloads::{fp8_round, Matrix};

/// Index of a node inside its [`OpGraph`]. Ids are dense and topologically
/// ordered: every node's arguments have smaller ids.
pub type NodeId = usize;

/// The static `[rows, cols]` shape of a node's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Shape {
    /// Creates a shape; both extents must be positive.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "shapes must be non-empty");
        Shape { rows, cols }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the shape holds no elements (never true for built nodes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}x{}]", self.rows, self.cols)
    }
}

/// Elementwise unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapOp {
    /// `exp(x)`.
    Exp,
    /// `|x|`.
    Abs,
    /// `sqrt(x)`.
    Sqrt,
    /// `-x`.
    Neg,
    /// `1 / x`.
    Recip,
    /// `max(x, 0)`.
    Relu,
    /// `x * x`.
    Square,
    /// Rounding to the FP8 E4M3 grid (`rf_workloads::fp8_round`). Has no
    /// closed-form scalar expression, so the detector treats any reduction
    /// map containing it as unliftable.
    Fp8Round,
}

impl MapOp {
    /// Applies the operation to one element.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            MapOp::Exp => x.exp(),
            MapOp::Abs => x.abs(),
            MapOp::Sqrt => x.sqrt(),
            MapOp::Neg => -x,
            MapOp::Recip => 1.0 / x,
            MapOp::Relu => x.max(0.0),
            MapOp::Square => x * x,
            MapOp::Fp8Round => fp8_round(x),
        }
    }
}

/// Elementwise binary operations (with `[rows, 1]` broadcast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZipOp {
    /// `a + b`.
    Add,
    /// `a - b`.
    Sub,
    /// `a * b`.
    Mul,
    /// `a / b`.
    Div,
    /// `max(a, b)`.
    Max,
    /// `min(a, b)`.
    Min,
}

impl ZipOp {
    /// Applies the operation to one element pair.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ZipOp::Add => a + b,
            ZipOp::Sub => a - b,
            ZipOp::Mul => a * b,
            ZipOp::Div => a / b,
            ZipOp::Max => a.max(b),
            ZipOp::Min => a.min(b),
        }
    }
}

/// One tensor operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A named graph input; its value is bound at execution time.
    Input {
        /// The binding name.
        name: String,
    },
    /// Elementwise unary op over one argument.
    Map(MapOp),
    /// Elementwise binary op over two arguments, broadcasting a `[rows, 1]`
    /// operand across the other operand's columns.
    Zip(ZipOp),
    /// Multiplication by a compile-time constant.
    Scale(f64),
    /// Addition of a compile-time constant.
    Shift(f64),
    /// Matrix multiply `[m, k] @ [k, n] -> [m, n]`.
    MatMul,
    /// Matrix transpose.
    Transpose,
    /// Row-wise reduction along the column axis: `[m, n] -> [m, 1]`.
    RowReduce(ReduceOp),
    /// Row-major reshape to a new `[rows, cols]` with the same element count.
    Reshape,
    /// Extraction of one column as a `[rows, 1]` tensor.
    ColSlice(usize),
}

impl Op {
    /// Whether the op computes each output element from the aligned input
    /// element(s) only — the ops the cascade detector walks through when it
    /// lifts a reduction's map function.
    pub fn is_elementwise(&self) -> bool {
        matches!(self, Op::Map(_) | Op::Zip(_) | Op::Scale(_) | Op::Shift(_))
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Input { .. } => "input",
            Op::Map(MapOp::Exp) => "exp",
            Op::Map(MapOp::Abs) => "abs",
            Op::Map(MapOp::Sqrt) => "sqrt",
            Op::Map(MapOp::Neg) => "neg",
            Op::Map(MapOp::Recip) => "recip",
            Op::Map(MapOp::Relu) => "relu",
            Op::Map(MapOp::Square) => "square",
            Op::Map(MapOp::Fp8Round) => "fp8_round",
            Op::Zip(ZipOp::Add) => "add",
            Op::Zip(ZipOp::Sub) => "sub",
            Op::Zip(ZipOp::Mul) => "mul",
            Op::Zip(ZipOp::Div) => "div",
            Op::Zip(ZipOp::Max) => "max",
            Op::Zip(ZipOp::Min) => "min",
            Op::Scale(_) => "scale",
            Op::Shift(_) => "shift",
            Op::MatMul => "matmul",
            Op::Transpose => "transpose",
            Op::RowReduce(_) => "row_reduce",
            Op::Reshape => "reshape",
            Op::ColSlice(_) => "col_slice",
        }
    }
}

/// One node of an [`OpGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operation.
    pub op: Op,
    /// Argument node ids (all smaller than this node's id).
    pub args: Vec<NodeId>,
    /// The inferred output shape.
    pub shape: Shape,
}

/// Errors reported when evaluating a graph over concrete tensors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A graph input has no binding of the required name.
    MissingInput(String),
    /// A bound tensor's shape disagrees with the input node's declared shape.
    InputShape {
        /// The input name.
        name: String,
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// A node was executed before one of its arguments (never happens for
    /// plans produced by the partitioner).
    UnboundValue {
        /// The node whose value is missing.
        node: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::MissingInput(name) => write!(f, "graph input `{name}` is not bound"),
            GraphError::InputShape { name, detail } => {
                write!(f, "graph input `{name}`: {detail}")
            }
            GraphError::UnboundValue { node } => {
                write!(f, "node {node} was executed before its arguments")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A shape-checked DAG of tensor operations, built through the builder
/// methods and therefore always topologically ordered by node id.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OpGraph {
    nodes: Vec<Node>,
    outputs: Vec<NodeId>,
}

impl OpGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        OpGraph::default()
    }

    /// All nodes, in topological (id) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The declared output node ids, in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Ids of every consumer of `id`, in topological order.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.args.contains(&id))
            .map(|(i, _)| i)
            .collect()
    }

    /// Ids and names of the graph's input nodes, in id order.
    pub fn input_names(&self) -> Vec<(NodeId, &str)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match &n.op {
                Op::Input { name } => Some((i, name.as_str())),
                _ => None,
            })
            .collect()
    }

    fn push(&mut self, op: Op, args: Vec<NodeId>, shape: Shape) -> NodeId {
        for &a in &args {
            assert!(a < self.nodes.len(), "argument {a} does not exist yet");
        }
        self.nodes.push(Node { op, args, shape });
        self.nodes.len() - 1
    }

    /// Adds a named input of the given shape.
    ///
    /// # Panics
    ///
    /// Panics on an empty shape or a duplicate input name.
    pub fn input(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> NodeId {
        let name = name.into();
        assert!(
            !self.input_names().iter().any(|(_, n)| *n == name),
            "duplicate graph input `{name}`"
        );
        let shape = Shape::new(rows, cols);
        self.push(Op::Input { name }, vec![], shape)
    }

    /// Adds an elementwise unary op.
    pub fn map(&mut self, op: MapOp, a: NodeId) -> NodeId {
        let shape = self.nodes[a].shape;
        self.push(Op::Map(op), vec![a], shape)
    }

    /// Adds an elementwise binary op; one operand may be a `[rows, 1]` column
    /// broadcast across the other operand's columns.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are incompatible.
    pub fn zip(&mut self, op: ZipOp, a: NodeId, b: NodeId) -> NodeId {
        let (sa, sb) = (self.nodes[a].shape, self.nodes[b].shape);
        assert_eq!(sa.rows, sb.rows, "zip operands must agree on rows");
        assert!(
            sa.cols == sb.cols || sa.cols == 1 || sb.cols == 1,
            "zip operands must agree on columns or broadcast a [rows, 1] column ({sa} vs {sb})"
        );
        let shape = Shape::new(sa.rows, sa.cols.max(sb.cols));
        self.push(Op::Zip(op), vec![a, b], shape)
    }

    /// Adds multiplication by a constant.
    pub fn scale(&mut self, factor: f64, a: NodeId) -> NodeId {
        let shape = self.nodes[a].shape;
        self.push(Op::Scale(factor), vec![a], shape)
    }

    /// Adds addition of a constant.
    pub fn shift(&mut self, offset: f64, a: NodeId) -> NodeId {
        let shape = self.nodes[a].shape;
        self.push(Op::Shift(offset), vec![a], shape)
    }

    /// Adds a matrix multiply.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (sa, sb) = (self.nodes[a].shape, self.nodes[b].shape);
        assert_eq!(
            sa.cols, sb.rows,
            "matmul inner dimensions must agree ({sa} @ {sb})"
        );
        let shape = Shape::new(sa.rows, sb.cols);
        self.push(Op::MatMul, vec![a, b], shape)
    }

    /// Adds a transpose.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let sa = self.nodes[a].shape;
        self.push(Op::Transpose, vec![a], Shape::new(sa.cols, sa.rows))
    }

    /// Adds a row-wise reduction along the column axis.
    pub fn row_reduce(&mut self, op: ReduceOp, a: NodeId) -> NodeId {
        let sa = self.nodes[a].shape;
        self.push(Op::RowReduce(op), vec![a], Shape::new(sa.rows, 1))
    }

    /// Adds a row-major reshape.
    ///
    /// # Panics
    ///
    /// Panics if the element count changes.
    pub fn reshape(&mut self, a: NodeId, rows: usize, cols: usize) -> NodeId {
        let sa = self.nodes[a].shape;
        let shape = Shape::new(rows, cols);
        assert_eq!(sa.len(), shape.len(), "reshape must preserve element count");
        self.push(Op::Reshape, vec![a], shape)
    }

    /// Adds extraction of column `col` as a `[rows, 1]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn col_slice(&mut self, a: NodeId, col: usize) -> NodeId {
        let sa = self.nodes[a].shape;
        assert!(col < sa.cols, "column {col} out of range for {sa}");
        self.push(Op::ColSlice(col), vec![a], Shape::new(sa.rows, 1))
    }

    /// Declares a node as a graph output.
    pub fn mark_output(&mut self, id: NodeId) {
        assert!(id < self.nodes.len(), "output {id} does not exist");
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Binds `bindings` to the graph's inputs, checking names and shapes.
    /// Accepts both borrowed (`&[(&str, Matrix)]`) and owned
    /// (`&[(String, Matrix)]`) binding name pairs, so a serving queue that
    /// owns its bindings can bind without re-borrowing.
    ///
    /// # Errors
    ///
    /// [`GraphError::MissingInput`] / [`GraphError::InputShape`] when a
    /// binding is absent or the wrong shape.
    pub fn bind<S: AsRef<str>>(
        &self,
        bindings: &[(S, Matrix)],
    ) -> Result<Vec<Option<Matrix>>, GraphError> {
        let mut values: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        for (id, name) in self.input_names() {
            let shape = self.nodes[id].shape;
            let bound = bindings
                .iter()
                .find(|(n, _)| n.as_ref() == name)
                .map(|(_, m)| m)
                .ok_or_else(|| GraphError::MissingInput(name.to_string()))?;
            if bound.rows() != shape.rows || bound.cols() != shape.cols {
                return Err(GraphError::InputShape {
                    name: name.to_string(),
                    detail: format!("expected {shape}, got [{}x{}]", bound.rows(), bound.cols()),
                });
            }
            values[id] = Some(bound.clone());
        }
        Ok(values)
    }

    /// Evaluates one non-input node from the already-computed values of its
    /// arguments — the unfused reference kernel for that op.
    ///
    /// # Errors
    ///
    /// [`GraphError::UnboundValue`] if an argument has not been computed yet.
    ///
    /// # Panics
    ///
    /// Panics if called on an [`Op::Input`] node (inputs are bound, not
    /// computed).
    pub fn eval_node(&self, id: NodeId, values: &[Option<Matrix>]) -> Result<Matrix, GraphError> {
        let node = &self.nodes[id];
        let arg = |i: usize| -> Result<&Matrix, GraphError> {
            values[node.args[i]]
                .as_ref()
                .ok_or(GraphError::UnboundValue { node: id })
        };
        Ok(match &node.op {
            Op::Input { .. } => unreachable!("inputs are bound, not evaluated"),
            Op::Map(op) => {
                let a = arg(0)?;
                let mut out = Matrix::zeros(a.rows(), a.cols());
                for r in 0..a.rows() {
                    for c in 0..a.cols() {
                        out.set(r, c, op.apply(a.get(r, c)));
                    }
                }
                out
            }
            Op::Zip(op) => {
                let (a, b) = (arg(0)?, arg(1)?);
                let shape = node.shape;
                let mut out = Matrix::zeros(shape.rows, shape.cols);
                for r in 0..shape.rows {
                    for c in 0..shape.cols {
                        let av = a.get(r, if a.cols() == 1 { 0 } else { c });
                        let bv = b.get(r, if b.cols() == 1 { 0 } else { c });
                        out.set(r, c, op.apply(av, bv));
                    }
                }
                out
            }
            Op::Scale(factor) => {
                let a = arg(0)?;
                let mut out = a.clone();
                for r in 0..out.rows() {
                    for v in out.row_mut(r) {
                        *v *= factor;
                    }
                }
                out
            }
            Op::Shift(offset) => {
                let a = arg(0)?;
                let mut out = a.clone();
                for r in 0..out.rows() {
                    for v in out.row_mut(r) {
                        *v += offset;
                    }
                }
                out
            }
            Op::MatMul => arg(0)?.matmul(arg(1)?),
            Op::Transpose => arg(0)?.transpose(),
            Op::RowReduce(op) => {
                let a = arg(0)?;
                let mut out = Matrix::zeros(a.rows(), 1);
                for r in 0..a.rows() {
                    let row = a.row(r);
                    let mut acc = row[0];
                    for &v in &row[1..] {
                        acc = match op {
                            ReduceOp::Sum => acc + v,
                            ReduceOp::Prod => acc * v,
                            ReduceOp::Max => acc.max(v),
                            ReduceOp::Min => acc.min(v),
                        };
                    }
                    out.set(r, 0, acc);
                }
                out
            }
            Op::Reshape => {
                let a = arg(0)?;
                Matrix::from_vec(node.shape.rows, node.shape.cols, a.as_slice().to_vec())
            }
            Op::ColSlice(col) => {
                let a = arg(0)?;
                let mut out = Matrix::zeros(a.rows(), 1);
                for r in 0..a.rows() {
                    out.set(r, 0, a.get(r, *col));
                }
                out
            }
        })
    }

    /// Evaluates every node with the unfused reference kernels, returning all
    /// node values. This is the whole-graph correctness oracle for the fused
    /// [`GraphPlan`](crate::partition::GraphPlan) execution.
    ///
    /// # Errors
    ///
    /// See [`OpGraph::bind`].
    pub fn evaluate_all(&self, bindings: &[(&str, Matrix)]) -> Result<Vec<Matrix>, GraphError> {
        let mut values = self.bind(bindings)?;
        for id in 0..self.nodes.len() {
            if values[id].is_none() {
                values[id] = Some(self.eval_node(id, &values)?);
            }
        }
        Ok(values
            .into_iter()
            .map(|v| v.expect("all computed"))
            .collect())
    }

    /// Evaluates the graph and returns the declared outputs, in declaration
    /// order.
    ///
    /// # Errors
    ///
    /// See [`OpGraph::bind`].
    pub fn evaluate(&self, bindings: &[(&str, Matrix)]) -> Result<Vec<Matrix>, GraphError> {
        let values = self.evaluate_all(bindings)?;
        Ok(self.outputs.iter().map(|&id| values[id].clone()).collect())
    }
}

impl fmt::Display for OpGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, node) in self.nodes.iter().enumerate() {
            let args: Vec<String> = node.args.iter().map(|a| format!("%{a}")).collect();
            writeln!(
                f,
                "%{id} = {}({}) : {}",
                node.op.name(),
                args.join(", "),
                node.shape
            )?;
        }
        write!(f, "outputs: {:?}", self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_workloads::random_matrix;

    #[test]
    fn builder_infers_shapes_and_orders_topologically() {
        let mut g = OpGraph::new();
        let x = g.input("x", 4, 8);
        let m = g.row_reduce(ReduceOp::Max, x);
        let sub = g.zip(ZipOp::Sub, x, m);
        let e = g.map(MapOp::Exp, sub);
        let t = g.row_reduce(ReduceOp::Sum, e);
        let p = g.zip(ZipOp::Div, e, t);
        g.mark_output(p);
        assert_eq!(g.node(m).shape, Shape::new(4, 1));
        assert_eq!(g.node(p).shape, Shape::new(4, 8));
        for (id, node) in g.nodes().iter().enumerate() {
            assert!(node.args.iter().all(|&a| a < id));
        }
        assert_eq!(g.consumers(e), vec![t, p]);
        assert_eq!(g.input_names(), vec![(x, "x")]);
        assert!(g.to_string().contains("row_reduce"));
    }

    #[test]
    fn evaluate_computes_softmax_rows() {
        let mut g = OpGraph::new();
        let x = g.input("x", 3, 16);
        let m = g.row_reduce(ReduceOp::Max, x);
        let sub = g.zip(ZipOp::Sub, x, m);
        let e = g.map(MapOp::Exp, sub);
        let t = g.row_reduce(ReduceOp::Sum, e);
        let p = g.zip(ZipOp::Div, e, t);
        g.mark_output(p);
        let input = random_matrix(3, 16, 7, -3.0, 3.0);
        let out = g.evaluate(&[("x", input.clone())]).unwrap();
        let oracle = rf_kernels_free_softmax(&input);
        assert!(out[0].max_abs_diff(&oracle) < 1e-12);
    }

    // A tiny local softmax so this module does not depend on rf-kernels.
    fn rf_kernels_free_softmax(x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            let row = x.row(r);
            let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let t: f64 = row.iter().map(|v| (v - m).exp()).sum();
            for (c, v) in row.iter().enumerate() {
                out.set(r, c, (v - m).exp() / t);
            }
        }
        out
    }

    #[test]
    fn broadcast_scale_shift_reshape_and_slice_evaluate() {
        let mut g = OpGraph::new();
        let x = g.input("x", 2, 4);
        let s = g.scale(2.0, x);
        let sh = g.shift(1.0, s);
        let rs = g.reshape(sh, 4, 2);
        let col = g.col_slice(rs, 1);
        let t = g.transpose(rs);
        g.mark_output(col);
        g.mark_output(t);
        let input = Matrix::from_vec(2, 4, (0..8).map(|v| v as f64).collect());
        let out = g.evaluate(&[("x", input)]).unwrap();
        // 2x + 1 row-major reshaped to [4, 2]: second column is 3, 7, 11, 15.
        assert_eq!(out[0].as_slice(), &[3.0, 7.0, 11.0, 15.0]);
        assert_eq!(out[1].rows(), 2);
        assert_eq!(out[1].cols(), 4);
        assert_eq!(out[1].get(0, 2), 9.0);
    }

    #[test]
    fn missing_and_misshapen_bindings_are_rejected() {
        let mut g = OpGraph::new();
        let x = g.input("x", 2, 4);
        g.mark_output(x);
        assert_eq!(
            g.evaluate(&[]).unwrap_err(),
            GraphError::MissingInput("x".to_string())
        );
        let err = g.evaluate(&[("x", Matrix::zeros(3, 4))]).unwrap_err();
        assert!(matches!(err, GraphError::InputShape { .. }));
        assert!(err.to_string().contains("expected [2x4]"));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics_at_build_time() {
        let mut g = OpGraph::new();
        let a = g.input("a", 2, 3);
        let b = g.input("b", 4, 2);
        g.matmul(a, b);
    }

    #[test]
    #[should_panic(expected = "duplicate graph input")]
    fn duplicate_input_names_panic() {
        let mut g = OpGraph::new();
        g.input("x", 2, 2);
        g.input("x", 2, 2);
    }
}
