//! Automatic cascade detection over operator graphs.
//!
//! The detector walks an [`OpGraph`], finds its row-wise reduction nodes and
//! lifts dependency-connected groups of them into
//! [`rf_fusion::CascadeSpec`]s — the same mathematical representation the
//! scalar-IR detector in `rf-tir` produces — then proves or refutes the
//! fusability of every candidate with the real ACRF analysis
//! ([`rf_fusion::analyze_cascade`]), not a pattern list. A reduction's map
//! function is recovered by walking the elementwise subgraph feeding it:
//! `[rows, axis]` tensors become per-position input variables, earlier
//! reductions of the same row space become dependency variables, and
//! broadcast `[rows, 1]` columns stay scalar expressions over those
//! dependencies.
//!
//! The partitioner ([`crate::partition()`]) consumes the proved candidates and
//! decides which of them lower to a compilable workload; refuted candidates
//! (for example the dependent two-pass variance) are guaranteed to stay
//! unfused.

use std::collections::HashMap;

use rf_expr::{semantically_equal, EquivConfig, Expr};
use rf_fusion::{analyze_cascade, AcrfError, CascadeSpec, FusionPlan, ReductionSpec};

use crate::graph::{MapOp, NodeId, Op, OpGraph, ZipOp};

/// One detected reduction chain: a dependency-connected group of row-wise
/// reductions over a shared `(rows, axis)` space, lifted into a cascade and
/// analysed by ACRF.
#[derive(Debug, Clone)]
pub struct CascadeCandidate {
    /// The reduction nodes, in dependency (topological) order.
    pub reductions: Vec<NodeId>,
    /// Independent reduction rows.
    pub rows: usize,
    /// Length of the shared reduction axis.
    pub axis_len: usize,
    /// The lifted cascade. Reduction `i` of the spec corresponds to
    /// `reductions[i]`; its name is `d<node-id>`.
    pub spec: CascadeSpec,
    /// Cascade input variables and the graph nodes feeding them, in
    /// first-use order (variable `x<node-id>` reads node `<node-id>`).
    pub inputs: Vec<(String, NodeId)>,
    /// The ACRF verdict: the fusion plan when the chain is fusable, the
    /// refutation (e.g. [`AcrfError::NotDecomposable`]) when it is not.
    pub proof: Result<FusionPlan, AcrfError>,
}

impl CascadeCandidate {
    /// Whether ACRF proved the whole chain fusable.
    pub fn is_fusable(&self) -> bool {
        self.proof.is_ok()
    }
}

/// Reasons a reduction's map function cannot be lifted into the cascade
/// model; such reductions simply stay unfused.
enum LiftError {
    /// The map contains an op with no scalar counterpart (e.g. FP8 rounding
    /// or a nested matmul of the wrong shape).
    Unliftable,
}

struct Chain {
    rows: usize,
    axis_len: usize,
    reductions: Vec<NodeId>,
    specs: Vec<ReductionSpec>,
    inputs: Vec<(String, NodeId)>,
}

/// Detects every liftable reduction chain of the graph and runs ACRF on each.
///
/// Candidates are returned in topological order of their first reduction.
/// Chains whose maps cannot be lifted (no scalar counterpart) produce no
/// candidate — exactly the fall-back-to-unfused behaviour of the paper's
/// framework for non-reduction subgraphs.
pub fn detect_cascades(graph: &OpGraph) -> Vec<CascadeCandidate> {
    let mut chains: Vec<Chain> = Vec::new();
    // Which chain each already-processed reduction node belongs to.
    let mut chain_of: HashMap<NodeId, usize> = HashMap::new();

    for id in 0..graph.len() {
        let Op::RowReduce(reduce) = graph.node(id).op else {
            continue;
        };
        let src = graph.node(id).args[0];
        let rows = graph.node(src).shape.rows;
        let axis_len = graph.node(src).shape.cols;

        // Earlier reductions of the same row space reachable through
        // elementwise ops are this reduction's cascade dependencies.
        let deps = reachable_chain_deps(graph, src, rows, axis_len, &chain_of, &chains);

        // Merge every chain a dependency lives in (same row space by
        // construction), or start a fresh chain for an independent reduction.
        let target = merge_dep_chains(&deps, &mut chains, &mut chain_of, rows, axis_len);

        let (lifted, used_inputs) = {
            let chain = &chains[target];
            let mut inputs = chain.inputs.clone();
            let names: HashMap<NodeId, String> = chain
                .reductions
                .iter()
                .map(|&r| (r, format!("d{r}")))
                .collect();
            match lift_map(graph, src, rows, axis_len, &names, &mut inputs) {
                Ok(expr) => (Some(expr), inputs),
                Err(LiftError::Unliftable) => (None, inputs),
            }
        };
        let Some(map) = lifted else {
            // Unliftable: drop the freshly-created empty chain, keep merged
            // ones (their earlier reductions are still valid candidates).
            continue;
        };
        let chain = &mut chains[target];
        chain.inputs = used_inputs;
        chain
            .specs
            .push(ReductionSpec::new(format!("d{id}"), reduce, map));
        chain.reductions.push(id);
        chain_of.insert(id, target);
    }

    chains
        .into_iter()
        .filter(|c| !c.reductions.is_empty() && !c.inputs.is_empty())
        .map(|c| {
            let spec = CascadeSpec {
                name: format!("graph_cascade_{}", c.reductions[0]),
                inputs: c.inputs.iter().map(|(n, _)| n.clone()).collect(),
                reductions: c.specs,
            };
            let proof = spec
                .validate()
                .map_err(AcrfError::from)
                .and_then(|()| analyze_cascade(&spec));
            CascadeCandidate {
                reductions: c.reductions,
                rows: c.rows,
                axis_len: c.axis_len,
                spec,
                inputs: c.inputs,
                proof,
            }
        })
        .collect()
}

/// Collects the already-chained reductions (of the same row space) reachable
/// from `src` through elementwise ops — the cascade dependencies of a
/// reduction whose input is `src`.
fn reachable_chain_deps(
    graph: &OpGraph,
    src: NodeId,
    rows: usize,
    axis_len: usize,
    chain_of: &HashMap<NodeId, usize>,
    chains: &[Chain],
) -> Vec<NodeId> {
    let mut deps = Vec::new();
    let mut stack = vec![src];
    let mut seen = vec![false; graph.len()];
    while let Some(id) = stack.pop() {
        if seen[id] {
            continue;
        }
        seen[id] = true;
        let node = graph.node(id);
        if let Some(&chain) = chain_of.get(&id) {
            if chains[chain].rows == rows && chains[chain].axis_len == axis_len {
                deps.push(id);
            }
            continue;
        }
        if node.op.is_elementwise() {
            stack.extend(node.args.iter().copied());
        }
    }
    deps.sort_unstable();
    deps
}

/// Merges the chains of `deps` into one (or creates a fresh chain when there
/// are none) and returns its index.
fn merge_dep_chains(
    deps: &[NodeId],
    chains: &mut Vec<Chain>,
    chain_of: &mut HashMap<NodeId, usize>,
    rows: usize,
    axis_len: usize,
) -> usize {
    let mut indices: Vec<usize> = deps.iter().map(|d| chain_of[d]).collect();
    indices.sort_unstable();
    indices.dedup();
    match indices.split_first() {
        None => {
            chains.push(Chain {
                rows,
                axis_len,
                reductions: Vec::new(),
                specs: Vec::new(),
                inputs: Vec::new(),
            });
            chains.len() - 1
        }
        Some((&first, rest)) => {
            for &other in rest {
                // Merge preserving topological order of reduction node ids;
                // specs travel with their reductions.
                let moved_reductions = std::mem::take(&mut chains[other].reductions);
                let moved_specs = std::mem::take(&mut chains[other].specs);
                let moved_inputs = std::mem::take(&mut chains[other].inputs);
                for (r, s) in moved_reductions.into_iter().zip(moved_specs) {
                    let pos = chains[first]
                        .reductions
                        .partition_point(|&existing| existing < r);
                    chains[first].reductions.insert(pos, r);
                    chains[first].specs.insert(pos, s);
                    chain_of.insert(r, first);
                }
                for input in moved_inputs {
                    if !chains[first].inputs.contains(&input) {
                        chains[first].inputs.push(input);
                    }
                }
            }
            first
        }
    }
}

/// Upper bound on the node count of a lifted map expression. Lifting inlines
/// shared elementwise subgraphs (a `Square` becomes `e * e`), so a deep chain
/// of squarings — or a diamond-shared elementwise DAG — would otherwise grow
/// the expression (and the cost of every downstream clone, simplification and
/// equivalence check) exponentially. Maps that exceed the bound are treated
/// as unliftable and their reductions simply stay unfused; the canonical
/// cascades are all under a dozen nodes.
const MAX_LIFTED_NODES: u64 = 512;

/// Lifts the value of node `id` into a scalar expression over the cascade's
/// per-position input variables and dependency variables.
fn lift_map(
    graph: &OpGraph,
    id: NodeId,
    rows: usize,
    axis_len: usize,
    chain_names: &HashMap<NodeId, String>,
    inputs: &mut Vec<(String, NodeId)>,
) -> Result<Expr, LiftError> {
    lift_expr(graph, id, rows, axis_len, chain_names, inputs).map(|(expr, _)| expr)
}

/// The recursion behind [`lift_map`], additionally tracking the size of the
/// built expression (computed arithmetically, never by traversal) so the
/// [`MAX_LIFTED_NODES`] budget cuts exponential growth off before any
/// oversized tree is cloned.
fn lift_expr(
    graph: &OpGraph,
    id: NodeId,
    rows: usize,
    axis_len: usize,
    chain_names: &HashMap<NodeId, String>,
    inputs: &mut Vec<(String, NodeId)>,
) -> Result<(Expr, u64), LiftError> {
    let node = graph.node(id);
    // An earlier reduction of this chain: its broadcast column is the
    // dependency variable `d_i` of the cascade model.
    if let Some(name) = chain_names.get(&id) {
        return Ok((Expr::var(name.clone()), 1));
    }
    let is_axis_shaped = node.shape.rows == rows && node.shape.cols == axis_len;
    let is_row_scalar = node.shape.rows == rows && node.shape.cols == 1;
    if !node.op.is_elementwise() || !(is_axis_shaped || is_row_scalar) {
        // Opaque feed (input, matmul, slice, reshape, a foreign-row-space
        // value, …): a per-position cascade input variable. Treating a
        // row-constant broadcast as position-varying is conservative — it can
        // only make ACRF *reject* a decomposition that would exist, never
        // accept a wrong one.
        if is_axis_shaped || is_row_scalar {
            let var = format!("x{id}");
            if !inputs.iter().any(|(_, n)| *n == id) {
                inputs.push((var.clone(), id));
            }
            return Ok((Expr::var(var), 1));
        }
        return Err(LiftError::Unliftable);
    }
    let arg = |i: usize, inputs: &mut Vec<(String, NodeId)>| {
        lift_expr(graph, node.args[i], rows, axis_len, chain_names, inputs)
    };
    let (expr, size) = match &node.op {
        Op::Map(op) => {
            let (inner, size) = arg(0, inputs)?;
            match op {
                MapOp::Exp => (inner.exp(), size + 1),
                MapOp::Abs => (inner.abs(), size + 1),
                MapOp::Sqrt => (inner.sqrt(), size + 1),
                MapOp::Neg => (-inner, size + 1),
                MapOp::Recip => (inner.recip(), size + 1),
                MapOp::Relu => (inner.max(Expr::zero()), size + 2),
                MapOp::Square => {
                    // The clone doubles the subtree; budget it before cloning.
                    if size.saturating_mul(2) > MAX_LIFTED_NODES {
                        return Err(LiftError::Unliftable);
                    }
                    (inner.clone() * inner, size.saturating_mul(2) + 1)
                }
                // FP8 rounding has no scalar expression; the quantization
                // *region* is recognised structurally by the partitioner.
                MapOp::Fp8Round => return Err(LiftError::Unliftable),
            }
        }
        Op::Zip(op) => {
            let (a, sa) = arg(0, inputs)?;
            let (b, sb) = arg(1, inputs)?;
            let size = sa.saturating_add(sb) + 1;
            let expr = match op {
                ZipOp::Add => a + b,
                ZipOp::Sub => a - b,
                ZipOp::Mul => a * b,
                ZipOp::Div => a / b,
                ZipOp::Max => a.max(b),
                ZipOp::Min => a.min(b),
            };
            (expr, size)
        }
        Op::Scale(factor) => {
            let (inner, size) = arg(0, inputs)?;
            (inner * Expr::constant(*factor), size + 2)
        }
        Op::Shift(offset) => {
            let (inner, size) = arg(0, inputs)?;
            (inner + Expr::constant(*offset), size + 2)
        }
        _ => unreachable!("non-elementwise ops are handled above"),
    };
    if size > MAX_LIFTED_NODES {
        return Err(LiftError::Unliftable);
    }
    Ok((expr, size))
}

/// Whether a lifted candidate computes the same cascade as a canonical spec
/// (e.g. one from [`rf_codegen::Workload::cascade_spec`]), up to variable
/// naming: inputs and reductions are matched positionally and the map
/// functions compared by randomized semantic equivalence.
pub fn chain_matches_spec(candidate: &CascadeSpec, canonical: &CascadeSpec) -> bool {
    if candidate.inputs.len() != canonical.inputs.len()
        || candidate.reductions.len() != canonical.reductions.len()
    {
        return false;
    }
    // Rename the canonical spec's variables into the candidate's.
    let renames: Vec<(&str, Expr)> = canonical
        .inputs
        .iter()
        .zip(&candidate.inputs)
        .map(|(from, to)| (from.as_str(), Expr::var(to.clone())))
        .chain(
            canonical
                .reductions
                .iter()
                .zip(&candidate.reductions)
                .map(|(from, to)| (from.name.as_str(), Expr::var(to.name.clone()))),
        )
        .collect();
    let all_vars: Vec<String> = candidate
        .inputs
        .iter()
        .cloned()
        .chain(candidate.reductions.iter().map(|r| r.name.clone()))
        .collect();
    let var_refs: Vec<&str> = all_vars.iter().map(|s| s.as_str()).collect();
    candidate
        .reductions
        .iter()
        .zip(&canonical.reductions)
        .all(|(cand, canon)| {
            cand.reduce == canon.reduce
                && semantically_equal(
                    &cand.map,
                    &canon.map.substitute_all(&renames),
                    &var_refs,
                    &EquivConfig::default(),
                )
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{MapOp, ZipOp};
    use rf_algebra::ReduceOp;
    use rf_codegen::Workload;

    fn softmax_graph() -> (OpGraph, NodeId, NodeId, NodeId) {
        let mut g = OpGraph::new();
        let x = g.input("x", 4, 32);
        let m = g.row_reduce(ReduceOp::Max, x);
        let sub = g.zip(ZipOp::Sub, x, m);
        let e = g.map(MapOp::Exp, sub);
        let t = g.row_reduce(ReduceOp::Sum, e);
        let p = g.zip(ZipOp::Div, e, t);
        g.mark_output(p);
        (g, m, t, p)
    }

    #[test]
    fn softmax_chain_is_detected_and_proved() {
        let (g, m, t, _) = softmax_graph();
        let candidates = detect_cascades(&g);
        assert_eq!(candidates.len(), 1);
        let cand = &candidates[0];
        assert_eq!(cand.reductions, vec![m, t]);
        assert_eq!((cand.rows, cand.axis_len), (4, 32));
        assert!(cand.is_fusable(), "{:?}", cand.proof);
        // The lifted cascade is exactly the canonical safe-softmax spec of
        // the softmax workload class — the shared source of truth.
        let canonical = Workload::Softmax { rows: 4, len: 32 }.cascade_spec();
        assert!(chain_matches_spec(&cand.spec, &canonical));
    }

    #[test]
    fn two_pass_variance_is_detected_but_refuted() {
        let mut g = OpGraph::new();
        let y = g.input("y", 3, 16);
        let s1 = g.row_reduce(ReduceOp::Sum, y);
        let mu = g.scale(1.0 / 16.0, s1);
        let centered = g.zip(ZipOp::Sub, y, mu);
        let sq = g.map(MapOp::Square, centered);
        let v = g.row_reduce(ReduceOp::Sum, sq);
        let var = g.scale(1.0 / 16.0, v);
        g.mark_output(var);
        let candidates = detect_cascades(&g);
        assert_eq!(candidates.len(), 1, "s1 and v form one dependent chain");
        let cand = &candidates[0];
        assert_eq!(cand.reductions, vec![s1, v]);
        assert!(
            matches!(cand.proof, Err(AcrfError::NotDecomposable { .. })),
            "the dependent two-pass variance must be refuted, got {:?}",
            cand.proof
        );
    }

    #[test]
    fn independent_sums_form_separate_chains() {
        let mut g = OpGraph::new();
        let x = g.input("x", 2, 8);
        let s1 = g.row_reduce(ReduceOp::Sum, x);
        let sq = g.map(MapOp::Square, x);
        let s2 = g.row_reduce(ReduceOp::Sum, sq);
        let m1 = g.scale(1.0 / 8.0, s1);
        let m2 = g.scale(1.0 / 8.0, s2);
        let m1sq = g.map(MapOp::Square, m1);
        let var = g.zip(ZipOp::Sub, m2, m1sq);
        g.mark_output(var);
        let candidates = detect_cascades(&g);
        assert_eq!(candidates.len(), 2);
        assert!(candidates.iter().all(|c| c.is_fusable()));
    }

    #[test]
    fn abs_max_chain_lifts_through_elementwise_ops() {
        let mut g = OpGraph::new();
        let a = g.input("a", 4, 16);
        let ab = g.map(MapOp::Abs, a);
        let mx = g.row_reduce(ReduceOp::Max, ab);
        g.mark_output(mx);
        let candidates = detect_cascades(&g);
        assert_eq!(candidates.len(), 1);
        let cand = &candidates[0];
        assert!(cand.is_fusable());
        assert_eq!(cand.inputs.len(), 1);
        assert_eq!(cand.inputs[0].1, a, "the input variable reads node a");
        assert_eq!(
            cand.spec.reductions[0].map.to_string(),
            format!("abs(x{a})")
        );
    }

    #[test]
    fn deep_duplicating_chains_are_cut_off_not_exponential() {
        // Regression: lifting inlines shared subgraphs, so a chain of n
        // squarings (or a diamond-shared Zip tower) describes a 2^n-node
        // expression. The size budget must reject such maps as unliftable in
        // bounded time instead of materialising the tree.
        let mut g = OpGraph::new();
        let x = g.input("x", 2, 8);
        let mut sq = x;
        for _ in 0..64 {
            sq = g.map(MapOp::Square, sq);
        }
        let r = g.row_reduce(ReduceOp::Sum, sq);
        g.mark_output(r);
        let start = std::time::Instant::now();
        let candidates = detect_cascades(&g);
        assert!(start.elapsed().as_secs() < 5, "detection must stay bounded");
        assert!(candidates.is_empty(), "the oversized map stays unfused");

        // Same for a diamond-shared multiply tower.
        let mut g = OpGraph::new();
        let x = g.input("x", 2, 8);
        let mut m = x;
        for _ in 0..64 {
            m = g.zip(ZipOp::Mul, m, m);
        }
        let r = g.row_reduce(ReduceOp::Sum, m);
        g.mark_output(r);
        let start = std::time::Instant::now();
        assert!(detect_cascades(&g).is_empty());
        assert!(start.elapsed().as_secs() < 5, "detection must stay bounded");
    }

    #[test]
    fn fp8_round_in_a_map_is_unliftable() {
        let mut g = OpGraph::new();
        let a = g.input("a", 2, 8);
        let q = g.map(MapOp::Fp8Round, a);
        let s = g.row_reduce(ReduceOp::Sum, q);
        g.mark_output(s);
        assert!(detect_cascades(&g).is_empty());
    }

    #[test]
    fn foreign_row_space_reductions_do_not_join_the_chain() {
        // A reduction over [4, 32] and one over [4, 8] share rows but not the
        // axis; the second must not claim the first as a dependency.
        let mut g = OpGraph::new();
        let x = g.input("x", 4, 32);
        let y = g.input("y", 4, 8);
        let m = g.row_reduce(ReduceOp::Max, x);
        let shifted = g.zip(ZipOp::Sub, y, m);
        let t = g.row_reduce(ReduceOp::Sum, shifted);
        g.mark_output(t);
        let candidates = detect_cascades(&g);
        assert_eq!(candidates.len(), 2);
        assert!(candidates.iter().all(|c| c.reductions.len() == 1));
        // The [4, 8] chain sees `m` as an opaque input variable.
        let t_chain = candidates.iter().find(|c| c.reductions == vec![t]).unwrap();
        assert!(t_chain.inputs.iter().any(|(_, n)| *n == m));
    }

    #[test]
    fn spec_matching_rejects_different_cascades() {
        let (g, ..) = softmax_graph();
        let cand = &detect_cascades(&g)[0];
        let quant = Workload::Quant(rf_workloads::quant_tiny()).cascade_spec();
        assert!(!chain_matches_spec(&cand.spec, &quant));
    }
}
