//! Ready-made model-subgraph constructors.
//!
//! Each constructor builds a deterministic [`OpGraph`] for one of the serving
//! scenarios the graph frontend opens up: a transformer decoder layer, a
//! (dense-gated) mixture-of-experts block and an FP8-quantized MLP. The
//! graphs are written in fully **unfused** form — explicit reductions,
//! broadcasts and GEMMs — so the detector has to find the cascades and the
//! partitioner has to carve out the fused regions; nothing is pre-labelled.
//!
//! The companion `*_inputs` helpers generate deterministic random input
//! bindings of the right shapes for tests, examples and benchmarks.

use rf_algebra::ReduceOp;
use rf_workloads::{random_matrix, Matrix};

use crate::graph::{MapOp, NodeId, OpGraph, ZipOp};

/// Appends the unfused row-wise safe softmax of `src` and returns the
/// probabilities node: `exp(src - rowmax(src)) / rowsum(exp(src - rowmax))`.
pub fn append_softmax(graph: &mut OpGraph, src: NodeId) -> NodeId {
    let m = graph.row_reduce(ReduceOp::Max, src);
    let sub = graph.zip(ZipOp::Sub, src, m);
    let e = graph.map(MapOp::Exp, sub);
    let t = graph.row_reduce(ReduceOp::Sum, e);
    graph.zip(ZipOp::Div, e, t)
}

/// Appends an unfused scaled-dot-product attention slice over `q`, `k`, `v`
/// (all sharing the head dimension) and returns the output node.
pub fn append_attention(graph: &mut OpGraph, q: NodeId, k: NodeId, v: NodeId) -> NodeId {
    let qk_dim = graph.node(q).shape.cols;
    let kt = graph.transpose(k);
    let scores = graph.matmul(q, kt);
    let scaled = graph.scale(1.0 / (qk_dim as f64).sqrt(), scores);
    let probs = append_softmax(graph, scaled);
    graph.matmul(probs, v)
}

/// Appends the unfused FP8 per-token quantization + GEMM of activations `a`
/// with weights `w` and returns the de-quantized output node:
/// `(fp8(a / s) @ w) * s` with the dynamic row scale `s = rowmax(|a|) / MAX`.
pub fn append_quant_gemm(graph: &mut OpGraph, a: NodeId, w: NodeId) -> NodeId {
    let absn = graph.map(MapOp::Abs, a);
    let amax = graph.row_reduce(ReduceOp::Max, absn);
    let s = graph.scale(1.0 / rf_workloads::FP8_MAX, amax);
    let scaled = graph.zip(ZipOp::Div, a, s);
    let q = graph.map(MapOp::Fp8Round, scaled);
    let gemm = graph.matmul(q, w);
    graph.zip(ZipOp::Mul, gemm, s)
}

/// A single transformer decoder layer over a sequence of `seq` tokens with
/// model dimension `d` and feed-forward dimension `ff`:
///
/// ```text
/// q, k, v = x Wq, x Wk, x Wv            (glue GEMMs)
/// y = x + softmax(q kᵀ / sqrt(d)) v Wo  (fused attention region + glue)
/// out = y + relu(y W1) W2               (glue MLP)
/// ```
///
/// Inputs: `x [seq, d]`, `wq/wk/wv/wo [d, d]`, `w1 [d, ff]`, `w2 [ff, d]`.
/// The attention core is the only fusable cascade; the projections, residual
/// adds and the MLP are glue.
pub fn transformer_decoder_layer(seq: usize, d: usize, ff: usize) -> OpGraph {
    let mut g = OpGraph::new();
    let x = g.input("x", seq, d);
    let wq = g.input("wq", d, d);
    let wk = g.input("wk", d, d);
    let wv = g.input("wv", d, d);
    let wo = g.input("wo", d, d);
    let w1 = g.input("w1", d, ff);
    let w2 = g.input("w2", ff, d);
    let q = g.matmul(x, wq);
    let k = g.matmul(x, wk);
    let v = g.matmul(x, wv);
    let attn = append_attention(&mut g, q, k, v);
    let proj = g.matmul(attn, wo);
    let y = g.zip(ZipOp::Add, x, proj);
    let h = g.matmul(y, w1);
    let hr = g.map(MapOp::Relu, h);
    let z = g.matmul(hr, w2);
    let out = g.zip(ZipOp::Add, y, z);
    g.mark_output(out);
    g
}

/// Deterministic random input bindings for [`transformer_decoder_layer`].
pub fn transformer_decoder_layer_inputs(
    seq: usize,
    d: usize,
    ff: usize,
    seed: u64,
) -> Vec<(&'static str, Matrix)> {
    vec![
        ("x", random_matrix(seq, d, seed, -1.0, 1.0)),
        ("wq", random_matrix(d, d, seed + 1, -0.5, 0.5)),
        ("wk", random_matrix(d, d, seed + 2, -0.5, 0.5)),
        ("wv", random_matrix(d, d, seed + 3, -0.5, 0.5)),
        ("wo", random_matrix(d, d, seed + 4, -0.5, 0.5)),
        ("w1", random_matrix(d, ff, seed + 5, -0.5, 0.5)),
        ("w2", random_matrix(ff, d, seed + 6, -0.5, 0.5)),
    ]
}

/// A dense-gated two-expert mixture-of-experts block over `tokens` tokens of
/// dimension `d`, routed across `experts ≥ 2` gate columns:
///
/// ```text
/// p = softmax(x Wg)                       (glue GEMM + fused routing softmax)
/// out = p[:, 0] ⊙ (x We1) + p[:, 1] ⊙ (x We2)
/// ```
///
/// Inputs: `x [tokens, d]`, `wg [d, experts]`, `we1/we2 [d, d]`. The routing
/// softmax is the fusable cascade; the gate GEMM, expert GEMMs, column
/// slices and the weighted combination are glue.
pub fn moe_block(tokens: usize, d: usize, experts: usize) -> OpGraph {
    assert!(experts >= 2, "the dense-gated block combines two experts");
    let mut g = OpGraph::new();
    let x = g.input("x", tokens, d);
    let wg = g.input("wg", d, experts);
    let we1 = g.input("we1", d, d);
    let we2 = g.input("we2", d, d);
    let scores = g.matmul(x, wg);
    let probs = append_softmax(&mut g, scores);
    let g1 = g.col_slice(probs, 0);
    let g2 = g.col_slice(probs, 1);
    let e1 = g.matmul(x, we1);
    let e2 = g.matmul(x, we2);
    let c1 = g.zip(ZipOp::Mul, e1, g1);
    let c2 = g.zip(ZipOp::Mul, e2, g2);
    let out = g.zip(ZipOp::Add, c1, c2);
    g.mark_output(out);
    g
}

/// Deterministic random input bindings for [`moe_block`].
pub fn moe_block_inputs(
    tokens: usize,
    d: usize,
    experts: usize,
    seed: u64,
) -> Vec<(&'static str, Matrix)> {
    vec![
        ("x", random_matrix(tokens, d, seed, -1.0, 1.0)),
        ("wg", random_matrix(d, experts, seed + 1, -1.0, 1.0)),
        ("we1", random_matrix(d, d, seed + 2, -0.5, 0.5)),
        ("we2", random_matrix(d, d, seed + 3, -0.5, 0.5)),
    ]
}

/// A two-layer FP8-quantized MLP: `[m, k] -> [m, n] -> [m, p]` with a ReLU
/// between the layers.
///
/// ```text
/// out = quant_gemm(relu(quant_gemm(a, w1)), w2)
/// ```
///
/// Both layers are written as the unfused abs-max / quantize / GEMM /
/// de-quantize sequence, each of which the partitioner fuses into one FP8
/// quant + GEMM workload; the ReLU between them is glue.
pub fn quantized_mlp(m: usize, k: usize, n: usize, p: usize) -> OpGraph {
    let mut g = OpGraph::new();
    let a = g.input("a", m, k);
    let w1 = g.input("w1", k, n);
    let w2 = g.input("w2", n, p);
    let y = append_quant_gemm(&mut g, a, w1);
    let hr = g.map(MapOp::Relu, y);
    let out = append_quant_gemm(&mut g, hr, w2);
    g.mark_output(out);
    g
}

/// Deterministic random input bindings for [`quantized_mlp`]. Activations
/// are bounded away from all-zero rows so the dynamic quantization scale is
/// always well defined.
pub fn quantized_mlp_inputs(
    m: usize,
    k: usize,
    n: usize,
    p: usize,
    seed: u64,
) -> Vec<(&'static str, Matrix)> {
    vec![
        ("a", random_matrix(m, k, seed, 0.1, 2.0)),
        ("w1", random_matrix(k, n, seed + 1, -0.5, 0.5)),
        ("w2", random_matrix(n, p, seed + 2, -0.5, 0.5)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_are_deterministic_and_well_shaped() {
        let a = transformer_decoder_layer(8, 16, 32);
        let b = transformer_decoder_layer(8, 16, 32);
        assert_eq!(a, b, "constructors must be deterministic");
        assert_eq!(a.outputs().len(), 1);
        assert_eq!(a.node(a.outputs()[0]).shape.rows, 8);
        assert_eq!(a.node(a.outputs()[0]).shape.cols, 16);

        let moe = moe_block(6, 16, 4);
        assert_eq!(moe.node(moe.outputs()[0]).shape.cols, 16);

        let mlp = quantized_mlp(4, 32, 16, 8);
        assert_eq!(mlp.node(mlp.outputs()[0]).shape.rows, 4);
        assert_eq!(mlp.node(mlp.outputs()[0]).shape.cols, 8);
    }

    #[test]
    fn reference_evaluation_runs_on_every_constructor() {
        let g = transformer_decoder_layer(4, 8, 16);
        let out = g
            .evaluate(&transformer_decoder_layer_inputs(4, 8, 16, 1))
            .unwrap();
        assert!(out[0].as_slice().iter().all(|v| v.is_finite()));

        let g = moe_block(3, 8, 4);
        let out = g.evaluate(&moe_block_inputs(3, 8, 4, 2)).unwrap();
        assert!(out[0].as_slice().iter().all(|v| v.is_finite()));

        let g = quantized_mlp(3, 16, 8, 4);
        let out = g.evaluate(&quantized_mlp_inputs(3, 16, 8, 4, 3)).unwrap();
        assert!(out[0].as_slice().iter().all(|v| v.is_finite()));
    }
}
