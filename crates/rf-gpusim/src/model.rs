//! The latency model: refined roofline with occupancy and wave quantization.

use rf_tile::TileProgram;

use crate::arch::GpuArch;

/// The execution profile of one kernel launch, as consumed by the model.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel name (for reports).
    pub name: String,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Bytes moved to/from global memory.
    pub hbm_bytes: u64,
    /// Thread blocks launched.
    pub blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Shared memory required per block, in bytes.
    pub shared_mem_per_block: u64,
    /// Dominant compute precision: `"fp16"`, `"fp32"` or `"fp8"`.
    pub precision: &'static str,
    /// Fraction of peak throughput the kernel's inner loops reach (0–1).
    pub compute_efficiency: f64,
    /// Fraction of the shorter of compute/memory time hidden by overlap (0–1).
    /// Software pipelining and deeper fused subtrees increase this (§5.3).
    pub overlap: f64,
    /// Number of kernel launches this profile represents.
    pub launches: u32,
}

impl Default for KernelProfile {
    fn default() -> Self {
        KernelProfile {
            name: "kernel".to_string(),
            flops: 0,
            hbm_bytes: 0,
            blocks: 1,
            threads_per_block: 128,
            shared_mem_per_block: 0,
            precision: "fp16",
            compute_efficiency: 0.6,
            overlap: 0.8,
            launches: 1,
        }
    }
}

impl KernelProfile {
    /// Builds a profile from a tile program's cost summary, using its launch
    /// configuration and pipeline depth (deeper pipelines overlap better).
    pub fn from_tile_program(program: &TileProgram) -> KernelProfile {
        let cost = program.cost();
        let overlap = match program.pipeline_depth {
            0 | 1 => 0.5,
            2 => 0.8,
            _ => 0.9,
        };
        KernelProfile {
            name: program.name.clone(),
            flops: cost.flops,
            hbm_bytes: cost.global_bytes,
            blocks: program.grid_blocks,
            threads_per_block: program.threads_per_block,
            shared_mem_per_block: cost.shared_mem_per_block,
            precision: program.precision,
            compute_efficiency: 0.6,
            overlap,
            launches: cost.kernel_launches.max(1),
        }
    }

    /// Whether the kernel can be launched on `arch` at all (shared memory and
    /// thread limits, see [`GpuArch::launch_feasible`]). Non-incremental
    /// kernels with long staged axes fail this check, which is the effect
    /// measured in §5.4.
    pub fn fits(&self, arch: &GpuArch) -> bool {
        arch.launch_feasible(self.threads_per_block, self.shared_mem_per_block)
    }
}

/// The components of an estimated kernel latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBreakdown {
    /// Time limited by arithmetic throughput, in microseconds.
    pub compute_us: f64,
    /// Time limited by global-memory bandwidth, in microseconds.
    pub memory_us: f64,
    /// Kernel launch overhead, in microseconds.
    pub launch_us: f64,
    /// Number of block waves needed to drain the grid.
    pub waves: f64,
    /// Waves per SM (the x-axis of Figure 6b).
    pub waves_per_sm: f64,
    /// Achieved occupancy (resident blocks / maximum resident blocks), 0–1.
    pub occupancy: f64,
    /// Total estimated latency in microseconds.
    pub total_us: f64,
}

/// Estimates the latency of one kernel on one architecture.
///
/// Kernels that do not fit the architecture (see [`KernelProfile::fits`])
/// report an infinite latency.
pub fn estimate_latency(arch: &GpuArch, profile: &KernelProfile) -> LatencyBreakdown {
    if !profile.fits(arch) {
        return LatencyBreakdown {
            compute_us: f64::INFINITY,
            memory_us: f64::INFINITY,
            launch_us: 0.0,
            waves: 0.0,
            waves_per_sm: 0.0,
            occupancy: 0.0,
            total_us: f64::INFINITY,
        };
    }

    // Resident blocks per SM, limited by shared memory, the block cap and the
    // thread cap.
    let by_shared = arch
        .shared_mem_per_sm
        .checked_div(profile.shared_mem_per_block)
        .map_or(arch.max_blocks_per_sm as u64, |blocks| blocks.max(1));
    let by_threads = (arch.max_threads_per_sm / profile.threads_per_block.max(1)).max(1) as u64;
    let blocks_per_sm = by_shared
        .min(by_threads)
        .min(arch.max_blocks_per_sm as u64)
        .max(1);
    let concurrent = blocks_per_sm * arch.sms as u64;

    let blocks = profile.blocks.max(1);
    let waves = (blocks as f64 / concurrent as f64).ceil().max(1.0);
    let occupancy = (blocks as f64 / concurrent as f64).min(1.0);
    // Wave quantization: the grid takes an integer number of waves; a nearly
    // empty last wave (or an under-filled single wave) wastes throughput.
    let quantization = waves * concurrent as f64 / blocks as f64;

    let peak = arch.flops_per_us(profile.precision) * profile.compute_efficiency.clamp(0.05, 1.0);
    let ideal_compute = profile.flops as f64 / peak;
    let ideal_memory = profile.hbm_bytes as f64 / arch.mem_bandwidth_bytes_per_us;
    let compute_us = ideal_compute * quantization;
    let memory_us = ideal_memory * quantization;

    let overlap = profile.overlap.clamp(0.0, 1.0);
    let body = compute_us.max(memory_us) + (1.0 - overlap) * compute_us.min(memory_us);
    let launch_us = arch.launch_overhead_us * profile.launches.max(1) as f64;

    LatencyBreakdown {
        compute_us,
        memory_us,
        launch_us,
        waves,
        waves_per_sm: blocks as f64 / arch.sms as f64 / blocks_per_sm as f64,
        occupancy,
        total_us: body + launch_us,
    }
}

/// Total latency of a sequence of dependent kernels (they cannot overlap, so
/// latencies add — the execution model of an eager framework).
pub fn sequence_latency(arch: &GpuArch, kernels: &[KernelProfile]) -> f64 {
    kernels
        .iter()
        .map(|k| estimate_latency(arch, k).total_us)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn base_profile() -> KernelProfile {
        KernelProfile {
            flops: 1 << 28,
            hbm_bytes: 1 << 24,
            blocks: 1024,
            ..Default::default()
        }
    }

    #[test]
    fn launch_overhead_is_included() {
        let arch = GpuArch::a10();
        let one = estimate_latency(&arch, &base_profile());
        let two = estimate_latency(
            &arch,
            &KernelProfile {
                launches: 2,
                ..base_profile()
            },
        );
        assert!((two.total_us - one.total_us - arch.launch_overhead_us).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_kernels_scale_with_bandwidth() {
        let profile = KernelProfile {
            flops: 1 << 20,
            hbm_bytes: 1 << 30,
            blocks: 4096,
            ..Default::default()
        };
        let slow = estimate_latency(&GpuArch::a10(), &profile);
        let fast = estimate_latency(&GpuArch::h800(), &profile);
        assert!(fast.total_us < slow.total_us);
        assert!(slow.memory_us > slow.compute_us);
    }

    #[test]
    fn oversized_shared_memory_is_infeasible() {
        let arch = GpuArch::a10();
        let profile = KernelProfile {
            shared_mem_per_block: arch.shared_mem_per_sm + 1,
            ..base_profile()
        };
        assert!(!profile.fits(&arch));
        assert!(estimate_latency(&arch, &profile).total_us.is_infinite());
    }

    #[test]
    fn oversubscribed_blocks_are_infeasible() {
        // 1536 threads fit the A10's per-SM residency limit but exceed the
        // 1024-thread per-block hardware limit; `fits` used to miss this.
        let arch = GpuArch::a10();
        assert!(arch.max_threads_per_sm >= 1536);
        let profile = KernelProfile {
            threads_per_block: 1536,
            ..base_profile()
        };
        assert!(!profile.fits(&arch));
        assert!(estimate_latency(&arch, &profile).total_us.is_infinite());
        let ok = KernelProfile {
            threads_per_block: 1024,
            ..base_profile()
        };
        assert!(ok.fits(&arch));
    }

    #[test]
    fn tile_program_precision_reaches_the_profile() {
        // FP8 tile programs used to be costed at fp16 throughput because
        // `from_tile_program` hardcoded the precision tag.
        let fp8 = rf_tile::TensorizeConfig {
            element_bytes: 1,
            ..rf_tile::TensorizeConfig::default()
        };
        let program = rf_tile::tensorize_cascade("quant", 2, 4096, 1024, &fp8);
        let profile = KernelProfile::from_tile_program(&program);
        assert_eq!(profile.precision, "fp8");
        // On an FP8-capable part the same work at fp16 rate must be slower
        // once the kernel is compute-bound.
        let h800 = GpuArch::h800();
        let compute_bound = KernelProfile {
            flops: 1 << 38,
            ..profile
        };
        let fp16_rate = KernelProfile {
            precision: "fp16",
            ..compute_bound.clone()
        };
        assert!(
            estimate_latency(&h800, &compute_bound).total_us
                < estimate_latency(&h800, &fp16_rate).total_us
        );
    }

    #[test]
    fn low_parallelism_hurts_and_integer_waves_are_local_optima() {
        let arch = GpuArch::a10();
        // One block cannot saturate the device.
        let narrow = KernelProfile {
            blocks: 1,
            ..base_profile()
        };
        let wide = KernelProfile {
            blocks: 8192,
            ..base_profile()
        };
        let n = estimate_latency(&arch, &narrow);
        let w = estimate_latency(&arch, &wide);
        assert!(n.total_us > w.total_us);
        assert!(n.occupancy < 0.05);

        // A grid that exactly fills k waves is better (per unit work) than one
        // that spills a few blocks into an extra wave.
        let mut exact = base_profile();
        exact.shared_mem_per_block = arch.shared_mem_per_sm / 2; // 2 blocks/SM
        let concurrent = 2 * arch.sms as u64;
        exact.blocks = concurrent * 3;
        let mut spill = exact.clone();
        spill.blocks = concurrent * 3 + 1;
        let e = estimate_latency(&arch, &exact);
        let s = estimate_latency(&arch, &spill);
        assert_eq!(e.waves, 3.0);
        assert_eq!(s.waves, 4.0);
        assert!(s.compute_us > e.compute_us);
    }

    #[test]
    fn overlap_reduces_latency() {
        let arch = GpuArch::a10();
        let balanced = KernelProfile {
            flops: 1 << 30,
            hbm_bytes: 1 << 26,
            blocks: 4096,
            ..Default::default()
        };
        let serial = estimate_latency(
            &arch,
            &KernelProfile {
                overlap: 0.0,
                ..balanced.clone()
            },
        );
        let overlapped = estimate_latency(
            &arch,
            &KernelProfile {
                overlap: 1.0,
                ..balanced
            },
        );
        assert!(overlapped.total_us < serial.total_us);
    }

    #[test]
    fn sequence_latency_adds_kernels() {
        let arch = GpuArch::h800();
        let k = base_profile();
        let single = estimate_latency(&arch, &k).total_us;
        let seq = sequence_latency(&arch, &[k.clone(), k.clone(), k]);
        assert!((seq - 3.0 * single).abs() < 1e-6);
    }

    #[test]
    fn profile_from_tile_program() {
        let cfg = rf_tile::TensorizeConfig::default();
        let program = rf_tile::tensorize_cascade("softmax", 2, 4096, 1024, &cfg);
        let profile = KernelProfile::from_tile_program(&program);
        assert_eq!(profile.blocks, program.grid_blocks);
        assert!(profile.hbm_bytes > 0);
        assert!(profile.fits(&GpuArch::a10()));
        let lat = estimate_latency(&GpuArch::a10(), &profile);
        assert!(lat.total_us.is_finite() && lat.total_us > 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_latency_monotone_in_traffic(
            bytes_pow in 10u32..30,
            extra in 1u64..1_000_000,
        ) {
            let arch = GpuArch::a100();
            let small = KernelProfile { hbm_bytes: 1u64 << bytes_pow, blocks: 2048, ..Default::default() };
            let large = KernelProfile { hbm_bytes: (1u64 << bytes_pow) + extra, blocks: 2048, ..Default::default() };
            prop_assert!(estimate_latency(&arch, &small).total_us <= estimate_latency(&arch, &large).total_us);
        }

        #[test]
        fn prop_latency_positive_and_finite(
            flops_pow in 10u32..34,
            bytes_pow in 10u32..30,
            blocks in 1u64..65_536,
        ) {
            let arch = GpuArch::mi308x();
            let p = KernelProfile {
                flops: 1u64 << flops_pow,
                hbm_bytes: 1u64 << bytes_pow,
                blocks,
                ..Default::default()
            };
            let l = estimate_latency(&arch, &p);
            prop_assert!(l.total_us.is_finite());
            prop_assert!(l.total_us > 0.0);
        }
    }
}
