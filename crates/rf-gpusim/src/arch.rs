//! GPU architecture parameter sets.
//!
//! The numbers are public datasheet values (memory bandwidth, peak FP16/FP32
//! throughput, SM count, shared memory per SM) plus a measured-order-of-
//! magnitude kernel launch overhead. They parameterise the latency model of
//! [`crate::model`].

/// Parameters of one GPU (or GPU-like accelerator).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuArch {
    /// Marketing name, e.g. `"NVIDIA A10"`.
    pub name: &'static str,
    /// Number of streaming multiprocessors (compute units on AMD).
    pub sms: u32,
    /// Usable shared memory (LDS) per SM in bytes.
    pub shared_mem_per_sm: u64,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum threads in a single block (the hardware launch limit, 1024 on
    /// every current NVIDIA and AMD part — distinct from the per-SM residency
    /// limit above).
    pub max_threads_per_block: u32,
    /// HBM/GDDR bandwidth in bytes per microsecond (i.e. GB/s × 1e3 / 1e6).
    pub mem_bandwidth_bytes_per_us: f64,
    /// Peak dense FP16/BF16 tensor throughput in flops per microsecond.
    pub fp16_flops_per_us: f64,
    /// Peak FP32 (vector) throughput in flops per microsecond.
    pub fp32_flops_per_us: f64,
    /// Peak FP8 tensor throughput in flops per microsecond (0 if unsupported).
    pub fp8_flops_per_us: f64,
    /// Fixed overhead per kernel launch in microseconds.
    pub launch_overhead_us: f64,
}

impl GpuArch {
    /// NVIDIA A10 (24 GB, Ampere).
    pub fn a10() -> Self {
        GpuArch {
            name: "NVIDIA A10",
            sms: 72,
            shared_mem_per_sm: 100 * 1024,
            max_blocks_per_sm: 16,
            max_threads_per_sm: 1536,
            max_threads_per_block: 1024,
            mem_bandwidth_bytes_per_us: 600e3,
            fp16_flops_per_us: 125e6,
            fp32_flops_per_us: 31e6,
            fp8_flops_per_us: 0.0,
            launch_overhead_us: 5.0,
        }
    }

    /// NVIDIA A100 SXM (80 GB, Ampere).
    pub fn a100() -> Self {
        GpuArch {
            name: "NVIDIA A100",
            sms: 108,
            shared_mem_per_sm: 164 * 1024,
            max_blocks_per_sm: 32,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            mem_bandwidth_bytes_per_us: 2039e3,
            fp16_flops_per_us: 312e6,
            fp32_flops_per_us: 19.5e6,
            fp8_flops_per_us: 0.0,
            launch_overhead_us: 5.0,
        }
    }

    /// NVIDIA H800 SXM (80 GB, Hopper; export variant of the H100).
    pub fn h800() -> Self {
        GpuArch {
            name: "NVIDIA H800",
            sms: 132,
            shared_mem_per_sm: 228 * 1024,
            max_blocks_per_sm: 32,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            mem_bandwidth_bytes_per_us: 3350e3,
            fp16_flops_per_us: 990e6,
            fp32_flops_per_us: 67e6,
            fp8_flops_per_us: 1979e6,
            launch_overhead_us: 4.0,
        }
    }

    /// AMD MI308X (CDNA3-class accelerator).
    pub fn mi308x() -> Self {
        GpuArch {
            name: "AMD MI308X",
            sms: 80,
            shared_mem_per_sm: 64 * 1024,
            max_blocks_per_sm: 16,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            mem_bandwidth_bytes_per_us: 5300e3,
            fp16_flops_per_us: 330e6,
            fp32_flops_per_us: 41e6,
            fp8_flops_per_us: 660e6,
            launch_overhead_us: 8.0,
        }
    }

    /// The four evaluation platforms of the paper, in the order they appear.
    pub fn all() -> Vec<GpuArch> {
        vec![
            GpuArch::a10(),
            GpuArch::a100(),
            GpuArch::h800(),
            GpuArch::mi308x(),
        ]
    }

    /// Looks an architecture up by (case-insensitive) short name:
    /// `"a10"`, `"a100"`, `"h800"`, `"mi308x"`.
    pub fn by_name(name: &str) -> Option<GpuArch> {
        match name.to_ascii_lowercase().as_str() {
            "a10" => Some(GpuArch::a10()),
            "a100" => Some(GpuArch::a100()),
            "h800" => Some(GpuArch::h800()),
            "mi308x" => Some(GpuArch::mi308x()),
            _ => None,
        }
    }

    /// Whether a kernel launch with the given per-block resources can ever be
    /// scheduled on this architecture: the block must respect the hardware
    /// per-block thread limit, the per-SM thread residency limit and the
    /// per-SM shared-memory capacity.
    ///
    /// This is the *static* feasibility predicate: it depends only on the
    /// launch configuration, not on the kernel's traffic or flops, so the
    /// auto-tuner can reject a candidate before lowering it to a tile program
    /// or building a [`crate::KernelProfile`].
    pub fn launch_feasible(&self, threads_per_block: u32, shared_mem_per_block: u64) -> bool {
        threads_per_block <= self.max_threads_per_block
            && threads_per_block <= self.max_threads_per_sm
            && shared_mem_per_block <= self.shared_mem_per_sm
    }

    /// Folds every latency-relevant field (floats via their canonical bit
    /// patterns) into a stable-within-process `u64`.
    ///
    /// This is the capability fingerprint backends report and plan caches key
    /// on: two `GpuArch` values with the same fingerprint cost and tune
    /// identically, so their compiled plans are interchangeable.
    /// `max_threads_per_block` is deliberately excluded — it is 1024 on every
    /// supported part and does not affect the latency model.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut hasher);
        self.sms.hash(&mut hasher);
        self.shared_mem_per_sm.hash(&mut hasher);
        self.max_blocks_per_sm.hash(&mut hasher);
        self.max_threads_per_sm.hash(&mut hasher);
        self.mem_bandwidth_bytes_per_us.to_bits().hash(&mut hasher);
        self.fp16_flops_per_us.to_bits().hash(&mut hasher);
        self.fp32_flops_per_us.to_bits().hash(&mut hasher);
        self.fp8_flops_per_us.to_bits().hash(&mut hasher);
        self.launch_overhead_us.to_bits().hash(&mut hasher);
        hasher.finish()
    }

    /// Peak flops for the given precision tag (`"fp16"`, `"fp32"`, `"fp8"`).
    /// Unsupported FP8 falls back to FP16 throughput.
    pub fn flops_per_us(&self, precision: &str) -> f64 {
        match precision {
            "fp32" => self.fp32_flops_per_us,
            "fp8" if self.fp8_flops_per_us > 0.0 => self.fp8_flops_per_us,
            _ => self.fp16_flops_per_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_capability() {
        let a10 = GpuArch::a10();
        let h800 = GpuArch::h800();
        assert!(h800.mem_bandwidth_bytes_per_us > a10.mem_bandwidth_bytes_per_us);
        assert!(h800.fp16_flops_per_us > a10.fp16_flops_per_us);
        assert!(h800.fp8_flops_per_us > 0.0);
        assert_eq!(a10.fp8_flops_per_us, 0.0);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(GpuArch::by_name("A10").unwrap().name, "NVIDIA A10");
        assert_eq!(GpuArch::by_name("h800").unwrap().name, "NVIDIA H800");
        assert!(GpuArch::by_name("tpu").is_none());
        assert_eq!(GpuArch::all().len(), 4);
    }

    #[test]
    fn launch_feasibility_checks_every_static_limit() {
        let a10 = GpuArch::a10();
        assert!(a10.launch_feasible(1024, 64 * 1024));
        // Over the per-block hardware limit even though the SM could hold the
        // threads (A10 allows 1536 resident threads per SM).
        assert!(!a10.launch_feasible(1536, 64 * 1024));
        // Over the shared-memory capacity.
        assert!(!a10.launch_feasible(256, a10.shared_mem_per_sm + 1));
        for arch in GpuArch::all() {
            assert_eq!(arch.max_threads_per_block, 1024);
            assert!(arch.max_threads_per_block <= arch.max_threads_per_sm);
        }
    }

    #[test]
    fn fingerprints_distinguish_every_preset() {
        let prints: Vec<u64> = GpuArch::all().iter().map(|a| a.fingerprint()).collect();
        for (i, a) in prints.iter().enumerate() {
            for b in &prints[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Stable within a process, and sensitive to the latency parameters.
        assert_eq!(GpuArch::a10().fingerprint(), GpuArch::a10().fingerprint());
        let mut tweaked = GpuArch::a10();
        tweaked.mem_bandwidth_bytes_per_us += 1.0;
        assert_ne!(tweaked.fingerprint(), GpuArch::a10().fingerprint());
    }

    #[test]
    fn precision_fallback() {
        let a10 = GpuArch::a10();
        assert_eq!(a10.flops_per_us("fp8"), a10.fp16_flops_per_us);
        assert_eq!(a10.flops_per_us("fp32"), a10.fp32_flops_per_us);
        let h800 = GpuArch::h800();
        assert!(h800.flops_per_us("fp8") > h800.flops_per_us("fp16"));
    }
}
