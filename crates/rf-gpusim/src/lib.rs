//! Analytical GPU performance model.
//!
//! The paper evaluates real GPUs (NVIDIA A10, A100, H800 and AMD MI308X);
//! this reproduction replaces them with an analytical latency model driven by
//! the quantities the fusion transformation actually changes: global-memory
//! traffic, floating-point work, kernel-launch count, per-block shared-memory
//! footprint and achievable occupancy. The model is deliberately simple — a
//! refined roofline with wave quantization — because those are exactly the
//! effects behind the paper's results:
//!
//! * fusion removes intermediate-tensor traffic and kernel launches (Fig. 5, 8, 9),
//! * fusion level trades correction flops against latency hiding (Fig. 6a),
//! * incremental mode trades extra correction flops for freedom in choosing the
//!   parallelism, whose efficiency is quantized in waves per SM (Fig. 6b).
//!
//! Latencies are reported in microseconds. Absolute values are *not* expected
//! to match the paper's hardware; the comparisons between implementations are.

pub mod arch;
pub mod model;

pub use arch::GpuArch;
pub use model::{estimate_latency, sequence_latency, KernelProfile, LatencyBreakdown};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_traffic_is_never_faster() {
        let arch = GpuArch::a10();
        let small = KernelProfile {
            hbm_bytes: 1 << 20,
            flops: 1 << 20,
            blocks: 128,
            ..Default::default()
        };
        let large = KernelProfile {
            hbm_bytes: 1 << 24,
            flops: 1 << 20,
            blocks: 128,
            ..Default::default()
        };
        assert!(
            estimate_latency(&arch, &small).total_us <= estimate_latency(&arch, &large).total_us
        );
    }
}
