//! Top-k selection helpers shared by the MoE routing kernels.
//!
//! The paper treats top-k as a max-family reduction (Table 1): selecting the
//! `k` largest elements is a segmented reduction whose partial results can be
//! merged, which is exactly what the streaming implementation below exploits.

/// An index/value pair produced by top-k selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKEntry {
    /// Index of the element in the original sequence.
    pub index: usize,
    /// Value of the element.
    pub value: f64,
}

/// Selects the `k` largest elements by fully sorting a copy of the input
/// (the unfused reference implementation).
///
/// Ties are broken towards the smaller index, matching the streaming variant.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the input length.
pub fn topk_sort(values: &[f64], k: usize) -> Vec<TopKEntry> {
    assert!(k > 0, "k must be positive");
    assert!(k <= values.len(), "k must not exceed the number of values");
    let mut entries: Vec<TopKEntry> = values
        .iter()
        .enumerate()
        .map(|(index, &value)| TopKEntry { index, value })
        .collect();
    entries.sort_by(|a, b| {
        b.value
            .partial_cmp(&a.value)
            .unwrap()
            .then(a.index.cmp(&b.index))
    });
    entries.truncate(k);
    entries
}

/// Streaming top-k: maintains the current k best entries while scanning the
/// input once. Equivalent to [`topk_sort`] but single-pass and mergeable,
/// which is what makes it fusable with the preceding softmax reductions.
pub fn topk_streaming(values: &[f64], k: usize) -> Vec<TopKEntry> {
    assert!(k > 0, "k must be positive");
    assert!(k <= values.len(), "k must not exceed the number of values");
    let mut best: Vec<TopKEntry> = Vec::with_capacity(k + 1);
    for (index, &value) in values.iter().enumerate() {
        insert_entry(&mut best, TopKEntry { index, value }, k);
    }
    best
}

/// Merges two top-k partial results into the top-k of their union (the
/// level-`k` fused expression for the top-k reduction, Eq. 36/38).
pub fn merge_topk(a: &[TopKEntry], b: &[TopKEntry], k: usize) -> Vec<TopKEntry> {
    assert!(k > 0, "k must be positive");
    let mut best: Vec<TopKEntry> = Vec::with_capacity(k + 1);
    for &entry in a.iter().chain(b) {
        insert_entry(&mut best, entry, k);
    }
    best
}

fn insert_entry(best: &mut Vec<TopKEntry>, entry: TopKEntry, k: usize) {
    let pos = best
        .iter()
        .position(|e| entry.value > e.value || (entry.value == e.value && entry.index < e.index))
        .unwrap_or(best.len());
    best.insert(pos, entry);
    if best.len() > k {
        best.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rf_workloads::random_vec;

    #[test]
    fn sort_and_streaming_agree() {
        let values = random_vec(100, 17, -5.0, 5.0);
        for k in [1, 3, 8, 100] {
            assert_eq!(topk_sort(&values, k), topk_streaming(&values, k), "k={k}");
        }
    }

    #[test]
    fn duplicates_break_ties_by_index() {
        let values = vec![2.0, 5.0, 5.0, 1.0];
        let top = topk_streaming(&values, 2);
        assert_eq!(top[0].index, 1);
        assert_eq!(top[1].index, 2);
    }

    #[test]
    fn merge_matches_whole_input() {
        let values = random_vec(64, 23, -3.0, 3.0);
        let k = 5;
        let whole = topk_streaming(&values, k);
        let left = topk_streaming(&values[..30], k);
        let mut right: Vec<TopKEntry> = topk_streaming(&values[30..], k);
        for e in &mut right {
            e.index += 30;
        }
        let merged = merge_topk(&left, &right, k);
        assert_eq!(whole, merged);
    }

    #[test]
    #[should_panic(expected = "k must not exceed")]
    fn oversized_k_panics() {
        topk_streaming(&[1.0, 2.0], 3);
    }

    proptest! {
        #[test]
        fn prop_streaming_equals_sort(
            values in prop::collection::vec(-100.0f64..100.0, 1..128),
            k in 1usize..16,
        ) {
            prop_assume!(k <= values.len());
            prop_assert_eq!(topk_sort(&values, k), topk_streaming(&values, k));
        }

        #[test]
        fn prop_topk_values_are_sorted_descending(
            values in prop::collection::vec(-100.0f64..100.0, 4..64),
        ) {
            let top = topk_streaming(&values, 4);
            for w in top.windows(2) {
                prop_assert!(w[0].value >= w[1].value);
            }
        }
    }
}
