//! Non-ML cascaded reductions: variance and moment of inertia (Appendix A.6).
//!
//! Both workloads are chains of dependent reductions:
//!
//! * **Variance** (Eq. 44): a mean reduction followed by a sum of squared
//!   deviations that depends on the mean.
//! * **Moment of inertia** (Eq. 45): total mass, center of mass (which depends
//!   on the total mass), and the mass-weighted squared distances to the center.
//!
//! The naive kernels evaluate the definitions with one pass per reduction.
//! The fused kernels stream over the data once, accumulating the algebraically
//! equivalent sufficient statistics (`Σx`, `Σx²`, `Σm`, `Σm·x`, `Σm·‖x‖²`) and
//! combining them at the end — the same "fuse the chain into a single
//! reduction" transformation RedFuser derives, applied after expanding the
//! squared terms so the map functions become decomposable.

use rf_workloads::{InertiaConfig, Matrix, VarianceConfig};

/// Two-pass (unfused) population variance.
///
/// # Panics
///
/// Panics if the input is empty.
pub fn variance_naive(x: &[f64]) -> f64 {
    assert!(!x.is_empty(), "variance input must not be empty");
    let n = x.len() as f64;
    let mean = x.iter().sum::<f64>() / n;
    x.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n
}

/// Single-pass (fused) population variance via the sum / sum-of-squares
/// sufficient statistics.
///
/// # Panics
///
/// Panics if the input is empty.
pub fn variance_fused(x: &[f64]) -> f64 {
    assert!(!x.is_empty(), "variance input must not be empty");
    let n = x.len() as f64;
    let (sum, sum_sq) = x.iter().fold((0.0, 0.0), |(s, ss), &v| (s + v, ss + v * v));
    let mean = sum / n;
    (sum_sq / n - mean * mean).max(0.0)
}

/// Streaming (Welford) variance: numerically stable single pass maintaining
/// the running mean and the running sum of squared deviations. Included as the
/// incremental-form equivalent with `O(1)` state.
pub fn variance_welford(x: &[f64]) -> f64 {
    assert!(!x.is_empty(), "variance input must not be empty");
    let mut mean = 0.0;
    let mut m2 = 0.0;
    for (i, &v) in x.iter().enumerate() {
        let count = (i + 1) as f64;
        let delta = v - mean;
        mean += delta / count;
        m2 += delta * (v - mean);
    }
    m2 / x.len() as f64
}

/// Per-row variance of a batch matrix, with a pluggable scalar kernel.
pub fn variance_rows<F: Fn(&[f64]) -> f64>(batch: &Matrix, kernel: F) -> Vec<f64> {
    (0..batch.rows()).map(|r| kernel(batch.row(r))).collect()
}

/// Three-pass (unfused) moment of inertia about the center of mass.
///
/// `masses` has length `n`; `positions` is an `[n, dim]` matrix.
///
/// # Panics
///
/// Panics if the lengths disagree or the system is empty or massless.
pub fn inertia_naive(masses: &[f64], positions: &Matrix) -> f64 {
    assert_eq!(
        masses.len(),
        positions.rows(),
        "one mass per particle is required"
    );
    assert!(!masses.is_empty(), "inertia input must not be empty");
    let dim = positions.cols();
    let total_mass: f64 = masses.iter().sum();
    assert!(total_mass > 0.0, "total mass must be positive");
    let mut center = vec![0.0; dim];
    for (i, &m) in masses.iter().enumerate() {
        for (d, c) in center.iter_mut().enumerate() {
            *c += m * positions.get(i, d);
        }
    }
    for c in center.iter_mut() {
        *c /= total_mass;
    }
    let mut inertia = 0.0;
    for (i, &m) in masses.iter().enumerate() {
        let mut dist_sq = 0.0;
        for (d, &c) in center.iter().enumerate() {
            let delta = positions.get(i, d) - c;
            dist_sq += delta * delta;
        }
        inertia += m * dist_sq;
    }
    inertia
}

/// Single-pass (fused) moment of inertia using the parallel-axis identity
/// `I = Σ m‖x‖² − ‖Σ m·x‖² / Σ m`.
///
/// # Panics
///
/// Panics under the same conditions as [`inertia_naive`].
pub fn inertia_fused(masses: &[f64], positions: &Matrix) -> f64 {
    assert_eq!(
        masses.len(),
        positions.rows(),
        "one mass per particle is required"
    );
    assert!(!masses.is_empty(), "inertia input must not be empty");
    let dim = positions.cols();
    let mut total_mass = 0.0;
    let mut weighted = vec![0.0; dim];
    let mut weighted_sq = 0.0;
    for (i, &m) in masses.iter().enumerate() {
        total_mass += m;
        let mut norm_sq = 0.0;
        for (d, w) in weighted.iter_mut().enumerate() {
            let x = positions.get(i, d);
            *w += m * x;
            norm_sq += x * x;
        }
        weighted_sq += m * norm_sq;
    }
    assert!(total_mass > 0.0, "total mass must be positive");
    let center_norm_sq: f64 = weighted.iter().map(|w| w * w).sum::<f64>() / total_mass;
    (weighted_sq - center_norm_sq).max(0.0)
}

/// Generates deterministic inputs for a variance configuration and runs a
/// kernel per batch row, shrinking the problem by `scale` for quick runs.
pub fn run_variance_config<F>(
    config: &VarianceConfig,
    scale: usize,
    seed: u64,
    kernel: F,
) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64,
{
    let bs = (config.bs / scale.max(1)).max(1);
    let l = (config.l / scale.max(1)).max(2);
    let batch = Matrix::random(bs, l, seed, -3.0, 3.0);
    variance_rows(&batch, kernel)
}

/// Generates deterministic inputs for a moment-of-inertia configuration and
/// runs a kernel per batch entry, shrinking the problem by `scale`.
pub fn run_inertia_config<F>(config: &InertiaConfig, scale: usize, seed: u64, kernel: F) -> Vec<f64>
where
    F: Fn(&[f64], &Matrix) -> f64,
{
    let bs = (config.bs / scale.max(1)).max(1);
    let n = (config.n / scale.max(1)).max(2);
    (0..bs)
        .map(|b| {
            let masses = rf_workloads::random_vec(n, seed + b as u64, 0.1, 2.0);
            let positions = Matrix::random(n, config.dim, seed + 1000 + b as u64, -5.0, 5.0);
            kernel(&masses, &positions)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rf_workloads::random_vec;

    #[test]
    fn variance_kernels_agree() {
        let x = random_vec(1000, 13, -4.0, 4.0);
        let naive = variance_naive(&x);
        assert!((naive - variance_fused(&x)).abs() < 1e-9 * (1.0 + naive));
        assert!((naive - variance_welford(&x)).abs() < 1e-9 * (1.0 + naive));
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let x = vec![2.5; 64];
        assert!(variance_naive(&x).abs() < 1e-12);
        assert_eq!(variance_fused(&x), 0.0);
        assert!(variance_welford(&x).abs() < 1e-12);
    }

    #[test]
    fn inertia_kernels_agree() {
        let masses = random_vec(256, 21, 0.1, 2.0);
        let positions = Matrix::random(256, 3, 22, -5.0, 5.0);
        let naive = inertia_naive(&masses, &positions);
        let fused = inertia_fused(&masses, &positions);
        assert!((naive - fused).abs() < 1e-7 * (1.0 + naive));
    }

    #[test]
    fn inertia_is_translation_invariant() {
        let masses = random_vec(64, 31, 0.1, 2.0);
        let positions = Matrix::random(64, 3, 32, -2.0, 2.0);
        let mut shifted = positions.clone();
        for i in 0..shifted.rows() {
            for d in 0..3 {
                let v = shifted.get(i, d) + 10.0;
                shifted.set(i, d, v);
            }
        }
        let a = inertia_fused(&masses, &positions);
        let b = inertia_fused(&masses, &shifted);
        assert!((a - b).abs() < 1e-6 * (1.0 + a));
    }

    #[test]
    fn config_runners_produce_one_result_per_batch() {
        let v = run_variance_config(&rf_workloads::nonml::variance_tiny(), 1, 5, variance_fused);
        assert_eq!(v.len(), rf_workloads::nonml::variance_tiny().bs);
        let i = run_inertia_config(&rf_workloads::nonml::inertia_tiny(), 1, 5, inertia_fused);
        assert_eq!(i.len(), rf_workloads::nonml::inertia_tiny().bs);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_variance_panics() {
        variance_fused(&[]);
    }

    #[test]
    #[should_panic(expected = "total mass must be positive")]
    fn massless_system_panics() {
        inertia_naive(&[0.0, 0.0], &Matrix::zeros(2, 3));
    }

    proptest! {
        #[test]
        fn prop_variance_fused_matches_naive(x in prop::collection::vec(-50.0f64..50.0, 2..256)) {
            let a = variance_naive(&x);
            let b = variance_fused(&x);
            prop_assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs()));
            prop_assert!(b >= 0.0);
        }

        #[test]
        fn prop_inertia_fused_matches_naive(
            n in 2usize..64,
            seed in 0u64..500,
        ) {
            let masses = random_vec(n, seed, 0.1, 3.0);
            let positions = Matrix::random(n, 3, seed + 1, -4.0, 4.0);
            let a = inertia_naive(&masses, &positions);
            let b = inertia_fused(&masses, &positions);
            prop_assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs()));
        }
    }
}
