//! Safe softmax kernels: the canonical two-reduction cascade (§2.2).
//!
//! * [`softmax_naive`] — the unfused three-pass form: a max reduction, a
//!   sum-of-exponentials reduction, then the normalisation pass. Each pass
//!   re-reads the input, exactly like an eager framework executing three
//!   separate operators.
//! * [`softmax_online`] — the fused single-pass (incremental) form derived by
//!   RedFuser (Eq. 16 instantiated for softmax): a running maximum and a
//!   running rescaled sum are maintained while streaming over the input.
//! * [`softmax_rows`] — row-wise application over a matrix, used by the
//!   attention and MoE kernels.

use rf_workloads::Matrix;

/// The statistics produced by a softmax reduction pass: the row maximum and
/// the sum of shifted exponentials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftmaxStats {
    /// The maximum of the input.
    pub max: f64,
    /// The sum of `exp(x - max)` over the input.
    pub sum: f64,
}

/// Computes the safe-softmax statistics with two separate passes (unfused).
///
/// # Panics
///
/// Panics if the input is empty.
pub fn softmax_stats_naive(x: &[f64]) -> SoftmaxStats {
    assert!(!x.is_empty(), "softmax input must not be empty");
    let max = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let sum = x.iter().map(|&v| (v - max).exp()).sum();
    SoftmaxStats { max, sum }
}

/// Computes the safe-softmax statistics in a single streaming pass (fused,
/// incremental form). Matches [`softmax_stats_naive`] exactly in exact
/// arithmetic; in floating point the results agree to rounding error.
///
/// # Panics
///
/// Panics if the input is empty.
pub fn softmax_stats_online(x: &[f64]) -> SoftmaxStats {
    assert!(!x.is_empty(), "softmax input must not be empty");
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &v in x {
        let new_max = max.max(v);
        // Correction step of Eq. 16: rescale the running sum when the maximum
        // moves, then add the new term under the updated maximum.
        sum = sum * (max - new_max).exp() + (v - new_max).exp();
        max = new_max;
    }
    SoftmaxStats { max, sum }
}

/// Full unfused safe softmax: three passes over the input.
pub fn softmax_naive(x: &[f64]) -> Vec<f64> {
    let stats = softmax_stats_naive(x);
    x.iter()
        .map(|&v| (v - stats.max).exp() / stats.sum)
        .collect()
}

/// Safe softmax using the fused statistics pass followed by the normalisation
/// pass (two passes total; the probability vector itself cannot be emitted
/// before the statistics are known).
pub fn softmax_online(x: &[f64]) -> Vec<f64> {
    let stats = softmax_stats_online(x);
    x.iter()
        .map(|&v| (v - stats.max).exp() / stats.sum)
        .collect()
}

/// Applies [`softmax_naive`] to every row of a matrix.
pub fn softmax_rows(scores: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(scores.rows(), scores.cols());
    for r in 0..scores.rows() {
        let probs = softmax_naive(scores.row(r));
        out.row_mut(r).copy_from_slice(&probs);
    }
    out
}

/// Merges the softmax statistics of two disjoint segments (the level-`k`
/// fused expression, Eq. 31). This is the combine step used by split-KV
/// decoding and by the multi-segment strategy.
pub fn merge_stats(a: SoftmaxStats, b: SoftmaxStats) -> SoftmaxStats {
    let max = a.max.max(b.max);
    let sum = a.sum * (a.max - max).exp() + b.sum * (b.max - max).exp();
    SoftmaxStats { max, sum }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use proptest::prelude::*;
    use rf_workloads::random_vec;

    #[test]
    fn online_matches_naive_stats() {
        let x = random_vec(257, 11, -5.0, 5.0);
        let a = softmax_stats_naive(&x);
        let b = softmax_stats_online(&x);
        assert!((a.max - b.max).abs() < 1e-12);
        assert!((a.sum - b.sum).abs() < 1e-9 * a.sum);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let x = random_vec(128, 3, -3.0, 3.0);
        let p = softmax_online(&x);
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn online_matches_naive_probabilities() {
        let x = random_vec(64, 5, -4.0, 4.0);
        assert_close(&softmax_online(&x), &softmax_naive(&x), 1e-9);
    }

    #[test]
    fn large_inputs_do_not_overflow() {
        let x = vec![1000.0, 1000.5, 999.0];
        let p = softmax_online(&x);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_matches_whole_input() {
        let x = random_vec(96, 7, -2.0, 2.0);
        let whole = softmax_stats_naive(&x);
        let merged = merge_stats(
            softmax_stats_online(&x[..40]),
            softmax_stats_online(&x[40..]),
        );
        assert!((whole.max - merged.max).abs() < 1e-12);
        assert!((whole.sum - merged.sum).abs() < 1e-9 * whole.sum);
    }

    #[test]
    fn row_wise_softmax_normalises_each_row() {
        let m = rf_workloads::random_matrix(4, 16, 9, -1.0, 1.0);
        let p = softmax_rows(&m);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_input_panics() {
        softmax_stats_online(&[]);
    }

    proptest! {
        #[test]
        fn prop_online_equals_naive(x in prop::collection::vec(-30.0f64..30.0, 1..200)) {
            let a = softmax_naive(&x);
            let b = softmax_online(&x);
            for (p, q) in a.iter().zip(&b) {
                prop_assert!((p - q).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_merge_is_order_independent(
            x in prop::collection::vec(-10.0f64..10.0, 2..100),
            split in 1usize..99,
        ) {
            prop_assume!(split < x.len());
            let a = softmax_stats_online(&x[..split]);
            let b = softmax_stats_online(&x[split..]);
            let ab = merge_stats(a, b);
            let ba = merge_stats(b, a);
            prop_assert!((ab.max - ba.max).abs() < 1e-12);
            prop_assert!((ab.sum - ba.sum).abs() < 1e-9 * (1.0 + ab.sum.abs()));
        }
    }
}
