//! Attention kernels: naive, FlashAttention-style and FlashDecoding-style.
//!
//! All kernels operate on one `(batch, head)` slice: a query matrix
//! `[q_len, d]`, key and value matrices `[kv_len, d]`, and produce the output
//! `[q_len, d]`. Batched execution simply loops over heads (see
//! [`attention_batched`]); the per-head kernels are the units the paper's
//! fusion analysis reasons about.
//!
//! * [`attention_naive`] materialises the full score matrix, applies softmax,
//!   and multiplies with `V` — three separate operators with intermediate
//!   tensors, as an eager framework would execute them.
//! * [`flash_attention`] is the tiled online-softmax kernel (the paper's
//!   Figure 12 lowered to scalar Rust): the KV sequence is processed in
//!   blocks, and the running maximum / sum / output are rescaled whenever the
//!   maximum moves. This is both the hand-optimized baseline and the kernel
//!   RedFuser's Single-Segment strategy generates (fusion level `k = 3`).
//! * [`flash_decoding`] is the split-KV variant (Figure 13): the KV sequence
//!   is partitioned into `num_splits` chunks processed independently, and the
//!   partial results are merged with the level-`k` fused expression (Eq. 31).

use rf_workloads::Matrix;

use crate::softmax::softmax_rows;

/// Computes the scaled score matrix `Q K^T * scale`.
pub fn attention_scores(q: &Matrix, k: &Matrix, scale: f64) -> Matrix {
    assert_eq!(
        q.cols(),
        k.cols(),
        "query and key head dimensions must agree"
    );
    let mut scores = Matrix::zeros(q.rows(), k.rows());
    for i in 0..q.rows() {
        for j in 0..k.rows() {
            let mut dot = 0.0;
            for d in 0..q.cols() {
                dot += q.get(i, d) * k.get(j, d);
            }
            scores.set(i, j, dot * scale);
        }
    }
    scores
}

/// Unfused attention: `softmax(Q K^T * scale) V` with all intermediates
/// materialised. Serves as the correctness oracle for the fused kernels.
pub fn attention_naive(q: &Matrix, k: &Matrix, v: &Matrix, scale: f64) -> Matrix {
    assert_eq!(
        k.rows(),
        v.rows(),
        "key and value sequence lengths must agree"
    );
    let scores = attention_scores(q, k, scale);
    let probs = softmax_rows(&scores);
    probs.matmul(v)
}

/// FlashAttention-style fused attention with a configurable KV block size.
///
/// # Panics
///
/// Panics if `block_kv` is zero or the K/V shapes disagree.
pub fn flash_attention(q: &Matrix, k: &Matrix, v: &Matrix, scale: f64, block_kv: usize) -> Matrix {
    assert!(block_kv > 0, "block_kv must be positive");
    assert_eq!(
        k.rows(),
        v.rows(),
        "key and value sequence lengths must agree"
    );
    assert_eq!(
        q.cols(),
        k.cols(),
        "query and key head dimensions must agree"
    );
    let (q_len, d) = (q.rows(), q.cols());
    let kv_len = k.rows();
    let head_dim = v.cols();

    let mut out = Matrix::zeros(q_len, head_dim);
    let mut row_max = vec![f64::NEG_INFINITY; q_len];
    let mut row_sum = vec![0.0f64; q_len];

    let mut start = 0;
    while start < kv_len {
        let end = (start + block_kv).min(kv_len);
        for i in 0..q_len {
            // Block-local statistics.
            let mut block_max = f64::NEG_INFINITY;
            let mut scores = Vec::with_capacity(end - start);
            for j in start..end {
                let mut dot = 0.0;
                for t in 0..d {
                    dot += q.get(i, t) * k.get(j, t);
                }
                let s = dot * scale;
                block_max = block_max.max(s);
                scores.push(s);
            }
            let new_max = row_max[i].max(block_max);
            let correction = (row_max[i] - new_max).exp();

            // Correct the running sum and output (step 2 of the paper's
            // three-step reduction template), then accumulate the new block.
            row_sum[i] *= correction;
            for t in 0..head_dim {
                let cur = out.get(i, t);
                out.set(i, t, cur * correction);
            }
            for (offset, &s) in scores.iter().enumerate() {
                let p = (s - new_max).exp();
                row_sum[i] += p;
                let j = start + offset;
                for t in 0..head_dim {
                    let cur = out.get(i, t);
                    out.set(i, t, cur + p * v.get(j, t));
                }
            }
            row_max[i] = new_max;
        }
        start = end;
    }

    for (i, &denom) in row_sum.iter().enumerate() {
        for t in 0..head_dim {
            let cur = out.get(i, t);
            out.set(i, t, cur / denom);
        }
    }
    out
}

/// Partial result of one KV split: unnormalised output, running max and sum.
#[derive(Debug, Clone)]
pub struct SplitPartial {
    /// Unnormalised (but max-shifted) output accumulator `[q_len, d]`.
    pub out: Matrix,
    /// Per-query-row running maximum.
    pub row_max: Vec<f64>,
    /// Per-query-row running sum of exponentials.
    pub row_sum: Vec<f64>,
}

/// Computes the FlashAttention partial result for a KV range `[start, end)`.
pub fn flash_attention_partial(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    scale: f64,
    start: usize,
    end: usize,
    block_kv: usize,
) -> SplitPartial {
    assert!(
        start < end && end <= k.rows(),
        "invalid split range [{start}, {end})"
    );
    let (q_len, d) = (q.rows(), q.cols());
    let head_dim = v.cols();
    let mut out = Matrix::zeros(q_len, head_dim);
    let mut row_max = vec![f64::NEG_INFINITY; q_len];
    let mut row_sum = vec![0.0f64; q_len];

    let mut block_start = start;
    while block_start < end {
        let block_end = (block_start + block_kv).min(end);
        for i in 0..q_len {
            let mut block_max = f64::NEG_INFINITY;
            let mut scores = Vec::with_capacity(block_end - block_start);
            for j in block_start..block_end {
                let mut dot = 0.0;
                for t in 0..d {
                    dot += q.get(i, t) * k.get(j, t);
                }
                let s = dot * scale;
                block_max = block_max.max(s);
                scores.push(s);
            }
            let new_max = row_max[i].max(block_max);
            let correction = (row_max[i] - new_max).exp();
            row_sum[i] *= correction;
            for t in 0..head_dim {
                let cur = out.get(i, t);
                out.set(i, t, cur * correction);
            }
            for (offset, &s) in scores.iter().enumerate() {
                let p = (s - new_max).exp();
                row_sum[i] += p;
                let j = block_start + offset;
                for t in 0..head_dim {
                    let cur = out.get(i, t);
                    out.set(i, t, cur + p * v.get(j, t));
                }
            }
            row_max[i] = new_max;
        }
        block_start = block_end;
    }
    SplitPartial {
        out,
        row_max,
        row_sum,
    }
}

/// Merges split partials into the final attention output (the combine kernel
/// of FlashDecoding / the Multi-Segment strategy).
pub fn merge_partials(partials: &[SplitPartial]) -> Matrix {
    assert!(!partials.is_empty(), "cannot merge zero partials");
    let q_len = partials[0].out.rows();
    let head_dim = partials[0].out.cols();
    let mut final_out = Matrix::zeros(q_len, head_dim);
    for i in 0..q_len {
        let global_max = partials
            .iter()
            .map(|p| p.row_max[i])
            .fold(f64::NEG_INFINITY, f64::max);
        let mut global_sum = 0.0;
        for p in partials {
            global_sum += p.row_sum[i] * (p.row_max[i] - global_max).exp();
        }
        for t in 0..head_dim {
            let mut acc = 0.0;
            for p in partials {
                acc += p.out.get(i, t) * (p.row_max[i] - global_max).exp();
            }
            final_out.set(i, t, acc / global_sum);
        }
    }
    final_out
}

/// FlashDecoding-style attention: the KV sequence is split into `num_splits`
/// chunks processed independently and merged afterwards.
///
/// # Panics
///
/// Panics if `num_splits` is zero or exceeds the KV length.
pub fn flash_decoding(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    scale: f64,
    num_splits: usize,
    block_kv: usize,
) -> Matrix {
    assert!(num_splits > 0, "num_splits must be positive");
    let kv_len = k.rows();
    assert!(
        num_splits <= kv_len,
        "num_splits must not exceed the KV length"
    );
    let chunk = kv_len.div_ceil(num_splits);
    let partials: Vec<SplitPartial> = (0..num_splits)
        .filter_map(|s| {
            let start = s * chunk;
            let end = ((s + 1) * chunk).min(kv_len);
            (start < end).then(|| flash_attention_partial(q, k, v, scale, start, end, block_kv))
        })
        .collect();
    merge_partials(&partials)
}

/// Runs a per-head attention kernel over `heads` independent heads generated
/// deterministically from `seed`, returning the outputs per head. Used by the
/// benchmarks to emulate the batched workloads of Table 2.
pub fn attention_batched<F>(
    heads: usize,
    q_len: usize,
    kv_len: usize,
    head_dim: usize,
    seed: u64,
    kernel: F,
) -> Vec<Matrix>
where
    F: Fn(&Matrix, &Matrix, &Matrix, f64) -> Matrix,
{
    let scale = 1.0 / (head_dim as f64).sqrt();
    (0..heads)
        .map(|h| {
            let base = seed.wrapping_mul(1000).wrapping_add(h as u64);
            let q = Matrix::random(q_len, head_dim, base, -1.0, 1.0);
            let k = Matrix::random(kv_len, head_dim, base + 1, -1.0, 1.0);
            let v = Matrix::random(kv_len, head_dim, base + 2, -1.0, 1.0);
            kernel(&q, &k, &v, scale)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn setup(q_len: usize, kv_len: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix, f64) {
        let q = Matrix::random(q_len, d, seed, -1.0, 1.0);
        let k = Matrix::random(kv_len, d, seed + 1, -1.0, 1.0);
        let v = Matrix::random(kv_len, d, seed + 2, -1.0, 1.0);
        (q, k, v, 1.0 / (d as f64).sqrt())
    }

    #[test]
    fn flash_matches_naive() {
        let (q, k, v, scale) = setup(16, 64, 8, 1);
        let naive = attention_naive(&q, &k, &v, scale);
        for block in [1, 7, 16, 64, 128] {
            let flash = flash_attention(&q, &k, &v, scale, block);
            assert!(naive.max_abs_diff(&flash) < 1e-9, "block_kv={block}");
        }
    }

    #[test]
    fn decoding_matches_naive() {
        let (q, k, v, scale) = setup(1, 128, 16, 2);
        let naive = attention_naive(&q, &k, &v, scale);
        for splits in [1, 2, 4, 8] {
            let out = flash_decoding(&q, &k, &v, scale, splits, 16);
            assert!(naive.max_abs_diff(&out) < 1e-9, "splits={splits}");
        }
    }

    #[test]
    fn uneven_split_sizes_are_handled() {
        let (q, k, v, scale) = setup(4, 100, 8, 3);
        let naive = attention_naive(&q, &k, &v, scale);
        let out = flash_decoding(&q, &k, &v, scale, 3, 7);
        assert!(naive.max_abs_diff(&out) < 1e-9);
    }

    #[test]
    fn attention_rows_are_convex_combinations() {
        // Each output row is a convex combination of value rows, so it must lie
        // within the per-column min/max of V.
        let (q, k, v, scale) = setup(8, 32, 4, 4);
        let out = attention_naive(&q, &k, &v, scale);
        for t in 0..v.cols() {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for j in 0..v.rows() {
                lo = lo.min(v.get(j, t));
                hi = hi.max(v.get(j, t));
            }
            for i in 0..out.rows() {
                assert!(out.get(i, t) >= lo - 1e-9 && out.get(i, t) <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn batched_kernel_runs_all_heads() {
        let outs = attention_batched(3, 4, 16, 8, 9, |q, k, v, s| flash_attention(q, k, v, s, 8));
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].rows(), 4);
        assert_eq!(outs[0].cols(), 8);
    }

    #[test]
    #[should_panic(expected = "num_splits must not exceed")]
    fn too_many_splits_panics() {
        let (q, k, v, scale) = setup(1, 8, 4, 5);
        flash_decoding(&q, &k, &v, scale, 9, 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn prop_flash_and_decoding_match_naive(
            seed in 0u64..500,
            q_len in 1usize..8,
            kv_pow in 2u32..7,
            d in 1usize..9,
            block in 1usize..20,
            splits in 1usize..4,
        ) {
            let kv_len = 1usize << kv_pow;
            let (q, k, v, scale) = setup(q_len, kv_len, d, seed);
            let naive = attention_naive(&q, &k, &v, scale);
            let flash = flash_attention(&q, &k, &v, scale, block);
            prop_assert!(naive.max_abs_diff(&flash) < 1e-8);
            let dec = flash_decoding(&q, &k, &v, scale, splits.min(kv_len), block);
            prop_assert!(naive.max_abs_diff(&dec) < 1e-8);
        }
    }
}
