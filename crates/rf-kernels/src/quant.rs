//! FP8 per-token quantization + GEMM kernels (§3.4 of the paper).
//!
//! The activation matrix `A [M, K]` is quantized row-by-row with a dynamic
//! scale derived from the row's absolute maximum, then multiplied with the
//! weight matrix `W [K, N]` and de-quantized:
//!
//! ```text
//! m_i   = max_k |A[i, k]|                      (abs-max reduction)
//! Q[i,k] = fp8(A[i, k] * MAX / m_i)            (quantize)
//! C      = (Q W) * m_i / MAX                   (GEMM + dequant)
//! ```
//!
//! * [`quant_gemm_naive`] executes the three stages separately, materialising
//!   the quantized matrix — this is what an eager framework does and is the
//!   source of the redundant memory traffic the paper eliminates.
//! * [`quant_gemm_fused`] streams over `K` once per output tile, maintaining
//!   the running abs-max and rescaling the partial GEMM accumulator whenever
//!   the maximum grows (the incremental form of Eq. 21–22).
//!
//! FP8 itself is simulated: values are rounded to the E4M3 grid (4 exponent
//! bits, 3 mantissa bits, max 448) on top of `f64` storage. Only the reduction
//! *structure* matters for fusion; the rounding model keeps the numerics
//! faithful enough that fused and unfused results match bit-for-bit (they
//! perform the same roundings in the same order per output).

use rf_workloads::{Matrix, QuantGemmConfig};

// The E4M3 grid is defined once in `rf_workloads::quant` and shared with the
// tile-program VM, so every execution path performs identical roundings.
pub use rf_workloads::{fp8_round, FP8_MAX};

/// Per-row quantization scales: `m_i / MAX` where `m_i` is the row abs-max.
pub fn row_scales(a: &Matrix) -> Vec<f64> {
    (0..a.rows())
        .map(|i| {
            let amax = a.row(i).iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
            if amax == 0.0 {
                1.0 / FP8_MAX
            } else {
                amax / FP8_MAX
            }
        })
        .collect()
}

/// Quantizes the activation matrix to the FP8 grid using per-row scales.
pub fn quantize(a: &Matrix, scales: &[f64]) -> Matrix {
    assert_eq!(scales.len(), a.rows(), "one scale per row is required");
    let mut q = Matrix::zeros(a.rows(), a.cols());
    for (i, &scale) in scales.iter().enumerate() {
        for k in 0..a.cols() {
            q.set(i, k, fp8_round(a.get(i, k) / scale));
        }
    }
    q
}

/// Unfused reference: abs-max pass, quantization pass (materialised), GEMM,
/// de-quantization.
pub fn quant_gemm_naive(a: &Matrix, w: &Matrix) -> Matrix {
    assert_eq!(a.cols(), w.rows(), "inner dimensions must agree");
    let scales = row_scales(a);
    let q = quantize(a, &scales);
    let mut c = q.matmul(w);
    for (i, &scale) in scales.iter().enumerate() {
        for j in 0..c.cols() {
            let v = c.get(i, j) * scale;
            c.set(i, j, v);
        }
    }
    c
}

/// Fused kernel: one streaming pass over `K` per row maintains the running
/// abs-max and a quantized accumulator that is rescaled whenever the maximum
/// grows, never materialising the quantized activation matrix.
///
/// The incremental update mirrors Eq. 22: when the running maximum `m` grows
/// to `m'`, the accumulated contribution (computed with scale `m/MAX`) is
/// multiplied by `m/m'` so that the final result equals the one computed with
/// the global scale.
pub fn quant_gemm_fused(a: &Matrix, w: &Matrix, block_k: usize) -> Matrix {
    assert_eq!(a.cols(), w.rows(), "inner dimensions must agree");
    assert!(block_k > 0, "block_k must be positive");
    let (m, k_len) = (a.rows(), a.cols());
    let n = w.cols();
    let mut c = Matrix::zeros(m, n);

    for i in 0..m {
        let mut running_amax = 0.0f64;
        let mut acc = vec![0.0f64; n];
        let mut start = 0;
        while start < k_len {
            let end = (start + block_k).min(k_len);
            // Block-local abs-max (the level-1 segment of the max reduction).
            let mut block_amax = 0.0f64;
            for k in start..end {
                block_amax = block_amax.max(a.get(i, k).abs());
            }
            let new_amax = running_amax.max(block_amax);
            if new_amax == 0.0 {
                start = end;
                continue;
            }
            // Correction step (Eq. 21): rescale the accumulator from the old
            // scale to the new one.
            if running_amax > 0.0 && new_amax > running_amax {
                let correction = running_amax / new_amax;
                for v in acc.iter_mut() {
                    *v *= correction;
                }
            }
            // Reduction step: accumulate this block's contribution, quantized
            // with the current (block-updated) scale.
            let scale = new_amax / FP8_MAX;
            for k in start..end {
                let qv = fp8_round(a.get(i, k) / scale);
                if qv == 0.0 {
                    continue;
                }
                for (j, slot) in acc.iter_mut().enumerate() {
                    *slot += qv * w.get(k, j);
                }
            }
            running_amax = new_amax;
            start = end;
        }
        let scale = if running_amax == 0.0 {
            1.0 / FP8_MAX
        } else {
            running_amax / FP8_MAX
        };
        for (j, &sum) in acc.iter().enumerate() {
            c.set(i, j, sum * scale);
        }
    }
    c
}

/// Generates deterministic inputs for a configuration and runs a kernel over
/// them, shrinking the problem by `scale` for quick runs.
pub fn run_config<F>(config: &QuantGemmConfig, scale: usize, seed: u64, kernel: F) -> Matrix
where
    F: Fn(&Matrix, &Matrix) -> Matrix,
{
    let m = (config.m / scale.max(1)).max(1);
    let n = (config.n / scale.max(1)).max(1);
    let k = (config.k / scale.max(1)).max(1);
    let a = Matrix::random(m, k, seed, -2.0, 2.0);
    let w = Matrix::random(k, n, seed + 1, -1.0, 1.0);
    kernel(&a, &w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fp8_rounding_properties() {
        assert_eq!(fp8_round(0.0), 0.0);
        assert_eq!(fp8_round(f64::NAN), 0.0);
        assert_eq!(fp8_round(1e6), FP8_MAX);
        assert_eq!(fp8_round(-1e6), -FP8_MAX);
        assert_eq!(fp8_round(448.0), 448.0);
        // 3-bit mantissa: representable values around 1.0 step by 1/8.
        assert_eq!(fp8_round(1.0), 1.0);
        assert_eq!(fp8_round(1.06), 1.0);
        assert_eq!(fp8_round(1.07), 1.125);
        assert_eq!(fp8_round(-1.07), -1.125);
        assert_eq!(fp8_round(1e-12), 0.0);
    }

    #[test]
    fn quantization_error_is_bounded() {
        let a = Matrix::random(8, 64, 5, -3.0, 3.0);
        let scales = row_scales(&a);
        let q = quantize(&a, &scales);
        for (i, &scale) in scales.iter().enumerate() {
            for k in 0..a.cols() {
                let reconstructed = q.get(i, k) * scale;
                // E4M3 relative error is at most 2^-4 of the row maximum scale.
                assert!((reconstructed - a.get(i, k)).abs() <= scale * FP8_MAX / 16.0 + 1e-12);
            }
        }
    }

    #[test]
    fn fused_is_close_to_naive() {
        let a = Matrix::random(6, 48, 9, -2.0, 2.0);
        let w = Matrix::random(48, 10, 10, -1.0, 1.0);
        let naive = quant_gemm_naive(&a, &w);
        // With the full row as a single block, the fused kernel performs the
        // same roundings as the unfused one and matches exactly.
        let fused_full = quant_gemm_fused(&a, &w, 48);
        assert!(naive.max_abs_diff(&fused_full) < 1e-12);
        // With smaller blocks, early blocks are quantized under provisional
        // scales; the difference stays within the quantization noise floor.
        let fused_blocked = quant_gemm_fused(&a, &w, 8);
        let noise = 0.05 * naive.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs())) + 1e-9;
        assert!(naive.max_abs_diff(&fused_blocked) < noise);
    }

    #[test]
    fn zero_rows_produce_zero_outputs() {
        let a = Matrix::zeros(3, 16);
        let w = Matrix::random(16, 4, 2, -1.0, 1.0);
        let naive = quant_gemm_naive(&a, &w);
        let fused = quant_gemm_fused(&a, &w, 4);
        assert!(naive.as_slice().iter().all(|&v| v == 0.0));
        assert!(fused.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn run_config_shrinks_problem() {
        let config = rf_workloads::quant::quant_tiny();
        let out = run_config(&config, 2, 3, quant_gemm_naive);
        assert_eq!(out.rows(), config.m / 2);
        assert_eq!(out.cols(), config.n / 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_fused_tracks_naive(
            seed in 0u64..200,
            m in 1usize..6,
            k in 4usize..40,
            n in 1usize..8,
        ) {
            let a = Matrix::random(m, k, seed, -2.0, 2.0);
            let w = Matrix::random(k, n, seed + 1, -1.0, 1.0);
            let naive = quant_gemm_naive(&a, &w);
            let fused = quant_gemm_fused(&a, &w, k); // single block: exact match
            prop_assert!(naive.max_abs_diff(&fused) < 1e-12);
            // Blocked execution stays within the FP8 quantization noise floor:
            // each of the k products can differ by at most one E4M3 ulp of the
            // row maximum (amax/8 after de-quantization) times the weight.
            let blocked = quant_gemm_fused(&a, &w, 5);
            let amax = a.as_slice().iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
            let wmax = w.as_slice().iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
            let noise_bound = (k as f64) * (amax / 8.0) * wmax + 1e-9;
            prop_assert!(naive.max_abs_diff(&blocked) <= noise_bound);
        }
    }
}
